examples/quickstart.ml: Aig Aiger Blif Blocks Cec Convert Depth Flow Genlog Lutmap Printf Script
