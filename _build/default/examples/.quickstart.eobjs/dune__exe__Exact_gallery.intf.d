examples/exact_gallery.mli:
