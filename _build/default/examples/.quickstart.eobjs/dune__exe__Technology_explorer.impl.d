examples/technology_explorer.ml: Aig Array Depth Flow Genlog List Printf String Suite Sys
