examples/majority_flow.mli:
