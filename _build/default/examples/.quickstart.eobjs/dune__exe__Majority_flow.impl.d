examples/majority_flow.ml: Array Blocks Cec Convert Depth Flow Genlog Mig Printf Script
