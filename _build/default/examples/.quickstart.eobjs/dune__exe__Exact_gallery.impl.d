examples/exact_gallery.ml: Exact_chain Exact_synth Genlog Hashtbl Int64 List Npn Option Printf Tt
