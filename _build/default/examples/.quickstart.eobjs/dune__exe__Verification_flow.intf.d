examples/verification_flow.mli:
