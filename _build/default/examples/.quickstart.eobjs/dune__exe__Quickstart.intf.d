examples/quickstart.mli:
