examples/verification_flow.ml: Aig Array Blocks Cec Convert Depth Fraig Genlog List Printf Resub
