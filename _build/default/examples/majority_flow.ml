(* Majority-logic design flow for nano-emerging technologies.

   The paper's conclusion names this as the canonical downstream use case:
   technologies such as quantum-dot cellular automata or spin-wave devices
   realize logic as majority voters, so synthesis should happen natively in
   majority-inverter graphs.  This example builds an arithmetic design,
   moves it into a MIG, optimizes with the generic flow (MIG exact
   synthesis, MAJ resubstitution, MAJ-tree balancing), and reports the
   majority-gate cost — plus a SAT proof that nothing changed
   functionally.

   Run with:  dune exec examples/majority_flow.exe *)

open Genlog

module Bm = Blocks.Make (Mig)
module Dm = Depth.Make (Mig)
module Fm = Flow.Make (Mig)
module Cl = Convert.Cleanup (Mig)
module Cec_m = Cec.Make (Mig) (Mig)

let count_pure_majority t =
  (* majority gates without constant fanins, vs AND/OR-style with one *)
  let pure = ref 0 and with_const = ref 0 in
  Mig.foreach_gate t (fun n ->
      let has_const =
        Array.exists (fun s -> Mig.node_of_signal s = 0) (Mig.fanin t n)
      in
      if has_const then incr with_const else incr pure);
  (!pure, !with_const)

let () =
  (* a multiply-accumulate slice: a*b + c, built natively in the MIG *)
  let t = Mig.create () in
  let a = Bm.input_word t ~width:6 in
  let b = Bm.input_word t ~width:6 in
  let c = Bm.input_word t ~width:12 in
  let prod = Bm.multiplier t a b in
  let sum, carry = Bm.add t prod c in
  Bm.output_word t sum;
  Mig.create_po t carry;
  let reference = Cl.cleanup t in
  let pure, with_const = count_pure_majority t in
  Printf.printf "MAC slice as MIG: %d majority gates (%d pure MAJ3, %d with a constant fanin)\n"
    (Mig.num_gates t) pure with_const;
  Printf.printf "depth: %d majority levels\n\n" (Dm.depth t);

  let env = Flow.mig_env () in
  let optimized = Fm.run_script env t Script.compress_lite in
  let pure, with_const = count_pure_majority optimized in
  Printf.printf "after the generic flow (MIG instantiation):\n";
  Printf.printf "  %d majority gates (%d pure MAJ3, %d with a constant fanin)\n"
    (Mig.num_gates optimized) pure with_const;
  Printf.printf "  depth: %d majority levels\n" (Dm.depth optimized);

  (match Cec_m.check reference optimized with
  | Cec.Equivalent -> print_endline "  SAT CEC: equivalent"
  | Cec.Counterexample _ -> print_endline "  SAT CEC: NOT equivalent (bug!)"
  | Cec.Unknown -> print_endline "  SAT CEC: unknown");

  (* a pure-majority cost model for QCA-like targets: every MAJ3 counts 1,
     inverters are free (complemented edges) *)
  Printf.printf "\nQCA-style cost (MAJ3 count, inverters free): %d\n"
    (Mig.num_gates optimized)
