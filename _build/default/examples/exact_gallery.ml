(* Exact-synthesis gallery: size-optimal implementations of all 3-input
   NPN classes, per representation (paper §2.2.2).

   The same SSV encoder serves every representation through its operator
   set — AND-family for AIGs, +XOR for XAGs, MAJ-family for MIGs — and the
   table below is a compact demonstration of why XOR-rich classes favour
   XAGs and majority-like classes favour MIGs.

   Run with:  dune exec examples/exact_gallery.exe *)

open Genlog

let () =
  (* collect the canonical representative of every 3-variable NPN class *)
  let classes = Hashtbl.create 32 in
  for v = 0 to 255 do
    let f = Tt.of_int64 3 (Int64.of_int v) in
    let g, _ = Npn.canonize f in
    if not (Hashtbl.mem classes (Tt.to_hex g)) then
      Hashtbl.replace classes (Tt.to_hex g) g
  done;
  let reps =
    [
      ("aig", Exact_synth.aig_config);
      ("xag", Exact_synth.xag_config);
      ("mig", Exact_synth.mig_config);
      ("xmg", Exact_synth.xmg_config);
    ]
  in
  Printf.printf "%d NPN classes of 3-variable functions\n\n" (Hashtbl.length classes);
  Printf.printf "%-8s %6s %6s %6s %6s\n" "class" "aig" "xag" "mig" "xmg";
  let totals = Hashtbl.create 4 in
  let sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) classes [])
  in
  List.iter
    (fun (hex, f) ->
      Printf.printf "0x%-6s" hex;
      List.iter
        (fun (name, config) ->
          let size =
            match Exact_synth.synthesize config f with
            | Exact_synth.Const _ | Exact_synth.Projection _ -> 0
            | Exact_synth.Chain c -> Exact_chain.size c
            | Exact_synth.Failed -> -1
          in
          Hashtbl.replace totals name
            (size + Option.value ~default:0 (Hashtbl.find_opt totals name));
          Printf.printf " %6d" size)
        reps;
      print_newline ())
    sorted;
  Printf.printf "%-8s" "total";
  List.iter
    (fun (name, _) ->
      Printf.printf " %6d" (Option.value ~default:0 (Hashtbl.find_opt totals name)))
    reps;
  print_newline ();
  print_endline "\n(sizes are optimal gate counts; 0 = constant or wire)"
