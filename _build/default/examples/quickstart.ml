(* Quickstart: walk the paper's four layers on a small circuit.

   Run with:  dune exec examples/quickstart.exe *)

open Genlog

(* Layer 2 algorithms are functors over the network interface API (layer
   1); instantiating them for AIGs picks the layer-3 implementation. *)
module D = Depth.Make (Aig)
module F = Flow.Make (Aig)
module L = Lutmap.Make (Aig)
module C = Cec.Make (Aig) (Aig)
module Cl = Convert.Cleanup (Aig)

let () =
  (* build a 16-bit adder followed by a comparator, using only the generic
     constructors of the network API *)
  let module B = Blocks.Make (Aig) in
  let t = Aig.create () in
  let a = B.input_word t ~width:16 in
  let b = B.input_word t ~width:16 in
  let sum, carry = B.add t a b in
  B.output_word t sum;
  Aig.create_po t carry;
  Printf.printf "built:      %d AND gates, depth %d\n" (Aig.num_gates t) (D.depth t);

  (* keep a reference copy to verify the optimization afterwards *)
  let reference = Cl.cleanup t in

  (* run the paper's generic compress2rs flow (§3.1) *)
  let env = Flow.aig_env () in
  let optimized = F.run_script env t Script.compress2rs in
  Printf.printf "compress2rs: %d AND gates, depth %d\n"
    (Aig.num_gates optimized) (D.depth optimized);

  (* prove the flow changed structure but not function *)
  (match C.check reference optimized with
  | Cec.Equivalent -> print_endline "CEC:        equivalent (SAT-proved)"
  | Cec.Counterexample _ -> print_endline "CEC:        NOT equivalent (bug!)"
  | Cec.Unknown -> print_endline "CEC:        unknown");

  (* map into 6-input LUTs, as in the paper's evaluation *)
  let m = L.map optimized ~k:6 () in
  Printf.printf "6-LUT map:  %d LUTs, depth %d\n" m.L.lut_count m.L.depth;

  (* export for other tools *)
  Aiger.write_file optimized "/tmp/quickstart_opt.aag";
  Blif.write_file m.L.klut "/tmp/quickstart_mapped.blif";
  print_endline "wrote /tmp/quickstart_opt.aag and /tmp/quickstart_mapped.blif"
