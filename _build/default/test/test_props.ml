(* Tests for Boolean function properties (Kitty.Props) and DIMACS I/O. *)

open Kitty

let tt_testable = Alcotest.testable Tt.pp Tt.equal

let test_unateness () =
  let a = Tt.nth_var 3 0 and b = Tt.nth_var 3 1 and c = Tt.nth_var 3 2 in
  let f = Tt.(a &: b) in
  Alcotest.(check bool) "and unate" true (Props.is_unate f);
  Alcotest.(check bool) "positive in a" true (Props.unateness_in f 0 = Props.Positive);
  let g = Tt.(~:a &: b) in
  Alcotest.(check bool) "negative in a" true (Props.unateness_in g 0 = Props.Negative);
  let x = Tt.(a ^: b) in
  Alcotest.(check bool) "xor binate" true (Props.unateness_in x 0 = Props.Binate);
  Alcotest.(check bool) "xor not unate" false (Props.is_unate x);
  let m = Tt.maj a b c in
  Alcotest.(check bool) "maj unate" true (Props.is_unate m)

let test_boolean_difference () =
  let a = Tt.nth_var 2 0 and b = Tt.nth_var 2 1 in
  (* d(a&b)/da = b *)
  Alcotest.(check tt_testable) "d(ab)/da" b (Props.boolean_difference Tt.(a &: b) 0);
  (* d(a^b)/da = 1 *)
  Alcotest.(check tt_testable) "d(a^b)/da" (Tt.const1 2)
    (Props.boolean_difference Tt.(a ^: b) 0)

let test_symmetry () =
  let a = Tt.nth_var 3 0 and b = Tt.nth_var 3 1 and c = Tt.nth_var 3 2 in
  let m = Tt.maj a b c in
  Alcotest.(check bool) "maj symmetric ab" true (Props.symmetric_in m 0 1);
  Alcotest.(check bool) "maj totally symmetric" true (Props.is_totally_symmetric m);
  let f = Tt.((a &: b) |: c) in
  Alcotest.(check bool) "ab symmetric" true (Props.symmetric_in f 0 1);
  Alcotest.(check bool) "ac not symmetric" false (Props.symmetric_in f 0 2);
  Alcotest.(check int) "two symmetry classes" 2 (List.length (Props.symmetry_classes f))

let test_top_decomposition () =
  let a = Tt.nth_var 3 0 and b = Tt.nth_var 3 1 and c = Tt.nth_var 3 2 in
  let f = Tt.(a &: (b |: c)) in
  (match Props.top_decompositions f 0 with
  | [ (Props.And_, g) ] -> Alcotest.(check tt_testable) "residue" Tt.(b |: c) g
  | _ -> Alcotest.fail "expected AND decomposition");
  let g = Tt.(a ^: (b &: c)) in
  (match Props.top_decompositions g 0 with
  | [ (Props.Xor_, r) ] -> Alcotest.(check tt_testable) "xor residue" Tt.(b &: c) r
  | _ -> Alcotest.fail "expected XOR decomposition");
  (* no top decomposition for maj in any variable *)
  let m = Tt.maj a b c in
  Alcotest.(check int) "maj not decomposable" 0
    (List.length (Props.top_decompositions m 0))

let prop_symmetry_swap =
  QCheck.Test.make ~name:"symmetric_in agrees with explicit swap" ~count:300
    QCheck.(pair (int_bound 65535) (pair (int_bound 3) (int_bound 3)))
    (fun (v, (i, j)) ->
      let f = Tt.of_int64 4 (Int64.of_int v) in
      Props.symmetric_in f i j = Tt.equal (Tt.swap_vars f i j) f)

let prop_difference_support =
  QCheck.Test.make
    ~name:"boolean difference is 0 iff variable not in support" ~count:300
    QCheck.(pair (int_bound 65535) (int_bound 3))
    (fun (v, i) ->
      let f = Tt.of_int64 4 (Int64.of_int v) in
      Tt.is_const0 (Props.boolean_difference f i) = not (Tt.has_var f i))

(* -- DIMACS -- *)

let test_dimacs_roundtrip () =
  let open Satkit in
  let lit v n = Lit.of_var v ~negated:n in
  let cnf = [ [ lit 0 false; lit 1 true ]; [ lit 2 false ]; [ lit 1 false; lit 2 true; lit 0 true ] ] in
  let path = Filename.temp_file "genlog" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dimacs.write_file path ~num_vars:3 cnf;
      let nv, cnf' = Dimacs.read_file path in
      Alcotest.(check int) "vars" 3 nv;
      Alcotest.(check int) "clauses" 3 (List.length cnf');
      Alcotest.(check bool) "same clauses" true (cnf = cnf'))

let test_dimacs_solve () =
  let path = Filename.temp_file "genlog" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "c a tiny unsat instance\np cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n";
      close_out oc;
      let s = Satkit.Dimacs.load_file path in
      Alcotest.(check bool) "unsat" true (Satkit.Solver.solve s = Satkit.Solver.Unsat))

let test_dimacs_parse_error () =
  let path = Filename.temp_file "genlog" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "p cnf 2 1\n1 x 0\n";
      close_out oc;
      match Satkit.Dimacs.read_file path with
      | exception Satkit.Dimacs.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected parse error")

let suite =
  [
    Alcotest.test_case "unateness" `Quick test_unateness;
    Alcotest.test_case "boolean difference" `Quick test_boolean_difference;
    Alcotest.test_case "symmetry" `Quick test_symmetry;
    Alcotest.test_case "top decomposition" `Quick test_top_decomposition;
    QCheck_alcotest.to_alcotest prop_symmetry_swap;
    QCheck_alcotest.to_alcotest prop_difference_support;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs solve" `Quick test_dimacs_solve;
    Alcotest.test_case "dimacs parse error" `Quick test_dimacs_parse_error;
  ]
