(* Tests for SAT-based exact synthesis: known optimum sizes, simulation
   soundness, per-representation operator sets, database caching. *)

open Kitty

let tt_testable = Alcotest.testable Tt.pp Tt.equal

let chain_size_of = function
  | Exact.Synth.Chain c -> Exact.Chain.size c
  | Exact.Synth.Const _ | Exact.Synth.Projection _ -> 0
  | Exact.Synth.Failed -> -1

let check_chain name config f expected_size =
  match Exact.Synth.synthesize config f with
  | Exact.Synth.Chain c ->
    Alcotest.(check tt_testable) (name ^ ": simulates back") f (Exact.Chain.simulate c);
    if expected_size >= 0 then
      Alcotest.(check int) (name ^ ": optimal size") expected_size (Exact.Chain.size c)
  | Exact.Synth.Const _ | Exact.Synth.Projection _ ->
    Alcotest.fail (name ^ ": unexpectedly trivial")
  | Exact.Synth.Failed -> Alcotest.fail (name ^ ": synthesis failed")

let test_trivial () =
  let f0 = Tt.const0 3 and f1 = Tt.const1 3 in
  Alcotest.(check bool) "const0" true
    (Exact.Synth.synthesize Exact.Synth.aig_config f0 = Exact.Synth.Const false);
  Alcotest.(check bool) "const1" true
    (Exact.Synth.synthesize Exact.Synth.aig_config f1 = Exact.Synth.Const true);
  Alcotest.(check bool) "projection" true
    (Exact.Synth.synthesize Exact.Synth.aig_config (Tt.nth_var 3 1)
    = Exact.Synth.Projection (1, false));
  Alcotest.(check bool) "complemented projection" true
    (Exact.Synth.synthesize Exact.Synth.aig_config Tt.(~:(nth_var 3 1))
    = Exact.Synth.Projection (1, true))

let test_and_or () =
  let a = Tt.nth_var 2 0 and b = Tt.nth_var 2 1 in
  check_chain "and/aig" Exact.Synth.aig_config Tt.(a &: b) 1;
  check_chain "or/aig" Exact.Synth.aig_config Tt.(a |: b) 1;
  check_chain "nand/aig" Exact.Synth.aig_config Tt.(~:(a &: b)) 1

let test_xor_sizes () =
  let a = Tt.nth_var 2 0 and b = Tt.nth_var 2 1 in
  let x = Tt.(a ^: b) in
  (* XOR costs 3 AND gates in an AIG but a single gate in an XAG *)
  check_chain "xor/aig" Exact.Synth.aig_config x 3;
  check_chain "xor/xag" Exact.Synth.xag_config x 1

let test_maj_sizes () =
  let f = Tt.maj (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2) in
  (* MAJ costs 4 AND gates in an AIG but a single gate in a MIG *)
  check_chain "maj/aig" Exact.Synth.aig_config f 4;
  check_chain "maj/mig" Exact.Synth.mig_config f 1;
  (* and-or decomposition in a MIG: and is one maj-with-constant gate *)
  let a = Tt.nth_var 2 0 and b = Tt.nth_var 2 1 in
  check_chain "and/mig" Exact.Synth.mig_config Tt.(a &: b) 1;
  check_chain "or/mig" Exact.Synth.mig_config Tt.(a |: b) 1

let test_xor3 () =
  let x3 = Tt.(nth_var 3 0 ^: nth_var 3 1 ^: nth_var 3 2) in
  check_chain "xor3/xag" Exact.Synth.xag_config x3 2;
  check_chain "xor3/xmg" Exact.Synth.xmg_config x3 1

let test_mux () =
  let f = Tt.ite (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2) in
  check_chain "mux/aig" Exact.Synth.aig_config f 3;
  check_chain "mux/mig" Exact.Synth.mig_config f (-1)

let prop_synth_sound =
  QCheck.Test.make ~name:"exact synthesis simulates back (3 vars, xag)"
    ~count:40
    (QCheck.int_bound 255)
    (fun v ->
      let f = Tt.of_int64 3 (Int64.of_int v) in
      match Exact.Synth.synthesize Exact.Synth.xag_config f with
      | Exact.Synth.Const b -> Tt.equal f (if b then Tt.const1 3 else Tt.const0 3)
      | Exact.Synth.Projection (i, c) ->
        let p = Tt.nth_var 3 i in
        Tt.equal f (if c then Tt.( ~: ) p else p)
      | Exact.Synth.Chain c -> Tt.equal f (Exact.Chain.simulate c)
      | Exact.Synth.Failed -> false)

let prop_synth_sound_mig =
  QCheck.Test.make ~name:"exact synthesis simulates back (3 vars, mig)"
    ~count:15
    (QCheck.int_bound 255)
    (fun v ->
      let f = Tt.of_int64 3 (Int64.of_int v) in
      match Exact.Synth.synthesize Exact.Synth.mig_config f with
      | Exact.Synth.Const b -> Tt.equal f (if b then Tt.const1 3 else Tt.const0 3)
      | Exact.Synth.Projection (i, c) ->
        let p = Tt.nth_var 3 i in
        Tt.equal f (if c then Tt.( ~: ) p else p)
      | Exact.Synth.Chain c -> Tt.equal f (Exact.Chain.simulate c)
      | Exact.Synth.Failed -> false)

let test_database_caching () =
  let db = Exact.Database.create Exact.Synth.xag_config in
  let a = Tt.nth_var 4 0 and b = Tt.nth_var 4 1 in
  let f = Tt.(a &: b) in
  let r1, _ = Exact.Database.lookup db f in
  Alcotest.(check bool) "first lookup synthesizes" true (chain_size_of r1 = 1);
  (* an NPN-equivalent function must hit the cache *)
  let g = Tt.(~:(nth_var 4 2) |: nth_var 4 3) in
  let _ = Exact.Database.lookup db g in
  let hits, misses, failures = Exact.Database.stats db in
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "no failures" 0 failures

let test_decode_into_aig () =
  (* decode a synthesized chain into an AIG and compare functions by
     explicitly evaluating the AIG on all minterms *)
  let f = Tt.(maj (nth_var 3 0) (nth_var 3 1) (nth_var 3 2) ^: nth_var 3 0) in
  match Exact.Synth.synthesize Exact.Synth.xag_config f with
  | Exact.Synth.Chain c ->
    let module N = Network.Xag in
    let module D = Exact.Decode.Make (Network.Xag) in
    let t = N.create () in
    let inputs = Array.init 3 (fun _ -> N.create_pi t) in
    let out = D.chain t c inputs in
    N.create_po t out;
    (* brute-force evaluation of the XAG *)
    let eval m =
      let values = Hashtbl.create 16 in
      Hashtbl.replace values 0 false;
      Array.iteri
        (fun i s -> Hashtbl.replace values (N.node_of_signal s) ((m lsr i) land 1 = 1))
        inputs;
      let rec node_value n =
        match Hashtbl.find_opt values n with
        | Some v -> v
        | None ->
          let fs = N.fanin t n in
          let vs =
            Array.map
              (fun s ->
                let v = node_value (N.node_of_signal s) in
                if N.is_complemented s then not v else v)
              fs
          in
          let v =
            match N.gate_kind t n with
            | Network.Kind.And -> Array.for_all Fun.id vs
            | Network.Kind.Xor -> Array.fold_left ( <> ) false vs
            | _ -> assert false
          in
          Hashtbl.replace values n v;
          v
      in
      let po = N.po_at t 0 in
      let v = node_value (N.node_of_signal po) in
      if N.is_complemented po then not v else v
    in
    for m = 0 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "minterm %d" m)
        (Tt.get_bit f m = 1) (eval m)
    done
  | _ -> Alcotest.fail "expected a chain"

let suite =
  [
    Alcotest.test_case "trivial functions" `Quick test_trivial;
    Alcotest.test_case "and/or optimal" `Quick test_and_or;
    Alcotest.test_case "xor sizes per representation" `Quick test_xor_sizes;
    Alcotest.test_case "maj sizes per representation" `Quick test_maj_sizes;
    Alcotest.test_case "xor3 sizes" `Quick test_xor3;
    Alcotest.test_case "mux" `Quick test_mux;
    Alcotest.test_case "database caching" `Quick test_database_caching;
    Alcotest.test_case "decode into xag" `Quick test_decode_into_aig;
    QCheck_alcotest.to_alcotest prop_synth_sound;
    QCheck_alcotest.to_alcotest prop_synth_sound_mig;
  ]

(* -- additional coverage -- *)

let test_decode_into_mig () =
  (* decode a MAJ-constrained chain into a MIG and verify by simulation *)
  let f = Tt.(maj (nth_var 3 0) (nth_var 3 1) (~:(nth_var 3 2)) |: nth_var 3 0) in
  match Exact.Synth.synthesize Exact.Synth.mig_config f with
  | Exact.Synth.Chain c ->
    let module N = Network.Mig in
    let module D = Exact.Decode.Make (Network.Mig) in
    let module S = Algo.Simulate.Make (Network.Mig) in
    let t = N.create () in
    let inputs = Array.init 3 (fun _ -> N.create_pi t) in
    N.create_po t (D.chain t c inputs);
    Alcotest.(check tt_testable) "mig decode correct" f (S.output_functions t).(0)
  | Exact.Synth.Const _ | Exact.Synth.Projection _ -> Alcotest.fail "trivial?"
  | Exact.Synth.Failed -> Alcotest.fail "synthesis failed"

let shared_db =
  let db = lazy (Exact.Database.create Exact.Synth.xag_config) in
  fun () -> Lazy.force db

let prop_database_decode_sound =
  (* end-to-end: db lookup + NPN instantiation + decode equals the original
     function, for random 4-var functions into an XAG *)
  QCheck.Test.make ~name:"database decode reproduces the function" ~count:60
    (QCheck.int_bound 65535)
    (fun v ->
      let f = Tt.of_int64 4 (Int64.of_int v) in
      let db = shared_db () in
      let module N = Network.Xag in
      let module D = Exact.Decode.Make (Network.Xag) in
      let module S = Algo.Simulate.Make (Network.Xag) in
      let t = N.create () in
      let inputs = Array.init 4 (fun _ -> N.create_pi t) in
      match D.of_database t db f inputs with
      | None -> true (* budget exhausted is allowed *)
      | Some s ->
        N.create_po t s;
        Tt.equal f (S.output_functions t).(0))

let test_chain_pp () =
  match Exact.Synth.synthesize Exact.Synth.xag_config (Tt.of_hex 2 "6") with
  | Exact.Synth.Chain c ->
    let s = Format.asprintf "%a" Exact.Chain.pp c in
    Alcotest.(check bool) "pp mentions inputs" true (String.length s > 10)
  | _ -> Alcotest.fail "xor should be a chain"

let extra_suite =
  [
    Alcotest.test_case "decode into mig" `Quick test_decode_into_mig;
    QCheck_alcotest.to_alcotest prop_database_decode_sound;
    Alcotest.test_case "chain pp" `Quick test_chain_pp;
  ]

let suite = suite @ extra_suite
