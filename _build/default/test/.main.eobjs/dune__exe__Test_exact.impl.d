test/test_exact.ml: Alcotest Algo Array Exact Format Fun Hashtbl Int64 Kitty Lazy Network Printf QCheck QCheck_alcotest String Tt
