test/test_lsgen.ml: Aig Alcotest Algo Array Float Kind Kitty List Lsgen Mig Network Printf Random String Xag
