test/test_lsio.ml: Aig Alcotest Algo Filename Fun Kitty Klut List Lsgen Lsio Network String Sys Tt
