test/main.ml: Alcotest Test_algo Test_exact Test_extensions Test_flow Test_kitty Test_lsgen Test_lsio Test_network Test_props Test_satkit
