test/test_flow.ml: Aig Alcotest Algo Convert Exact Flow List Lsgen Mig Network Printf String Xag Xmg
