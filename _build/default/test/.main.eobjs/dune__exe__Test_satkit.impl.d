test/test_satkit.ml: Alcotest Gen List Lit QCheck QCheck_alcotest Random Satkit Solver
