test/test_algo.ml: Aig Alcotest Algo Array Convert Exact Hashtbl Intf Kitty Klut Lazy List Mig Network Random String Tt Xag Xmg
