test/test_props.ml: Alcotest Dimacs Filename Fun Int64 Kitty List Lit Props QCheck QCheck_alcotest Satkit Sys Tt
