test/main.mli:
