test/test_extensions.ml: Aig Alcotest Algo Array Convert Exact Flow Int64 Kitty List Lsgen Mig Network Printf QCheck QCheck_alcotest Random String Tt Xag
