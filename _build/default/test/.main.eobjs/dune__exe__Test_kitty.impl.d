test/test_kitty.ml: Alcotest Array Cube Factor Hashtbl Int64 Isop Kitty List Npn Printf QCheck QCheck_alcotest Random Tt
