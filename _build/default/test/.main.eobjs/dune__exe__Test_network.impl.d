test/test_network.ml: Aig Alcotest Algo Array Build Convert Int64 Intf Kind Kitty Klut List Mig Network Random Signal Tt Xag Xmg
