(* Common machinery behind every network implementation (layer 3 of the
   paper's architecture): growable node storage, structural hashing,
   fanout lists, reference counting, dead-node management and DAG-aware
   [substitute_node].

   A network implementation supplies a [SPEC]: its name, fanin bound and a
   *pure* normalization function that maps a gate kind plus fanin signals to
   either an existing signal (the gate simplifies away) or a canonical
   (kind, fanins, output-complement) triple used as the structural-hashing
   key. *)

type norm =
  | Norm_signal of Signal.t
  | Norm_node of Kind.t * Signal.t array * bool  (* fanins, complement output *)

module type SPEC = sig
  val name : string
  val max_fanin : int
  val normalize : Kind.t -> Signal.t array -> norm
end

module Make (Spec : SPEC) = struct
  type node = int
  type signal = Signal.t

  type node_data = {
    mutable kind : Kind.t;
    mutable fanin : signal array;
    mutable fanout : node list;  (* parent gates, one entry per edge *)
    mutable refs : int;          (* fanout edges + primary-output references *)
    mutable dead : bool;
    mutable visited : int;
    mutable value : int;
  }

  type t = {
    mutable nodes : node_data array;
    mutable size : int;                (* number of live slots in [nodes] *)
    mutable num_gates : int;
    mutable pis : node array;
    mutable num_pis : int;
    mutable pos : signal array;
    mutable num_pos : int;
    strash : (Kind.t * signal array, node) Hashtbl.t;
    mutable traversal_id : int;
  }

  let name = Spec.name
  let max_fanin = Spec.max_fanin

  (* -- signal helpers re-exported so that algorithms can stay generic -- *)
  let signal_of_node = Signal.of_node
  let node_of_signal = Signal.node
  let is_complemented = Signal.is_complemented
  let complement = Signal.complement
  let complement_if = Signal.complement_if
  let constant = Signal.constant

  let fresh_node_data kind fanin =
    { kind; fanin; fanout = []; refs = 0; dead = false; visited = 0; value = 0 }

  let create ?(initial_capacity = 1024) () =
    let nodes = Array.init initial_capacity (fun _ -> fresh_node_data Kind.Const [||]) in
    let t =
      {
        nodes;
        size = 0;
        num_gates = 0;
        pis = Array.make 16 0;
        num_pis = 0;
        pos = Array.make 16 0;
        num_pos = 0;
        strash = Hashtbl.create 1024;
        traversal_id = 0;
      }
    in
    (* node 0: constant false *)
    t.nodes.(0) <- fresh_node_data Kind.Const [||];
    t.size <- 1;
    t

  let grow t =
    if t.size >= Array.length t.nodes then begin
      let bigger = Array.init (2 * Array.length t.nodes) (fun _ -> fresh_node_data Kind.Const [||]) in
      Array.blit t.nodes 0 bigger 0 t.size;
      t.nodes <- bigger
    end

  let data t n = t.nodes.(n)

  let alloc t kind fanin =
    grow t;
    let n = t.size in
    t.nodes.(n) <- fresh_node_data kind fanin;
    t.size <- t.size + 1;
    n

  (* -- basic queries -- *)

  let size t = t.size
  let num_gates t = t.num_gates
  let num_pis t = t.num_pis
  let num_pos t = t.num_pos
  let gate_kind t n = (data t n).kind
  let is_constant _ n = n = 0
  let is_pi t n = (data t n).kind = Kind.Pi

  let is_gate t n =
    match (data t n).kind with
    | Kind.Const | Kind.Pi -> false
    | Kind.And | Kind.Xor | Kind.Maj | Kind.Lut _ -> true

  let is_dead t n = (data t n).dead
  let fanin t n = (data t n).fanin
  let fanin_size t n = Array.length (data t n).fanin
  let fanout t n = (data t n).fanout
  let ref_count t n = (data t n).refs

  let pi_at t i = t.pis.(i)
  let po_at t i = t.pos.(i)
  let pis t = Array.sub t.pis 0 t.num_pis
  let pos t = Array.sub t.pos 0 t.num_pos

  (* Index of a primary input among the PIs (linear scan; cached by
     algorithms that need it repeatedly via node values). *)
  let pi_index t n =
    let rec go i =
      if i >= t.num_pis then raise Not_found
      else if t.pis.(i) = n then i
      else go (i + 1)
    in
    go 0

  (* -- iteration (creation order; callers needing a true topological order
        after substitutions use [Algo.Topo]) -- *)

  let foreach_node t f =
    let n0 = t.size in
    for n = 0 to n0 - 1 do
      if not (data t n).dead then f n
    done

  let foreach_pi t f =
    for i = 0 to t.num_pis - 1 do
      f t.pis.(i)
    done

  let foreach_po t f =
    for i = 0 to t.num_pos - 1 do
      f t.pos.(i)
    done

  let foreach_gate t f =
    let n0 = t.size in
    for n = 0 to n0 - 1 do
      if (not (data t n).dead) && is_gate t n then f n
    done

  let foreach_fanin t n f = Array.iter f (data t n).fanin

  let gates t =
    let acc = ref [] in
    for n = t.size - 1 downto 0 do
      if (not (data t n).dead) && is_gate t n then acc := n :: !acc
    done;
    !acc

  (* -- scratch values and traversal marks -- *)

  let set_value t n v = (data t n).value <- v
  let value t n = (data t n).value
  let incr_value t n = let d = data t n in d.value <- d.value + 1; d.value
  let decr_value t n = let d = data t n in d.value <- d.value - 1; d.value

  let clear_values t =
    for n = 0 to t.size - 1 do
      (data t n).value <- 0
    done

  let new_traversal_id t =
    t.traversal_id <- t.traversal_id + 1;
    t.traversal_id

  let set_visited t n id = (data t n).visited <- id
  let visited t n = (data t n).visited

  (* -- reference counting -- *)

  let incr_ref t n =
    let d = data t n in
    d.refs <- d.refs + 1;
    d.refs

  let decr_ref t n =
    let d = data t n in
    assert (d.refs > 0);
    d.refs <- d.refs - 1;
    d.refs

  (* Simulated (non-destructive) dereference of the fanins of [n]: returns
     the number of gates in the maximum fanout-free cone below [n]
     (excluding [n] itself).  [recursive_ref] undoes it. *)
  let rec recursive_deref t n =
    Array.fold_left
      (fun acc s ->
        let c = node_of_signal s in
        let r = decr_ref t c in
        if r = 0 && is_gate t c then acc + 1 + recursive_deref t c else acc)
      0 (data t n).fanin

  let rec recursive_ref t n =
    Array.fold_left
      (fun acc s ->
        let c = node_of_signal s in
        let r = incr_ref t c in
        if r = 1 && is_gate t c then acc + 1 + recursive_ref t c else acc)
      0 (data t n).fanin

  (* -- structural hashing and node creation -- *)

  let strash_remove t n =
    let d = data t n in
    match Hashtbl.find_opt t.strash (d.kind, d.fanin) with
    | Some m when m = n -> Hashtbl.remove t.strash (d.kind, d.fanin)
    | Some _ | None -> ()

  let add_fanout_edges t n =
    Array.iter
      (fun s ->
        let c = node_of_signal s in
        let dc = data t c in
        dc.fanout <- n :: dc.fanout;
        ignore (incr_ref t c))
      (data t n).fanin

  let remove_one_fanout t child parent =
    let d = data t child in
    let rec remove = function
      | [] -> []
      | x :: rest -> if x = parent then rest else x :: remove rest
    in
    d.fanout <- remove d.fanout;
    ignore (decr_ref t child)

  (* Delete a node whose reference count reached zero, recursively freeing
     children that become unreferenced. *)
  let rec take_out_node t n =
    if is_gate t n && not (data t n).dead then begin
      let d = data t n in
      assert (d.refs = 0);
      strash_remove t n;
      d.dead <- true;
      t.num_gates <- t.num_gates - 1;
      Array.iter
        (fun s ->
          let c = node_of_signal s in
          remove_one_fanout t c n;
          if (data t c).refs = 0 then take_out_node t c)
        d.fanin;
      d.fanin <- [||];
      d.fanout <- []
    end

  (* Remove [n] if it is an unreferenced gate (recursively freeing children
     that become unreferenced).  Used by optimization algorithms to undo
     speculative candidate constructions. *)
  let take_out_if_dead t n =
    if is_gate t n && (not (data t n).dead) && (data t n).refs = 0 then
      take_out_node t n

  (* Create (or look up) the node for [kind fanins]; performs
     representation-specific normalization, then structural hashing. *)
  let create_node t kind fanins =
    if Array.length fanins > Spec.max_fanin then
      invalid_arg (Spec.name ^ ": fanin bound exceeded");
    match Spec.normalize kind fanins with
    | Norm_signal s -> s
    | Norm_node (kind, fanins, out_c) ->
      let s =
        match Hashtbl.find_opt t.strash (kind, fanins) with
        | Some n when not (data t n).dead -> signal_of_node n
        | Some _ | None ->
          let n = alloc t kind fanins in
          Hashtbl.replace t.strash (kind, fanins) n;
          t.num_gates <- t.num_gates + 1;
          add_fanout_edges t n;
          signal_of_node n
      in
      complement_if out_c s

  let create_pi t =
    let n = alloc t Kind.Pi [||] in
    if t.num_pis >= Array.length t.pis then begin
      let bigger = Array.make (2 * Array.length t.pis) 0 in
      Array.blit t.pis 0 bigger 0 t.num_pis;
      t.pis <- bigger
    end;
    t.pis.(t.num_pis) <- n;
    t.num_pis <- t.num_pis + 1;
    signal_of_node n

  let create_po t s =
    if t.num_pos >= Array.length t.pos then begin
      let bigger = Array.make (2 * Array.length t.pos) 0 in
      Array.blit t.pos 0 bigger 0 t.num_pos;
      t.pos <- bigger
    end;
    t.pos.(t.num_pos) <- s;
    t.num_pos <- t.num_pos + 1;
    ignore (incr_ref t (node_of_signal s))

  let set_po t i s =
    let old = t.pos.(i) in
    if old <> s then begin
      t.pos.(i) <- s;
      ignore (incr_ref t (node_of_signal s));
      let o = node_of_signal old in
      if decr_ref t o = 0 then take_out_node t o
    end

  (* -- node functions -- *)

  let node_function t n =
    let d = data t n in
    Kind.function_of d.kind (Array.length d.fanin)

  (* -- substitution (paper §2.2.3) --

     Replaces node [old_n] by signal [new_s] everywhere: primary outputs and
     parent gates are rewired; parents whose gate simplifies or merges with
     an existing node after rewiring are substituted in turn (worklist). *)
  let substitute_node t old_n new_s =
    let work = Queue.create () in
    (* Queued targets hold a reference so that cascading deletions cannot
       remove them before their entry is processed; [forward] redirects
       through nodes that were themselves substituted meanwhile. *)
    let forward : (node, signal) Hashtbl.t = Hashtbl.create 8 in
    let rec resolve s =
      match Hashtbl.find_opt forward (node_of_signal s) with
      | Some s' -> resolve (complement_if (is_complemented s) s')
      | None -> s
    in
    let push o s =
      ignore (incr_ref t (node_of_signal s));
      Queue.push (o, s) work
    in
    push old_n new_s;
    while not (Queue.is_empty work) do
      let o, s0 = Queue.pop work in
      let s = resolve s0 in
      if node_of_signal s <> node_of_signal s0 then begin
        (* move the queue-hold to the resolved target *)
        ignore (incr_ref t (node_of_signal s));
        let r = decr_ref t (node_of_signal s0) in
        if r = 0 then take_out_node t (node_of_signal s0)
      end;
      if (not (data t o).dead) && node_of_signal s <> o then begin
        (* primary outputs *)
        for i = 0 to t.num_pos - 1 do
          let po = t.pos.(i) in
          if node_of_signal po = o then
            set_po t i (complement_if (is_complemented po) s)
        done;
        (* parent gates: each distinct parent processed once per edge batch *)
        let parents = List.sort_uniq Stdlib.compare (data t o).fanout in
        List.iter
          (fun p ->
            if not (data t p).dead then begin
              let dp = data t p in
              strash_remove t p;
              let new_fanins =
                Array.map
                  (fun e ->
                    if node_of_signal e = o then complement_if (is_complemented e) s
                    else e)
                  dp.fanin
              in
              (* detach old edges, attach the rewired ones *)
              Array.iter
                (fun e -> remove_one_fanout t (node_of_signal e) p)
                dp.fanin;
              dp.fanin <- new_fanins;
              add_fanout_edges t p;
              (* renormalize: the parent may simplify or merge *)
              match Spec.normalize dp.kind new_fanins with
              | Norm_signal s2 -> push p s2
              | Norm_node (kind, fanins, out_c) ->
                if
                  (not out_c)
                  && Kind.equal kind dp.kind
                  && fanins = new_fanins
                then begin
                  (* canonical as-is: merge with an existing node or claim
                     the hash entry *)
                  match Hashtbl.find_opt t.strash (kind, fanins) with
                  | Some q when q <> p && not (data t q).dead ->
                    push p (signal_of_node q)
                  | Some _ | None -> Hashtbl.replace t.strash (kind, fanins) p
                end
                else begin
                  (* normalization changed shape: build the canonical node
                     and substitute the parent by it *)
                  let q = create_node t dp.kind new_fanins in
                  push p q
                end
            end)
          parents;
        Hashtbl.replace forward o s;
        (* the old node should now be unreferenced *)
        if (data t o).refs = 0 then take_out_node t o
      end;
      (* release the queue-hold on the target *)
      let r = decr_ref t (node_of_signal s) in
      if r = 0 then take_out_node t (node_of_signal s)
    done

  let replace_in_outputs t old_n new_s =
    for i = 0 to t.num_pos - 1 do
      let po = t.pos.(i) in
      if node_of_signal po = old_n then
        set_po t i (complement_if (is_complemented po) new_s)
    done

  (* -- statistics / debug -- *)

  (* Structural invariants, used by tests and assertions: live nodes point
     at live children, reference counts equal fanout-edge plus PO counts,
     fanout lists mirror fanin edges. *)
  let check_integrity t =
    let errors = ref [] in
    let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
    let expected_refs = Array.make t.size 0 in
    for n = 0 to t.size - 1 do
      let d = data t n in
      if not d.dead then
        Array.iter
          (fun s ->
            let c = node_of_signal s in
            if (data t c).dead then err "live node %d has dead fanin %d" n c;
            expected_refs.(c) <- expected_refs.(c) + 1;
            if not (List.mem n (data t c).fanout) then
              err "node %d missing from fanout of %d" n c)
          d.fanin
    done;
    for i = 0 to t.num_pos - 1 do
      let c = node_of_signal t.pos.(i) in
      if (data t c).dead then err "PO %d drives dead node %d" i c;
      expected_refs.(c) <- expected_refs.(c) + 1
    done;
    for n = 0 to t.size - 1 do
      let d = data t n in
      if (not d.dead) && d.refs <> expected_refs.(n) then
        err "node %d refs=%d expected=%d" n d.refs expected_refs.(n);
      if not d.dead then
        List.iter
          (fun p ->
            if (data t p).dead then err "node %d has dead fanout %d" n p)
          d.fanout
    done;
    List.rev !errors

  let pp_stats fmt t =
    Format.fprintf fmt "%s: i/o = %d/%d  gates = %d  size = %d" Spec.name
      t.num_pis t.num_pos t.num_gates t.size
end
