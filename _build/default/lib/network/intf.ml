(* Layer 1 of the paper's architecture: the network interface API.

   [NETWORK] is the abstract concept definition of a graph-based multi-level
   logic representation.  Every algorithm in [Algo] is a functor over this
   module type (or a sub-signature of it); a network implementation that
   does not provide a required method simply does not type-check against the
   functor — the OCaml analogue of the paper's compile-time static
   assertions, with no dynamic polymorphism. *)

module type NETWORK = sig
  type t

  type node = int
  (** Nodes are dense integer indices; node 0 is the constant-false node. *)

  type signal = Signal.t
  (** A complement-annotated node reference; see {!Signal}. *)

  val name : string
  val max_fanin : int

  (* signals *)
  val signal_of_node : node -> signal
  val node_of_signal : signal -> node
  val is_complemented : signal -> bool
  val complement : signal -> signal
  val complement_if : bool -> signal -> signal
  val constant : bool -> signal

  (* construction *)
  val create : ?initial_capacity:int -> unit -> t
  val create_pi : t -> signal
  val create_po : t -> signal -> unit
  val set_po : t -> int -> signal -> unit

  (* generic gate constructors (mandatory interface) *)
  val create_not : signal -> signal
  val create_and : t -> signal -> signal -> signal
  val create_or : t -> signal -> signal -> signal
  val create_xor : t -> signal -> signal -> signal
  val create_maj : t -> signal -> signal -> signal -> signal
  val create_ite : t -> signal -> signal -> signal -> signal
  val create_nary_and : t -> signal list -> signal
  val create_nary_or : t -> signal list -> signal
  val create_nary_xor : t -> signal list -> signal

  (* native node creation (used by cloning and database instantiation) *)
  val create_node : t -> Kind.t -> signal array -> signal

  (* structure *)
  val size : t -> int
  val num_gates : t -> int
  val num_pis : t -> int
  val num_pos : t -> int
  val is_constant : t -> node -> bool
  val is_pi : t -> node -> bool
  val is_gate : t -> node -> bool
  val is_dead : t -> node -> bool
  val gate_kind : t -> node -> Kind.t
  val fanin : t -> node -> signal array
  val fanin_size : t -> node -> int
  val fanout : t -> node -> node list
  val ref_count : t -> node -> int
  val pi_at : t -> int -> node
  val po_at : t -> int -> signal
  val pis : t -> node array
  val pos : t -> signal array
  val pi_index : t -> node -> int

  (* iteration *)
  val foreach_node : t -> (node -> unit) -> unit
  val foreach_pi : t -> (node -> unit) -> unit
  val foreach_po : t -> (signal -> unit) -> unit
  val foreach_gate : t -> (node -> unit) -> unit
  val foreach_fanin : t -> node -> (signal -> unit) -> unit
  val gates : t -> node list

  (* node functions *)
  val node_function : t -> node -> Kitty.Tt.t
  (** Local function of a gate over its fanins; edge complements are applied
      by the caller. *)

  (* reference counting for DAG-aware gain computation (paper §2.2.3) *)
  val incr_ref : t -> node -> int
  val decr_ref : t -> node -> int
  val recursive_deref : t -> node -> int
  val recursive_ref : t -> node -> int

  (* in-place restructuring *)
  val substitute_node : t -> node -> signal -> unit
  val replace_in_outputs : t -> node -> signal -> unit
  val take_out_if_dead : t -> node -> unit

  (* scratch state for algorithms *)
  val set_value : t -> node -> int -> unit
  val value : t -> node -> int
  val incr_value : t -> node -> int
  val decr_value : t -> node -> int
  val clear_values : t -> unit
  val new_traversal_id : t -> int
  val set_visited : t -> node -> int -> unit
  val visited : t -> node -> int

  val check_integrity : t -> string list
  (** Structural-invariant violations (empty when the network is sound);
      intended for tests and debugging. *)

  val pp_stats : Format.formatter -> t -> unit
end
