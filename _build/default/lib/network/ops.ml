(* N-ary gate helpers shared by all network implementations.  The trees are
   built balanced (pairwise reduction) so that generator circuits do not
   start with degenerate linear chains. *)

module type BASIC = sig
  type t
  type signal = Signal.t

  val constant : bool -> signal
  val create_and : t -> signal -> signal -> signal
  val create_or : t -> signal -> signal -> signal
  val create_xor : t -> signal -> signal -> signal
end

module Nary (N : BASIC) = struct
  let rec reduce_pairwise f t = function
    | [] -> invalid_arg "Ops.reduce_pairwise: empty"
    | [ x ] -> x
    | xs ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: rest -> f t x y :: pair rest
      in
      reduce_pairwise f t (pair xs)

  let create_nary_and t = function
    | [] -> N.constant true
    | xs -> reduce_pairwise N.create_and t xs

  let create_nary_or t = function
    | [] -> N.constant false
    | xs -> reduce_pairwise N.create_or t xs

  let create_nary_xor t = function
    | [] -> N.constant false
    | xs -> reduce_pairwise N.create_xor t xs
end
