lib/network/build.ml: Array Intf Kind Kitty List
