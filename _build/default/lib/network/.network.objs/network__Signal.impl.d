lib/network/signal.ml: Format
