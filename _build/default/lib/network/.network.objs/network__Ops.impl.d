lib/network/ops.ml: Signal
