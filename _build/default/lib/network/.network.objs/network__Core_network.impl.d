lib/network/core_network.ml: Array Format Hashtbl Kind List Queue Signal Stdlib
