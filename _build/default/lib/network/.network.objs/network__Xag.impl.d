lib/network/xag.ml: Core_network Kind Ops Signal
