lib/network/kind.ml: Kitty Tt
