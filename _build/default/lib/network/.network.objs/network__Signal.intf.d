lib/network/signal.mli: Format
