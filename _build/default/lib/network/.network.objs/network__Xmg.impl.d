lib/network/xmg.ml: Core_network Kind Mig Ops Signal
