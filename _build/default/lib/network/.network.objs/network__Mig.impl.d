lib/network/mig.ml: Array Core_network Kind Ops Signal Stdlib
