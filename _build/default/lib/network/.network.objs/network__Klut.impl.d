lib/network/klut.ml: Array Core_network Kind Kitty List Ops Signal Stdlib Tt
