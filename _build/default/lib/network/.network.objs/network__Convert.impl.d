lib/network/convert.ml: Array Build Intf List
