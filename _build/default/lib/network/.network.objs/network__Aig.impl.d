lib/network/aig.ml: Core_network Kind Ops Signal
