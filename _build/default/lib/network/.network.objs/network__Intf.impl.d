lib/network/intf.ml: Format Kind Kitty Signal
