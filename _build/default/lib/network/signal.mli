(** Signals: complement-annotated references to nodes, packed into a single
    int as [2 * node + complement_bit].  Node 0 is the constant-false node,
    so signal 0 is constant false and signal 1 constant true. *)

type t = int

val of_node : int -> t
(** The positive signal of a node. *)

val node : t -> int
val is_complemented : t -> bool
val complement : t -> t
val complement_if : bool -> t -> t
val constant : bool -> t
val is_constant : t -> bool
val pp : Format.formatter -> t -> unit
