(* Signals are complement-annotated references to nodes, packed into a
   single int: [2 * node + complement_bit].  Node 0 is the constant-false
   node, so signal 0 is constant false and signal 1 constant true. *)

type t = int

let of_node n = n lsl 1
let node s = s lsr 1
let is_complemented s = s land 1 = 1
let complement s = s lxor 1
let complement_if b s = if b then s lxor 1 else s
let constant b = if b then 1 else 0
let is_constant s = s lsr 1 = 0

let pp fmt s =
  Format.fprintf fmt "%sn%d" (if is_complemented s then "!" else "") (node s)
