(* Gate kinds shared by all network implementations.  Each network restricts
   which kinds it creates; algorithms dispatch on the kind when they need a
   fast path but can always fall back to [function_of]. *)

type t =
  | Const  (* the constant-false node (node 0) *)
  | Pi
  | And
  | Xor
  | Maj
  | Lut of Kitty.Tt.t

let equal a b =
  match (a, b) with
  | Const, Const | Pi, Pi | And, And | Xor, Xor | Maj, Maj -> true
  | Lut x, Lut y -> Kitty.Tt.equal x y
  | (Const | Pi | And | Xor | Maj | Lut _), _ -> false

let name = function
  | Const -> "const"
  | Pi -> "pi"
  | And -> "and"
  | Xor -> "xor"
  | Maj -> "maj"
  | Lut _ -> "lut"

(* Local function of a gate of this kind over [arity] fanins (edge
   complements are applied by the caller, outside this function). *)
let function_of kind arity =
  let open Kitty in
  match kind with
  | Const -> Tt.const0 arity
  | Pi -> invalid_arg "Kind.function_of: primary input has no local function"
  | And ->
    let rec go i acc = if i = arity then acc else go (i + 1) (Tt.( &: ) acc (Tt.nth_var arity i)) in
    go 1 (Tt.nth_var arity 0)
  | Xor ->
    let rec go i acc = if i = arity then acc else go (i + 1) (Tt.( ^: ) acc (Tt.nth_var arity i)) in
    go 1 (Tt.nth_var arity 0)
  | Maj ->
    if arity <> 3 then invalid_arg "Kind.function_of: majority arity must be 3"
    else Tt.maj (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2)
  | Lut tt -> tt
