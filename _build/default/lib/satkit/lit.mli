(** Literals packed as ints: variable [v] yields the positive literal [2v]
    and the negative literal [2v+1]. *)

type t = int

val make : int -> t
(** Positive literal of a variable. *)

val of_var : int -> negated:bool -> t
val var : t -> int
val is_neg : t -> bool
val neg : t -> t
val pp : Format.formatter -> t -> unit
