lib/satkit/solver.ml: Array Format Hashtbl List Lit Stdlib
