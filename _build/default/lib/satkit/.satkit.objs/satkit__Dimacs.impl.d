lib/satkit/dimacs.ml: Fun List Lit Printf Solver String
