lib/satkit/solver.mli: Format Lit
