lib/satkit/lit.mli: Format
