lib/satkit/lit.ml: Format
