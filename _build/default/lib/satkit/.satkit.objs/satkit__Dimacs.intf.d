lib/satkit/dimacs.mli: Lit Solver
