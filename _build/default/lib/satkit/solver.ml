(* A CDCL SAT solver in the MiniSat tradition: two-watched-literal
   propagation, first-UIP conflict analysis with clause learning, VSIDS
   branching with phase saving, Luby restarts and activity-based deletion of
   learnt clauses.

   The solver is used by SAT-based exact synthesis (paper §2.2.2) and by
   combinational equivalence checking; both produce CNF over a few hundred
   to a few thousand variables, which this implementation handles easily. *)

type result = Sat | Unsat | Unknown

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
}

type t = {
  mutable num_vars : int;
  mutable clauses : clause list;         (* original problem clauses *)
  mutable learnts : clause list;
  mutable watches : clause list array;   (* indexed by literal *)
  mutable assign : int array;            (* var -> -1 | 0 (false) | 1 (true) *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable trail : int array;             (* literal stack *)
  mutable trail_size : int;
  mutable trail_lim : int array;         (* decision-level boundaries *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable activity : float array;        (* VSIDS per variable *)
  mutable polarity : bool array;         (* saved phase: last assigned value *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable ok : bool;                     (* false once trivially UNSAT *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  (* order heap for VSIDS *)
  mutable heap : int array;              (* heap of variables *)
  mutable heap_size : int;
  mutable heap_pos : int array;          (* var -> index in heap, or -1 *)
}

let create () =
  {
    num_vars = 0;
    clauses = [];
    learnts = [];
    watches = Array.make 16 [];
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    var_inc = 1.0;
    cla_inc = 1.0;
    seen = Array.make 8 false;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    heap = Array.make 8 0;
    heap_size = 0;
    heap_pos = Array.make 8 (-1);
  }

let num_vars t = t.num_vars
let num_clauses t = List.length t.clauses
let num_conflicts t = t.conflicts

(* -- resizable arrays -- *)

let ensure_var_capacity t v =
  let cap = Array.length t.assign in
  if v >= cap then begin
    let ncap = max (2 * cap) (v + 1) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 cap;
      b
    in
    t.assign <- grow t.assign (-1);
    t.level <- grow t.level 0;
    t.reason <- grow t.reason None;
    t.activity <- grow t.activity 0.0;
    t.polarity <- grow t.polarity false;
    t.seen <- grow t.seen false;
    t.heap_pos <- grow t.heap_pos (-1);
    let nw = Array.make (2 * ncap) [] in
    Array.blit t.watches 0 nw 0 (Array.length t.watches);
    t.watches <- nw;
    let ntrail = Array.make ncap 0 in
    Array.blit t.trail 0 ntrail 0 t.trail_size;
    t.trail <- ntrail;
    let nlim = Array.make ncap 0 in
    Array.blit t.trail_lim 0 nlim 0 t.trail_lim_size;
    t.trail_lim <- nlim
  end

(* -- VSIDS order heap (max-heap on activity) -- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(a) <- j;
  t.heap_pos.(b) <- i

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    if t.heap_size >= Array.length t.heap then begin
      let bigger = Array.make (2 * Array.length t.heap) 0 in
      Array.blit t.heap 0 bigger 0 t.heap_size;
      t.heap <- bigger
    end;
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0
  end;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then heap_down t 0;
  v

let heap_decrease t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* -- variables -- *)

let new_var t =
  let v = t.num_vars in
  t.num_vars <- v + 1;
  ensure_var_capacity t v;
  t.assign.(v) <- -1;
  heap_insert t v;
  v

(* Ensure variables up to [v] exist. *)
let ensure_var t v = while t.num_vars <= v do ignore (new_var t) done

let value_lit t l =
  let a = t.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let _value_var t v = t.assign.(v)

let decision_level t = t.trail_lim_size

(* -- activity -- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.num_vars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_decrease t v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let cla_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. 0.999

(* -- assignment -- *)

let enqueue t l reason =
  let v = Lit.var l in
  t.assign.(v) <- 1 lxor (l land 1);
  t.polarity.(v) <- t.assign.(v) = 1;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let new_decision_level t =
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = Lit.var t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.trail_lim_size <- lvl
  end

(* -- watched literals -- *)

let attach_clause t c =
  t.watches.(Lit.neg c.lits.(0)) <- c :: t.watches.(Lit.neg c.lits.(0));
  t.watches.(Lit.neg c.lits.(1)) <- c :: t.watches.(Lit.neg c.lits.(1))

(* Propagate all enqueued facts; returns the conflicting clause, if any. *)
let propagate t =
  let conflict = ref None in
  while !conflict = None && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let ws = t.watches.(p) in
    t.watches.(p) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> begin
        (* ensure the false literal (= neg p) is at position 1 *)
        if c.lits.(0) = Lit.neg p then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- Lit.neg p
        end;
        if value_lit t c.lits.(0) = 1 then begin
          (* clause already satisfied: keep watching p *)
          t.watches.(p) <- c :: t.watches.(p);
          go rest
        end
        else begin
          (* look for a new literal to watch *)
          let n = Array.length c.lits in
          let rec find k =
            if k >= n then -1
            else if value_lit t c.lits.(k) <> 0 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- Lit.neg p;
            t.watches.(Lit.neg c.lits.(1)) <- c :: t.watches.(Lit.neg c.lits.(1));
            go rest
          end
          else begin
            (* unit or conflicting *)
            t.watches.(p) <- c :: t.watches.(p);
            if value_lit t c.lits.(0) = 0 then begin
              (* conflict: keep the remaining watchers *)
              List.iter (fun c -> t.watches.(p) <- c :: t.watches.(p)) rest;
              conflict := Some c;
              t.qhead <- t.trail_size
            end
            else begin
              enqueue t c.lits.(0) (Some c);
              go rest
            end
          end
        end
      end
    in
    go ws
  done;
  !conflict

(* -- conflict analysis (first UIP) -- *)

let analyze t confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_size - 1) in
  let confl = ref (Some confl) in
  let btlevel = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    (match !confl with
    | None -> assert false
    | Some c ->
      if c.learnt then cla_bump t c;
      let start = if !p < 0 then 0 else 1 in
      for j = start to Array.length c.lits - 1 do
        let q = c.lits.(j) in
        let v = Lit.var q in
        if (not t.seen.(v)) && t.level.(v) > 0 then begin
          var_bump t v;
          t.seen.(v) <- true;
          if t.level.(v) >= decision_level t then incr path_count
          else begin
            learnt := q :: !learnt;
            if t.level.(v) > !btlevel then btlevel := t.level.(v)
          end
        end
      done);
    (* select next literal to look at *)
    let rec next_seen i =
      if t.seen.(Lit.var t.trail.(i)) then i else next_seen (i - 1)
    in
    index := next_seen !index;
    p := t.trail.(!index);
    index := !index - 1;
    confl := t.reason.(Lit.var !p);
    t.seen.(Lit.var !p) <- false;
    decr path_count;
    if !path_count <= 0 then continue_loop := false
  done;
  let learnt_lits = Array.of_list (Lit.neg !p :: !learnt) in
  (* clear seen *)
  Array.iter (fun l -> t.seen.(Lit.var l) <- false) learnt_lits;
  (learnt_lits, !btlevel)

(* -- clause management -- *)

exception Trivially_sat

(* Simplify a raw clause at level 0: drop false/duplicate literals; raises
   [Trivially_sat] when the clause contains a true literal or [l, -l]. *)
let simplify_clause t lits =
  let tbl = Hashtbl.create (List.length lits) in
  let out = ref [] in
  List.iter
    (fun l ->
      ensure_var t (Lit.var l);
      if value_lit t l = 1 then raise Trivially_sat
      else if value_lit t l = 0 && t.level.(Lit.var l) = 0 then ()
      else if Hashtbl.mem tbl (Lit.neg l) then raise Trivially_sat
      else if not (Hashtbl.mem tbl l) then begin
        Hashtbl.add tbl l ();
        out := l :: !out
      end)
    lits;
  List.rev !out

let add_clause t lits =
  if t.ok then begin
    cancel_until t 0;
    match simplify_clause t lits with
    | exception Trivially_sat -> ()
    | [] -> t.ok <- false
    | [ l ] ->
      enqueue t l None;
      if propagate t <> None then t.ok <- false
    | lits ->
      let c = { lits = Array.of_list lits; activity = 0.0; learnt = false } in
      t.clauses <- c :: t.clauses;
      attach_clause t c
  end

let detach_clause t c =
  let remove l =
    t.watches.(l) <- List.filter (fun c' -> c' != c) t.watches.(l)
  in
  remove (Lit.neg c.lits.(0));
  remove (Lit.neg c.lits.(1))

let locked t c =
  match t.reason.(Lit.var c.lits.(0)) with
  | Some r -> r == c && value_lit t c.lits.(0) = 1
  | None -> false

let reduce_db t =
  let learnts =
    List.sort
      (fun (a : clause) (b : clause) -> Stdlib.compare a.activity b.activity)
      t.learnts
  in
  let n = List.length learnts in
  let kept = ref [] and removed = ref 0 in
  List.iteri
    (fun i c ->
      if (not (locked t c)) && (i < n / 2 || c.activity = 0.0) then begin
        detach_clause t c;
        incr removed
      end
      else kept := c :: !kept)
    learnts;
  t.learnts <- !kept

(* -- search -- *)

(* The Luby restart sequence: luby y x is y^(position of x in the sequence
   1 1 2 1 1 2 4 ...). *)
let luby y x =
  let rec grow size seq =
    if size < x + 1 then grow ((2 * size) + 1) (seq + 1) else (size, seq)
  in
  let rec shrink x size seq =
    if size - 1 = x then seq
    else
      let size = (size - 1) / 2 in
      shrink (x mod size) size (seq - 1)
  in
  let size, seq = grow 1 0 in
  y ** float_of_int (shrink x size seq)

let pick_branch_var t =
  let rec go () =
    if t.heap_size = 0 then -1
    else begin
      let v = heap_pop t in
      if t.assign.(v) < 0 then v else go ()
    end
  in
  go ()

let record_learnt t lits btlevel =
  (* [btlevel] has already been clamped to the root (assumption) level by
     the caller *)
  cancel_until t btlevel;
  match Array.length lits with
  | 1 -> enqueue t lits.(0) None
  | _ ->
    let c = { lits; activity = 0.0; learnt = true } in
    (* watch the asserting literal and a literal from the backtrack level *)
    let rec max_idx i best =
      if i >= Array.length lits then best
      else if t.level.(Lit.var lits.(i)) > t.level.(Lit.var lits.(best)) then
        max_idx (i + 1) i
      else max_idx (i + 1) best
    in
    let m = max_idx 2 1 in
    let tmp = c.lits.(1) in
    c.lits.(1) <- c.lits.(m);
    c.lits.(m) <- tmp;
    t.learnts <- c :: t.learnts;
    attach_clause t c;
    cla_bump t c;
    enqueue t lits.(0) (Some c)

(* Search below the assumption (root) level: backtracking never unassigns
   the assumptions, and a conflict at or below the root level means UNSAT
   under the current assumptions. *)
let search t ~root_level ~max_conflicts_in_restart ~conflict_budget =
  let conflicts_here = ref 0 in
  let result = ref None in
  while !result = None do
    match propagate t with
    | Some confl ->
      t.conflicts <- t.conflicts + 1;
      incr conflicts_here;
      if decision_level t <= root_level then result := Some Unsat
      else begin
        let learnt, btlevel = analyze t confl in
        record_learnt t learnt (max btlevel root_level);
        var_decay t;
        cla_decay t
      end
    | None ->
      if conflict_budget > 0 && t.conflicts >= conflict_budget then begin
        cancel_until t root_level;
        result := Some Unknown
      end
      else if !conflicts_here >= max_conflicts_in_restart then begin
        cancel_until t root_level;
        result := Some Unknown (* restart marker; caller loops *)
      end
      else begin
        if List.length t.learnts > max 2000 (2 * List.length t.clauses) then
          reduce_db t;
        let v = pick_branch_var t in
        if v < 0 then result := Some Sat
        else begin
          t.decisions <- t.decisions + 1;
          new_decision_level t;
          enqueue t (Lit.of_var v ~negated:(not t.polarity.(v))) None
        end
      end
  done;
  (!result = Some Sat, !result = Some Unsat)

let solve ?(conflict_budget = 0) ?(assumptions = []) t =
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    (* push assumptions as successive decision levels *)
    let rec push = function
      | [] -> None
      | l :: rest -> (
        ensure_var t (Lit.var l);
        match value_lit t l with
        | 1 -> push rest
        | 0 -> Some Unsat
        | _ ->
          new_decision_level t;
          enqueue t l None;
          (match propagate t with Some _ -> Some Unsat | None -> push rest))
    in
    match push assumptions with
    | Some r ->
      cancel_until t 0;
      r
    | None ->
      (* assumptions stay on the trail below [root_level] for the whole
         solve; search never backtracks past them *)
      let root_level = decision_level t in
      let start_conflicts = t.conflicts in
      let budget =
        if conflict_budget > 0 then start_conflicts + conflict_budget else 0
      in
      let rec restart_loop i =
        let max_c = int_of_float (luby 2.0 i *. 100.0) in
        let sat, unsat =
          search t ~root_level ~max_conflicts_in_restart:max_c
            ~conflict_budget:budget
        in
        if sat then Sat
        else if unsat then Unsat
        else if budget > 0 && t.conflicts >= budget then Unknown
        else restart_loop (i + 1)
      in
      let r = restart_loop 0 in
      (match r with
      | Sat -> r (* keep the model; caller reads it before further solving *)
      | Unsat | Unknown ->
        cancel_until t 0;
        r)
  end

(* Model access: only meaningful right after [solve] returned [Sat]. *)
let model_value t v = t.assign.(v) = 1

let pp_stats fmt t =
  Format.fprintf fmt "vars=%d clauses=%d conflicts=%d decisions=%d props=%d"
    t.num_vars (num_clauses t) t.conflicts t.decisions t.propagations
