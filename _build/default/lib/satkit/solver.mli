(** A CDCL SAT solver in the MiniSat tradition.

    Features: two-watched-literal propagation, first-UIP clause learning,
    VSIDS branching with phase saving, Luby restarts, activity-based
    deletion of learnt clauses, incremental solving under assumptions
    (with a root-level floor so backtracking never unassigns assumptions)
    and per-call conflict budgets.

    Used by SAT-based exact synthesis (paper §2.2.2), combinational
    equivalence checking and SAT sweeping. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable; variables are dense integers from 0. *)

val ensure_var : t -> int -> unit
(** Make sure variables [0 .. v] exist. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a clause; performs level-0 simplification.  Adding the empty clause
    (or a clause that simplifies away entirely) makes the instance
    unsatisfiable. *)

val solve : ?conflict_budget:int -> ?assumptions:Lit.t list -> t -> result
(** Solve the current formula.

    - [assumptions] are temporarily asserted literals; [Unsat] then means
      "unsatisfiable under the assumptions".
    - [conflict_budget] > 0 bounds the search; exceeding it yields
      [Unknown] (never a wrong answer).

    After [Sat], the model is available through {!model_value} until the
    next [solve] or [add_clause]. *)

val model_value : t -> int -> bool
(** Value of a variable in the model; meaningful only right after a [Sat]
    answer. *)

val pp_stats : Format.formatter -> t -> unit
