(* Literals packed as ints: variable [v] yields the positive literal [2v]
   and the negative literal [2v+1]. *)

type t = int

let make v = 2 * v
let of_var v ~negated = (2 * v) + if negated then 1 else 0
let var l = l lsr 1
let is_neg l = l land 1 = 1
let neg l = l lxor 1
let pp fmt l = Format.fprintf fmt "%s%d" (if is_neg l then "-" else "") (var l + 1)
