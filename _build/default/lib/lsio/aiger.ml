(* ASCII AIGER (aag) reader and writer for And-inverter graphs.

   The EPFL benchmark suite ships as AIGER; supporting the format makes the
   tool a drop-in consumer of standard benchmark files.  Only the
   combinational subset (no latches) is handled. *)

open Network

exception Parse_error of string

(* AIGER literal -> our signal.  AIGER: variable v has literals 2v (pos) /
   2v+1 (neg), 0 = false, 1 = true; our signals use the same convention, so
   translation is a node-index mapping only. *)

let write (t : Aig.t) (oc : out_channel) =
  (* compact node numbering: const = 0, PIs, then live gates in topo order *)
  let index = Hashtbl.create (Aig.size t) in
  Hashtbl.replace index 0 0;
  let next = ref 1 in
  Aig.foreach_pi t (fun n ->
      Hashtbl.replace index n !next;
      incr next);
  let gates = ref [] in
  let id = Aig.new_traversal_id t in
  let rec visit n =
    if Aig.visited t n <> id then begin
      Aig.set_visited t n id;
      if Aig.is_gate t n then begin
        Array.iter (fun s -> visit (Aig.node_of_signal s)) (Aig.fanin t n);
        Hashtbl.replace index n !next;
        incr next;
        gates := n :: !gates
      end
    end
  in
  Aig.foreach_po t (fun s -> visit (Aig.node_of_signal s));
  let gates = List.rev !gates in
  let lit s =
    let v = Hashtbl.find index (Aig.node_of_signal s) in
    (2 * v) + if Aig.is_complemented s then 1 else 0
  in
  let m = !next - 1 in
  Printf.fprintf oc "aag %d %d 0 %d %d\n" m (Aig.num_pis t) (Aig.num_pos t)
    (List.length gates);
  Aig.foreach_pi t (fun n -> Printf.fprintf oc "%d\n" (2 * Hashtbl.find index n));
  Aig.foreach_po t (fun s -> Printf.fprintf oc "%d\n" (lit s));
  List.iter
    (fun n ->
      let f = Aig.fanin t n in
      Printf.fprintf oc "%d %d %d\n"
        (2 * Hashtbl.find index n)
        (lit f.(0)) (lit f.(1)))
    gates

let write_file (t : Aig.t) (path : string) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write t oc)

let read (ic : in_channel) : Aig.t =
  let line () = try input_line ic with End_of_file -> raise (Parse_error "unexpected EOF") in
  let header = line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' (String.trim header) with
    | [ "aag"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> raise (Parse_error ("bad header: " ^ header))
  in
  if l <> 0 then raise (Parse_error "latches not supported");
  let t = Aig.create ~initial_capacity:(m + 2) () in
  (* map AIGER variable -> our signal *)
  let map = Array.make (m + 1) (-1) in
  map.(0) <- Aig.constant false;
  let inputs =
    Array.init i (fun _ ->
        match String.split_on_char ' ' (String.trim (line ())) with
        | [ v ] -> int_of_string v
        | _ -> raise (Parse_error "bad input line"))
  in
  Array.iter
    (fun l ->
      if l land 1 = 1 || l = 0 then raise (Parse_error "bad input literal");
      map.(l / 2) <- Aig.create_pi t)
    inputs;
  let outputs = Array.init o (fun _ -> int_of_string (String.trim (line ()))) in
  let and_lines =
    Array.init a (fun _ ->
        match String.split_on_char ' ' (String.trim (line ())) with
        | [ x; y; z ] -> (int_of_string x, int_of_string y, int_of_string z)
        | _ -> raise (Parse_error "bad and line"))
  in
  let signal_of l =
    let v = l / 2 in
    if v > m then raise (Parse_error "literal out of range");
    if map.(v) < 0 then raise (Parse_error "use before definition");
    Aig.complement_if (l land 1 = 1) map.(v)
  in
  Array.iter
    (fun (x, y, z) ->
      if x land 1 = 1 then raise (Parse_error "bad and output literal");
      map.(x / 2) <- Aig.create_and t (signal_of y) (signal_of z))
    and_lines;
  Array.iter (fun l -> Aig.create_po t (signal_of l)) outputs;
  t

let read_file (path : string) : Aig.t =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
