(* BLIF writer/reader for k-LUT networks (the result of technology
   mapping).  LUT functions are emitted as ISOP covers; complemented
   primary-output signals are materialized as single-input inverter
   tables. *)

open Kitty
open Network

exception Parse_error of string

let write ?(model = "top") (t : Klut.t) (oc : out_channel) =
  Printf.fprintf oc ".model %s\n" model;
  let name_of = Hashtbl.create (Klut.size t) in
  Hashtbl.replace name_of 0 "const0";
  Klut.foreach_pi t (fun n ->
      Hashtbl.replace name_of n (Printf.sprintf "pi%d" (Klut.pi_index t n)));
  Klut.foreach_gate t (fun n -> Hashtbl.replace name_of n (Printf.sprintf "n%d" n));
  Printf.fprintf oc ".inputs";
  Klut.foreach_pi t (fun n -> Printf.fprintf oc " %s" (Hashtbl.find name_of n));
  Printf.fprintf oc "\n.outputs";
  for i = 0 to Klut.num_pos t - 1 do
    Printf.fprintf oc " po%d" i
  done;
  Printf.fprintf oc "\n";
  (* constant driver, in case some output needs it *)
  let const_used = ref false in
  Klut.foreach_po t (fun s -> if Klut.node_of_signal s = 0 then const_used := true);
  if !const_used then Printf.fprintf oc ".names const0\n";
  (* .names bodies may appear in any order in BLIF, so iterate directly *)
  Klut.foreach_gate t (fun n ->
      let fanins = Klut.fanin t n in
      let tt =
        match Klut.gate_kind t n with
        | Kind.Lut tt -> tt
        | k -> Kind.function_of k (Array.length fanins)
      in
      Printf.fprintf oc ".names";
      Array.iter
        (fun s -> Printf.fprintf oc " %s" (Hashtbl.find name_of (Klut.node_of_signal s)))
        fanins;
      Printf.fprintf oc " %s\n" (Hashtbl.find name_of n);
      let cubes = Isop.of_tt tt in
      List.iter
        (fun cube ->
          for v = 0 to Array.length fanins - 1 do
            if Cube.has_literal cube v then
              output_char oc (if Cube.polarity cube v then '1' else '0')
            else output_char oc '-'
          done;
          Printf.fprintf oc " 1\n")
        cubes);
  (* outputs, inserting inverters for complemented signals *)
  let po_index = ref (-1) in
  Klut.foreach_po t (fun s ->
      incr po_index;
      let src = Hashtbl.find name_of (Klut.node_of_signal s) in
      if Klut.is_complemented s then begin
        Printf.fprintf oc ".names %s po%d\n0 1\n" src !po_index
      end
      else Printf.fprintf oc ".names %s po%d\n1 1\n" src !po_index);
  Printf.fprintf oc ".end\n"

let write_file ?model (t : Klut.t) (path : string) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write ?model t oc)

(* Minimal BLIF reader: .model/.inputs/.outputs/.names with 1-polarity
   output cover lines (the subset the writer produces, which is also what
   most mapped BLIF files use). *)
let read (ic : in_channel) : Klut.t =
  let t = Klut.create () in
  let signals : (string, Klut.signal) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace signals "const0" (Klut.constant false);
  let outputs = ref [] in
  (* read logical lines, honouring '\' continuations *)
  let rec read_line () =
    match input_line ic with
    | exception End_of_file -> None
    | line ->
      let line = String.trim line in
      if line = "" || String.length line >= 1 && line.[0] = '#' then read_line ()
      else if String.length line > 0 && line.[String.length line - 1] = '\\' then
        match read_line () with
        | Some rest -> Some (String.sub line 0 (String.length line - 1) ^ " " ^ rest)
        | None -> Some (String.sub line 0 (String.length line - 1))
      else Some line
  in
  let pending = ref None in
  let next_line () =
    match !pending with
    | Some l ->
      pending := None;
      Some l
    | None -> read_line ()
  in
  let rec parse_names args =
    match args with
    | [] -> raise (Parse_error ".names without target")
    | _ ->
      let inputs = Array.of_list (List.filteri (fun i _ -> i < List.length args - 1) args) in
      let target = List.nth args (List.length args - 1) in
      (* collect cover lines *)
      let cubes = ref [] in
      let rec gather () =
        match next_line () with
        | None -> ()
        | Some l ->
          if String.length l > 0 && l.[0] = '.' then pending := Some l
          else begin
            (match String.split_on_char ' ' l with
            | [ pattern; "1" ] -> cubes := pattern :: !cubes
            | [ "1" ] -> cubes := "" :: !cubes
            | _ -> raise (Parse_error ("unsupported cover line: " ^ l)));
            gather ()
          end
      in
      gather ();
      let k = Array.length inputs in
      let tt = ref (Tt.const0 k) in
      List.iter
        (fun pattern ->
          if String.length pattern <> k then
            raise (Parse_error "cover width mismatch");
          let cube = ref (Tt.const1 k) in
          String.iteri
            (fun i c ->
              match c with
              | '1' -> cube := Tt.( &: ) !cube (Tt.nth_var k i)
              | '0' -> cube := Tt.( &: ) !cube (Tt.( ~: ) (Tt.nth_var k i))
              | '-' -> ()
              | _ -> raise (Parse_error "bad cover character"))
            pattern;
          tt := Tt.( |: ) !tt !cube)
        !cubes;
      let fanins =
        Array.map
          (fun name ->
            match Hashtbl.find_opt signals name with
            | Some s -> s
            | None -> raise (Parse_error ("undefined signal " ^ name)))
          inputs
      in
      let s =
        if k = 0 then Klut.constant (not (Tt.is_const0 !tt))
        else Klut.create_lut t fanins !tt
      in
      Hashtbl.replace signals target s
  and parse () =
    match next_line () with
    | None -> ()
    | Some line ->
      (match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | ".model" :: _ -> ()
      | ".inputs" :: names ->
        List.iter (fun n -> Hashtbl.replace signals n (Klut.create_pi t)) names
      | ".outputs" :: names -> outputs := !outputs @ names
      | ".names" :: args -> parse_names args
      | [ ".end" ] -> ()
      | _ -> raise (Parse_error ("unsupported line: " ^ line)));
      parse ()
  in
  parse ();
  List.iter
    (fun name ->
      match Hashtbl.find_opt signals name with
      | Some s -> Klut.create_po t s
      | None -> raise (Parse_error ("undefined output " ^ name)))
    !outputs;
  t

let read_file (path : string) : Klut.t =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
