lib/lsio/bench.ml: Array Buffer Fun Hashtbl Kitty Network Printf String
