lib/lsio/dot.ml: Array Fun Network Printf
