lib/lsio/blif.ml: Array Cube Fun Hashtbl Isop Kind Kitty Klut List Network Printf String Tt
