lib/lsio/aiger.ml: Aig Array Fun Hashtbl List Network Printf String
