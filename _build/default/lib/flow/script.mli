(** ABC-style optimization scripts: sequences like
    ["bz; rs -c 6; rw; rs -c 6 -d 2; rf; ..."].  One script drives every
    representation (paper §3.1). *)

type command =
  | Balance                                          (** [b] / [bz] *)
  | Rewrite of { zero_gain : bool }                  (** [rw] / [rwz] *)
  | Refactor of { zero_gain : bool }                 (** [rf] / [rfz] *)
  | Resub of { cut_size : int; max_inserted : int }  (** [rs -c C -d D] *)
  | Fraig                                            (** SAT sweeping *)

exception Parse_error of string

val parse_command : string -> command
val parse : string -> command list
val to_string : command -> string

val compress2rs : string
(** The paper's generic resynthesis flow (§3.1), modelled on ABC's
    compress2rs. *)

val compress_lite : string
(** A shorter flow for tests and quick experiments. *)
