(* The flow engine: interprets optimization scripts against any network
   representation.  An [env] bundles the two representation-specific
   choices — the exact-synthesis database feeding rewriting and the
   resubstitution kernel — which is precisely the paper's layer-4
   specialization surface; everything else is shared. *)

type env = {
  db : Exact.Database.t;
  kernel : Algo.Resub.kernel;
  max_refactor_inputs : int;
}

(* Per-representation presets. *)
let aig_env () =
  {
    db = Exact.Database.create Exact.Synth.aig_config;
    kernel = Algo.Resub.And_or;
    max_refactor_inputs = 10;
  }

let xag_env () =
  {
    db = Exact.Database.create Exact.Synth.xag_config;
    kernel = Algo.Resub.And_or_xor;
    max_refactor_inputs = 10;
  }

let mig_env () =
  {
    db = Exact.Database.create Exact.Synth.mig_config;
    kernel = Algo.Resub.Maj3;
    max_refactor_inputs = 10;
  }

let xmg_env () =
  {
    db = Exact.Database.create Exact.Synth.xmg_config;
    kernel = Algo.Resub.Maj3;
    max_refactor_inputs = 10;
  }

type stats = {
  nodes : int;
  levels : int;
}

module Make (N : Network.Intf.NETWORK) = struct
  module Bal = Algo.Balance.Make (N)
  module Rw = Algo.Rewrite.Make (N)
  module Rf = Algo.Refactor.Make (N)
  module Rs = Algo.Resub.Make (N)
  module Dp = Algo.Depth.Make (N)
  module Cl = Network.Convert.Cleanup (N)
  module Fr = Algo.Fraig.Make (N)

  let network_stats (net : N.t) : stats =
    { nodes = N.num_gates net; levels = Dp.depth net }

  let run_command (env : env) (net : N.t) (cmd : Script.command) : unit =
    match cmd with
    | Script.Balance -> ignore (Bal.run net)
    | Script.Rewrite { zero_gain } ->
      ignore (Rw.run net ~db:env.db ~allow_zero_gain:zero_gain ())
    | Script.Refactor { zero_gain } ->
      ignore
        (Rf.run net ~max_inputs:env.max_refactor_inputs
           ~allow_zero_gain:zero_gain ())
    | Script.Resub { cut_size; max_inserted } ->
      ignore (Rs.run net ~kernel:env.kernel ~max_leaves:cut_size ~max_inserted ())
    | Script.Fraig -> ignore (Fr.run net ())

  (* Run a script in place; returns a cleaned-up copy (dangling nodes
     swept). *)
  let run_script (env : env) (net : N.t) (script : string) : N.t =
    List.iter (run_command env net) (Script.parse script);
    Cl.cleanup net

  let compress2rs env net = run_script env net Script.compress2rs
end
