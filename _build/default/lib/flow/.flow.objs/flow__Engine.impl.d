lib/flow/engine.ml: Algo Exact List Network Script
