lib/flow/script.mli:
