lib/flow/specialized_aig.ml: Aig Algo Convert Engine List Network Script
