lib/flow/script.ml: List Printf String
