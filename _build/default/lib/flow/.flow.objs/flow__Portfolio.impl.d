lib/flow/portfolio.ml: Aig Algo Convert Engine List Mig Network Script Unix Xag
