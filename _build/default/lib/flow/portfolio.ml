(* The portfolio approach advocated in the paper's §3: run the same generic
   flow with every representation, map each result into 6-LUTs, and keep
   the best.  Also the driver behind Table 2's per-representation
   columns. *)

open Network

type entry = {
  representation : string;
  nodes : int;      (* gates after optimization *)
  levels : int;     (* depth after optimization *)
  luts : int;       (* 6-LUTs after mapping *)
  lut_levels : int;
  time : float;     (* optimization + mapping seconds *)
}

type result = {
  entries : entry list;
  best : entry;  (* fewest LUTs *)
}

module Lut_aig = Algo.Lutmap.Make (Aig)
module Lut_mig = Algo.Lutmap.Make (Mig)
module Lut_xag = Algo.Lutmap.Make (Xag)

module Flow_aig = Engine.Make (Aig)
module Flow_mig = Engine.Make (Mig)
module Flow_xag = Engine.Make (Xag)

module To_mig = Convert.Make (Aig) (Mig)
module To_xag = Convert.Make (Aig) (Xag)
module Copy_aig = Convert.Make (Aig) (Aig)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run the given script on all three representations of [baseline].  Pass
   [envs] to reuse exact-synthesis databases across benchmarks (they are
   keyed by NPN class, so they warm up once per process). *)
let run ?(script = Script.compress2rs) ?(k = 6) ?envs (baseline : Aig.t) :
    result =
  let env_aig, env_mig, env_xag =
    match envs with
    | Some (a, m, x) -> (a, m, x)
    | None -> (Engine.aig_env (), Engine.mig_env (), Engine.xag_env ())
  in
  let aig_entry =
    let net = Copy_aig.convert baseline in
    let env = env_aig in
    let opt, t_opt = time_it (fun () -> Flow_aig.run_script env net script) in
    let m, t_map = time_it (fun () -> Lut_aig.map opt ~k ()) in
    let s = Flow_aig.network_stats opt in
    {
      representation = "aig";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_aig.lut_count;
      lut_levels = m.Lut_aig.depth;
      time = t_opt +. t_map;
    }
  in
  let mig_entry =
    let net = To_mig.convert baseline in
    let env = env_mig in
    let opt, t_opt = time_it (fun () -> Flow_mig.run_script env net script) in
    let m, t_map = time_it (fun () -> Lut_mig.map opt ~k ()) in
    let s = Flow_mig.network_stats opt in
    {
      representation = "mig";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_mig.lut_count;
      lut_levels = m.Lut_mig.depth;
      time = t_opt +. t_map;
    }
  in
  let xag_entry =
    let net = To_xag.convert baseline in
    let env = env_xag in
    let opt, t_opt = time_it (fun () -> Flow_xag.run_script env net script) in
    let m, t_map = time_it (fun () -> Lut_xag.map opt ~k ()) in
    let s = Flow_xag.network_stats opt in
    {
      representation = "xag";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_xag.lut_count;
      lut_levels = m.Lut_xag.depth;
      time = t_opt +. t_map;
    }
  in
  let entries = [ aig_entry; mig_entry; xag_entry ] in
  let best =
    List.fold_left
      (fun acc e -> if e.luts < acc.luts then e else acc)
      aig_entry entries
  in
  { entries; best }
