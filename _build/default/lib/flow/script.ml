(* ABC-style optimization scripts: a tiny command language whose sentences
   are sequences like "bz; rs -c 6; rw; rs -c 6 -d 2; rf; ...".  The same
   script drives every representation (paper §3.1). *)

type command =
  | Balance
  | Rewrite of { zero_gain : bool }
  | Refactor of { zero_gain : bool }
  | Resub of { cut_size : int; max_inserted : int }
  | Fraig

exception Parse_error of string

let parse_command (s : string) : command =
  let tokens =
    String.split_on_char ' ' (String.trim s) |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> raise (Parse_error "empty command")
  | ("b" | "bz") :: [] -> Balance
  | "fraig" :: [] -> Fraig
  | "rw" :: [] -> Rewrite { zero_gain = false }
  | "rwz" :: [] -> Rewrite { zero_gain = true }
  | "rf" :: [] -> Refactor { zero_gain = false }
  | "rfz" :: [] -> Refactor { zero_gain = true }
  | "rs" :: opts ->
    let rec go cut_size max_inserted = function
      | [] -> Resub { cut_size; max_inserted }
      | "-c" :: v :: rest -> go (int_of_string v) max_inserted rest
      | "-d" :: v :: rest -> go cut_size (int_of_string v) rest
      | tok :: _ -> raise (Parse_error ("bad rs option: " ^ tok))
    in
    go 8 1 opts
  | tok :: _ -> raise (Parse_error ("unknown command: " ^ tok))

let parse (script : string) : command list =
  String.split_on_char ';' script
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map parse_command

(* The paper's generic resynthesis flow (§3.1), modelled on ABC's
   compress2rs. *)
let compress2rs =
  "bz; rs -c 6; rw; rs -c 6 -d 2; rf; rs -c 8; bz; rs -c 8 -d 2; rw; \
   rs -c 10; rwz; rs -c 10 -d 2; bz; rs -c 12; rfz; rs -c 12 -d 2; rwz; bz"

(* A shorter flow for tests and quick experiments. *)
let compress_lite = "bz; rs -c 8; rw; rf; rs -c 8 -d 2; rwz; bz"

let to_string = function
  | Balance -> "bz"
  | Rewrite { zero_gain } -> if zero_gain then "rwz" else "rw"
  | Refactor { zero_gain } -> if zero_gain then "rfz" else "rf"
  | Resub { cut_size; max_inserted } ->
    if max_inserted = 1 then Printf.sprintf "rs -c %d" cut_size
    else Printf.sprintf "rs -c %d -d %d" cut_size max_inserted
  | Fraig -> "fraig"
