(* Boolean chains: the result representation of exact synthesis.

   A chain over [num_inputs] primary inputs is a sequence of steps; step [i]
   computes a k-ary Boolean operator [op] over earlier signals.  Signal
   indices: [0] is constant false (only used by arity-3 synthesis), [1 ..
   num_inputs] are the inputs, [num_inputs + 1 + i] is step [i].  The chain
   output is the last step, complemented when [out_complement] (targets are
   synthesized in normal form, i.e. f(0,...,0) = 0). *)

open Kitty

type step = {
  fanins : int array;
  op : Tt.t;  (* over [Array.length fanins] variables; normal *)
}

type t = {
  num_inputs : int;
  steps : step array;
  out_complement : bool;
}

let size c = Array.length c.steps

(* Simulate the chain, returning its function over [num_inputs] variables. *)
let simulate c =
  let n = c.num_inputs in
  let values = Array.make (1 + n + Array.length c.steps) (Tt.const0 n) in
  for i = 0 to n - 1 do
    values.(1 + i) <- Tt.nth_var n i
  done;
  Array.iteri
    (fun i step ->
      let args = Array.map (fun j -> values.(j)) step.fanins in
      values.(1 + n + i) <- Tt.apply step.op args)
    c.steps;
  let out =
    if Array.length c.steps = 0 then values.(0) (* degenerate *)
    else values.(n + Array.length c.steps)
  in
  if c.out_complement then Tt.( ~: ) out else out

let pp fmt c =
  Format.fprintf fmt "chain(%d inputs):@." c.num_inputs;
  Array.iteri
    (fun i s ->
      Format.fprintf fmt "  t%d = %s(%s)@."
        (c.num_inputs + 1 + i)
        (Tt.to_hex s.op)
        (String.concat ", " (Array.to_list (Array.map string_of_int s.fanins))))
    c.steps;
  Format.fprintf fmt "  out = %st%d@."
    (if c.out_complement then "!" else "")
    (c.num_inputs + Array.length c.steps)
