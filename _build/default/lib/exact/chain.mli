(** Boolean chains: the result representation of exact synthesis.

    A chain over [num_inputs] inputs is a sequence of steps; step [i]
    computes a k-ary normal Boolean operator over earlier signals.  Signal
    indices: [0] is constant false, [1 .. num_inputs] are the inputs,
    [num_inputs + 1 + i] is step [i].  The chain output is the last step,
    complemented when [out_complement]. *)

type step = {
  fanins : int array;
  op : Kitty.Tt.t;  (** over [Array.length fanins] variables; normal *)
}

type t = {
  num_inputs : int;
  steps : step array;
  out_complement : bool;
}

val size : t -> int
(** Number of steps (gates). *)

val simulate : t -> Kitty.Tt.t
(** The function the chain computes, over [num_inputs] variables. *)

val pp : Format.formatter -> t -> unit
