lib/exact/chain.mli: Format Kitty
