lib/exact/database.ml: Format Hashtbl Kitty Npn Synth Tt
