lib/exact/decode.ml: Array Build Chain Database Intf Kind Kitty List Network Npn Option Synth Tt
