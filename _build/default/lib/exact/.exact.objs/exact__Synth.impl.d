lib/exact/synth.ml: Array Chain Kitty List Network Satkit Tt
