lib/exact/chain.ml: Array Format Kitty String Tt
