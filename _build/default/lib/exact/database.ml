(* NPN-keyed database of optimal chains.

   Rewriting asks for the optimum implementation of millions of cut
   functions, but only a few hundred NPN classes occur (222 classes for all
   4-variable functions).  Each class is synthesized at most once per
   process; the result — or the fact that synthesis gave up — is cached
   under the canonical truth table.  This realizes option (ii) of paper
   §2.3.2, exact synthesis on the fly, with the cache standing in for
   mockturtle's precomputed database. *)

open Kitty

type t = {
  config : Synth.config;
  cache : (string, Synth.result) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable failures : int;
}

let create config = { config; cache = Hashtbl.create 512; hits = 0; misses = 0; failures = 0 }

(* Result for the *canonical* representative of [f]'s NPN class, plus the
   transform mapping [f] to that representative. *)
let lookup db f =
  let canonical, tr = Npn.canonize f in
  let key = Tt.to_hex canonical in
  let entry =
    match Hashtbl.find_opt db.cache key with
    | Some e ->
      db.hits <- db.hits + 1;
      e
    | None ->
      db.misses <- db.misses + 1;
      let e = Synth.synthesize db.config canonical in
      if e = Synth.Failed then db.failures <- db.failures + 1;
      Hashtbl.replace db.cache key e;
      e
  in
  (entry, tr)

let stats db = (db.hits, db.misses, db.failures)

let pp_stats fmt db =
  Format.fprintf fmt "db: %d classes cached, %d hits, %d failures"
    (Hashtbl.length db.cache) db.hits db.failures
