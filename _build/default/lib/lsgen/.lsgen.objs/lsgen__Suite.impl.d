lib/lsgen/suite.ml: Array Blocks Control Float List Network
