lib/lsgen/blocks.ml: Array List Network
