lib/lsgen/control.ml: Array Blocks List Network Random
