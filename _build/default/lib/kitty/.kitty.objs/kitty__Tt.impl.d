lib/kitty/tt.ml: Array Buffer Char Format Hashtbl Int64 Printf Stdlib String
