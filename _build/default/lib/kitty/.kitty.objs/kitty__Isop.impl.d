lib/kitty/isop.ml: Cube List Tt
