lib/kitty/npn.ml: Array Int64 List Tt
