lib/kitty/isop.mli: Cube Tt
