lib/kitty/props.ml: List Tt
