lib/kitty/tt.mli: Format
