lib/kitty/factor.ml: Cube Format Hashtbl Isop List Option Tt
