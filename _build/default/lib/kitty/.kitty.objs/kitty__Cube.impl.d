lib/kitty/cube.ml: Format List Stdlib Tt
