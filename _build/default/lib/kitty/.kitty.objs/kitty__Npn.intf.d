lib/kitty/npn.mli: Tt
