lib/kitty/factor.mli: Cube Format Tt
