lib/kitty/cube.mli: Format Tt
