(** Algebraic factoring of sum-of-products covers (quick-factor style,
    after Rajski–Vasudevamurthy).  Refactoring builds the resulting
    expression in the target network with the network's own gate
    constructors. *)

type expr =
  | Const of bool
  | Lit of int * bool  (** variable index, complemented? *)
  | And of expr list
  | Or of expr list

val literal_count : expr -> int
(** Number of literal occurrences — the classic factored-form cost. *)

val expr_of_cube : Cube.t -> expr

val factor_cubes : Cube.t list -> expr
(** Factor a cover by recursive division: first by the common cube, then by
    the most frequent literal. *)

val of_tt : Tt.t -> expr
(** Factored form of a truth table (via its ISOP). *)

val to_tt : int -> expr -> Tt.t
(** Evaluate an expression over [n] variables (used to check soundness). *)

val pp : Format.formatter -> expr -> unit
