(* Cubes (product terms) over up to 20 variables.

   [mask] has bit [i] set when variable [i] appears in the cube; [bits]
   gives its polarity (only meaningful where [mask] is set).  The constant-1
   cube is [{ bits = 0; mask = 0 }]. *)

type t = {
  bits : int;
  mask : int;
}

let one = { bits = 0; mask = 0 }

let of_literal var polarity =
  { bits = (if polarity then 1 lsl var else 0); mask = 1 lsl var }

let num_literals c =
  let rec pop n acc = if n = 0 then acc else pop (n land (n - 1)) (acc + 1) in
  pop c.mask 0

let has_literal c var = (c.mask lsr var) land 1 = 1

(* Polarity of variable [var]; only valid when [has_literal c var]. *)
let polarity c var = (c.bits lsr var) land 1 = 1

let add_literal c var pol =
  {
    bits = (if pol then c.bits lor (1 lsl var) else c.bits land lnot (1 lsl var));
    mask = c.mask lor (1 lsl var);
  }

let remove_literal c var =
  { bits = c.bits land lnot (1 lsl var); mask = c.mask land lnot (1 lsl var) }

let equal a b = a.bits = b.bits && a.mask = b.mask
let compare = Stdlib.compare

let literals c =
  let rec go i acc =
    if i < 0 then acc
    else if has_literal c i then go (i - 1) ((i, polarity c i) :: acc)
    else go (i - 1) acc
  in
  go 19 []

(* Truth table of the cube over [n] variables. *)
let to_tt n c =
  List.fold_left
    (fun acc (var, pol) ->
      let v = Tt.nth_var n var in
      Tt.( &: ) acc (if pol then v else Tt.( ~: ) v))
    (Tt.const1 n) (literals c)

let pp fmt c =
  if c.mask = 0 then Format.fprintf fmt "1"
  else
    List.iter
      (fun (var, pol) ->
        Format.fprintf fmt "%sx%d" (if pol then "" else "!") var)
      (literals c)

(* Truth table of a sum (OR) of cubes. *)
let sop_to_tt n cubes =
  List.fold_left (fun acc c -> Tt.( |: ) acc (to_tt n c)) (Tt.const0 n) cubes

let sop_literal_count cubes =
  List.fold_left (fun acc c -> acc + num_literals c) 0 cubes
