(** Cubes (product terms) over up to 20 variables.

    [mask] has bit [i] set when variable [i] appears in the cube; [bits]
    gives its polarity where present.  The constant-true cube is
    [{ bits = 0; mask = 0 }]. *)

type t = {
  bits : int;
  mask : int;
}

val one : t
(** The empty product (constant true). *)

val of_literal : int -> bool -> t
(** [of_literal var polarity]: a single-literal cube. *)

val num_literals : t -> int
val has_literal : t -> int -> bool

val polarity : t -> int -> bool
(** Polarity of a variable; only valid when [has_literal]. *)

val add_literal : t -> int -> bool -> t
val remove_literal : t -> int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val literals : t -> (int * bool) list
(** [(variable, polarity)] pairs, ascending by variable. *)

val to_tt : int -> t -> Tt.t
(** Truth table of the cube over [n] variables. *)

val sop_to_tt : int -> t list -> Tt.t
(** Truth table of a sum (OR) of cubes. *)

val sop_literal_count : t list -> int

val pp : Format.formatter -> t -> unit
