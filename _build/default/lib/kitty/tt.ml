(* Bit-parallel truth tables.

   A truth table over [num_vars] variables stores one bit per minterm in an
   array of 64-bit words.  Minterm [m] (an assignment where bit [i] of [m] is
   the value of variable [i]) lives in word [m / 64] at bit [m mod 64].  For
   [num_vars < 6] the single word keeps its unused high bits at zero; every
   operation re-normalizes so that structural equality coincides with
   functional equality. *)

type t = {
  num_vars : int;
  bits : int64 array;
}

let max_vars = 20

(* Number of 64-bit words used by an [n]-variable table. *)
let word_count n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Mask selecting the meaningful bits of the (single) word when [n <= 6]. *)
let word_mask n =
  if n >= 6 then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let num_vars tt = tt.num_vars
let num_bits tt = 1 lsl tt.num_vars

let create n =
  if n < 0 || n > max_vars then
    invalid_arg (Printf.sprintf "Tt.create: num_vars %d out of [0,%d]" n max_vars);
  { num_vars = n; bits = Array.make (word_count n) 0L }

let const0 n = create n

let const1 n =
  let tt = create n in
  Array.fill tt.bits 0 (Array.length tt.bits) (word_mask n);
  tt

(* Projection word patterns for variables 0..5. *)
let projections =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let nth_var n i =
  if i < 0 || i >= n then invalid_arg "Tt.nth_var: variable index out of range";
  let tt = create n in
  if i < 6 then begin
    let p = Int64.logand projections.(i) (word_mask n) in
    Array.fill tt.bits 0 (Array.length tt.bits) p;
    (* Words whose index has bit [i-6] unset must stay 0 — not applicable
       here since i < 6 affects all words uniformly. *)
    tt
  end else begin
    for w = 0 to Array.length tt.bits - 1 do
      if (w lsr (i - 6)) land 1 = 1 then tt.bits.(w) <- -1L
    done;
    tt
  end

let copy tt = { tt with bits = Array.copy tt.bits }

let get_bit tt m =
  let w = m lsr 6 and b = m land 63 in
  Int64.to_int (Int64.logand (Int64.shift_right_logical tt.bits.(w) b) 1L)

let set_bit tt m =
  let w = m lsr 6 and b = m land 63 in
  tt.bits.(w) <- Int64.logor tt.bits.(w) (Int64.shift_left 1L b)

let clear_bit tt m =
  let w = m lsr 6 and b = m land 63 in
  tt.bits.(w) <- Int64.logand tt.bits.(w) (Int64.lognot (Int64.shift_left 1L b))

let equal a b =
  a.num_vars = b.num_vars && a.bits = b.bits

let compare a b =
  let c = Stdlib.compare a.num_vars b.num_vars in
  if c <> 0 then c else Stdlib.compare a.bits b.bits

let hash tt = Hashtbl.hash (tt.num_vars, tt.bits)

let is_const0 tt = Array.for_all (fun w -> w = 0L) tt.bits

let is_const1 tt =
  let m = word_mask tt.num_vars in
  Array.for_all (fun w -> w = m) tt.bits

let map2 f a b =
  if a.num_vars <> b.num_vars then invalid_arg "Tt: num_vars mismatch";
  { num_vars = a.num_vars; bits = Array.map2 f a.bits b.bits }

let ( &: ) a b = map2 Int64.logand a b
let ( |: ) a b = map2 Int64.logor a b
let ( ^: ) a b = map2 Int64.logxor a b

let ( ~: ) a =
  let m = word_mask a.num_vars in
  { a with bits = Array.map (fun w -> Int64.logand (Int64.lognot w) m) a.bits }

let xnor a b = ~:(a ^: b)
let nand a b = ~:(a &: b)
let nor a b = ~:(a |: b)

(* if-then-else / multiplexer: [i] selects [t] (when 1) or [e] (when 0). *)
let ite i t e = (i &: t) |: (~:i &: e)

let maj a b c = (a &: b) |: (a &: c) |: (b &: c)

let count_ones tt =
  let popcount64 x =
    let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
    let x = Int64.add (Int64.logand x 0x3333333333333333L)
              (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L) in
    let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
    Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)
  in
  Array.fold_left (fun acc w -> acc + popcount64 w) 0 tt.bits

(* Positive cofactor w.r.t. variable [i]: the result no longer depends on
   [i] but keeps the same number of variables. *)
let cofactor1 tt i =
  let r = copy tt in
  if i < 6 then begin
    let p = projections.(i) and s = 1 lsl i in
    for w = 0 to Array.length r.bits - 1 do
      let hi = Int64.logand r.bits.(w) p in
      r.bits.(w) <- Int64.logor hi (Int64.shift_right_logical hi s)
    done
  end else begin
    let d = 1 lsl (i - 6) in
    for w = 0 to Array.length r.bits - 1 do
      if (w lsr (i - 6)) land 1 = 0 then r.bits.(w) <- r.bits.(w lor d)
    done
  end;
  r

let cofactor0 tt i =
  let r = copy tt in
  if i < 6 then begin
    let p = projections.(i) and s = 1 lsl i in
    for w = 0 to Array.length r.bits - 1 do
      let lo = Int64.logand r.bits.(w) (Int64.lognot p) in
      r.bits.(w) <- Int64.logor lo (Int64.shift_left lo s)
    done
  end else begin
    let d = 1 lsl (i - 6) in
    for w = 0 to Array.length r.bits - 1 do
      if (w lsr (i - 6)) land 1 = 1 then r.bits.(w) <- r.bits.(w lxor d)
    done
  end;
  r

let has_var tt i = not (equal (cofactor0 tt i) (cofactor1 tt i))

(* List of variables the function actually depends on, ascending. *)
let support tt =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if has_var tt i then i :: acc else acc)
  in
  go (tt.num_vars - 1) []

let exists tt i = cofactor0 tt i |: cofactor1 tt i
let forall tt i = cofactor0 tt i &: cofactor1 tt i

(* Complement variable [i] in the function: f'(.., x_i, ..) = f(.., !x_i, ..). *)
let flip tt i =
  let r = copy tt in
  if i < 6 then begin
    let p = projections.(i) and s = 1 lsl i in
    for w = 0 to Array.length r.bits - 1 do
      let x = r.bits.(w) in
      r.bits.(w) <-
        Int64.logor
          (Int64.shift_right_logical (Int64.logand x p) s)
          (Int64.logand (Int64.shift_left x s) p)
    done
  end else begin
    let d = 1 lsl (i - 6) in
    for w = 0 to Array.length r.bits - 1 do
      if (w lsr (i - 6)) land 1 = 0 then begin
        let tmp = r.bits.(w) in
        r.bits.(w) <- r.bits.(w lor d);
        r.bits.(w lor d) <- tmp
      end
    done
  end;
  r

(* Swap variables [i] and [j]. *)
let swap_vars tt i j =
  if i = j then copy tt
  else begin
    let i, j = if i < j then (i, j) else (j, i) in
    let n = tt.num_vars in
    let r = create n in
    for m = 0 to (1 lsl n) - 1 do
      if get_bit tt m = 1 then begin
        let bi = (m lsr i) land 1 and bj = (m lsr j) land 1 in
        let m' = m land lnot ((1 lsl i) lor (1 lsl j))
                 lor (bj lsl i) lor (bi lsl j) in
        set_bit r m'
      end
    done;
    r
  end

(* Apply variable permutation [perm]: result g with
   g(x_0,...,x_{n-1}) = f(x_{perm.(0)}, ..., x_{perm.(n-1)}).
   Equivalently minterm m of f maps to the minterm of g where the bit that
   was at position perm.(i) moves to position i. *)
let permute tt perm =
  let n = tt.num_vars in
  if Array.length perm <> n then invalid_arg "Tt.permute: bad permutation size";
  let r = create n in
  for m = 0 to (1 lsl n) - 1 do
    (* f-minterm m corresponds to the g-minterm where the value of f's
       variable i appears at position perm.(i). *)
    let m' = ref 0 in
    for i = 0 to n - 1 do
      if (m lsr i) land 1 = 1 then m' := !m' lor (1 lsl perm.(i))
    done;
    if get_bit tt m = 1 then set_bit r !m'
  done;
  r

(* Extend to [n] variables (new variables are don't-care / unused). *)
let extend tt n =
  if n < tt.num_vars then invalid_arg "Tt.extend: shrinking"
  else if n = tt.num_vars then copy tt
  else begin
    let r = create n in
    let src_bits = 1 lsl tt.num_vars in
    for m = 0 to (1 lsl n) - 1 do
      if get_bit tt (m land (src_bits - 1)) = 1 then set_bit r m
    done;
    r
  end

(* Shrink to [n] variables; variables >= n must not be in the support. *)
let shrink tt n =
  if n > tt.num_vars then invalid_arg "Tt.shrink: growing"
  else begin
    let r = create n in
    for m = 0 to (1 lsl n) - 1 do
      if get_bit tt m = 1 then set_bit r m
    done;
    r
  end

(* Compose: substitute functions for the variables of [f].
   [apply f args] where [args.(i)] is the truth table (all over the same
   variable count [m]) standing for variable [i] of [f]. *)
let apply f args =
  if Array.length args <> f.num_vars then invalid_arg "Tt.apply: arity mismatch";
  if f.num_vars = 0 then
    (if is_const1 f then const1 0 else const0 0)
  else begin
    let m = args.(0).num_vars in
    let acc = ref (const0 m) in
    for minterm = 0 to (1 lsl f.num_vars) - 1 do
      if get_bit f minterm = 1 then begin
        let cube = ref (const1 m) in
        for i = 0 to f.num_vars - 1 do
          let lit = if (minterm lsr i) land 1 = 1 then args.(i) else ~:(args.(i)) in
          cube := !cube &: lit
        done;
        acc := !acc |: !cube
      end
    done;
    !acc
  end

(* Hex string, most significant nibble first (kitty convention). *)
let to_hex tt =
  let nibbles = max 1 ((1 lsl tt.num_vars) / 4) in
  let buf = Buffer.create nibbles in
  for i = nibbles - 1 downto 0 do
    if tt.num_vars < 2 then begin
      (* fewer than 4 bits: print one nibble padded *)
      let v = Int64.to_int (Int64.logand tt.bits.(0) (word_mask tt.num_vars)) in
      Buffer.add_string buf (Printf.sprintf "%x" v)
    end else begin
      let w = (i * 4) lsr 6 and off = (i * 4) land 63 in
      let v = Int64.to_int (Int64.logand (Int64.shift_right_logical tt.bits.(w) off) 0xFL) in
      Buffer.add_char buf "0123456789abcdef".[v]
    end
  done;
  Buffer.contents buf

let of_hex n s =
  let tt = create n in
  let nibbles = max 1 ((1 lsl n) / 4) in
  if String.length s <> nibbles then invalid_arg "Tt.of_hex: bad length";
  String.iteri
    (fun i c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Tt.of_hex: bad character"
      in
      let idx = nibbles - 1 - i in
      for b = 0 to 3 do
        let m = idx * 4 + b in
        if (v lsr b) land 1 = 1 && m < 1 lsl n then set_bit tt m
      done)
    s;
  tt

let pp fmt tt = Format.fprintf fmt "0x%s" (to_hex tt)

(* Binary string, minterm 2^n-1 first. *)
let to_binary tt =
  let n = 1 lsl tt.num_vars in
  String.init n (fun i -> if get_bit tt (n - 1 - i) = 1 then '1' else '0')

(* For tables of up to 6 variables: raw word access (low bits meaningful). *)
let to_int64 tt =
  if tt.num_vars > 6 then invalid_arg "Tt.to_int64: more than 6 variables";
  tt.bits.(0)

let of_int64 n w =
  if n > 6 then invalid_arg "Tt.of_int64: more than 6 variables";
  let tt = create n in
  tt.bits.(0) <- Int64.logand w (word_mask n);
  tt
