(* Irredundant sum-of-products via the Minato–Morreale algorithm.

   [compute ~lower ~upper] returns a cube cover [F] with
   lower <= F <= upper (as Boolean functions); passing the same table for
   both yields an ISOP of that function.  The recursion splits on the
   top-most variable present in either bound. *)

let rec top_var lower upper i =
  if i < 0 then -1
  else if Tt.has_var lower i || Tt.has_var upper i then i
  else top_var lower upper (i - 1)

let rec isop lower upper =
  if Tt.is_const0 lower then ([], Tt.const0 (Tt.num_vars lower))
  else if Tt.is_const1 upper then ([ Cube.one ], Tt.const1 (Tt.num_vars upper))
  else begin
    let n = Tt.num_vars lower in
    let v = top_var lower upper (n - 1) in
    assert (v >= 0);
    let l0 = Tt.cofactor0 lower v and l1 = Tt.cofactor1 lower v in
    let u0 = Tt.cofactor0 upper v and u1 = Tt.cofactor1 upper v in
    (* Cubes that must carry literal !v / v respectively. *)
    let f_neg, tt_neg = isop Tt.(l0 &: ~:u1) u0 in
    let f_pos, tt_pos = isop Tt.(l1 &: ~:u0) u1 in
    (* Remaining on-set minterms, coverable without a literal on [v]. *)
    let l0' = Tt.(l0 &: ~:tt_neg) and l1' = Tt.(l1 &: ~:tt_pos) in
    let f_var, tt_var = isop Tt.(l0' |: l1') Tt.(u0 &: u1) in
    let cubes =
      List.map (fun c -> Cube.add_literal c v false) f_neg
      @ List.map (fun c -> Cube.add_literal c v true) f_pos
      @ f_var
    in
    let var_tt = Tt.nth_var n v in
    let tt =
      Tt.(
        (tt_neg &: ~:var_tt) |: (tt_pos &: var_tt) |: tt_var)
    in
    (cubes, tt)
  end

let compute ?lower upper =
  let lower = match lower with Some l -> l | None -> upper in
  let cubes, tt = isop lower upper in
  assert (Tt.is_const0 Tt.(lower &: ~:tt));
  assert (Tt.is_const0 Tt.(tt &: ~:upper));
  cubes

(* ISOP of a completely specified function. *)
let of_tt tt = compute tt
