(** NPN canonization.

    Two functions are NPN-equivalent when one can be obtained from the other
    by Negating inputs, Permuting inputs and/or Negating the output.  The
    canonical representative of a class is the lexicographically smallest
    truth table reachable by such transformations.

    NPN classes are the index space of the exact-synthesis database: all
    65536 4-variable functions collapse into 222 classes. *)

type transform = {
  perm : int array;  (** canonical form reads f's variable i at [perm.(i)] *)
  flips : int;       (** bit i set: f's variable i is complemented *)
  out_flip : bool;
}
(** A transform [tr] maps [f] to its canonical form [g]:
    [g(x_0, .., x_{n-1}) = out_flip XOR f(x_{perm.(0)} XOR flip_0, ..)]. *)

val identity : int -> transform

val apply : transform -> Tt.t -> Tt.t
(** [apply tr f] realizes the transform ([= g] when [(g, tr) = canonize f]). *)

val apply_inverse : transform -> Tt.t -> Tt.t
(** Undo a transform: [apply_inverse tr (apply tr f) = f]. *)

val db_input_assignment : transform -> (int * bool) array * bool
(** Mapping used to instantiate a database structure stored for the
    canonical form on concrete cut leaves: database input [j] must be
    driven by leaf [fst a.(j)], complemented when [snd a.(j)]; the database
    output is complemented when the second component is [true]. *)

val canonize : Tt.t -> Tt.t * transform
(** Canonical representative and the transform reaching it.  Exhaustive
    (and exact) up to 5 variables — memoized for the 4-variable hot path —
    and a deterministic greedy sifting heuristic beyond. *)

val canonize_exhaustive : Tt.t -> Tt.t * transform
(** Exhaustive search over all [2^n * n! * 2] transforms (n <= 5). *)

val canonize_sifting : Tt.t -> Tt.t * transform
(** The greedy heuristic, exposed for testing. *)

val permutations : int -> int array list
(** All permutations of [0 .. n-1] (helper, exposed for tests). *)
