(** Bit-parallel truth tables.

    A truth table over [n] variables stores one bit per minterm in an array
    of 64-bit words.  Minterm [m] — the assignment where bit [i] of [m] is
    the value of variable [i] — lives in word [m / 64] at bit [m mod 64].
    All operations re-normalize unused high bits, so structural equality
    coincides with functional equality. *)

type t

val max_vars : int
(** Largest supported variable count (20: one million minterms). *)

val num_vars : t -> int
(** Number of variables of the table. *)

val num_bits : t -> int
(** Number of minterms, [2 ^ num_vars]. *)

(** {1 Construction} *)

val create : int -> t
(** [create n] is the constant-false table over [n] variables.
    @raise Invalid_argument when [n] is outside [0, max_vars]. *)

val const0 : int -> t
(** Constant false over [n] variables. *)

val const1 : int -> t
(** Constant true over [n] variables. *)

val nth_var : int -> int -> t
(** [nth_var n i] is the projection of variable [i] over [n] variables.
    @raise Invalid_argument when [i] is outside [0, n). *)

val copy : t -> t

val of_hex : int -> string -> t
(** [of_hex n s] parses a hex string (most significant nibble first, kitty
    convention).  @raise Invalid_argument on bad length or characters. *)

val of_int64 : int -> int64 -> t
(** [of_int64 n w] builds a table of up to 6 variables from the low bits of
    [w]. *)

(** {1 Bit access} *)

val get_bit : t -> int -> int
(** [get_bit f m] is the value (0 or 1) of [f] on minterm [m]. *)

val set_bit : t -> int -> unit
(** In-place; only intended for table construction. *)

val clear_bit : t -> int -> unit

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val is_const0 : t -> bool
val is_const1 : t -> bool

(** {1 Boolean operations} *)

val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
val xnor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t

val ite : t -> t -> t -> t
(** [ite i t e]: multiplexer selecting [t] where [i] is true, [e]
    elsewhere. *)

val maj : t -> t -> t -> t
(** Three-input majority. *)

val count_ones : t -> int
(** Number of on-set minterms. *)

(** {1 Cofactors and variables} *)

val cofactor0 : t -> int -> t
(** Negative cofactor with respect to a variable; the result keeps the same
    variable count but no longer depends on it. *)

val cofactor1 : t -> int -> t
(** Positive cofactor. *)

val has_var : t -> int -> bool
(** Does the function depend on the variable? *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val exists : t -> int -> t
(** Existential quantification: [cofactor0 f i |: cofactor1 f i]. *)

val forall : t -> int -> t
(** Universal quantification. *)

val flip : t -> int -> t
(** [flip f i] complements variable [i]: the result maps [x] to
    [f] with [x_i] inverted. *)

val swap_vars : t -> int -> int -> t
(** Exchange two variables. *)

val permute : t -> int array -> t
(** [permute f perm] is the function [g] with
    [g(x_0, .., x_{n-1}) = f(x_{perm.(0)}, .., x_{perm.(n-1)})] — f's
    variable [i] reads position [perm.(i)]. *)

(** {1 Resizing and composition} *)

val extend : t -> int -> t
(** Add variables (the function does not depend on them). *)

val shrink : t -> int -> t
(** Drop the top variables; they must not be in the support. *)

val apply : t -> t array -> t
(** [apply f args] composes: the result maps [x] to
    [f(args.(0)(x), .., args.(n-1)(x))].  All [args] must range over the
    same variable count. *)

(** {1 Printing} *)

val to_hex : t -> string
val to_binary : t -> string
val to_int64 : t -> int64
(** Raw low word; only for tables of at most 6 variables. *)

val pp : Format.formatter -> t -> unit
