(* Algebraic factoring of sum-of-products covers.

   Produces a factored Boolean expression from a cube cover by recursive
   division: first by the common cube of the cover, then by the most
   frequent literal (quick-factor style, after Rajski–Vasudevamurthy).
   Refactoring builds this expression in the target network with the
   network's own gate constructors. *)

type expr =
  | Const of bool
  | Lit of int * bool  (* variable index, complemented? *)
  | And of expr list
  | Or of expr list

let rec pp fmt = function
  | Const b -> Format.fprintf fmt "%d" (if b then 1 else 0)
  | Lit (v, false) -> Format.fprintf fmt "x%d" v
  | Lit (v, true) -> Format.fprintf fmt "!x%d" v
  | And es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " & ") pp)
      es
  | Or es ->
    Format.fprintf fmt "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " | ") pp)
      es

(* Number of literal occurrences in the expression. *)
let rec literal_count = function
  | Const _ -> 0
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun a e -> a + literal_count e) 0 es

let expr_of_cube c =
  match Cube.literals c with
  | [] -> Const true
  | [ (v, pol) ] -> Lit (v, not pol)
  | lits -> And (List.map (fun (v, pol) -> Lit (v, not pol)) lits)

(* Literal occurring in the largest number of cubes; ties broken towards the
   smallest variable/polarity.  Returns [None] when no literal occurs twice. *)
let most_frequent_literal cubes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (v, pol) ->
          let key = (v, pol) in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        (Cube.literals c))
    cubes;
  Hashtbl.fold
    (fun key count best ->
      match best with
      | Some (_, bc) when bc > count -> best
      | Some (bk, bc) when bc = count && bk <= key -> best
      | _ -> if count >= 2 then Some (key, count) else best)
    counts None

let rec factor_cubes cubes =
  match cubes with
  | [] -> Const false
  | [ c ] -> expr_of_cube c
  | _ ->
    (* Divide by the common cube first. *)
    let common =
      List.fold_left
        (fun acc c -> Cube.{ bits = acc.bits land c.bits; mask = acc.mask land c.mask land lnot (acc.bits lxor c.bits) })
        (List.hd cubes) (List.tl cubes)
    in
    if common.Cube.mask <> 0 then begin
      let quotient =
        List.map
          (fun c ->
            List.fold_left
              (fun c (v, _) -> Cube.remove_literal c v)
              c (Cube.literals common))
          cubes
      in
      let lit_exprs = List.map (fun (v, pol) -> Lit (v, not pol)) (Cube.literals common) in
      And (lit_exprs @ [ factor_cubes quotient ])
    end
    else begin
      match most_frequent_literal cubes with
      | None -> Or (List.map expr_of_cube cubes)
      | Some ((v, pol), _) ->
        let with_l, without_l =
          List.partition (fun c -> Cube.has_literal c v && Cube.polarity c v = pol) cubes
        in
        let quotient = List.map (fun c -> Cube.remove_literal c v) with_l in
        let divisor = And [ Lit (v, not pol); factor_cubes quotient ] in
        if without_l = [] then divisor
        else Or [ divisor; factor_cubes without_l ]
    end

(* Factored form of a truth table (via ISOP).  Chooses the cheaper of
   factoring f directly or factoring !f and complementing, by literal
   count. *)
let of_tt tt =
  if Tt.is_const0 tt then Const false
  else if Tt.is_const1 tt then Const true
  else factor_cubes (Isop.of_tt tt)

(* Evaluate an expression back to a truth table over [n] variables — used by
   tests to check factoring soundness. *)
let rec to_tt n = function
  | Const false -> Tt.const0 n
  | Const true -> Tt.const1 n
  | Lit (v, false) -> Tt.nth_var n v
  | Lit (v, true) -> Tt.( ~: ) (Tt.nth_var n v)
  | And es -> List.fold_left (fun a e -> Tt.( &: ) a (to_tt n e)) (Tt.const1 n) es
  | Or es -> List.fold_left (fun a e -> Tt.( |: ) a (to_tt n e)) (Tt.const0 n) es
