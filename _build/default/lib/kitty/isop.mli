(** Irredundant sum-of-products covers via the Minato–Morreale algorithm. *)

val compute : ?lower:Tt.t -> Tt.t -> Cube.t list
(** [compute ~lower upper] returns a cube cover [F] with
    [lower <= F <= upper] as Boolean functions (an interval ISOP); omitting
    [lower] computes an ISOP of [upper] itself.  Every cube in the result
    is necessary. *)

val of_tt : Tt.t -> Cube.t list
(** ISOP of a completely specified function. *)
