(* Boolean function properties: unateness, symmetry, decomposability and
   the Boolean difference.  These are the analyses behind divisor filtering
   and decomposition-based resynthesis. *)

type unateness = Positive | Negative | Binate

(* Unateness of [f] in variable [i]. *)
let unateness_in f i =
  let c0 = Tt.cofactor0 f i and c1 = Tt.cofactor1 f i in
  let pos = Tt.is_const0 Tt.(c0 &: ~:c1) in
  let neg = Tt.is_const0 Tt.(c1 &: ~:c0) in
  match (pos, neg) with
  | true, true -> Positive (* independent of i; report positive *)
  | true, false -> Positive
  | false, true -> Negative
  | false, false -> Binate

let is_unate f =
  List.for_all (fun i -> unateness_in f i <> Binate) (Tt.support f)

(* Boolean difference df/dx_i: the minterms where flipping x_i flips f. *)
let boolean_difference f i = Tt.( ^: ) (Tt.cofactor0 f i) (Tt.cofactor1 f i)

(* Are variables [i] and [j] symmetric in [f] (f invariant under swap)? *)
let symmetric_in f i j = Tt.equal f (Tt.swap_vars f i j)

(* Partition the support into maximal classes of pairwise-symmetric
   variables. *)
let symmetry_classes f =
  let support = Tt.support f in
  let rec place v = function
    | [] -> [ [ v ] ]
    | cls :: rest ->
      (match cls with
      | rep :: _ when symmetric_in f v rep -> (v :: cls) :: rest
      | _ -> cls :: place v rest)
  in
  List.fold_left (fun classes v -> place v classes) [] support
  |> List.map List.rev

(* Is [f] totally symmetric (a function of the weight of its inputs only)? *)
let is_totally_symmetric f =
  match symmetry_classes f with
  | [] | [ _ ] -> true
  | _ :: _ :: _ -> false

(* Top decomposition: can [f] be written as  x_i op g  where g does not
   depend on x_i?  Returns the operator when it exists. *)
type top_decomposition = And_ | Or_ | Xor_ | Lt_ (* !x & g *) | Le_ (* !x | g *)

let top_decompositions f i =
  let c0 = Tt.cofactor0 f i and c1 = Tt.cofactor1 f i in
  let out = ref [] in
  (* f = x & g   iff f|x=0 = 0 *)
  if Tt.is_const0 c0 then out := (And_, c1) :: !out;
  (* f = x | g   iff f|x=1 = 1 *)
  if Tt.is_const1 c1 then out := (Or_, c0) :: !out;
  (* f = !x & g  iff f|x=1 = 0 *)
  if Tt.is_const0 c1 then out := (Lt_, c0) :: !out;
  (* f = !x | g  iff f|x=0 = 1 *)
  if Tt.is_const1 c0 then out := (Le_, c1) :: !out;
  (* f = x ^ g   iff f|x=0 = !(f|x=1) *)
  if Tt.equal c0 (Tt.( ~: ) c1) then out := (Xor_, c0) :: !out;
  List.rev !out

(* Minterm count as a fraction — useful as a quick signature. *)
let density f = float_of_int (Tt.count_ones f) /. float_of_int (Tt.num_bits f)

(* Is [f] a canalizing function in x_i (some input value forces the
   output)? *)
let is_canalizing_in f i =
  let c0 = Tt.cofactor0 f i and c1 = Tt.cofactor1 f i in
  Tt.is_const0 c0 || Tt.is_const1 c0 || Tt.is_const0 c1 || Tt.is_const1 c1
