(* NPN canonization.

   Two functions are NPN-equivalent when one can be obtained from the other
   by Negating inputs, Permuting inputs and/or Negating the output.  The
   canonical representative of a class is the lexicographically smallest
   truth table reachable by such transformations (smallest under
   [Tt.compare]).

   A [transform] describes how a function [f] maps to its canonical form [g]:

     g(x_0, .., x_{n-1}) = out_flip XOR
                           f(x_{perm.(0)} XOR flip_0, ..,
                             x_{perm.(n-1)} XOR flip_{n-1})

   where [flip_i] is bit [i] of [flips].  [apply tr f = g] realizes exactly
   this composition, and [apply_inverse tr g = f] undoes it. *)

type transform = {
  perm : int array;  (* g reads f's variable i from position perm.(i) *)
  flips : int;       (* bit i set: f's variable i is complemented *)
  out_flip : bool;
}

let identity n = { perm = Array.init n (fun i -> i); flips = 0; out_flip = false }

let apply tr f =
  let n = Tt.num_vars f in
  let f1 = ref (Tt.copy f) in
  for i = 0 to n - 1 do
    if (tr.flips lsr i) land 1 = 1 then f1 := Tt.flip !f1 i
  done;
  let g = Tt.permute !f1 tr.perm in
  if tr.out_flip then Tt.( ~: ) g else g

let inverse_perm perm =
  let n = Array.length perm in
  let inv = Array.make n 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  inv

let apply_inverse tr g =
  let n = Tt.num_vars g in
  let g = if tr.out_flip then Tt.( ~: ) g else g in
  let f1 = Tt.permute g (inverse_perm tr.perm) in
  let f = ref f1 in
  for i = 0 to n - 1 do
    if (tr.flips lsr i) land 1 = 1 then f := Tt.flip !f i
  done;
  !f

(* Mapping used to instantiate a database structure (stored for the
   canonical form [g]) on concrete cut leaves (inputs of [f]): database
   input [j] must be driven by leaf [fst a.(j)], complemented when
   [snd a.(j)]; the database output is complemented when the returned
   boolean is true. *)
let db_input_assignment tr =
  let inv = inverse_perm tr.perm in
  let a =
    Array.map (fun i -> (i, (tr.flips lsr i) land 1 = 1)) inv
  in
  (a, tr.out_flip)

(* All permutations of [0..n-1]. *)
let permutations n =
  let rec insert_all x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_all x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_all x) (perms xs)
  in
  List.map Array.of_list (perms (List.init n (fun i -> i)))

let exhaustive_limit = 5

(* Exhaustive canonization: minimum over all 2^n * n! * 2 transforms. *)
let canonize_exhaustive f =
  let n = Tt.num_vars f in
  if n > exhaustive_limit then
    invalid_arg "Npn.canonize_exhaustive: too many variables";
  let perms = permutations n in
  let best = ref (Tt.copy f) and best_tr = ref (identity n) in
  List.iter
    (fun perm ->
      for flips = 0 to (1 lsl n) - 1 do
        let tr0 = { perm; flips; out_flip = false } in
        let g0 = apply tr0 f in
        if Tt.compare g0 !best < 0 then begin
          best := g0;
          best_tr := tr0
        end;
        let g1 = Tt.( ~: ) g0 in
        if Tt.compare g1 !best < 0 then begin
          best := g1;
          best_tr := { tr0 with out_flip = true }
        end
      done)
    perms;
  (!best, !best_tr)

(* Memoized canonization for 4-variable functions — the hot path of cut
   rewriting.  The table is filled lazily, keyed by the 16-bit truth table. *)
let cache4 : (Tt.t * transform) option array = Array.make 65536 None

let canonize4 f =
  assert (Tt.num_vars f = 4);
  let key = Int64.to_int (Tt.to_int64 f) in
  match cache4.(key) with
  | Some r -> r
  | None ->
    let r = canonize_exhaustive f in
    cache4.(key) <- Some r;
    r

(* Greedy sifting heuristic for larger functions: repeatedly tries single
   input flips, output flip, and adjacent swaps while the table shrinks
   lexicographically.  Not a true canonical form across the whole NPN class,
   but deterministic and classes collapse well in practice. *)
let canonize_sifting f =
  let n = Tt.num_vars f in
  let best = ref (Tt.copy f) and best_tr = ref (identity n) in
  let try_tr tr =
    let g = apply tr f in
    if Tt.compare g !best < 0 then begin
      best := g;
      best_tr := tr;
      true
    end
    else false
  in
  let improved = ref true in
  while !improved do
    improved := false;
    let base = !best_tr in
    (* output flip *)
    if try_tr { base with out_flip = not base.out_flip } then improved := true;
    (* single input flips *)
    for i = 0 to n - 1 do
      if try_tr { base with flips = base.flips lxor (1 lsl i) } then
        improved := true
    done;
    (* adjacent transpositions of the permutation *)
    for i = 0 to n - 2 do
      let perm = Array.copy base.perm in
      let t = perm.(i) in
      perm.(i) <- perm.(i + 1);
      perm.(i + 1) <- t;
      if try_tr { base with perm } then improved := true
    done
  done;
  (!best, !best_tr)

let canonize f =
  let n = Tt.num_vars f in
  if n = 4 then canonize4 f
  else if n <= exhaustive_limit then canonize_exhaustive f
  else canonize_sifting f
