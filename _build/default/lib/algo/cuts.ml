(* Bottom-up cut enumeration through the Cartesian-product method
   (paper §2.2.1): the cut set of a gate is the merge of its fanin cut
   sets, pruned to [cut_limit] priority cuts of at most [k] leaves, plus
   the trivial cut.  Truth tables are computed alongside (paper §2.2.2),
   expressed over the cut leaves in ascending node order. *)

open Kitty

module Make (N : Network.Intf.NETWORK) = struct
  module T = Topo.Make (N)

  type cut = {
    leaves : N.node array;  (* ascending node ids; never constants *)
    tt : Tt.t;              (* over [Array.length leaves] variables *)
  }

  type result = {
    cuts : cut list array;  (* indexed by node *)
    k : int;
  }

  let trivial_cut n = { leaves = [| n |]; tt = Tt.nth_var 1 0 }
  let constant_cut = { leaves = [||]; tt = Tt.const0 0 }

  (* merge sorted leaf arrays; None when the union exceeds [k] *)
  let merge_leaves k a b =
    let la = Array.length a and lb = Array.length b in
    let out = Array.make (min k (la + lb)) 0 in
    let rec go i j m =
      if i < la && j < lb then begin
        if m >= k then None
        else if a.(i) = b.(j) then begin
          out.(m) <- a.(i);
          go (i + 1) (j + 1) (m + 1)
        end
        else if a.(i) < b.(j) then begin
          out.(m) <- a.(i);
          go (i + 1) j (m + 1)
        end
        else begin
          out.(m) <- b.(j);
          go i (j + 1) (m + 1)
        end
      end
      else begin
        let rest, ri, rl = if i < la then (a, i, la) else (b, j, lb) in
        if m + (rl - ri) > k then None
        else begin
          Array.blit rest ri out m (rl - ri);
          Some (Array.sub out 0 (m + (rl - ri)))
        end
      end
    in
    go 0 0 0

  let index_of leaves x =
    let rec go i = if leaves.(i) = x then i else go (i + 1) in
    go 0

  (* express a child-cut function over the merged leaves *)
  let remap child merged =
    let m = Array.length merged in
    if Array.length child.leaves = 0 then
      if Tt.is_const1 child.tt then Tt.const1 m else Tt.const0 m
    else begin
      let args =
        Array.map (fun leaf -> Tt.nth_var m (index_of merged leaf)) child.leaves
      in
      Tt.apply child.tt args
    end

  let subset a b =
    (* is sorted array [a] a subset of sorted array [b]? *)
    let la = Array.length a and lb = Array.length b in
    let rec go i j =
      if i >= la then true
      else if j >= lb then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0

  (* Enumerate cuts for every node reachable from the outputs.

     [prefer] decides which cuts survive the [cut_limit] cap: rewriting
     wants small cuts (cheap replacement search), LUT mapping wants wide
     cuts (fewer LUTs in the cover). *)
  let enumerate (net : N.t) ?(k = 4) ?(cut_limit = 8) ?(prefer = `Small) () :
      result =
    let cuts = Array.make (N.size net) [] in
    cuts.(0) <- [ constant_cut ];
    N.foreach_pi net (fun n -> cuts.(n) <- [ trivial_cut n ]);
    let node_fn_cache = Hashtbl.create 16 in
    let node_fn n =
      let key = (N.gate_kind net n, N.fanin_size net n) in
      match Hashtbl.find_opt node_fn_cache key with
      | Some f -> f
      | None ->
        let f = N.node_function net n in
        Hashtbl.replace node_fn_cache key f;
        f
    in
    List.iter
      (fun n ->
        let fanins = N.fanin net n in
        let child_cuts =
          Array.map (fun s -> cuts.(N.node_of_signal s)) fanins
        in
        let acc = ref [] in
        (* Cartesian product over fanin cut sets *)
        let rec product i merged chosen =
          if i >= Array.length fanins then begin
            let merged = Array.of_list (List.sort Stdlib.compare merged) in
            (* dedup / dominance against cuts found so far *)
            let dominated =
              List.exists (fun c -> subset c.leaves merged) !acc
            in
            if not dominated then begin
              let chosen = Array.of_list (List.rev chosen) in
              let m_cut = { leaves = merged; tt = Tt.const0 0 } in
              let args =
                Array.mapi
                  (fun fi child ->
                    let v = remap child m_cut.leaves in
                    if N.is_complemented fanins.(fi) then Tt.( ~: ) v else v)
                  chosen
              in
              let tt = Tt.apply (node_fn n) args in
              acc := { leaves = merged; tt } :: !acc
            end
          end
          else
            List.iter
              (fun (child : cut) ->
                (* merge child leaves into the accumulated set *)
                let sorted = Array.of_list (List.sort Stdlib.compare merged) in
                match merge_leaves k sorted child.leaves with
                | None -> ()
                | Some u ->
                  product (i + 1) (Array.to_list u) (child :: chosen))
              child_cuts.(i)
        in
        product 0 [] [];
        (* rank by leaf count per [prefer], cap the list, append trivial *)
        let sorted =
          let by_size a b =
            Stdlib.compare (Array.length a.leaves) (Array.length b.leaves)
          in
          List.sort
            (match prefer with
            | `Small -> by_size
            | `Large -> fun a b -> by_size b a)
            (List.rev !acc)
        in
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        cuts.(n) <- take (cut_limit - 1) sorted @ [ trivial_cut n ])
      (T.order net);
    { cuts; k }

  let cuts_of r n = r.cuts.(n)
end
