(* Layer-4 performance tweak (paper §2.1): AIG-specialized cut rewriting.

   The generic [Rewrite] functor represents cut functions as heap-allocated
   truth tables and composes them through the generic simulation machinery.
   For 2-input AND gates and 4-input cuts, the whole computation fits in a
   16-bit integer: this module reimplements cut enumeration with packed
   int truth tables and direct AND-node handling, changing nothing
   semantically.  Comparing this against [Rewrite.Make (Aig)] quantifies
   the cost of genericity — the experiment behind Table 1. *)

open Network

module D = Exact.Decode.Make (Aig)
module T = Topo.Make (Aig)

type cut = {
  leaves : int array;  (* at most 4, ascending *)
  tt : int;            (* 16-bit truth table over the leaves *)
}

let full = 0xFFFF

(* variable projections over 4 inputs, 16-bit *)
let proj = [| 0xAAAA; 0xCCCC; 0xF0F0; 0xFF00 |]

(* Re-express [tt] over [child] leaves in the [merged] leaf space. *)
let expand tt child merged =
  let n_child = Array.length child in
  (* position of each child leaf within merged *)
  let pos = Array.map (fun l ->
      let rec find i = if merged.(i) = l then i else find (i + 1) in
      find 0) child
  in
  let out = ref 0 in
  for m = 0 to (1 lsl Array.length merged) - 1 do
    let child_m = ref 0 in
    for i = 0 to n_child - 1 do
      if (m lsr pos.(i)) land 1 = 1 then child_m := !child_m lor (1 lsl i)
    done;
    if (tt lsr !child_m) land 1 = 1 then out := !out lor (1 lsl m)
  done;
  (* normalize to the full 16-bit space *)
  let bits = 1 lsl Array.length merged in
  let rec widen v width = if width >= 16 then v else widen (v lor (v lsl width)) (2 * width) in
  ignore bits;
  widen !out bits

let merge_leaves a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make 4 0 in
  let rec go i j m =
    if i < la && j < lb then
      if m >= 4 then None
      else if a.(i) = b.(j) then (out.(m) <- a.(i); go (i + 1) (j + 1) (m + 1))
      else if a.(i) < b.(j) then (out.(m) <- a.(i); go (i + 1) j (m + 1))
      else (out.(m) <- b.(j); go i (j + 1) (m + 1))
    else begin
      let rest, ri, rl = if i < la then (a, i, la) else (b, j, lb) in
      if m + (rl - ri) > 4 then None
      else begin
        Array.blit rest ri out m (rl - ri);
        Some (Array.sub out 0 (m + (rl - ri)))
      end
    end
  in
  go 0 0 0

let subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* Specialized 4-cut enumeration for AIGs. *)
let enumerate (t : Aig.t) ~cut_limit : cut list array =
  let cuts = Array.make (Aig.size t) [] in
  cuts.(0) <- [ { leaves = [||]; tt = 0 } ];
  Aig.foreach_pi t (fun n -> cuts.(n) <- [ { leaves = [| n |]; tt = 0xAAAA } ]);
  List.iter
    (fun n ->
      let f = Aig.fanin t n in
      let c0 = Aig.node_of_signal f.(0) and c1 = Aig.node_of_signal f.(1) in
      let i0 = Aig.is_complemented f.(0) and i1 = Aig.is_complemented f.(1) in
      let acc = ref [] in
      List.iter
        (fun (a : cut) ->
          List.iter
            (fun (b : cut) ->
              match merge_leaves a.leaves b.leaves with
              | None -> ()
              | Some merged ->
                if not (List.exists (fun c -> subset c.leaves merged) !acc)
                then begin
                  let ta = expand a.tt a.leaves merged in
                  let tb = expand b.tt b.leaves merged in
                  let ta = if i0 then full lxor ta else ta in
                  let tb = if i1 then full lxor tb else tb in
                  acc := { leaves = merged; tt = ta land tb } :: !acc
                end)
            cuts.(c1))
        cuts.(c0);
      let sorted =
        List.sort
          (fun a b -> compare (Array.length a.leaves) (Array.length b.leaves))
          (List.rev !acc)
      in
      let rec take k = function
        | [] -> []
        | x :: r -> if k = 0 then [] else x :: take (k - 1) r
      in
      cuts.(n) <- take (cut_limit - 1) sorted @ [ { leaves = [| n |]; tt = 0xAAAA } ])
    (T.order t);
  cuts

(* Expand a k-leaf int truth table (k <= 4) into a [Kitty.Tt.t] over k
   variables for the database boundary. *)
let tt_of_int k v =
  let tt = Kitty.Tt.create k in
  for m = 0 to (1 lsl k) - 1 do
    if (v lsr m) land 1 = 1 then Kitty.Tt.set_bit tt m
  done;
  tt

(* The same DAG-aware rewriting loop as the generic functor, driven by the
   specialized cut data. *)
let run (net : Aig.t) ~(db : Exact.Database.t) ?(cut_limit = 8)
    ?(allow_zero_gain = false) () : int =
  let cuts = enumerate net ~cut_limit in
  let nodes = T.order net in
  let total_gain = ref 0 in
  List.iter
    (fun n ->
      if Aig.is_gate net n && (not (Aig.is_dead net n)) && Aig.ref_count net n > 0
      then begin
        let mffc_size = 1 + Aig.recursive_deref net n in
        ignore (Aig.recursive_ref net n);
        let best = ref None in
        let build f leaf_sigs =
          let lookup = Exact.Database.lookup db f in
          match fst lookup with
          | Exact.Synth.Chain c when Exact.Chain.size c > mffc_size + 3 -> None
          | Exact.Synth.Failed -> None
          | Exact.Synth.Chain _ | Exact.Synth.Const _ | Exact.Synth.Projection _
            ->
            D.of_lookup net lookup leaf_sigs
        in
        let evaluate (cut : cut) =
          let leaf_ok l = (not (Aig.is_dead net l)) && not (Aig.is_constant net l) in
          if Array.length cut.leaves < 2 || not (Array.for_all leaf_ok cut.leaves)
          then None
          else begin
            let k = Array.length cut.leaves in
            let mask = (1 lsl (1 lsl k)) - 1 in
            let f = tt_of_int k (cut.tt land mask) in
            let leaf_sigs = Array.map Aig.signal_of_node cut.leaves in
            let g_before = Aig.num_gates net in
            match build f leaf_sigs with
            | None -> None
            | Some s ->
              let root = Aig.node_of_signal s in
              let added = Aig.num_gates net - g_before in
              if root = n || T.cone_contains net ~root ~leaves:cut.leaves n
              then begin
                Aig.take_out_if_dead net root;
                None
              end
              else begin
                let freed = 1 + Aig.recursive_deref net n in
                ignore (Aig.recursive_ref net n);
                let gain = freed - added in
                Aig.take_out_if_dead net root;
                Some (gain, cut, f)
              end
          end
        in
        List.iter
          (fun cut ->
            match evaluate cut with
            | None -> ()
            | Some (gain, cut, f) ->
              let keep =
                match !best with
                | None -> gain > 0 || (allow_zero_gain && gain = 0)
                | Some (bg, _, _) -> gain > bg
              in
              if keep then best := Some (gain, cut, f))
          cuts.(n);
        match !best with
        | None -> ()
        | Some (gain, cut, f) -> (
          let leaf_sigs = Array.map Aig.signal_of_node cut.leaves in
          match build f leaf_sigs with
          | None -> ()
          | Some s ->
            if
              Aig.node_of_signal s <> n
              && not (T.cone_contains net ~root:(Aig.node_of_signal s) ~leaves:cut.leaves n)
            then begin
              Aig.substitute_node net n s;
              total_gain := !total_gain + gain
            end
            else Aig.take_out_if_dead net (Aig.node_of_signal s))
      end)
    nodes;
  !total_gain
