(* Layer-4 performance tweak: algebraic depth rewriting for MIGs.

   MIG-specific delay optimization (after Amarù's MIG algebraic rules)
   exploits the majority axioms the generic algorithms do not know about:

   - associativity with a shared operand,
       <x u <y u z>> = <<x u y> u z>
     hoists a critical signal one level up at no size cost;
   - distributivity (left-to-right),
       <x y <u v z>> = <<x y u> <x y v> z>
     hoists a critical signal at the cost of one extra gate.

   The pass walks the critical paths from the outputs and applies the
   cheapest rule that reduces the arrival time of the node, within a size
   budget for distributivity.  This is the engine behind the large depth
   reductions MIGs achieve on carry-chain circuits (paper §1: "impressive
   delay reductions for arithmetic-intensive benchmark circuits"). *)

open Network

module T = Topo.Make (Mig)
module Dp = Depth.Make (Mig)

type stats = {
  mutable associativity : int;
  mutable distributivity : int;
}

(* One sweep over the critical nodes; returns the number of rewrites. *)
let sweep (t : Mig.t) ~levels ~level_of ~size_budget stats =
  ignore levels;
  let rewrites = ref 0 in
  let budget = ref size_budget in
  let node_level n = level_of n in
  let signal_level s = node_level (Mig.node_of_signal s) in
  let try_node n =
    if Mig.is_gate t n && (not (Mig.is_dead t n)) && Mig.ref_count t n > 0 then begin
      let fanins = Mig.fanin t n in
      (* the critical child must be a non-complemented majority gate *)
      let crit = ref (-1) in
      Array.iteri
        (fun i s ->
          let c = Mig.node_of_signal s in
          if
            (not (Mig.is_complemented s))
            && Mig.is_gate t c
            && (!crit < 0 || signal_level s > signal_level fanins.(!crit))
          then crit := i)
        fanins;
      if !crit >= 0 then begin
        let z_sig = fanins.(!crit) in
        let z = Mig.node_of_signal z_sig in
        let z_level = node_level z in
        let others = Array.of_list
            (List.filteri (fun i _ -> i <> !crit) (Array.to_list fanins))
        in
        let other_level =
          Array.fold_left (fun acc s -> max acc (signal_level s)) 0 others
        in
        (* only profitable when the critical child dominates the node *)
        if z_level > other_level then begin
          let gf = Mig.fanin t z in
          (* deepest grandchild g and the remaining two *)
          let gi = ref 0 in
          Array.iteri
            (fun i s -> if signal_level s > signal_level gf.(!gi) then gi := i)
            gf;
          let g = gf.(!gi) in
          let rest =
            Array.of_list (List.filteri (fun i _ -> i <> !gi) (Array.to_list gf))
          in
          let g_level = signal_level g in
          (* estimated new arrival if g is hoisted next to the root *)
          let hoisted_ok lower_parts =
            let inner = List.fold_left max 0 lower_parts + 1 in
            max inner g_level + 1 < z_level + 1
          in
          (* rule 1: associativity — needs an operand shared between n and z *)
          let shared =
            Array.to_list others
            |> List.find_opt (fun s -> Array.exists (fun f -> f = s) gf)
          in
          let applied =
            match shared with
            | Some u when Array.length rest = 2 ->
              (* n = <x u <y u g>> -> <<x u y> u g>, choosing y as the rest
                 operand that is not u *)
              let x =
                match Array.to_list others |> List.filter (fun s -> s <> u) with
                | [ x ] -> Some x
                | _ -> None
              in
              let y =
                match Array.to_list rest |> List.filter (fun s -> s <> u) with
                | y :: _ -> Some y
                | [] -> None
              in
              (match (x, y) with
              | Some x, Some y
                when g <> u
                     && hoisted_ok [ signal_level x; signal_level u; signal_level y ]
                ->
                let inner = Mig.create_maj t x u y in
                let n' = Mig.create_maj t inner u g in
                if
                  Mig.node_of_signal n' <> n
                  && not
                       (T.cone_contains t ~root:(Mig.node_of_signal n')
                          ~leaves:
                            (Array.map Mig.node_of_signal
                               (Array.append others gf))
                          n)
                then begin
                  Mig.substitute_node t n n';
                  stats.associativity <- stats.associativity + 1;
                  true
                end
                else begin
                  Mig.take_out_if_dead t (Mig.node_of_signal n');
                  false
                end
              | _ -> false)
            | Some _ | None -> false
          in
          (* rule 2: distributivity — costs one gate, bounded by the budget *)
          if (not applied) && !budget > 0 && Array.length others = 2
             && Array.length rest = 2
          then begin
            let x = others.(0) and y = others.(1) in
            let u = rest.(0) and v = rest.(1) in
            if
              hoisted_ok
                [ signal_level x; signal_level y;
                  max (signal_level u) (signal_level v) ]
            then begin
              let before = Mig.num_gates t in
              let a = Mig.create_maj t x y u in
              let b = Mig.create_maj t x y v in
              let n' = Mig.create_maj t a b g in
              if
                Mig.node_of_signal n' <> n
                && not
                     (T.cone_contains t ~root:(Mig.node_of_signal n')
                        ~leaves:
                          (Array.map Mig.node_of_signal (Array.append others gf))
                        n)
              then begin
                Mig.substitute_node t n n';
                budget := !budget - max 0 (Mig.num_gates t - before);
                stats.distributivity <- stats.distributivity + 1;
                incr rewrites
              end
              else Mig.take_out_if_dead t (Mig.node_of_signal n')
            end
          end
          else if applied then incr rewrites
        end
      end
    end
  in
  List.iter try_node (List.rev (T.order t));
  !rewrites

(* Depth-oriented rewriting: repeats critical-path sweeps until the depth
   stops improving.  [size_budget] bounds the total gate-count increase
   distributivity may cause (associativity is free). *)
let run (t : Mig.t) ?(max_iterations = 8) ?(size_budget = max_int) () : stats =
  let stats = { associativity = 0; distributivity = 0 } in
  let rec go i best_depth =
    if i < max_iterations then begin
      let levels, _depth = Dp.compute t in
      let overlay = Hashtbl.create 64 in
      let rec level_of n =
        if n < Array.length levels then levels.(n)
        else
          match Hashtbl.find_opt overlay n with
          | Some l -> l
          | None ->
            let l = ref 0 in
            Mig.foreach_fanin t n (fun s ->
                l := max !l (level_of (Mig.node_of_signal s)));
            let l = !l + if Mig.is_gate t n then 1 else 0 in
            Hashtbl.replace overlay n l;
            l
      in
      let r = sweep t ~levels ~level_of ~size_budget stats in
      let d = Dp.depth t in
      if r > 0 && d < best_depth then go (i + 1) d
    end
  in
  go 0 (Dp.depth t);
  stats
