lib/algo/reconv.ml: List Network
