lib/algo/depth.ml: Array List Network Topo
