lib/algo/window.ml: Array Hashtbl Kitty List Mffc Network Simulate Tt
