lib/algo/resub.ml: Array Hashtbl Kitty List Mffc Network Odc Reconv Topo Tt Window
