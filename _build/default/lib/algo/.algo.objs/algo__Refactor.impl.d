lib/algo/refactor.ml: Array Hashtbl List Mffc Network Topo Window
