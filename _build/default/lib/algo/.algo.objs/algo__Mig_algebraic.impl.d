lib/algo/mig_algebraic.ml: Array Depth Hashtbl List Mig Network Topo
