lib/algo/topo.ml: Array Hashtbl List Network
