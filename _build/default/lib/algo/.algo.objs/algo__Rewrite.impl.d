lib/algo/rewrite.ml: Array Cuts Exact List Network Topo
