lib/algo/simulate.ml: Array Kitty List Network Random Topo Tt
