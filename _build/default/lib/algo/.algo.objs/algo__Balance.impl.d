lib/algo/balance.ml: Array Depth Hashtbl List Network Topo
