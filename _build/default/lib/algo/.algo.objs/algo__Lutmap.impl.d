lib/algo/lutmap.ml: Array Cuts Depth Hashtbl List Network Topo
