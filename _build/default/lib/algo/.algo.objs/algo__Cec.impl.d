lib/algo/cec.ml: Array Cube Isop Kitty List Network Satkit Topo Tt
