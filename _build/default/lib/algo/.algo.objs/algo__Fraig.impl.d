lib/algo/fraig.ml: Array Cec Hashtbl Kitty List Network Satkit Simulate Topo Tt
