lib/algo/mffc.ml: List Network
