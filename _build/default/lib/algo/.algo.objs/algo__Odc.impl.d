lib/algo/odc.ml: Array Hashtbl Kitty List Network Simulate Tt Window
