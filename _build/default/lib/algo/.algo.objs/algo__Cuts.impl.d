lib/algo/cuts.ml: Array Hashtbl Kitty List Network Stdlib Topo Tt
