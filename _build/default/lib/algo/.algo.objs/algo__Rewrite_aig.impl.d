lib/algo/rewrite_aig.ml: Aig Array Exact Kitty List Network Topo
