(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md, experiment index).

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe table1     -- generic vs specialized AIG flow
     dune exec bench/main.exe table2     -- AIG/MIG/XAG comparison + portfolio
     dune exec bench/main.exe micro      -- Bechamel kernel microbenchmarks
     dune exec bench/main.exe cuts       -- cut-enumeration kernel sweep
     dune exec bench/main.exe ablation   -- design-choice ablations
     dune exec bench/main.exe smoke      -- fast deterministic CI QoR gate
     dune exec bench/main.exe cost       -- cost-objective matrix, CEC-checked
     dune exec bench/main.exe partition  -- partition-parallel engine vs sequential
     dune exec bench/main.exe sat        -- CDCL kernel on CEC miters (legacy vs modern)

   Every subcommand additionally writes a machine-readable
   [BENCH_<name>.json] (benchmark, stage, nodes, levels, LUTs, seconds)
   for regression tracking across PRs.

   Absolute numbers differ from the paper (scaled benchmark generators, an
   OCaml implementation, a from-scratch SAT solver); the comparisons the
   tables make — generic ~ specialized, all three representations within a
   few percent, portfolio best — are the reproduction target.  Results are
   recorded against the paper in EXPERIMENTS.md. *)

open Genlog

module D = Depth.Make (Aig)
module L = Lutmap.Make (Aig)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct base v =
  if base = 0 then 0.0
  else 100.0 *. (float_of_int v -. float_of_int base) /. float_of_int base

(* the benchmark list of the paper's Table 2 (scaled stand-ins) *)
let suite = Suite.names

let row benchmark stage fields =
  (("benchmark", Bench_json.Str benchmark) :: ("stage", Bench_json.Str stage)
  :: fields)

(* -------------------------------------------------------------------- *)
(* Table 1: apple-to-apple comparison of the generic flow against the    *)
(* layer-4 specialized AIG flow.                                         *)
(* -------------------------------------------------------------------- *)

let table1 () =
  print_endline "=== Table 1: generic flow vs specialized AIG flow ===";
  print_endline "(paper: generic-vs-ABC; here: generic functor vs layer-4";
  print_endline " specialized implementation in the same code base)";
  Printf.printf "%-12s | %8s %6s %6s %8s | %8s %6s %6s %8s\n" "benchmark"
    "spec.Nd" "Lvl" "LUTs" "time" "gen.Nd" "Lvl" "LUTs" "time";
  let tot_spec_nd = ref 0 and tot_spec_lvl = ref 0 and tot_spec_lut = ref 0 in
  let tot_gen_nd = ref 0 and tot_gen_lvl = ref 0 and tot_gen_lut = ref 0 in
  let tot_spec_time = ref 0.0 and tot_gen_time = ref 0.0 in
  let module Copy = Convert.Make (Aig) (Aig) in
  (* shared environments: the database persists across benchmarks *)
  let env_spec = Flow.aig_env () in
  let env_gen = Flow.aig_env () in
  let module F = Flow.Make (Aig) in
  let trace = Trace.create ~flow:"table1" () in
  let rows = ref [] in
  List.iter
    (fun name ->
      let baseline = Suite.build name in
      let spec, t_spec =
        time_it (fun () ->
            Flow.Specialized_aig.run_script env_spec (Copy.convert baseline)
              Script.compress2rs)
      in
      let tr = Trace.child trace ~flow:name in
      let gen, t_gen =
        time_it (fun () ->
            F.run_script env_gen ~trace:tr (Copy.convert baseline)
              Script.compress2rs)
      in
      Trace.merge trace [ tr ];
      let m_spec = L.map spec ~k:6 () in
      let m_gen = L.map gen ~k:6 () in
      let nd_s = Aig.num_gates spec and nd_g = Aig.num_gates gen in
      let lv_s = D.depth spec and lv_g = D.depth gen in
      Printf.printf "%-12s | %8d %6d %6d %7.2fs | %8d %6d %6d %7.2fs\n" name
        nd_s lv_s m_spec.L.lut_count t_spec nd_g lv_g m_gen.L.lut_count t_gen;
      rows :=
        row name "generic"
          [ ("nodes", Bench_json.Int nd_g); ("levels", Bench_json.Int lv_g);
            ("luts", Bench_json.Int m_gen.L.lut_count);
            ("seconds", Bench_json.Float t_gen) ]
        :: row name "specialized"
             [ ("nodes", Bench_json.Int nd_s); ("levels", Bench_json.Int lv_s);
               ("luts", Bench_json.Int m_spec.L.lut_count);
               ("seconds", Bench_json.Float t_spec) ]
        :: !rows;
      tot_spec_nd := !tot_spec_nd + nd_s;
      tot_spec_lvl := !tot_spec_lvl + lv_s;
      tot_spec_lut := !tot_spec_lut + m_spec.L.lut_count;
      tot_gen_nd := !tot_gen_nd + nd_g;
      tot_gen_lvl := !tot_gen_lvl + lv_g;
      tot_gen_lut := !tot_gen_lut + m_gen.L.lut_count;
      tot_spec_time := !tot_spec_time +. t_spec;
      tot_gen_time := !tot_gen_time +. t_gen)
    suite;
  Printf.printf "%-12s | %8d %6d %6d %7.2fs | %8d %6d %6d %7.2fs\n" "Total"
    !tot_spec_nd !tot_spec_lvl !tot_spec_lut !tot_spec_time !tot_gen_nd
    !tot_gen_lvl !tot_gen_lut !tot_gen_time;
  Printf.printf
    "\nGeneric flow vs specialized baseline: Nd %+.2f%%  Lvl %+.2f%%  LUTs %+.2f%%\n"
    (pct !tot_spec_nd !tot_gen_nd)
    (pct !tot_spec_lvl !tot_gen_lvl)
    (pct !tot_spec_lut !tot_gen_lut);
  Printf.printf "(paper Table 1: +1.14%% Nd, +3.02%% Lvl, +0.65%% LUTs)\n\n";
  Trace.write_file trace "TRACE_table1.jsonl";
  Printf.printf "[bench] wrote TRACE_table1.jsonl (%d events)\n%!"
    (List.length (Trace.events trace));
  Bench_json.write "table1" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Table 2: the generic flow on AIG / MIG / XAG + portfolio.             *)
(* -------------------------------------------------------------------- *)

let table2 () =
  print_endline "=== Table 2: EPFL-suite stand-ins, four representations ===";
  Printf.printf
    "%-12s %8s | %6s %4s %5s | %6s %4s %5s %6s | %6s %4s %5s %6s | %6s %4s %5s %6s | %6s %4s %5s %6s\n"
    "benchmark" "i/o" "B.Nd" "Lvl" "LUTs" "A.Nd" "Lvl" "LUTs" "time" "M.Nd"
    "Lvl" "LUTs" "time" "X.Nd" "Lvl" "LUTs" "time" "XM.Nd" "Lvl" "LUTs" "time";
  let tot = Hashtbl.create 8 in
  let add key v =
    Hashtbl.replace tot key (v + Option.value ~default:0 (Hashtbl.find_opt tot key))
  in
  let addf key v =
    Hashtbl.replace tot key
      (int_of_float (v *. 100.0)
      + Option.value ~default:0 (Hashtbl.find_opt tot key))
  in
  let envs =
    [
      ("aig", Flow.aig_env ());
      ("mig", Flow.mig_env ());
      ("xag", Flow.xag_env ());
      ("xmg", Flow.xmg_env ());
    ]
  in
  let trace = Trace.create ~flow:"table2" () in
  let rows = ref [] in
  List.iter
    (fun name ->
      let baseline = Suite.build name in
      let mb = L.map baseline ~k:6 () in
      let tr = Trace.child trace ~flow:name in
      let r, wall =
        time_it (fun () -> Flow.Portfolio.run ~envs ~trace:tr baseline)
      in
      Trace.merge trace [ tr ];
      let find rep =
        List.find
          (fun (e : Flow.Portfolio.entry) -> e.representation = rep)
          r.entries
      in
      let a = find "aig" and m = find "mig" and x = find "xag" in
      let xm = find "xmg" in
      let sum = a.time +. m.time +. x.time +. xm.time in
      Printf.printf
        "%-12s %3d/%-4d | %6d %4d %5d | %6d %4d %5d %5.1fs | %6d %4d %5d %5.1fs | %6d %4d %5d %5.1fs | %6d %4d %5d %5.1fs | wall %5.1fs (sum %5.1fs)\n%!"
        name (Aig.num_pis baseline) (Aig.num_pos baseline)
        (Aig.num_gates baseline) (D.depth baseline) mb.L.lut_count a.nodes
        a.levels a.luts a.time m.nodes m.levels m.luts m.time x.nodes x.levels
        x.luts x.time xm.nodes xm.levels xm.luts xm.time wall sum;
      let entry_row (e : Flow.Portfolio.entry) =
        row name e.representation
          [ ("nodes", Bench_json.Int e.nodes);
            ("levels", Bench_json.Int e.levels);
            ("luts", Bench_json.Int e.luts);
            ("lut_levels", Bench_json.Int e.lut_levels);
            ("seconds", Bench_json.Float e.time) ]
      in
      rows :=
        row name "portfolio"
          [ ("luts", Bench_json.Int r.best.luts);
            ("seconds", Bench_json.Float wall);
            ("seconds_sum", Bench_json.Float sum) ]
        :: entry_row xm :: entry_row x :: entry_row m :: entry_row a
        :: row name "baseline"
             [ ("nodes", Bench_json.Int (Aig.num_gates baseline));
               ("levels", Bench_json.Int (D.depth baseline));
               ("luts", Bench_json.Int mb.L.lut_count) ]
        :: !rows;
      add "base_luts" mb.L.lut_count;
      add "aig_luts" a.luts;
      add "mig_luts" m.luts;
      add "xag_luts" x.luts;
      add "xmg_luts" xm.luts;
      add "best_luts" r.best.luts;
      addf "aig_time" a.time;
      addf "mig_time" m.time;
      addf "xag_time" x.time;
      addf "xmg_time" xm.time;
      addf "wall_time" wall)
    suite;
  let get k = Option.value ~default:0 (Hashtbl.find_opt tot k) in
  let imp v = -.pct (get "base_luts") v in
  Printf.printf
    "\nTotal 6-LUTs: baseline %d  aig %d  mig %d  xag %d  xmg %d  portfolio %d\n"
    (get "base_luts") (get "aig_luts") (get "mig_luts") (get "xag_luts")
    (get "xmg_luts") (get "best_luts");
  Printf.printf
    "Total time:   aig %.1fs  mig %.1fs  xag %.1fs  xmg %.1fs  | portfolio wall %.1fs (sum %.1fs)\n"
    (float_of_int (get "aig_time") /. 100.0)
    (float_of_int (get "mig_time") /. 100.0)
    (float_of_int (get "xag_time") /. 100.0)
    (float_of_int (get "xmg_time") /. 100.0)
    (float_of_int (get "wall_time") /. 100.0)
    (float_of_int
       (get "aig_time" + get "mig_time" + get "xag_time" + get "xmg_time")
    /. 100.0);
  Printf.printf
    "LUT improvement: aig %.2f%%  mig %.2f%%  xag %.2f%%  xmg %.2f%%  portfolio %.2f%%\n"
    (imp (get "aig_luts")) (imp (get "mig_luts")) (imp (get "xag_luts"))
    (imp (get "xmg_luts"))
    (imp (get "best_luts"));
  print_endline
    "(paper Table 2: aig +30.04%, mig +27.78%, xag +31.39% portfolio; \
     abstract: 29.53/27.01/29.82)\n";
  Trace.write_file trace "TRACE_table2.jsonl";
  Printf.printf "[bench] wrote TRACE_table2.jsonl (%d events)\n%!"
    (List.length (Trace.events trace));
  Bench_json.write "table2" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Smoke: a fast deterministic QoR fingerprint for CI.  compress2rs +    *)
(* 6-LUT mapping on a handful of small benchmarks; the flow is           *)
(* deterministic, so nodes/levels/luts are exact and [report --check]    *)
(* can gate them with a tight threshold (time stays advisory).           *)
(* -------------------------------------------------------------------- *)

let smoke () =
  print_endline "=== Smoke: CI QoR fingerprint (compress2rs + 6-LUT map) ===";
  let module F = Flow.Make (Aig) in
  let env = Flow.aig_env () in
  let trace = Trace.create ~flow:"smoke" () in
  let rows = ref [] in
  Printf.printf "%-12s | %8s %5s %6s %6s %8s\n" "benchmark" "nodes" "lvl"
    "luts" "lutlvl" "time";
  List.iter
    (fun name ->
      let baseline = Suite.build name in
      let tr = Trace.child trace ~flow:name in
      let opt, seconds =
        time_it (fun () -> F.run_script env ~trace:tr baseline Script.compress2rs)
      in
      let m = L.map opt ~trace:tr ~k:6 () in
      Trace.merge trace [ tr ];
      let nodes = Aig.num_gates opt and levels = D.depth opt in
      Printf.printf "%-12s | %8d %5d %6d %6d %7.2fs\n%!" name nodes levels
        m.L.lut_count m.L.depth seconds;
      rows :=
        row name "generic"
          [ ("nodes", Bench_json.Int nodes);
            ("levels", Bench_json.Int levels);
            ("luts", Bench_json.Int m.L.lut_count);
            ("lut_levels", Bench_json.Int m.L.depth);
            ("seconds", Bench_json.Float seconds) ]
        :: !rows)
    [ "ctrl"; "cavlc"; "int2float"; "dec"; "router" ];
  Trace.write_file trace "TRACE_smoke.jsonl";
  Printf.printf "[bench] wrote TRACE_smoke.jsonl (%d events)\n%!"
    (List.length (Trace.events trace));
  Bench_json.write "smoke" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Cost matrix: the generic flow under each built-in objective on three  *)
(* smoke benchmarks.  Every run is CEC-checked against its input and the *)
(* engine's own objective must never worsen across the flow; rows land   *)
(* in BENCH_cost.json (one row per benchmark x cost) for the history.    *)
(* -------------------------------------------------------------------- *)

let cost_bench () =
  print_endline "=== Cost matrix: compress2rs under area/depth/edges ===";
  let module F = Flow.Make (Aig) in
  let module C = Cec.Make (Aig) (Aig) in
  let module Co = Cost.Make (Aig) in
  let module Copy = Convert.Make (Aig) (Aig) in
  let module Cl = Convert.Cleanup (Aig) in
  let rows = ref [] in
  Printf.printf "%-12s %-6s | %8s %5s %9s %8s %4s\n" "benchmark" "cost"
    "nodes" "lvl" "objective" "time" "cec";
  List.iter
    (fun name ->
      let baseline = Suite.build name in
      List.iter
        (fun spec ->
          let cost_name = Cost.Spec.to_string spec in
          let env = Flow.aig_env ~cost:spec () in
          let before = Co.eval spec (Cl.cleanup (Copy.convert baseline)) in
          let input = Copy.convert baseline in
          let opt, seconds =
            time_it (fun () -> F.run_script env input Script.compress2rs)
          in
          let after = Co.eval spec opt in
          let equiv =
            match C.check baseline opt with
            | Algo.Cec.Equivalent -> true
            | Algo.Cec.Counterexample _ | Algo.Cec.Unknown -> false
          in
          if not equiv then begin
            Printf.eprintf "cost: %s under %s is NOT equivalent to its input\n"
              name cost_name;
            exit 1
          end;
          if after > before then begin
            Printf.eprintf "cost: %s under %s worsened its objective %d -> %d\n"
              name cost_name before after;
            exit 1
          end;
          let nodes = Aig.num_gates opt and levels = D.depth opt in
          Printf.printf "%-12s %-6s | %8d %5d %9d %7.2fs   ok\n%!" name
            cost_name nodes levels after seconds;
          rows :=
            row name cost_name
              [ ("cost", Bench_json.Str cost_name);
                ("nodes", Bench_json.Int nodes);
                ("levels", Bench_json.Int levels);
                ("objective", Bench_json.Int after);
                ("seconds", Bench_json.Float seconds) ]
            :: !rows)
        [ Cost.Spec.Area; Cost.Spec.Depth; Cost.Spec.Edges ])
    [ "ctrl"; "int2float"; "router" ];
  Bench_json.write "cost" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Cache: the persistent exact-synthesis store, cold vs warm.  A cold    *)
(* phase populates the store over the smoke suite; a warm phase reloads  *)
(* it in a fresh database and must re-synthesize nothing (misses = 0);   *)
(* a corrupt phase tears the store's tail off and must still load with   *)
(* entries skipped, never fail.  The counters land in BENCH_cache.json   *)
(* (aggregate rows benchmark="all") and CI gates on them.                *)
(* -------------------------------------------------------------------- *)

let cache_bench () =
  print_endline "=== Cache: persistent exact-synthesis store, cold vs warm ===";
  let store =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "genlog_bench_cache_%d.glxs" (Unix.getpid ()))
  in
  if Sys.file_exists store then Sys.remove store;
  let module F = Flow.Make (Aig) in
  let benchmarks = [ "ctrl"; "cavlc"; "int2float"; "dec"; "router" ] in
  let rows = ref [] in
  Printf.printf "%-10s | %8s %8s %8s %8s %8s %8s\n" "stage" "hits" "misses"
    "classes" "loaded" "skipped" "time";
  let phase stage =
    let cfg = { Flow.Run_config.default with Flow.Run_config.cache = Some store } in
    let env = Flow.env_of_config cfg in
    let total = ref 0.0 in
    List.iter
      (fun name ->
        let baseline = Suite.build name in
        let opt, seconds =
          time_it (fun () -> F.run_script env baseline Script.compress2rs)
        in
        total := !total +. seconds;
        rows :=
          row name stage
            [ ("nodes", Bench_json.Int (Aig.num_gates opt));
              ("levels", Bench_json.Int (D.depth opt));
              ("seconds", Bench_json.Float seconds) ]
          :: !rows)
      benchmarks;
    Database.flush env.Flow.db;
    let db = env.Flow.db in
    let si = Database.store_info db in
    Printf.printf "%-10s | %8d %8d %8d %8d %8d %7.2fs\n%!" stage
      (Database.hits db) (Database.misses db) (Database.size db)
      si.Database.loaded si.Database.skipped !total;
    rows :=
      row "all" stage
        [ ("hits", Bench_json.Int (Database.hits db));
          ("misses", Bench_json.Int (Database.misses db));
          ("classes", Bench_json.Int (Database.size db));
          ("loaded", Bench_json.Int si.Database.loaded);
          ("skipped", Bench_json.Int si.Database.skipped);
          ("flushed", Bench_json.Int si.Database.flushed);
          ("seconds", Bench_json.Float !total) ]
      :: !rows;
    db
  in
  let _cold = phase "cold" in
  let warm_db = phase "warm" in
  (* tear the last few bytes off the store: the loader must skip the torn
     entry with a warning and keep everything before it *)
  let size = (Unix.stat store).Unix.st_size in
  Unix.truncate store (max 12 (size - 5));
  let _corrupt = phase "corrupt" in
  Runmeta.set_cache (Database.obs_gauges warm_db);
  Bench_json.write "cache" (List.rev !rows);
  try Sys.remove store with Sys_error _ -> ()

(* -------------------------------------------------------------------- *)
(* Partition: sequential flow vs the partition-parallel engine on the    *)
(* largest suite members.  Reports wall time, QoR and the engine's       *)
(* accept/reject statistics.  Speedup over sequential depends on the     *)
(* host: on a single-core box the domain pool adds overhead instead of   *)
(* hiding latency — numbers are recorded as measured.                    *)
(* -------------------------------------------------------------------- *)

let partition_bench () =
  print_endline "=== Partition-parallel engine vs sequential flow ===";
  let module F = Flow.Make (Aig) in
  let module P = Flow.Partition.Make (Aig) in
  let module Copy = Convert.Make (Aig) (Aig) in
  let script = Script.compress_lite in
  let size_cap = 2000 in
  Printf.printf "script = %S, size_cap = %d\n" script size_cap;
  Printf.printf "%-12s %-14s | %8s %5s %8s | %5s %4s %5s %5s\n" "benchmark"
    "stage" "nodes" "lvl" "time" "parts" "acc" "rcost" "rcex";
  let rows = ref [] in
  List.iter
    (fun name ->
      let baseline = Suite.build name in
      (* a fresh env per run: no warm database favours either side *)
      let seq, t_seq =
        time_it (fun () ->
            F.run_script (Flow.aig_env ()) (Copy.convert baseline) script)
      in
      Printf.printf "%-12s %-14s | %8d %5d %7.2fs |\n%!" name "sequential"
        (Aig.num_gates seq) (D.depth seq) t_seq;
      rows :=
        row name "sequential"
          [ ("nodes", Bench_json.Int (Aig.num_gates seq));
            ("levels", Bench_json.Int (D.depth seq));
            ("seconds", Bench_json.Float t_seq) ]
        :: !rows;
      List.iter
        (fun jobs ->
          let env = Flow.aig_env () in
          let (out, st), t_par =
            time_it (fun () ->
                P.run ~size_cap ~jobs ~script
                  ~make_env:(fun () -> env)
                  (Copy.convert baseline))
          in
          let stage = Printf.sprintf "partition-j%d" jobs in
          Printf.printf
            "%-12s %-14s | %8d %5d %7.2fs | %5d %4d %5d %5d (speedup %.2fx)\n%!"
            name stage (Aig.num_gates out) (D.depth out) t_par st.P.partitions
            st.P.accepted st.P.rejected_cost st.P.rejected_cex (t_seq /. t_par);
          rows :=
            row name stage
              [ ("nodes", Bench_json.Int (Aig.num_gates out));
                ("levels", Bench_json.Int (D.depth out));
                ("seconds", Bench_json.Float t_par);
                ("partitions", Bench_json.Int st.P.partitions);
                ("accepted", Bench_json.Int st.P.accepted);
                ("rejected_cost", Bench_json.Int st.P.rejected_cost);
                ("rejected_cex", Bench_json.Int st.P.rejected_cex);
                ("sim_mismatches", Bench_json.Int st.P.sim_mismatches);
                ("speedup", Bench_json.Float (t_seq /. t_par)) ]
            :: !rows)
        [ 1; 2; 4 ])
    [ "div"; "mem_ctrl" ];
  print_newline ();
  Bench_json.write "partition" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Sat: the CDCL kernel on CEC miters.  Each smoke benchmark is          *)
(* optimized with compress2rs and mitered against its own baseline — an  *)
(* UNSAT instance whose difficulty comes from the structural divergence  *)
(* the flow introduced.  Stages compare the legacy kernel (Luby          *)
(* restarts, no minimization/inprocessing), the modern kernel (LBD       *)
(* tiers, EMA restarts, learnt minimization, inprocessing) and a 2-way   *)
(* portfolio race.  The whole-network [div] miter is too hard for the    *)
(* budget ladder: what we record there is *bounded* termination.         *)
(* -------------------------------------------------------------------- *)

let sat_bench () =
  print_endline "=== SAT kernel: legacy vs modern CDCL on CEC miters ===";
  let module F = Flow.Make (Aig) in
  let module C = Cec.Make (Aig) (Aig) in
  let module Copy = Convert.Make (Aig) (Aig) in
  let rows = ref [] in
  Printf.printf "%-12s %-14s | %10s %9s %6s %s\n" "benchmark" "kernel"
    "conflicts" "time" "rungs" "result";
  let result_str = function
    | Cec.Equivalent -> "equivalent"
    | Cec.Counterexample _ -> "counterexample"
    | Cec.Unknown -> "unknown"
  in
  let stage name stage_name ((r, rep) : Cec.result * C.report) seconds =
    Printf.printf "%-12s %-14s | %10d %8.3fs %6d %s\n%!" name stage_name
      rep.C.conflicts seconds rep.C.rungs_used (result_str r);
    rows :=
      row name stage_name
        [ ("seconds", Bench_json.Float seconds);
          ("conflicts", Bench_json.Int rep.C.conflicts);
          ("rungs", Bench_json.Int rep.C.rungs_used);
          ("winner", Bench_json.Str rep.C.winner);
          ("result", Bench_json.Str (result_str r)) ]
      :: !rows
  in
  let env = Flow.aig_env () in
  let mig_env = Flow.mig_env () in
  let module Fm = Flow.Make (Mig) in
  let module To_mig = Convert.Make (Aig) (Mig) in
  let module From_mig = Convert.Make (Mig) (Aig) in
  (* two miters per benchmark: against the AIG-optimized copy (mild
     structural divergence) and against a MIG-optimized round trip (deep
     divergence — majority gates re-decomposed into ANDs share almost no
     structure with the original, which is where the kernel earns its
     keep) *)
  let instances =
    List.concat_map
      (fun name ->
        let baseline = Suite.build name in
        let optimized =
          F.run_script env (Copy.convert baseline) Script.compress2rs
        in
        let roundtrip =
          From_mig.convert
            (Fm.run_script mig_env (To_mig.convert baseline) Script.compress2rs)
        in
        [ (name, baseline, optimized); (name ^ "-mig", baseline, roundtrip) ])
      [ "ctrl"; "cavlc"; "int2float"; "dec"; "router" ]
  in
  (* commuted multipliers: a*b against b*a shares no structure, the
     classically hard UNSAT CEC family — this is where learnt-clause
     minimization, tiered deletion and inprocessing pay for themselves *)
  let module Bl = Blocks.Make (Aig) in
  let commuted width =
    let mult swap =
      let t = Aig.create () in
      let a = Bl.input_word t ~width and b = Bl.input_word t ~width in
      Bl.output_word t (if swap then Bl.multiplier t b a else Bl.multiplier t a b);
      t
    in
    (Printf.sprintf "mult%d-comm" width, mult false, mult true)
  in
  let instances = instances @ [ commuted 7; commuted 8 ] in
  List.iter
    (fun (name, a, b) ->
      (* equivalent by construction: the miter is UNSAT; [~ladder:[]] asks
         for a single unbounded attempt so kernels are compared head on *)
      let legacy, t_legacy =
        time_it (fun () ->
            C.check_full ~ladder:[] ~config:Sat.legacy_config a b)
      in
      stage name "legacy" legacy t_legacy;
      let modern, t_modern =
        time_it (fun () ->
            C.check_full ~ladder:[] ~config:Sat.default_config a b)
      in
      stage name "modern" modern t_modern;
      let port, t_port = time_it (fun () -> C.check_full ~jobs:2 a b) in
      stage name "portfolio-j2" port t_port)
    instances;
  let div = Suite.build "div" in
  let opt_div = F.run_script env (Copy.convert div) "rw; bz" in
  let r, t =
    time_it (fun () -> C.check_full ~ladder:[ 10_000; 100_000 ] div opt_div)
  in
  stage "div" "modern-ladder" r t;
  print_newline ();
  Bench_json.write "sat" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Microbenchmarks (Bechamel): the scalability kernels of paper §2.2.    *)
(* -------------------------------------------------------------------- *)

let micro () =
  print_endline "=== Microbenchmarks (paper §2.2 kernels) ===";
  let open Bechamel in
  let net = Suite.build "priority" in
  let module Cuts_a = Cuts.Make (Aig) in
  let module Sim_a = Simulate.Make (Aig) in
  let module Reconv_a = Reconv.Make (Aig) in
  let rng = Random.State.make [| 17 |] in
  let some_gates =
    let gates = ref [] in
    Aig.foreach_gate net (fun n -> gates := n :: !gates);
    let arr = Array.of_list !gates in
    Array.init 64 (fun _ -> arr.(Random.State.int rng (Array.length arr)))
  in
  let tests =
    [
      Test.make ~name:"cut-enumeration(k=4, priority)"
        (Staged.stage (fun () -> ignore (Cuts_a.enumerate net ~k:4 ~cut_limit:8 ())));
      Test.make ~name:"cut-enumeration(k=6, priority)"
        (Staged.stage (fun () -> ignore (Cuts_a.enumerate net ~k:6 ~cut_limit:8 ())));
      Test.make ~name:"specialized-cuts(k=4, aig)"
        (Staged.stage (fun () -> ignore (Rewrite_aig.enumerate net ~cut_limit:8)));
      Test.make ~name:"full-simulation(64 pats)"
        (Staged.stage (fun () ->
             ignore (Sim_a.simulate net (Sim_a.random_values ~num_vars:6 ~seed:3 net))));
      Test.make ~name:"reconv-cut(64 roots)"
        (Staged.stage (fun () ->
             Array.iter
               (fun n -> ignore (Reconv_a.compute net ~max_leaves:8 n))
               some_gates));
      Test.make ~name:"npn-canonize(128 fns, cached)"
        (Staged.stage (fun () ->
             for v = 4096 to 4223 do
               ignore (Kitty.Npn.canonize (Kitty.Tt.of_int64 4 (Int64.of_int v)))
             done));
    ]
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let raw = Benchmark.all cfg [ instance ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-36s %14.0f ns/run\n" name est;
            rows :=
              row "priority" name
                [ ("nodes", Bench_json.Int (Aig.num_gates net));
                  ("seconds", Bench_json.Float (est *. 1e-9)) ]
              :: !rows
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests;
  print_newline ();
  Bench_json.write "micro" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Cuts: dedicated sweep of the cut-enumeration kernel across suite      *)
(* sizes — the perf trail for the signature-accelerated priority-cut     *)
(* engine (see EXPERIMENTS.md, "Cut kernel").                            *)
(* -------------------------------------------------------------------- *)

let cuts_bench () =
  print_endline "=== Cut-enumeration kernel sweep ===";
  let module Cuts_a = Cuts.Make (Aig) in
  Printf.printf "%-12s %8s | %4s %10s %10s %10s\n" "benchmark" "nodes" "k"
    "cuts" "ms/enum" "cuts/s";
  let rows = ref [] in
  List.iter
    (fun name ->
      let net = Suite.build name in
      let nodes = Aig.num_gates net in
      let iters = if nodes > 2000 then 3 else 10 in
      List.iter
        (fun k ->
          (* warm-up enumeration also gives us the cut count *)
          let r = Cuts_a.enumerate net ~k ~cut_limit:8 () in
          let num_cuts = ref 0 in
          Aig.foreach_gate net (fun n ->
              num_cuts := !num_cuts + Array.length (Cuts_a.cuts_array r n));
          let num_cuts = !num_cuts in
          let _, t =
            time_it (fun () ->
                for _ = 1 to iters do
                  ignore (Cuts_a.enumerate net ~k ~cut_limit:8 ())
                done)
          in
          let per = t /. float_of_int iters in
          Printf.printf "%-12s %8d | %4d %10d %10.2f %10.0f\n%!" name nodes k
            num_cuts (per *. 1e3)
            (float_of_int num_cuts /. per);
          rows :=
            row name (Printf.sprintf "k%d" k)
              [ ("nodes", Bench_json.Int nodes);
                ("cuts", Bench_json.Int num_cuts);
                ("seconds", Bench_json.Float per) ]
            :: !rows)
        [ 4; 6 ])
    [ "adder"; "priority"; "sin"; "multiplier"; "voter" ];
  print_newline ();
  Bench_json.write "cuts" (List.rev !rows)

(* -------------------------------------------------------------------- *)
(* Ablations: the design choices DESIGN.md calls out.                    *)
(* -------------------------------------------------------------------- *)

let ablation () =
  print_endline "=== Ablations ===";
  let module F = Flow.Make (Aig) in
  let bench_subset = [ "adder"; "int2float"; "priority"; "sin"; "cavlc" ] in
  let total f =
    List.fold_left (fun acc name -> acc + f (Suite.build name)) 0 bench_subset
  in
  let rows = ref [] in
  let ab ?(benchmark = "subset") stage fields =
    rows := row benchmark stage fields :: !rows
  in
  (* 1: rewriting database vs factored-form fallback only *)
  let env = Flow.aig_env () in
  let with_db = total (fun t -> Aig.num_gates (F.run_script env t "rw; rw")) in
  let no_db_env =
    {
      env with
      Flow.db =
        Database.create { Exact_synth.aig_config with Exact_synth.max_gates = 0 };
    }
  in
  let without_db =
    total (fun t -> Aig.num_gates (F.run_script no_db_env t "rw; rw"))
  in
  Printf.printf
    "rewrite: exact-synthesis db %d gates vs factored fallback %d gates\n"
    with_db without_db;
  ab "rewrite-db" [ ("nodes", Bench_json.Int with_db) ];
  ab "rewrite-factored" [ ("nodes", Bench_json.Int without_db) ];
  (* 2: resubstitution with and without 2-resub *)
  let module Rs = Resub.Make (Aig) in
  let resub_total max_inserted =
    total (fun t ->
        ignore (Rs.run t ~kernel:Resub.And_or ~max_leaves:10 ~max_inserted ());
        Aig.num_gates t)
  in
  let rs1 = resub_total 1 and rs2 = resub_total 2 in
  Printf.printf "resub: k<=1 -> %d gates, k<=2 -> %d gates\n" rs1 rs2;
  ab "resub-k1" [ ("nodes", Bench_json.Int rs1) ];
  ab "resub-k2" [ ("nodes", Bench_json.Int rs2) ];
  (* 3: LUT mapping with and without area recovery *)
  let lut_total iters =
    total (fun t ->
        let m = L.map t ~k:6 ~area_iterations:iters () in
        m.L.lut_count)
  in
  let lm0 = lut_total 0 and lm2 = lut_total 2 in
  Printf.printf "lutmap: no area recovery %d LUTs, 2 area passes %d LUTs\n" lm0
    lm2;
  ab "lutmap-area0" [ ("luts", Bench_json.Int lm0) ];
  ab "lutmap-area2" [ ("luts", Bench_json.Int lm2) ];
  (* 4: balancing inside the flow *)
  let env2 = Flow.aig_env () in
  let with_bal =
    total (fun t -> Aig.num_gates (F.run_script env2 t "bz; rw; rs -c 8; bz"))
  in
  let without_bal =
    total (fun t -> Aig.num_gates (F.run_script env2 t "rw; rs -c 8"))
  in
  Printf.printf "flow: with balancing %d gates, without %d gates\n" with_bal
    without_bal;
  ab "flow-balanced" [ ("nodes", Bench_json.Int with_bal) ];
  ab "flow-unbalanced" [ ("nodes", Bench_json.Int without_bal) ];
  (* 5: MIG rewriting with native MAJ exact synthesis vs AIG-database
     conversion (the containment remark of paper §2.3.3) *)
  let module Fm = Flow.Make (Mig) in
  let module To_mig = Convert.Make (Aig) (Mig) in
  let mig_total env =
    List.fold_left
      (fun acc name ->
        let t = To_mig.convert (Suite.build name) in
        acc + Mig.num_gates (Fm.run_script env t "rw; rw"))
      0 bench_subset
  in
  let native = mig_total (Flow.mig_env ()) in
  let via_aig =
    mig_total
      { (Flow.mig_env ()) with Flow.db = Database.create Exact_synth.aig_config }
  in
  Printf.printf
    "mig rewrite: native MAJ3 db %d gates vs AIG-db conversion %d gates\n"
    native via_aig;
  ab "mig-native-db" [ ("nodes", Bench_json.Int native) ];
  ab "mig-aig-db" [ ("nodes", Bench_json.Int via_aig) ];
  (* 6: resubstitution with observability don't-cares *)
  let module Rs2 = Resub.Make (Aig) in
  let odc_total use_odc =
    total (fun t ->
        ignore (Rs2.run t ~kernel:Resub.And_or ~max_inserted:2 ~use_odc ());
        Aig.num_gates t)
  in
  let odc_no = odc_total false and odc_yes = odc_total true in
  Printf.printf "resub: plain %d gates, with ODCs %d gates\n" odc_no odc_yes;
  ab "resub-plain" [ ("nodes", Bench_json.Int odc_no) ];
  ab "resub-odc" [ ("nodes", Bench_json.Int odc_yes) ];
  (* 7: exact synthesis, incremental vs fence topologies (time per class) *)
  let synth_all strategy =
    let t0 = Unix.gettimeofday () in
    let config = { Exact_synth.aig_config with Exact_synth.strategy } in
    for v = 0 to 255 do
      ignore (Exact_synth.synthesize config (Tt.of_int64 3 (Int64.of_int v)))
    done;
    Unix.gettimeofday () -. t0
  in
  let t_inc = synth_all Exact_synth.Incremental in
  let t_fen = synth_all Exact_synth.Fences in
  Printf.printf
    "exact synthesis of all 256 3-var functions: incremental %.2fs, fences %.2fs\n"
    t_inc t_fen;
  ab "exact-incremental" [ ("seconds", Bench_json.Float t_inc) ];
  ab "exact-fences" [ ("seconds", Bench_json.Float t_fen) ];
  (* 8: MIG algebraic depth rewriting on the carry-chain benchmarks *)
  let module Dm = Depth.Make (Mig) in
  let module Sm = Suite_gen.Make (Mig) in
  List.iter
    (fun name ->
      let t = Sm.build name in
      let before = Dm.depth t in
      let g = Mig.num_gates t in
      let _ = Mig_algebraic.run t ~size_budget:g () in
      Printf.printf "mig algebraic depth (%s): %d -> %d levels (gates %d -> %d)\n"
        name before (Dm.depth t) g (Mig.num_gates t);
      ab ~benchmark:name "mig-algebraic"
        [ ("levels", Bench_json.Int (Dm.depth t));
          ("nodes", Bench_json.Int (Mig.num_gates t)) ])
    [ "adder"; "voter" ];
  print_newline ();
  Bench_json.write "ablation" (List.rev !rows)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "micro" -> micro ()
  | "cuts" -> cuts_bench ()
  | "ablation" -> ablation ()
  | "smoke" -> smoke ()
  | "partition" -> partition_bench ()
  | "sat" -> sat_bench ()
  | "cache" -> cache_bench ()
  | "cost" -> cost_bench ()
  | "all" ->
    micro ();
    cuts_bench ();
    table1 ();
    table2 ();
    ablation ();
    partition_bench ();
    sat_bench ();
    cache_bench ()
  | other ->
    Printf.eprintf
      "unknown bench target %s \
       (table1|table2|micro|cuts|ablation|smoke|partition|sat|cache|cost|all)\n"
      other;
    exit 1
