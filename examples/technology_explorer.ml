(* Technology explorer: the paper's portfolio approach (§3, conclusion).

   The same generic flow runs on AIG, MIG, XAG and XMG representations of
   one design; each result is mapped into 6-LUTs and the best
   representation wins.  Arithmetic circuits tend to favour MIGs (majority
   carries), XOR-rich ones favour XAGs — run it on a multiplier and see.

   Run with:  dune exec examples/technology_explorer.exe -- [benchmark] *)

open Genlog

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "multiplier" in
  if not (List.mem name Suite.names) then begin
    Printf.eprintf "unknown benchmark %s; available: %s\n" name
      (String.concat ", " Suite.names);
    exit 1
  end;
  let baseline = Suite.build name in
  let module D = Depth.Make (Aig) in
  Printf.printf "benchmark %s: %d AND gates, depth %d (AIG baseline)\n\n" name
    (Aig.num_gates baseline) (D.depth baseline);
  Printf.printf "%-6s %10s %8s %8s %10s %9s\n" "rep" "gates" "levels" "6-LUTs"
    "LUT-depth" "time";
  let result = Flow.Portfolio.run baseline in
  List.iter
    (fun (e : Flow.Portfolio.entry) ->
      Printf.printf "%-6s %10d %8d %8d %10d %8.2fs\n" e.representation e.nodes
        e.levels e.luts e.lut_levels e.time)
    result.entries;
  Printf.printf "\nportfolio winner: %s with %d LUTs\n"
    result.best.representation result.best.luts
