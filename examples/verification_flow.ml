(* Verification-centric workflow: SAT sweeping, don't-care optimization and
   equivalence checking on one design.

   Logic synthesis and formal verification share their engines (the paper's
   §2.2 "Boolean reasoning"): this example uses the same CDCL solver for
   three different jobs —

   1. FRAIG-style SAT sweeping merges functionally equivalent nodes that
      structural hashing cannot see;
   2. resubstitution with observability don't-cares rewrites nodes that are
      only partially observable at the outputs;
   3. a final SAT CEC proves the whole pipeline preserved every output.

   Run with:  dune exec examples/verification_flow.exe *)

open Genlog

module Fr = Fraig.Make (Aig)
module Rs = Resub.Make (Aig)
module C = Cec.Make (Aig) (Aig)
module Cl = Convert.Cleanup (Aig)
module D = Depth.Make (Aig)

let report label t =
  Printf.printf "%-28s %5d AND gates, depth %3d\n" label (Aig.num_gates t)
    (D.depth t)

let () =
  (* a design with hidden redundancy: two differently-structured copies of
     an ALU slice, compared against each other *)
  let module B = Blocks.Make (Aig) in
  let t = Aig.create () in
  let a = B.input_word t ~width:8 in
  let b = B.input_word t ~width:8 in
  (* datapath 1: add then subtract the same operand *)
  let sum, _ = B.add t a b in
  let diff, _ = B.subtract t sum b in
  (* datapath 2: the identity, built directly *)
  let equal_bits =
    List.init 8 (fun i -> Aig.complement (Aig.create_xor t diff.(i) a.(i)))
  in
  Aig.create_po t (Aig.create_nary_and t equal_bits);
  B.output_word t sum;
  report "built (a+b, (a+b)-b == a):" t;

  let reference = Cl.cleanup t in

  (* 1. SAT sweeping: (a+b)-b collapses onto a, making the comparator
     constant true *)
  let stats = Fr.run t () in
  let t = Cl.cleanup t in
  Printf.printf "fraig: %d candidate classes, %d proved, %d refuted\n"
    stats.Fr.classes stats.Fr.proved stats.Fr.refuted;
  report "after SAT sweeping:" t;

  (* 2. don't-care-aware resubstitution cleans up what is left *)
  let subs = Rs.run t ~kernel:Resub.And_or ~max_inserted:2 ~use_odc:true () in
  let t = Cl.cleanup t in
  Printf.printf "odc resub: %d substitutions\n" subs;
  report "after ODC resubstitution:" t;

  (* 3. prove the pipeline *)
  (match C.check reference t with
  | Cec.Equivalent -> print_endline "SAT CEC: all outputs equivalent"
  | Cec.Counterexample _ -> print_endline "SAT CEC: NOT equivalent (bug!)"
  | Cec.Unknown -> print_endline "SAT CEC: unknown");

  (* the comparator output must now be the constant true *)
  let po0 = Aig.po_at t 0 in
  if po0 = Aig.constant true then
    print_endline "comparator output proved constant true"
  else
    Printf.printf "comparator output not yet constant (node %d)\n"
      (Aig.node_of_signal po0)
