(* Tests for the flow engine: script parsing, the compress2rs flow on real
   benchmarks with SAT-verified equivalence, the specialized AIG flow, and
   the portfolio. *)

open Network

module F = Flow.Engine.Make (Aig)
module Cec_aa = Algo.Cec.Make (Aig) (Aig)
module Copy = Convert.Make (Aig) (Aig)
module S = Lsgen.Suite.Make (Aig)

let test_script_parse () =
  let cmds = Flow.Script.parse Flow.Script.compress2rs in
  Alcotest.(check int) "18 commands" 18 (List.length cmds);
  Alcotest.(check bool) "starts with balance" true
    (List.hd cmds = Flow.Script.Balance);
  match Flow.Script.parse "rs -c 10 -d 2" with
  | [ Flow.Script.Resub { cut_size = 10; max_inserted = 2 } ] -> ()
  | _ -> Alcotest.fail "rs options not parsed"

let test_script_parse_error () =
  match Flow.Script.parse "frobnicate" with
  | exception Flow.Script.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_script_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "to_string . parse" s
        (String.concat "; "
           (List.map Flow.Script.to_string (Flow.Script.parse s))))
    [ "bz; rw; rwz; rf; rfz; rs -c 8"; "rs -c 10 -d 2" ]

(* the flow must shrink the benchmark and provably preserve its function *)
let flow_check name =
  let baseline = S.build name in
  let work = Copy.convert baseline in
  let env = Flow.Engine.aig_env () in
  let optimized = F.run_script env work Flow.Script.compress_lite in
  Alcotest.(check bool)
    (name ^ " did not grow")
    true
    (Aig.num_gates optimized <= Aig.num_gates baseline);
  (match Aig.check_integrity optimized with
  | [] -> ()
  | errs -> Alcotest.failf "%s integrity: %s" name (String.concat "; " errs));
  match Cec_aa.check baseline optimized with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ -> Alcotest.fail (name ^ ": flow broke the function")
  | Algo.Cec.Unknown -> Alcotest.fail (name ^ ": cec unknown")

let test_flow_small_benchmarks () =
  List.iter flow_check [ "ctrl"; "int2float"; "dec" ]

let test_flow_priority () = flow_check "priority"

let test_specialized_matches_generic () =
  (* the layer-4 specialized flow must agree functionally with the generic
     one (they may differ structurally) *)
  let baseline = S.build "int2float" in
  let g = Copy.convert baseline and s = Copy.convert baseline in
  let env1 = Flow.Engine.aig_env () and env2 = Flow.Engine.aig_env () in
  let g = F.run_script env1 g "rw; rwz" in
  let s = Flow.Specialized_aig.run_script env2 s "rw; rwz" in
  (match Cec_aa.check g s with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "specialized and generic flows diverge");
  (* both should achieve a comparable gate count (within 15%) *)
  let ng = Aig.num_gates g and ns = Aig.num_gates s in
  Alcotest.(check bool)
    (Printf.sprintf "similar quality (%d vs %d)" ng ns)
    true
    (abs (ng - ns) * 100 <= 15 * max ng ns)

let test_portfolio () =
  let baseline = S.build "ctrl" in
  let r = Flow.Portfolio.run ~script:Flow.Script.compress_lite baseline in
  Alcotest.(check int) "four entries" 4 (List.length r.Flow.Portfolio.entries);
  Alcotest.(check (list string))
    "default roster" [ "aig"; "mig"; "xag"; "xmg" ]
    (List.map
       (fun (e : Flow.Portfolio.entry) -> e.representation)
       r.Flow.Portfolio.entries);
  List.iter
    (fun (e : Flow.Portfolio.entry) ->
      Alcotest.(check bool) (e.representation ^ " has luts") true (e.luts > 0))
    r.Flow.Portfolio.entries;
  Alcotest.(check bool) "best is minimal" true
    (List.for_all
       (fun (e : Flow.Portfolio.entry) -> r.Flow.Portfolio.best.luts <= e.luts)
       r.Flow.Portfolio.entries)

let test_flow_mig_xag () =
  (* cross-representation flow equivalence on a small arithmetic block *)
  let baseline = S.build "int2float" in
  let module To_mig = Convert.Make (Aig) (Mig) in
  let module To_xag = Convert.Make (Aig) (Xag) in
  let module Fm = Flow.Engine.Make (Mig) in
  let module Fx = Flow.Engine.Make (Xag) in
  let module Cec_am = Algo.Cec.Make (Aig) (Mig) in
  let module Cec_ax = Algo.Cec.Make (Aig) (Xag) in
  let m = Fm.run_script (Flow.Engine.mig_env ()) (To_mig.convert baseline)
      Flow.Script.compress_lite
  in
  (match Cec_am.check baseline m with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "mig flow broke the function");
  let x = Fx.run_script (Flow.Engine.xag_env ()) (To_xag.convert baseline)
      Flow.Script.compress_lite
  in
  match Cec_ax.check baseline x with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "xag flow broke the function"

let suite =
  [
    Alcotest.test_case "script parse" `Quick test_script_parse;
    Alcotest.test_case "script parse error" `Quick test_script_parse_error;
    Alcotest.test_case "script roundtrip" `Quick test_script_roundtrip;
    Alcotest.test_case "compress_lite on small benchmarks" `Slow test_flow_small_benchmarks;
    Alcotest.test_case "compress_lite on priority" `Slow test_flow_priority;
    Alcotest.test_case "specialized = generic" `Slow test_specialized_matches_generic;
    Alcotest.test_case "portfolio" `Slow test_portfolio;
    Alcotest.test_case "mig/xag flows preserve function" `Slow test_flow_mig_xag;
  ]

(* -- additional coverage -- *)

let test_stats () =
  let t = S.build "ctrl" in
  let s = F.network_stats t in
  Alcotest.(check int) "nodes" (Aig.num_gates t) s.Flow.Engine.nodes;
  let module D = Algo.Depth.Make (Aig) in
  Alcotest.(check int) "levels" (D.depth t) s.Flow.Engine.levels

let test_full_compress2rs_small () =
  (* the exact paper flow (18 commands), end to end, SAT-verified *)
  let baseline = S.build "int2float" in
  let work = Copy.convert baseline in
  let env = Flow.Engine.aig_env () in
  let optimized = F.run_script env work Flow.Script.compress2rs in
  Alcotest.(check bool) "shrank" true
    (Aig.num_gates optimized < Aig.num_gates baseline);
  match Cec_aa.check baseline optimized with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "compress2rs broke int2float"

let test_env_reuse_across_benchmarks () =
  (* one env (and its NPN database) across several benchmarks *)
  let env = Flow.Engine.aig_env () in
  List.iter
    (fun name ->
      let baseline = S.build name in
      let optimized = F.run_script env (Copy.convert baseline) "rw" in
      match Cec_aa.check baseline optimized with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.fail (name ^ ": shared-env rewrite broke the function"))
    [ "ctrl"; "int2float"; "router" ];
  let _, misses, _ = Exact.Database.stats env.Flow.Engine.db in
  Alcotest.(check bool) "database populated" true (misses > 0)

let test_xmg_flow () =
  let baseline = S.build "ctrl" in
  let module To_xmg = Convert.Make (Aig) (Xmg) in
  let module Fg = Flow.Engine.Make (Xmg) in
  let module Cg = Algo.Cec.Make (Aig) (Xmg) in
  let x =
    Fg.run_script (Flow.Engine.xmg_env ()) (To_xmg.convert baseline)
      Flow.Script.compress_lite
  in
  match Cg.check baseline x with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "xmg flow broke the function"

let extra_suite =
  [
    Alcotest.test_case "network stats" `Quick test_stats;
    Alcotest.test_case "full compress2rs (int2float)" `Slow test_full_compress2rs_small;
    Alcotest.test_case "env reuse across benchmarks" `Slow test_env_reuse_across_benchmarks;
    Alcotest.test_case "xmg flow" `Slow test_xmg_flow;
  ]

let suite = suite @ extra_suite
