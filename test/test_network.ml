(* Tests for the network substrate: construction, normalization rules,
   structural hashing, reference counting, substitution. *)

open Network

let test_aig_basic () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  Aig.create_po t f;
  Alcotest.(check int) "two PIs" 2 (Aig.num_pis t);
  Alcotest.(check int) "one PO" 1 (Aig.num_pos t);
  Alcotest.(check int) "one gate" 1 (Aig.num_gates t);
  Alcotest.(check int) "size = const + 2 pis + 1 gate" 4 (Aig.size t)

let test_aig_simplifications () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  Alcotest.(check int) "a & a = a" a (Aig.create_and t a a);
  Alcotest.(check int) "a & !a = 0" (Aig.constant false) (Aig.create_and t a (Aig.complement a));
  Alcotest.(check int) "a & 1 = a" a (Aig.create_and t a (Aig.constant true));
  Alcotest.(check int) "a & 0 = 0" (Aig.constant false) (Aig.create_and t a (Aig.constant false));
  let f1 = Aig.create_and t a b in
  let f2 = Aig.create_and t b a in
  Alcotest.(check int) "strash: ab = ba" f1 f2;
  Alcotest.(check int) "still one gate" 1 (Aig.num_gates t)

let test_aig_xor_maj () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  ignore (Aig.create_xor t a b);
  Alcotest.(check int) "xor = 3 ands" 3 (Aig.num_gates t);
  let t2 = Aig.create () in
  let a = Aig.create_pi t2 and b = Aig.create_pi t2 and c2 = Aig.create_pi t2 in
  ignore c;
  ignore (Aig.create_maj t2 a b c2);
  Alcotest.(check int) "maj = 4 ands" 4 (Aig.num_gates t2)

let test_xag_xor_normalization () =
  let t = Xag.create () in
  let a = Xag.create_pi t and b = Xag.create_pi t in
  let f = Xag.create_xor t a b in
  let g = Xag.create_xor t (Xag.complement a) b in
  Alcotest.(check int) "xor(!a,b) = !xor(a,b)" (Xag.complement f) g;
  Alcotest.(check int) "one gate" 1 (Xag.num_gates t);
  Alcotest.(check int) "xor(a,a) = 0" (Xag.constant false) (Xag.create_xor t a a);
  Alcotest.(check int) "xor(a,!a) = 1" (Xag.constant true)
    (Xag.create_xor t a (Xag.complement a));
  Alcotest.(check int) "xor(a,0) = a" a (Xag.create_xor t a (Xag.constant false));
  Alcotest.(check int) "xor(a,1) = !a" (Xag.complement a)
    (Xag.create_xor t a (Xag.constant true))

let test_mig_normalization () =
  let t = Mig.create () in
  let a = Mig.create_pi t and b = Mig.create_pi t and c = Mig.create_pi t in
  Alcotest.(check int) "maj(a,a,b) = a" a (Mig.create_maj t a a b);
  Alcotest.(check int) "maj(a,!a,c) = c" c (Mig.create_maj t a (Mig.complement a) c);
  let f = Mig.create_maj t a b c in
  let g = Mig.create_maj t c a b in
  Alcotest.(check int) "strash invariant under permutation" f g;
  (* self-duality: maj(!a,!b,!c) = !maj(a,b,c) without a new node *)
  let h = Mig.create_maj t (Mig.complement a) (Mig.complement b) (Mig.complement c) in
  Alcotest.(check int) "self-dual complement" (Mig.complement f) h;
  Alcotest.(check int) "one gate" 1 (Mig.num_gates t)

let test_mig_and_or () =
  let t = Mig.create () in
  let a = Mig.create_pi t and b = Mig.create_pi t in
  let f = Mig.create_and t a b in
  Alcotest.(check int) "and = 1 maj" 1 (Mig.num_gates t);
  let g = Mig.create_or t a b in
  Alcotest.(check int) "or = second maj" 2 (Mig.num_gates t);
  Alcotest.(check bool) "distinct" true (f <> g)

let test_refcounts () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let abc = Aig.create_and t ab c in
  Aig.create_po t abc;
  let n_ab = Aig.node_of_signal ab and n_abc = Aig.node_of_signal abc in
  Alcotest.(check int) "ab referenced once" 1 (Aig.ref_count t n_ab);
  Alcotest.(check int) "abc referenced by PO" 1 (Aig.ref_count t n_abc);
  (* recursive deref/ref preserves counts and measures the MFFC *)
  let freed = Aig.recursive_deref t n_abc in
  Alcotest.(check int) "MFFC below abc has one gate (ab)" 1 freed;
  let added = Aig.recursive_ref t n_abc in
  Alcotest.(check int) "ref restores the same count" freed added;
  Alcotest.(check int) "ref count restored" 1 (Aig.ref_count t n_ab)

let test_substitute_merges () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let f = Aig.create_and t ab c in
  (* a second cone that becomes structurally equal after substitution *)
  let g = Aig.create_and t a c in
  Aig.create_po t f;
  Aig.create_po t g;
  Alcotest.(check int) "3 gates" 3 (Aig.num_gates t);
  (* replace ab by a: f becomes and(a, c) which must merge with g *)
  Aig.substitute_node t (Aig.node_of_signal ab) a;
  Alcotest.(check int) "merged to 1 gate" 1 (Aig.num_gates t);
  Alcotest.(check int) "po0 = po1 after merge" (Aig.po_at t 0) (Aig.po_at t 1);
  Alcotest.(check bool) "old node dead" true (Aig.is_dead t (Aig.node_of_signal ab));
  Alcotest.(check bool) "f node dead" true (Aig.is_dead t (Aig.node_of_signal f))

let test_substitute_cascade_simplify () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let f = Aig.create_and t ab (Aig.complement a) in
  Aig.create_po t f;
  (* substituting ab -> a turns f into and(a, !a) = const0 *)
  Aig.substitute_node t (Aig.node_of_signal ab) a;
  Alcotest.(check int) "po is constant false" (Aig.constant false) (Aig.po_at t 0);
  Alcotest.(check int) "no gates remain" 0 (Aig.num_gates t)

let test_substitute_po_complement () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  Aig.create_po t (Aig.complement ab);
  Aig.substitute_node t (Aig.node_of_signal ab) c;
  Alcotest.(check int) "complement preserved" (Aig.complement c) (Aig.po_at t 0)

let test_klut_folding () =
  let open Kitty in
  let t = Klut.create () in
  let a = Klut.create_pi t and b = Klut.create_pi t in
  (* LUT with a complemented input folds the complement into the table *)
  let and_tt = Tt.(nth_var 2 0 &: nth_var 2 1) in
  let f = Klut.create_lut t [| Klut.complement a; b |] and_tt in
  let g = Klut.create_lut t [| a; b |] Tt.(~:(nth_var 2 0) &: nth_var 2 1) in
  Alcotest.(check int) "complement folded" g f;
  Alcotest.(check int) "one gate" 1 (Klut.num_gates t);
  (* projection LUT simplifies to a signal *)
  let p = Klut.create_lut t [| a; b |] (Tt.nth_var 2 1) in
  Alcotest.(check int) "projection collapses" b p;
  (* constant input gets cofactored away *)
  let q = Klut.create_lut t [| a; Klut.constant true |] and_tt in
  Alcotest.(check int) "cofactored to projection" a q

let test_klut_dedup_fanin () =
  let open Kitty in
  let t = Klut.create () in
  let a = Klut.create_pi t and b = Klut.create_pi t in
  (* lut(a,a,b) with tt = x0 & x1 & x2 must become and(a,b) *)
  let tt3 = Tt.(nth_var 3 0 &: nth_var 3 1 &: nth_var 3 2) in
  let f = Klut.create_lut t [| a; a; b |] tt3 in
  let g = Klut.create_and t a b in
  Alcotest.(check int) "duplicate fanin merged" g f

let test_convert_aig_to_mig () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let f = Aig.create_maj t a b c in
  Aig.create_po t f;
  let module C = Convert.Make (Aig) (Mig) in
  let m = C.convert t in
  Alcotest.(check int) "same PIs" 3 (Mig.num_pis m);
  Alcotest.(check int) "same POs" 1 (Mig.num_pos m)

let test_cleanup_removes_dangling () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  let _dangling = Aig.create_and t a (Aig.complement b) in
  Aig.create_po t f;
  let module C = Convert.Cleanup (Aig) in
  let t' = C.cleanup t in
  Alcotest.(check int) "dangling dropped" 1 (Aig.num_gates t')

let suite =
  [
    Alcotest.test_case "aig basic" `Quick test_aig_basic;
    Alcotest.test_case "aig simplifications" `Quick test_aig_simplifications;
    Alcotest.test_case "aig xor/maj constructors" `Quick test_aig_xor_maj;
    Alcotest.test_case "xag xor normalization" `Quick test_xag_xor_normalization;
    Alcotest.test_case "mig normalization" `Quick test_mig_normalization;
    Alcotest.test_case "mig and/or" `Quick test_mig_and_or;
    Alcotest.test_case "reference counting" `Quick test_refcounts;
    Alcotest.test_case "substitute merges duplicates" `Quick test_substitute_merges;
    Alcotest.test_case "substitute cascades simplification" `Quick test_substitute_cascade_simplify;
    Alcotest.test_case "substitute preserves PO complement" `Quick test_substitute_po_complement;
    Alcotest.test_case "klut folding" `Quick test_klut_folding;
    Alcotest.test_case "klut duplicate fanin" `Quick test_klut_dedup_fanin;
    Alcotest.test_case "convert aig to mig" `Quick test_convert_aig_to_mig;
    Alcotest.test_case "cleanup removes dangling" `Quick test_cleanup_removes_dangling;
  ]

(* -- additional coverage: XMG, n-ary builders, conversions, Build -- *)

(* random networks come from the shared test/gen.ml generator *)

let test_xmg_basics () =
  let t = Xmg.create () in
  let a = Xmg.create_pi t and b = Xmg.create_pi t and c = Xmg.create_pi t in
  let m = Xmg.create_maj t a b c in
  let x = Xmg.create_xor t a b in
  Alcotest.(check int) "two gates" 2 (Xmg.num_gates t);
  Alcotest.(check bool) "maj kind" true
    (Kind.equal (Xmg.gate_kind t (Xmg.node_of_signal m)) Kind.Maj);
  Alcotest.(check bool) "xor kind" true
    (Kind.equal (Xmg.gate_kind t (Xmg.node_of_signal x)) Kind.Xor);
  (* normalization carried over from MIG and XAG *)
  Alcotest.(check int) "maj self-dual"
    (Xmg.complement m)
    (Xmg.create_maj t (Xmg.complement a) (Xmg.complement b) (Xmg.complement c));
  Alcotest.(check int) "xor complement pulled" (Xmg.complement x)
    (Xmg.create_xor t (Xmg.complement a) b)

let test_nary_builders () =
  let t = Aig.create () in
  let inputs = List.init 8 (fun _ -> Aig.create_pi t) in
  let f = Aig.create_nary_and t inputs in
  Aig.create_po t f;
  let module D = Algo.Depth.Make (Aig) in
  (* balanced reduction: 8 inputs -> depth 3, 7 gates *)
  Alcotest.(check int) "7 gates" 7 (Aig.num_gates t);
  Alcotest.(check int) "depth 3" 3 (D.depth t);
  Alcotest.(check int) "empty and = true" (Aig.constant true) (Aig.create_nary_and t []);
  Alcotest.(check int) "empty or = false" (Aig.constant false) (Aig.create_nary_or t []);
  Alcotest.(check int) "empty xor = false" (Aig.constant false) (Aig.create_nary_xor t [])

let test_signal_module () =
  let s = Signal.of_node 21 in
  Alcotest.(check int) "node" 21 (Signal.node s);
  Alcotest.(check bool) "not complemented" false (Signal.is_complemented s);
  let c = Signal.complement s in
  Alcotest.(check bool) "complemented" true (Signal.is_complemented c);
  Alcotest.(check int) "same node" 21 (Signal.node c);
  Alcotest.(check int) "complement involutive" s (Signal.complement c);
  Alcotest.(check int) "complement_if false" s (Signal.complement_if false s);
  Alcotest.(check bool) "const recognized" true (Signal.is_constant (Signal.constant true))

let test_kind_functions () =
  let open Kitty in
  Alcotest.(check bool) "and2" true
    (Tt.equal (Kind.function_of Kind.And 2) Tt.(nth_var 2 0 &: nth_var 2 1));
  Alcotest.(check bool) "xor2" true
    (Tt.equal (Kind.function_of Kind.Xor 2) Tt.(nth_var 2 0 ^: nth_var 2 1));
  Alcotest.(check bool) "maj3" true
    (Tt.equal (Kind.function_of Kind.Maj 3) (Tt.of_hex 3 "e8"))

let test_set_po_refcount () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  Aig.create_po t f;
  Alcotest.(check int) "ref 1" 1 (Aig.ref_count t (Aig.node_of_signal f));
  (* retarget the PO: the and-gate dies *)
  Aig.set_po t 0 a;
  Alcotest.(check bool) "gate dead" true (Aig.is_dead t (Aig.node_of_signal f));
  Alcotest.(check int) "no gates" 0 (Aig.num_gates t);
  Alcotest.(check (list string)) "integrity" [] (Aig.check_integrity t)

let test_take_out_if_dead () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  let g = Aig.create_and t f (Aig.complement a) in
  (* nothing references g: taking it out cascades into f *)
  Aig.take_out_if_dead t (Aig.node_of_signal g);
  Alcotest.(check int) "all gone" 0 (Aig.num_gates t);
  (* taking out a referenced node is a no-op *)
  let f2 = Aig.create_and t a b in
  Aig.create_po t f2;
  Aig.take_out_if_dead t (Aig.node_of_signal f2);
  Alcotest.(check int) "still there" 1 (Aig.num_gates t)

let test_conversion_roundtrips () =
  let module R = Gen.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 77) ~num_pis:5 ~num_gates:40 ~num_pos:3 () in
  let module C = Algo.Cec.Make (Aig) (Aig) in
  let check name back =
    match C.check t back with
    | Algo.Cec.Equivalent -> ()
    | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
      Alcotest.fail (name ^ " roundtrip not equivalent")
  in
  let module Am = Convert.Make (Aig) (Mig) in
  let module Ma = Convert.Make (Mig) (Aig) in
  check "aig->mig->aig" (Ma.convert (Am.convert t));
  let module Ax = Convert.Make (Aig) (Xag) in
  let module Xa = Convert.Make (Xag) (Aig) in
  check "aig->xag->aig" (Xa.convert (Ax.convert t));
  let module Ag = Convert.Make (Aig) (Xmg) in
  let module Ga = Convert.Make (Xmg) (Aig) in
  check "aig->xmg->aig" (Ga.convert (Ag.convert t));
  let module Ak = Convert.Make (Aig) (Klut) in
  let module Ka = Convert.Make (Klut) (Aig) in
  check "aig->klut->aig" (Ka.convert (Ak.convert t))

let test_build_of_tt () =
  (* Build.of_tt realizes arbitrary truth tables through the generic
     constructors; verify by exhaustive simulation in several reps *)
  let open Kitty in
  let rng = Seed.state 23 in
  for _ = 1 to 25 do
    let v = Random.State.int rng 65536 in
    let f = Tt.of_int64 4 (Int64.of_int v) in
    let check_rep name (module N : Intf.NETWORK) =
      let module B = Build.Make (N) in
      let module S = Algo.Simulate.Make (N) in
      let t = N.create () in
      let inputs = Array.init 4 (fun _ -> N.create_pi t) in
      let s = B.of_tt t inputs f in
      N.create_po t s;
      let out = (S.output_functions t).(0) in
      if not (Tt.equal out f) then
        Alcotest.failf "%s: of_tt wrong for %s" name (Tt.to_hex f)
    in
    check_rep "aig" (module Aig);
    check_rep "mig" (module Mig);
    check_rep "xmg" (module Xmg)
  done

let test_pi_index () =
  let t = Aig.create () in
  let pis = Array.init 5 (fun _ -> Aig.create_pi t) in
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "pi index" i (Aig.pi_index t (Aig.node_of_signal s)))
    pis

let test_integrity_on_random () =
  let module R = Gen.Make (Mig) in
  let t =
    R.generate ~use_maj:true ~seed:(Seed.get 5) ~num_pis:6 ~num_gates:80
      ~num_pos:5 ()
  in
  Alcotest.(check (list string)) "mig integrity" [] (Mig.check_integrity t)

let extra_suite =
  [
    Alcotest.test_case "xmg basics" `Quick test_xmg_basics;
    Alcotest.test_case "n-ary builders" `Quick test_nary_builders;
    Alcotest.test_case "signal module" `Quick test_signal_module;
    Alcotest.test_case "kind functions" `Quick test_kind_functions;
    Alcotest.test_case "set_po refcount" `Quick test_set_po_refcount;
    Alcotest.test_case "take_out_if_dead" `Quick test_take_out_if_dead;
    Alcotest.test_case "conversion roundtrips" `Quick test_conversion_roundtrips;
    Alcotest.test_case "build of_tt across reps" `Quick test_build_of_tt;
    Alcotest.test_case "pi_index" `Quick test_pi_index;
    Alcotest.test_case "integrity on random mig" `Quick test_integrity_on_random;
  ]

let suite = suite @ extra_suite
