(* Tests for the fault-tolerant execution layer: the deterministic
   injection registry itself, per-job isolation and retry in Parmap, the
   engine's checkpoint/degrade path, CEC's anomaly fallback, partition
   failure containment, and a seeded end-to-end fuzz asserting the
   invariant the whole layer exists for — every run ends in either a
   CEC-equivalent output or a clean, marked degradation. *)

open Network
module Fault = Flow.Fault
module F = Flow.Engine.Make (Aig)
module P = Flow.Partition.Make (Aig)
module Cec_aa = Algo.Cec.Make (Aig) (Aig)
module Copy = Convert.Make (Aig) (Aig)
module S = Lsgen.Suite.Make (Aig)
module G = Gen.Make (Aig)

(* Every test arms its own spec and disarms on the way out, so no fault
   configuration leaks into other suites (or in from GENLOG_FAULTS). *)
let with_faults ?seed spec f =
  (match Fault.configure ?seed spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Fault.disable f

let check_equiv msg a b =
  match Cec_aa.check a b with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ -> Alcotest.fail (msg ^ ": not equivalent")
  | Algo.Cec.Unknown -> Alcotest.fail (msg ^ ": cec unknown")

(* -- registry -- *)

let test_disabled_noop () =
  Fault.disable ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Alcotest.(check bool) "hit is false" false (Fault.hit "parmap.job");
  Fault.fire "parmap.job" (* must not raise *)

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Ok () -> Alcotest.failf "accepted %S" spec
      | Error _ -> ())
    [ "parmap.job"; "p:2.0"; "p:-1"; "p:0.5:-3"; ":0.5"; "p:0.5:x" ];
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Ok () -> Fault.disable ()
      | Error e -> Alcotest.failf "rejected %S: %s" spec e)
    [ "p:0"; "p:1"; "p:0.25"; "a:0.1,b:1:3"; " a:0.5 , b:0 "; "" ]

let test_deterministic_sequence () =
  let draw_seq seed n =
    with_faults ~seed "p:0.5" (fun () ->
        List.init n (fun _ -> Fault.hit "p"))
  in
  let a = draw_seq 42 200 in
  Alcotest.(check (list bool)) "same seed, same sequence" a (draw_seq 42 200);
  Alcotest.(check bool)
    "different seed differs" true
    (a <> draw_seq 43 200);
  Alcotest.(check bool)
    "mid rate in band" true
    (let fires = List.length (List.filter Fun.id a) in
     fires > 50 && fires < 150)

let test_rate_extremes () =
  with_faults "p:0" (fun () ->
      for _ = 1 to 100 do
        Alcotest.(check bool) "rate 0 never fires" false (Fault.hit "p")
      done);
  with_faults "p:1" (fun () ->
      for _ = 1 to 100 do
        Alcotest.(check bool) "rate 1 always fires" true (Fault.hit "p")
      done);
  with_faults "p:1" (fun () ->
      Alcotest.(check bool) "unknown point never fires" false (Fault.hit "q"))

let test_max_fires_cap () =
  with_faults "p:1:3" (fun () ->
      let fires = List.init 10 (fun _ -> Fault.hit "p") in
      Alcotest.(check (list bool))
        "exactly the first 3 draws fire"
        [ true; true; true; false; false; false; false; false; false; false ]
        fires;
      match Fault.counts () with
      | [ ("p", draws, fired) ] ->
        Alcotest.(check int) "draws counted" 10 draws;
        Alcotest.(check int) "fires clamped to cap" 3 fired;
        Alcotest.(check bool) "fired()" true (Fault.fired ())
      | _ -> Alcotest.fail "counts shape")

let test_fire_raises () =
  with_faults "p:1:1" (fun () ->
      (match Fault.fire "p" with
      | () -> Alcotest.fail "expected Injected"
      | exception Fault.Injected "p" -> ());
      Fault.fire "p" (* cap reached: second call is a no-op *))

(* -- parmap isolation -- *)

let test_parmap_isolation () =
  let items = Array.init 8 Fun.id in
  let results, _ =
    Flow.Parmap.map_results ~jobs:3
      ~init:(fun _ -> ())
      ~f:(fun () i -> if i = 5 then failwith "boom" else i * i)
      items
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "good item" (i * i) v
      | Error (e : Flow.Parmap.job_error) ->
        Alcotest.(check int) "failing index preserved" 5 e.err_index;
        Alcotest.(check int) "one attempt" 1 e.err_attempts;
        Alcotest.(check bool)
          "exception preserved" true
          (match e.err_exn with
          | Failure m -> String.equal m "boom"
          | _ -> false))
    results;
  let bad = Array.to_list results |> List.filter Result.is_error in
  Alcotest.(check int) "exactly one failure" 1 (List.length bad)

let test_parmap_retry () =
  (* per-item failure counters: each item fails (attempts-needed - 1)
     times before succeeding, so retry budget 2 rescues them all *)
  let tries = Array.init 6 (fun _ -> Atomic.make 0) in
  let f () i =
    let a = Atomic.fetch_and_add tries.(i) 1 in
    if a < i mod 3 then failwith "transient" else i
  in
  let results, _ =
    Flow.Parmap.map_results ~jobs:2 ~retries:2 ~init:(fun _ -> ()) ~f
      (Array.init 6 Fun.id)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "value" i v
      | Error _ -> Alcotest.failf "item %d not rescued by retry" i)
    results;
  (* with retries:0 the same workload loses items needing >1 attempt *)
  Array.iter (fun c -> Atomic.set c 0) tries;
  let results0, _ =
    Flow.Parmap.map_results ~jobs:2 ~init:(fun _ -> ()) ~f
      (Array.init 6 Fun.id)
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "item %d" i)
        (i mod 3 = 0) (Result.is_ok r))
    results0

let test_parmap_map_raises_job_failed () =
  match
    Flow.Parmap.map ~jobs:2
      ~init:(fun _ -> ())
      ~f:(fun () i -> if i = 2 then raise Exit else i)
      (Array.init 4 Fun.id)
  with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Flow.Parmap.Job_failed (2, Exit) -> ()

let test_parmap_injected_fault_isolated () =
  with_faults "parmap.job:1:2" (fun () ->
      let results, _ =
        Flow.Parmap.map_results ~jobs:1
          ~init:(fun _ -> ())
          ~f:(fun () i -> i)
          (Array.init 5 Fun.id)
      in
      let failed =
        Array.to_list results
        |> List.filter (fun r ->
               match r with
               | Error { Flow.Parmap.err_exn = Fault.Injected "parmap.job"; _ }
                 ->
                 true
               | _ -> false)
      in
      Alcotest.(check int) "cap bounds the damage" 2 (List.length failed);
      (* the same spec with a retry budget fires the capped faults into
         retries and every item still succeeds *)
      Fault.disable ();
      (match Fault.configure "parmap.job:1:2" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let results, _ =
        Flow.Parmap.map_results ~jobs:1 ~retries:2
          ~init:(fun _ -> ())
          ~f:(fun () i -> i)
          (Array.init 5 Fun.id)
      in
      Array.iter
        (fun r ->
          Alcotest.(check bool) "retry absorbs the fault" true (Result.is_ok r))
        results)

let test_parmap_stop_cancels () =
  let results, _ =
    Flow.Parmap.map_results ~jobs:1
      ~stop:(fun () -> true)
      ~init:(fun _ -> ())
      ~f:(fun () i -> i)
      (Array.init 3 Fun.id)
  in
  Array.iter
    (fun r ->
      match r with
      | Error { Flow.Parmap.err_exn = Flow.Parmap.Cancelled; err_attempts = 0; _ }
        ->
        ()
      | _ -> Alcotest.fail "expected Cancelled with 0 attempts")
    results

(* -- engine checkpoint / degrade -- *)

let test_engine_pass_exception_degrades () =
  let baseline = S.build "ctrl" in
  with_faults "engine.pass:1" (fun () ->
      let env = Flow.Engine.aig_env () in
      let r, degs =
        F.run_script_safe env (Copy.convert baseline) "bz; rw; rf"
      in
      Alcotest.(check int) "every command degraded" 3 (List.length degs);
      List.iter
        (fun d ->
          Alcotest.(check string) "reason" "exception" d.Flow.Engine.d_reason)
        degs;
      check_equiv "best-so-far is the input" baseline r)

let test_engine_deadline_degrades () =
  let baseline = S.build "ctrl" in
  let env = Flow.Engine.aig_env () in
  let r, degs =
    F.run_script_safe env
      ~deadline:(Unix.gettimeofday () -. 1.)
      (Copy.convert baseline) "bz; rw; rf"
  in
  (match degs with
  | [ d ] -> Alcotest.(check string) "reason" "deadline" d.Flow.Engine.d_reason
  | _ -> Alcotest.failf "expected one deadline marker, got %d"
           (List.length degs));
  check_equiv "deadline returns valid network" baseline r

let test_engine_stop_degrades () =
  let baseline = S.build "ctrl" in
  let env = Flow.Engine.aig_env () in
  let r, degs =
    F.run_script_safe env
      ~stop:(fun () -> true)
      (Copy.convert baseline) "bz; rw"
  in
  (match degs with
  | [ d ] ->
    Alcotest.(check string) "reason" "interrupt" d.Flow.Engine.d_reason
  | _ -> Alcotest.fail "expected one interrupt marker");
  check_equiv "interrupt returns valid network" baseline r

let test_engine_clean_run_no_markers () =
  let baseline = S.build "ctrl" in
  let env = Flow.Engine.aig_env () in
  let r, degs = F.run_script_safe env (Copy.convert baseline) "bz; rw" in
  Alcotest.(check int) "no degradations" 0 (List.length degs);
  check_equiv "clean run equivalent" baseline r;
  Alcotest.(check bool) "clean run optimizes" true
    (Aig.num_gates r <= Aig.num_gates baseline)

(* -- sat / cec fault containment -- *)

let test_cec_kernel_fallback () =
  let a = S.build "ctrl" in
  let b = Copy.convert a in
  (* one injected solver fault: the modern kernel's attempt dies, the
     legacy re-encode answers *)
  with_faults "sat.solve:1:1" (fun () ->
      let r, rep = Cec_aa.check_full a b in
      Alcotest.(check bool) "still equivalent" true (r = Algo.Cec.Equivalent);
      Alcotest.(check string)
        "legacy kernel answered" Satkit.Solver.legacy_config.Satkit.Solver.name
        rep.Cec_aa.winner)

let test_cec_anomaly_unknown () =
  let a = S.build "ctrl" in
  let b = Copy.convert a in
  (* every solve attempt dies: the check must degrade to Unknown, not
     raise into the caller's guards *)
  with_faults "sat.solve:1" (fun () ->
      let r, rep = Cec_aa.check_full a b in
      Alcotest.(check bool) "unknown, not raised" true (r = Algo.Cec.Unknown);
      Alcotest.(check string) "marked anomaly" "anomaly" rep.Cec_aa.winner)

let test_solver_deadline_unknown () =
  (* a hard pigeonhole instance with an already-expired deadline must
     give up cleanly *)
  let cnf_dir = if Sys.file_exists "cnf" then "cnf" else "test/cnf" in
  let s =
    Satkit.Dimacs.load_file (Filename.concat cnf_dir "php87_unsat.cnf")
  in
  match Satkit.Solver.solve ~deadline:(Unix.gettimeofday () -. 1.) s with
  | Satkit.Solver.Unknown -> ()
  | _ -> Alcotest.fail "expired deadline must answer Unknown"

(* -- partition containment -- *)

let test_partition_all_jobs_fail () =
  let baseline = S.build "int2float" in
  with_faults "parmap.job:1" (fun () ->
      let r, st =
        P.run ~size_cap:60 ~jobs:2
          ~script:"rw"
          ~make_env:(fun () -> Flow.Engine.aig_env ())
          (Copy.convert baseline)
      in
      Alcotest.(check bool) "pieces exist" true (st.P.partitions > 0);
      Alcotest.(check int) "every job failed" st.P.partitions st.P.failed;
      Alcotest.(check int) "nothing accepted" 0 st.P.accepted;
      check_equiv "original cones kept" baseline r)

let test_partition_stitch_fallback () =
  let baseline = S.build "int2float" in
  with_faults "partition.stitch:1" (fun () ->
      let r, st =
        P.run ~size_cap:60 ~jobs:2 ~script:"rw"
          ~make_env:(fun () -> Flow.Engine.aig_env ())
          (Copy.convert baseline)
      in
      Alcotest.(check int) "identity fallback" 2 st.P.stitch_fallbacks;
      check_equiv "fallback preserves function" baseline r)

let test_partition_retry_rescues () =
  let baseline = S.build "int2float" in
  (* rate 1, cap 2: both fires land on the first piece's first two
     attempts, so a budget of two retries (three attempts) absorbs them *)
  with_faults "parmap.job:1:2" (fun () ->
      let r, st =
        P.run ~size_cap:60 ~jobs:1 ~retries:2 ~script:"rw"
          ~make_env:(fun () -> Flow.Engine.aig_env ())
          (Copy.convert baseline)
      in
      Alcotest.(check int) "retries absorbed the capped faults" 0 st.P.failed;
      check_equiv "equivalent" baseline r)

(* -- store crash points -- *)

(* covered in depth by Test_store; here only the registry wiring *)

(* -- trace round-trip -- *)

let test_degraded_trace_round_trip () =
  let t = Obs.Trace.create ~flow:"ft" () in
  Obs.Trace.pass_begin t ~pass:"rw" ~index:0 ~gates:100 ~depth:10;
  Obs.Trace.degraded t ~pass:"rw" ~reason:"deadline" ~detail:"budget 0.5s";
  Obs.Trace.pass_end t ~pass:"rw" ~index:0 ~gates:90 ~depth:10 ~elapsed:0.01 ();
  Alcotest.(check int) "counted" 1 (Obs.Trace.degraded_count t);
  (match Obs.Trace.degraded_events t with
  | [ ("rw", "deadline", "budget 0.5s") ] -> ()
  | _ -> Alcotest.fail "degraded_events shape");
  let path = Filename.temp_file "genlog_ft" ".jsonl" in
  Obs.Trace.write_file t path;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t' = Obs.Report.load_trace path in
      Alcotest.(check int)
        "marker survives JSONL" 1
        (Obs.Trace.degraded_count t');
      let rows = Obs.Trace.summarize t' in
      let deg =
        List.fold_left
          (fun acc r -> acc + r.Obs.Trace.row_degraded)
          0 rows
      in
      Alcotest.(check int) "attributed to the pass row" 1 deg)

(* -- end-to-end fuzz: the layer's invariant -- *)

let test_fault_fuzz () =
  let iters = 4 * Seed.fuzz_iters in
  let base_seed = Seed.get 0xfa17 in
  for i = 1 to iters do
    let seed = base_seed + i in
    let net =
      G.generate ~seed ~num_pis:6 ~num_gates:(40 + (seed mod 40)) ~num_pos:4 ()
    in
    (* arm a broad mid-rate spec over every execution point *)
    with_faults ~seed
      "engine.pass:0.3,parmap.job:0.3,partition.stitch:0.2,sat.solve:0.05:2"
      (fun () ->
        let env = Flow.Engine.aig_env () in
        let r, degs = F.run_script_safe env (Copy.convert net) "bz; rw; rf" in
        let p, _ =
          P.run ~size_cap:30 ~jobs:2 ~retries:1 ~script:"rw"
            ~make_env:(fun () -> Flow.Engine.aig_env ())
            (Copy.convert net)
        in
        (* disarm before the oracle so the verification itself is clean *)
        Fault.disable ();
        check_equiv
          (Printf.sprintf "seed %d: safe engine (degs = %d)" seed
             (List.length degs))
          net r;
        check_equiv (Printf.sprintf "seed %d: partition" seed) net p)
  done

let suite =
  [
    Alcotest.test_case "disabled registry is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "spec parse errors" `Quick test_parse_errors;
    Alcotest.test_case "deterministic in the seed" `Quick
      test_deterministic_sequence;
    Alcotest.test_case "rate extremes" `Quick test_rate_extremes;
    Alcotest.test_case "max_fires cap" `Quick test_max_fires_cap;
    Alcotest.test_case "fire raises Injected" `Quick test_fire_raises;
    Alcotest.test_case "parmap isolates one bad item" `Quick
      test_parmap_isolation;
    Alcotest.test_case "parmap retry rescues transients" `Quick
      test_parmap_retry;
    Alcotest.test_case "parmap map raises Job_failed" `Quick
      test_parmap_map_raises_job_failed;
    Alcotest.test_case "injected parmap fault isolated" `Quick
      test_parmap_injected_fault_isolated;
    Alcotest.test_case "stop cancels cleanly" `Quick test_parmap_stop_cancels;
    Alcotest.test_case "engine: pass exception degrades" `Slow
      test_engine_pass_exception_degrades;
    Alcotest.test_case "engine: deadline degrades" `Quick
      test_engine_deadline_degrades;
    Alcotest.test_case "engine: stop degrades" `Quick test_engine_stop_degrades;
    Alcotest.test_case "engine: clean run has no markers" `Slow
      test_engine_clean_run_no_markers;
    Alcotest.test_case "cec: injected fault falls back to legacy" `Slow
      test_cec_kernel_fallback;
    Alcotest.test_case "cec: total anomaly answers Unknown" `Slow
      test_cec_anomaly_unknown;
    Alcotest.test_case "solver: expired deadline answers Unknown" `Quick
      test_solver_deadline_unknown;
    Alcotest.test_case "partition: all jobs fail, cones kept" `Slow
      test_partition_all_jobs_fail;
    Alcotest.test_case "partition: stitch fallback chain" `Slow
      test_partition_stitch_fallback;
    Alcotest.test_case "partition: retry rescues capped faults" `Slow
      test_partition_retry_rescues;
    Alcotest.test_case "degraded trace round-trip" `Quick
      test_degraded_trace_round_trip;
    Alcotest.test_case "fault fuzz: equivalent or cleanly degraded" `Slow
      test_fault_fuzz;
  ]
