(* Tests for the I/O formats: AIGER and BLIF roundtrips are verified by SAT
   equivalence; BENCH and DOT writers by structural sanity. *)

open Network

module Cec_aa = Algo.Cec.Make (Aig) (Aig)
module Cec_kk = Algo.Cec.Make (Klut) (Klut)

let small_aig () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let f = Aig.create_maj t a b c in
  let g = Aig.create_xor t a (Aig.complement b) in
  Aig.create_po t f;
  Aig.create_po t (Aig.complement g);
  t

let roundtrip_aiger t =
  let path = Filename.temp_file "genlog" ".aag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lsio.Aiger.write_file t path;
      Lsio.Aiger.read_file path)

let test_aiger_roundtrip () =
  let t = small_aig () in
  let t' = roundtrip_aiger t in
  Alcotest.(check int) "pis" (Aig.num_pis t) (Aig.num_pis t');
  Alcotest.(check int) "pos" (Aig.num_pos t) (Aig.num_pos t');
  Alcotest.(check int) "gates" (Aig.num_gates t) (Aig.num_gates t');
  match Cec_aa.check t t' with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "aiger roundtrip not equivalent"

let test_aiger_roundtrip_benchmark () =
  let module S = Lsgen.Suite.Make (Aig) in
  let t = S.build "int2float" in
  let t' = roundtrip_aiger t in
  match Cec_aa.check t t' with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "benchmark aiger roundtrip not equivalent"

let test_aiger_rejects_garbage () =
  let path = Filename.temp_file "genlog" ".aag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not an aiger file\n";
      close_out oc;
      match Lsio.Aiger.read_file path with
      | exception Lsio.Aiger.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected parse error")

let mapped_klut () =
  let module S = Lsgen.Suite.Make (Aig) in
  let module L = Algo.Lutmap.Make (Aig) in
  let t = S.build "ctrl" in
  let m = L.map t ~k:4 () in
  m.L.klut

let test_blif_roundtrip () =
  let k = mapped_klut () in
  let path = Filename.temp_file "genlog" ".blif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lsio.Blif.write_file k path;
      let k' = Lsio.Blif.read_file path in
      Alcotest.(check int) "pis" (Klut.num_pis k) (Klut.num_pis k');
      Alcotest.(check int) "pos" (Klut.num_pos k) (Klut.num_pos k');
      match Cec_kk.check k k' with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.fail "blif roundtrip not equivalent")

let test_bench_writer () =
  let t = small_aig () in
  let module W = Lsio.Bench.Make (Aig) in
  let path = Filename.temp_file "genlog" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.write_file t path;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let contains sub =
        let n = String.length sub and m = String.length content in
        let rec go i = i + n <= m && (String.sub content i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "has inputs" true
        (contains "INPUT(" && contains "OUTPUT(" && contains "AND("))

let test_dot_writer () =
  let t = small_aig () in
  let module W = Lsio.Dot.Make (Aig) in
  let path = Filename.temp_file "genlog" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.write_file t path;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "digraph" true
        (String.length content > 10 && String.sub content 0 7 = "digraph"))

let suite =
  [
    Alcotest.test_case "aiger roundtrip" `Quick test_aiger_roundtrip;
    Alcotest.test_case "aiger roundtrip benchmark" `Quick test_aiger_roundtrip_benchmark;
    Alcotest.test_case "aiger parse error" `Quick test_aiger_rejects_garbage;
    Alcotest.test_case "blif roundtrip" `Quick test_blif_roundtrip;
    Alcotest.test_case "bench writer" `Quick test_bench_writer;
    Alcotest.test_case "dot writer" `Quick test_dot_writer;
  ]

(* -- additional coverage -- *)

let test_blif_complemented_po () =
  (* complemented PO signals must roundtrip through the inverter LUT *)
  let open Kitty in
  let t = Klut.create () in
  let a = Klut.create_pi t and b = Klut.create_pi t in
  let f = Klut.create_lut t [| a; b |] Tt.(nth_var 2 0 &: nth_var 2 1) in
  Klut.create_po t (Klut.complement f);
  Klut.create_po t f;
  let path = Filename.temp_file "genlog" ".blif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lsio.Blif.write_file t path;
      let t' = Lsio.Blif.read_file path in
      match Cec_kk.check t t' with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.fail "complemented-PO blif roundtrip failed")

let test_blif_constant_po () =
  let t = Klut.create () in
  let _a = Klut.create_pi t in
  Klut.create_po t (Klut.constant true);
  Klut.create_po t (Klut.constant false);
  let path = Filename.temp_file "genlog" ".blif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lsio.Blif.write_file t path;
      let t' = Lsio.Blif.read_file path in
      Alcotest.(check int) "pos" 2 (Klut.num_pos t'))

let test_aiger_all_benchmarks () =
  (* every suite benchmark roundtrips through AIGER with equal counts *)
  let module S = Lsgen.Suite.Make (Network.Aig) in
  List.iter
    (fun name ->
      let t = S.build name in
      let t' = roundtrip_aiger t in
      Alcotest.(check int) (name ^ " pis") (Aig.num_pis t) (Aig.num_pis t');
      Alcotest.(check int) (name ^ " pos") (Aig.num_pos t) (Aig.num_pos t'))
    [ "adder"; "bar"; "dec"; "priority"; "router"; "ctrl"; "int2float" ]

let test_bench_writer_klut () =
  let open Kitty in
  let t = Klut.create () in
  let a = Klut.create_pi t and b = Klut.create_pi t and c = Klut.create_pi t in
  let f = Klut.create_lut t [| a; b; c |] (Tt.of_hex 3 "e8") in
  Klut.create_po t f;
  let module W = Lsio.Bench.Make (Klut) in
  let path = Filename.temp_file "genlog" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.write_file t path;
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let contains sub =
        let n = String.length sub and m = String.length content in
        let rec go i = i + n <= m && (String.sub content i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "lut line present" true (contains "LUT 0xe8"))

(* -- round-trip properties: write -> read -> CEC-equal, on random
   networks with shrinkable parameters -- *)

module G = Gen.Make (Aig)
module Cec_ak = Algo.Cec.Make (Aig) (Klut)

let random_aig (seed, num_gates) =
  G.generate ~seed ~num_pis:5 ~num_gates ~num_pos:3 ()

let with_temp_file ext f =
  let path = Filename.temp_file "genlog" ext in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let prop_aiger_roundtrip =
  QCheck.Test.make ~name:"aiger roundtrip equivalent" ~count:15
    (Gen.arb_params ())
    (fun params ->
      let t = random_aig params in
      let t' = roundtrip_aiger t in
      Cec_aa.check t t' = Algo.Cec.Equivalent)

let prop_blif_roundtrip =
  QCheck.Test.make ~name:"blif roundtrip equivalent" ~count:15
    (Gen.arb_params ())
    (fun params ->
      let t = random_aig params in
      let module L = Algo.Lutmap.Make (Aig) in
      let k = (L.map t ~k:4 ()).L.klut in
      with_temp_file ".blif" (fun path ->
          Lsio.Blif.write_file k path;
          Cec_kk.check k (Lsio.Blif.read_file path) = Algo.Cec.Equivalent))

let prop_bench_roundtrip =
  (* the BENCH writer is generic; the reader targets k-LUT networks, so
     the oracle is a cross-representation CEC *)
  QCheck.Test.make ~name:"bench roundtrip equivalent" ~count:15
    (Gen.arb_params ())
    (fun params ->
      let t = random_aig params in
      let module W = Lsio.Bench.Make (Aig) in
      with_temp_file ".bench" (fun path ->
          W.write_file t path;
          Cec_ak.check t (Lsio.Bench.read_file path) = Algo.Cec.Equivalent))

let prop_bench_roundtrip_klut =
  (* LUT lines (hex tables) survive the roundtrip *)
  QCheck.Test.make ~name:"bench roundtrip klut equivalent" ~count:15
    (Gen.arb_params ())
    (fun params ->
      let t = random_aig params in
      let module L = Algo.Lutmap.Make (Aig) in
      let k = (L.map t ~k:4 ()).L.klut in
      let module W = Lsio.Bench.Make (Klut) in
      with_temp_file ".bench" (fun path ->
          W.write_file k path;
          Cec_kk.check k (Lsio.Bench.read_file path) = Algo.Cec.Equivalent))

let test_bench_reader_mig () =
  (* MAJ gates expand to AND/OR in the writer; the reader must still see
     an equivalent function *)
  let module R = Gen.Make (Mig) in
  let module W = Lsio.Bench.Make (Mig) in
  let module C = Algo.Cec.Make (Mig) (Klut) in
  let t =
    R.generate ~use_maj:true ~seed:(Seed.get 33) ~num_pis:5 ~num_gates:40
      ~num_pos:3 ()
  in
  with_temp_file ".bench" (fun path ->
      W.write_file t path;
      match C.check t (Lsio.Bench.read_file path) with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.fail "mig bench roundtrip not equivalent")

let test_bench_reader_rejects_garbage () =
  with_temp_file ".bench" (fun path ->
      let oc = open_out path in
      output_string oc "x = FROB(a, b)\n";
      close_out oc;
      match Lsio.Bench.read_file path with
      | exception Lsio.Bench.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected parse error")

let extra_suite =
  [
    Alcotest.test_case "blif complemented po" `Quick test_blif_complemented_po;
    Alcotest.test_case "blif constant po" `Quick test_blif_constant_po;
    Alcotest.test_case "aiger all benchmarks" `Slow test_aiger_all_benchmarks;
    Alcotest.test_case "bench writer klut" `Quick test_bench_writer_klut;
    QCheck_alcotest.to_alcotest prop_aiger_roundtrip;
    QCheck_alcotest.to_alcotest prop_blif_roundtrip;
    QCheck_alcotest.to_alcotest prop_bench_roundtrip;
    QCheck_alcotest.to_alcotest prop_bench_roundtrip_klut;
    Alcotest.test_case "bench reader mig" `Quick test_bench_reader_mig;
    Alcotest.test_case "bench reader parse error" `Quick
      test_bench_reader_rejects_garbage;
  ]

let suite = suite @ extra_suite
