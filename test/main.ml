let () =
  Alcotest.run "genlog"
    [
      ("kitty", Test_kitty.suite);
      ("network", Test_network.suite);
      ("satkit", Test_satkit.suite);
      ("dimacs", Test_dimacs.suite);
      ("exact", Test_exact.suite);
      ("store", Test_store.suite);
      ("algo", Test_algo.suite);
      ("lsgen", Test_lsgen.suite);
      ("lsio", Test_lsio.suite);
      ("flow", Test_flow.suite);
      ("run_config", Test_run_config.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("telemetry", Test_telemetry.suite);
      ("capabilities", Test_capabilities.suite);
      ("extensions", Test_extensions.suite);
      ("fault", Test_fault.suite);
      ("cost", Test_cost.suite);
      ("golden", Test_golden.suite);
      ("equiv", Test_equiv.suite);
      ("props", Test_props.suite);
    ]
