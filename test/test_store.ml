(* Robustness tests for the persistent exact-synthesis store: round-trip,
   torn-tail recovery, corrupt-entry skipping, multi-writer appends,
   compaction, and the domain-fingerprint guard. *)

open Kitty

let config = Exact.Synth.xag_config

let fresh_path () =
  let path = Filename.temp_file "genlog_store" ".glxs" in
  Sys.remove path;
  path

(* A handful of 3-variable functions spanning several NPN classes; cheap
   to synthesize under the XAG config. *)
let vals = [ 0x80; 0x96; 0xe8; 0x1e; 0x6a; 0xca ]

let lookup_all db =
  List.iter
    (fun v ->
      ignore (Exact.Database.lookup db (Tt.of_int64 3 (Int64.of_int v))))
    vals

(* Build a store at [path] holding every class [lookup_all] touches;
   returns the class count. *)
let populate path =
  let db = Exact.Database.create ~store:path config in
  lookup_all db;
  Exact.Database.flush db;
  Exact.Database.size db

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))

let write_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_round_trip () =
  let path = fresh_path () in
  let db = Exact.Database.create ~store:path config in
  lookup_all db;
  let classes = Exact.Database.size db in
  Alcotest.(check bool) "cold run misses" true (Exact.Database.misses db > 0);
  Exact.Database.flush db;
  let db2 = Exact.Database.create ~store:path config in
  Alcotest.(check int) "all classes reloaded" classes (Exact.Database.size db2);
  lookup_all db2;
  Alcotest.(check int) "warm run: zero misses" 0 (Exact.Database.misses db2);
  Alcotest.(check bool) "warm run hits" true (Exact.Database.hits db2 > 0);
  (* both databases answer identically *)
  List.iter
    (fun v ->
      let f = Tt.of_int64 3 (Int64.of_int v) in
      let r1, _ = Exact.Database.lookup db f in
      let r2, _ = Exact.Database.lookup db2 f in
      Alcotest.(check bool) "same result" true (r1 = r2))
    vals;
  Sys.remove path

let test_truncated_tail () =
  let path = fresh_path () in
  let n = populate path in
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 3);
  let l = Exact.Store.load ~config path in
  Alcotest.(check bool) "domain ok" true l.Exact.Store.domain_ok;
  Alcotest.(check int) "torn tail skipped" 1 l.Exact.Store.skipped;
  Alcotest.(check int) "rest loaded" (n - 1) l.Exact.Store.loaded;
  (* a database still attaches and re-synthesizes only the lost class *)
  let db = Exact.Database.create ~store:path config in
  Alcotest.(check int) "merged" (n - 1) (Exact.Database.size db);
  lookup_all db;
  Alcotest.(check bool) "at most one miss" true (Exact.Database.misses db <= 1);
  Sys.remove path

let test_corrupt_entry_skipped () =
  let path = fresh_path () in
  let n = populate path in
  (* flip one payload byte of the first entry: its checksum must fail but
     the frame stays delimited, so every later entry still loads *)
  let b = read_bytes path in
  let off = 12 + 8 + 1 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  write_bytes path b;
  let l = Exact.Store.load ~config path in
  Alcotest.(check bool) "domain ok" true l.Exact.Store.domain_ok;
  Alcotest.(check int) "one skipped" 1 l.Exact.Store.skipped;
  Alcotest.(check int) "others loaded" (n - 1) l.Exact.Store.loaded;
  Sys.remove path

(* Two databases attached to the same path (the in-process equivalent of
   two processes): both flush, nobody's records are lost. *)
let test_two_writers () =
  let path = fresh_path () in
  let db_a = Exact.Database.create ~store:path config in
  let db_b = Exact.Database.create ~store:path config in
  let fa = Tt.of_int64 3 0x80L in
  let fb = Tt.of_int64 3 0x96L in
  ignore (Exact.Database.lookup db_a fa);
  ignore (Exact.Database.lookup db_b fb);
  Exact.Database.flush db_a (* creates the file, writes a's record *);
  Exact.Database.flush db_b (* appends to the existing file *);
  let db_c = Exact.Database.create ~store:path config in
  ignore (Exact.Database.lookup db_c fa);
  ignore (Exact.Database.lookup db_c fb);
  Alcotest.(check int) "no re-synthesis" 0 (Exact.Database.misses db_c);
  Alcotest.(check int) "both records present" 2 (Exact.Database.hits db_c);
  Sys.remove path

let test_compaction_preserves () =
  let path = fresh_path () in
  let n = populate path in
  (* duplicate every entry on disk; the in-memory merge dedups, and
     compaction rewrites the file without the duplicates *)
  let l = Exact.Store.load ~config path in
  Alcotest.(check bool) "append dups" true
    (Exact.Store.append ~config path l.Exact.Store.entries);
  let l2 = Exact.Store.load ~config path in
  Alcotest.(check int) "duplicated on disk" (2 * n) l2.Exact.Store.loaded;
  let db = Exact.Database.create ~store:path config in
  Alcotest.(check int) "merge dedups" n (Exact.Database.size db);
  Exact.Database.compact db;
  let l3 = Exact.Store.load ~config path in
  Alcotest.(check int) "compacted to unique" n l3.Exact.Store.loaded;
  Alcotest.(check int) "nothing skipped" 0 l3.Exact.Store.skipped;
  let db2 = Exact.Database.create ~store:path config in
  lookup_all db2;
  Alcotest.(check int) "contents preserved" 0 (Exact.Database.misses db2);
  Sys.remove path

(* A store written under one synthesis config must not feed a database
   with a different one: the fingerprint detaches it, data intact. *)
let test_domain_mismatch_detaches () =
  let path = fresh_path () in
  let n = populate path in
  let db = Exact.Database.create ~store:path Exact.Synth.mig_config in
  Alcotest.(check int) "nothing merged" 0 (Exact.Database.size db);
  let si = Exact.Database.store_info db in
  Alcotest.(check bool) "detached" true (si.Exact.Database.path = None);
  ignore (Exact.Database.lookup db (Tt.of_int64 3 0xe8L));
  Exact.Database.flush db (* no-op: detached *);
  let l = Exact.Store.load ~config path in
  Alcotest.(check int) "original store untouched" n l.Exact.Store.loaded;
  Sys.remove path

(* -- injected crash points (the GENLOG_FAULTS registry) -- *)

let with_faults spec f =
  (match Flow.Fault.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Flow.Fault.disable f

(* A flush that crashes mid-append leaves exactly the torn tail [load]
   skips; compaction then heals the file. *)
let test_injected_torn_append () =
  let path = fresh_path () in
  let db = Exact.Database.create ~store:path config in
  lookup_all db;
  let n = Exact.Database.size db in
  with_faults "store.append:1:1" (fun () ->
      Exact.Database.flush db;
      Alcotest.(check bool) "fault fired" true (Flow.Fault.fired ()));
  let l = Exact.Store.load ~config path in
  Alcotest.(check bool) "domain ok" true l.Exact.Store.domain_ok;
  Alcotest.(check int) "torn tail skipped" 1 l.Exact.Store.skipped;
  Alcotest.(check int) "nothing loaded past the tear" 0 l.Exact.Store.loaded;
  (* heal: re-synthesize and compact; the rewrite replaces the torn file *)
  let db2 = Exact.Database.create ~store:path config in
  lookup_all db2;
  Alcotest.(check int) "lost classes re-synthesized" n
    (Exact.Database.misses db2);
  Exact.Database.compact db2;
  let l2 = Exact.Store.load ~config path in
  Alcotest.(check int) "healed: all loaded" n l2.Exact.Store.loaded;
  Alcotest.(check int) "healed: nothing skipped" 0 l2.Exact.Store.skipped;
  let db3 = Exact.Database.create ~store:path config in
  lookup_all db3;
  Alcotest.(check int) "healed store is warm" 0 (Exact.Database.misses db3);
  Sys.remove path

(* A compaction that crashes after writing the temp file but before the
   rename must leave the original store untouched. *)
let test_injected_compact_crash () =
  let path = fresh_path () in
  let n = populate path in
  let db = Exact.Database.create ~store:path config in
  with_faults "store.compact:1:1" (fun () -> Exact.Database.compact db);
  let l = Exact.Store.load ~config path in
  Alcotest.(check int) "original intact" n l.Exact.Store.loaded;
  Alcotest.(check int) "nothing skipped" 0 l.Exact.Store.skipped;
  (* no leftover temp files *)
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        ("no temp residue: " ^ f)
        false
        (String.length f > String.length base
        && String.sub f 0 (String.length base) = base))
    (Sys.readdir dir);
  (* the next, un-faulted compaction succeeds *)
  Exact.Database.compact db;
  let l2 = Exact.Store.load ~config path in
  Alcotest.(check int) "clean compaction" n l2.Exact.Store.loaded;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "write -> reopen round-trip" `Quick test_round_trip;
    Alcotest.test_case "truncated tail recovered" `Quick test_truncated_tail;
    Alcotest.test_case "corrupt entry skipped" `Quick test_corrupt_entry_skipped;
    Alcotest.test_case "two writers lose nothing" `Quick test_two_writers;
    Alcotest.test_case "compaction preserves contents" `Quick
      test_compaction_preserves;
    Alcotest.test_case "domain mismatch detaches" `Quick
      test_domain_mismatch_detaches;
    Alcotest.test_case "injected torn append heals" `Quick
      test_injected_torn_append;
    Alcotest.test_case "injected compact crash keeps original" `Quick
      test_injected_compact_crash;
  ]
