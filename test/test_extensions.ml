(* Tests for the extension features: fence-based exact synthesis, MIG
   algebraic depth rewriting, and the specialized AIG rewriting path. *)

open Kitty
open Network

let tt_testable = Alcotest.testable Tt.pp Tt.equal

(* -- fences -- *)

let test_fence_enumeration () =
  (* compositions of r: 2^(r-1) fences *)
  Alcotest.(check int) "fences of 1" 1 (List.length (Exact.Synth.fences 1));
  Alcotest.(check int) "fences of 3" 4 (List.length (Exact.Synth.fences 3));
  Alcotest.(check int) "fences of 5" 16 (List.length (Exact.Synth.fences 5));
  (* every fence is a valid level assignment: levels start at 0, are
     monotone over gate indices, and increase by at most 1 *)
  List.iter
    (fun lv ->
      Alcotest.(check int) "starts at level 0" 0 lv.(0);
      Array.iteri
        (fun i l ->
          if i > 0 then
            Alcotest.(check bool) "monotone" true
              (l >= lv.(i - 1) && l <= lv.(i - 1) + 1))
        lv)
    (Exact.Synth.fences 5)

let fence_config base = { base with Exact.Synth.strategy = Exact.Synth.Fences }

let test_fence_synthesis_agrees () =
  (* fence-based search must find the same optimal sizes *)
  let cases =
    [
      Tt.(nth_var 3 0 &: nth_var 3 1 &: nth_var 3 2);
      Tt.maj (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2);
      Tt.(nth_var 3 0 ^: nth_var 3 1);
      Tt.ite (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2);
    ]
  in
  List.iter
    (fun f ->
      let size r =
        match r with
        | Exact.Synth.Chain c -> Exact.Chain.size c
        | Exact.Synth.Const _ | Exact.Synth.Projection _ -> 0
        | Exact.Synth.Failed -> -1
      in
      let inc = Exact.Synth.synthesize Exact.Synth.xag_config f in
      let fen =
        Exact.Synth.synthesize (fence_config Exact.Synth.xag_config) f
      in
      Alcotest.(check int)
        ("fence = incremental for " ^ Tt.to_hex f)
        (size inc) (size fen);
      (match fen with
      | Exact.Synth.Chain c ->
        Alcotest.(check tt_testable) "fence chain simulates" f
          (Exact.Chain.simulate c)
      | Exact.Synth.Const _ | Exact.Synth.Projection _ | Exact.Synth.Failed ->
        ()))
    cases

let prop_fence_sound =
  QCheck.Test.make ~name:"fence synthesis simulates back (3 vars)" ~count:25
    (QCheck.int_bound 255)
    (fun v ->
      let f = Tt.of_int64 3 (Int64.of_int v) in
      match Exact.Synth.synthesize (fence_config Exact.Synth.aig_config) f with
      | Exact.Synth.Const b -> Tt.equal f (if b then Tt.const1 3 else Tt.const0 3)
      | Exact.Synth.Projection (i, c) ->
        let p = Tt.nth_var 3 i in
        Tt.equal f (if c then Tt.( ~: ) p else p)
      | Exact.Synth.Chain c -> Tt.equal f (Exact.Chain.simulate c)
      | Exact.Synth.Failed -> false)

(* -- MIG algebraic depth rewriting -- *)

let test_mig_algebraic_chain () =
  (* a linear and-chain: maj(0,a,maj(0,b,maj(0,c,d))) has depth 3; the
     associativity rule rebalances it *)
  let t = Mig.create () in
  let a = Mig.create_pi t and b = Mig.create_pi t in
  let c = Mig.create_pi t and d = Mig.create_pi t in
  Mig.create_po t
    (Mig.create_and t a (Mig.create_and t b (Mig.create_and t c d)));
  let module Dm = Algo.Depth.Make (Mig) in
  let module Cm = Algo.Cec.Make (Mig) (Mig) in
  let module Cl = Convert.Cleanup (Mig) in
  let reference = Cl.cleanup t in
  Alcotest.(check int) "initial depth 3" 3 (Dm.depth t);
  let stats = Algo.Mig_algebraic.run t () in
  Alcotest.(check bool) "applied associativity" true
    (stats.Algo.Mig_algebraic.associativity > 0);
  Alcotest.(check bool) "depth reduced" true (Dm.depth t < 3);
  match Cm.check reference t with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "mig algebraic rewriting broke the function"

let test_mig_algebraic_adder_depth () =
  (* the paper's flagship MIG result: carry chains get much shallower *)
  let module S = Lsgen.Suite.Make (Mig) in
  let t = S.build "adder" in
  let module Dm = Algo.Depth.Make (Mig) in
  let before = Dm.depth t in
  let gates_before = Mig.num_gates t in
  let _ = Algo.Mig_algebraic.run t ~size_budget:(2 * gates_before) () in
  let after = Dm.depth t in
  Alcotest.(check bool)
    (Printf.sprintf "adder depth %d -> %d" before after)
    true (after < before);
  match Mig.check_integrity t with
  | [] -> ()
  | errs -> Alcotest.failf "integrity: %s" (String.concat "; " errs)

let test_mig_algebraic_random_preserves () =
  let module Cm = Algo.Cec.Make (Mig) (Mig) in
  let module Cl = Convert.Cleanup (Mig) in
  let rng_seeds = Seed.list [ 11; 12; 13 ] in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = Mig.create () in
      let signals = ref [] in
      for _ = 1 to 5 do
        signals := Mig.create_pi t :: !signals
      done;
      let pick () =
        let l = !signals in
        Mig.complement_if (Random.State.bool rng)
          (List.nth l (Random.State.int rng (List.length l)))
      in
      for _ = 1 to 40 do
        signals := Mig.create_maj t (pick ()) (pick ()) (pick ()) :: !signals
      done;
      for _ = 1 to 3 do
        Mig.create_po t (pick ())
      done;
      let reference = Cl.cleanup t in
      let _ = Algo.Mig_algebraic.run t () in
      (match Mig.check_integrity t with
      | [] -> ()
      | errs -> Alcotest.failf "seed %d integrity: %s" seed (String.concat "; " errs));
      match Cm.check reference t with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.failf "seed %d: function changed" seed)
    rng_seeds

(* -- specialized AIG rewriting (layer 4) -- *)

let test_specialized_cut_functions () =
  (* the packed-int cut enumeration computes the same functions as the
     generic one: compare against full simulation *)
  let module S = Lsgen.Suite.Make (Aig) in
  let module Sim = Algo.Simulate.Make (Aig) in
  let t = S.build "ctrl" in
  let cuts = Algo.Rewrite_aig.enumerate t ~cut_limit:8 in
  let values = Sim.simulate_exhaustive t in
  Aig.foreach_gate t (fun n ->
      List.iter
        (fun (cut : Algo.Rewrite_aig.cut) ->
          let k = Array.length cut.Algo.Rewrite_aig.leaves in
          let mask = (1 lsl (1 lsl k)) - 1 in
          let f = Algo.Rewrite_aig.tt_of_int k (cut.Algo.Rewrite_aig.tt land mask) in
          let args = Array.map (fun l -> values.(l)) cut.Algo.Rewrite_aig.leaves in
          let recomposed = Tt.apply f args in
          if not (Tt.equal recomposed values.(n)) then
            Alcotest.failf "specialized cut function wrong at node %d" n)
        cuts.(n))

let test_specialized_rewrite_preserves () =
  let module S = Lsgen.Suite.Make (Aig) in
  let module C = Algo.Cec.Make (Aig) (Aig) in
  let module Cl = Convert.Cleanup (Aig) in
  let t = S.build "int2float" in
  let reference = Cl.cleanup t in
  let db = Exact.Database.create Exact.Synth.aig_config in
  let gain = Algo.Rewrite_aig.run t ~db () in
  Alcotest.(check bool) "some gain" true (gain > 0);
  match C.check reference t with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "specialized rewrite broke the function"

let suite =
  [
    Alcotest.test_case "fence enumeration" `Quick test_fence_enumeration;
    Alcotest.test_case "fence synthesis agrees" `Quick test_fence_synthesis_agrees;
    QCheck_alcotest.to_alcotest prop_fence_sound;
    Alcotest.test_case "mig algebraic: and-chain" `Quick test_mig_algebraic_chain;
    Alcotest.test_case "mig algebraic: adder depth" `Quick test_mig_algebraic_adder_depth;
    Alcotest.test_case "mig algebraic preserves function" `Slow test_mig_algebraic_random_preserves;
    Alcotest.test_case "specialized cut functions" `Quick test_specialized_cut_functions;
    Alcotest.test_case "specialized rewrite preserves" `Quick test_specialized_rewrite_preserves;
  ]

(* -- FRAIG functional reduction -- *)

let test_fraig_merges_duplicates () =
  (* two structurally different, functionally equal cones: xor as
     and/or-mix vs the mux form — structural hashing cannot merge them,
     SAT sweeping must *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let x1 =
    Aig.create_and t (Aig.create_or t a b) (Aig.complement (Aig.create_and t a b))
  in
  let x2 = Aig.create_ite t a (Aig.complement b) b in
  Aig.create_po t x1;
  Aig.create_po t x2;
  let module Cl = Convert.Cleanup (Aig) in
  let reference = Cl.cleanup t in
  let module Fr = Algo.Fraig.Make (Aig) in
  let stats = Fr.run t () in
  Alcotest.(check bool) "at least one merge" true (stats.Fr.proved >= 1);
  let module ClA = Convert.Cleanup (Aig) in
  let t' = ClA.cleanup t in
  Alcotest.(check bool) "gates reduced" true
    (Aig.num_gates t' < Aig.num_gates reference);
  Alcotest.(check int) "outputs now share a node"
    (Aig.node_of_signal (Aig.po_at t 0))
    (Aig.node_of_signal (Aig.po_at t 1));
  let module C = Algo.Cec.Make (Aig) (Aig) in
  match C.check reference t with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "fraig broke the function"

let test_fraig_constant_detection () =
  (* a node that is constant for non-obvious reasons: (a & b) & (a ^ b) = 0 *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t (Aig.create_and t a b) (Aig.create_xor t a b) in
  Aig.create_po t f;
  let module Fr = Algo.Fraig.Make (Aig) in
  let _ = Fr.run t () in
  Alcotest.(check int) "po is constant false" (Aig.constant false) (Aig.po_at t 0)

let test_fraig_preserves_random () =
  let module Fr = Algo.Fraig.Make (Xag) in
  let module C = Algo.Cec.Make (Xag) (Xag) in
  let module Cl = Convert.Cleanup (Xag) in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = Xag.create () in
      let signals = ref [] in
      for _ = 1 to 5 do
        signals := Xag.create_pi t :: !signals
      done;
      let pick () =
        Xag.complement_if (Random.State.bool rng)
          (List.nth !signals (Random.State.int rng (List.length !signals)))
      in
      for _ = 1 to 60 do
        let s =
          if Random.State.bool rng then Xag.create_and t (pick ()) (pick ())
          else Xag.create_xor t (pick ()) (pick ())
        in
        signals := s :: !signals
      done;
      for _ = 1 to 4 do
        Xag.create_po t (pick ())
      done;
      let reference = Cl.cleanup t in
      let _ = Fr.run t () in
      (match Xag.check_integrity t with
      | [] -> ()
      | errs -> Alcotest.failf "seed %d integrity: %s" seed (String.concat "; " errs));
      match C.check reference t with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.failf "fraig/xag seed %d: function changed" seed)
    (Seed.list [ 31; 32; 33; 34 ])

let test_fraig_in_script () =
  let module S = Lsgen.Suite.Make (Aig) in
  let module F = Flow.Engine.Make (Aig) in
  let module C = Algo.Cec.Make (Aig) (Aig) in
  let t = S.build "ctrl" in
  let module Cl = Convert.Cleanup (Aig) in
  let reference = Cl.cleanup t in
  let env = Flow.Engine.aig_env () in
  let optimized = F.run_script env t "fraig; rw; fraig" in
  match C.check reference optimized with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "fraig script step broke the function"

let fraig_suite =
  [
    Alcotest.test_case "fraig merges duplicates" `Quick test_fraig_merges_duplicates;
    Alcotest.test_case "fraig constant detection" `Quick test_fraig_constant_detection;
    Alcotest.test_case "fraig preserves (xag, random)" `Slow test_fraig_preserves_random;
    Alcotest.test_case "fraig in a script" `Quick test_fraig_in_script;
  ]

let suite = suite @ fraig_suite

(* -- observability don't-cares -- *)

let test_odc_absorption () =
  (* po = (a & b) | a  is just  a : the and-gate is unobservable when a=1,
     and equals constant 0 on the care set a=0, so ODC-aware 0-resub
     collapses it; care-oblivious resub cannot *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  let g = Aig.create_or t f a in
  Aig.create_po t g;
  let module Cl = Convert.Cleanup (Aig) in
  let reference = Cl.cleanup t in
  let module Rs = Algo.Resub.Make (Aig) in
  let with_odc = Rs.run t ~kernel:Algo.Resub.And_or ~use_odc:true () in
  Alcotest.(check bool) "odc resub substitutes" true (with_odc > 0);
  let module C = Algo.Cec.Make (Aig) (Aig) in
  (match C.check reference t with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "odc resub broke the outputs");
  let t' = Cl.cleanup t in
  Alcotest.(check int) "collapsed to a wire" 0 (Aig.num_gates t')

let test_odc_window_care () =
  (* direct check of the care computation on the absorption example *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let f = Aig.create_and t a b in
  let g = Aig.create_or t f a in
  Aig.create_po t g;
  let module O = Algo.Odc.Make (Aig) in
  let n = Aig.node_of_signal f in
  let base = [ Aig.node_of_signal a; Aig.node_of_signal b ] in
  match O.compute t n ~base_leaves:base () with
  | None -> Alcotest.fail "odc window failed"
  | Some w ->
    (* leaves are (a, b); f is observable only when a = 0 *)
    let expected = Kitty.Tt.(~:(nth_var 2 0)) in
    Alcotest.(check (Alcotest.testable Kitty.Tt.pp Kitty.Tt.equal))
      "care = !a" expected w.O.care

let test_odc_resub_preserves_random () =
  (* the decisive test: ODC-aware resubstitution must preserve the primary
     outputs on random networks (SAT-proved) *)
  let module Rs = Algo.Resub.Make (Aig) in
  let module C = Algo.Cec.Make (Aig) (Aig) in
  let module Cl = Convert.Cleanup (Aig) in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = Aig.create () in
      let signals = ref [] in
      for _ = 1 to 6 do
        signals := Aig.create_pi t :: !signals
      done;
      let pick () =
        Aig.complement_if (Random.State.bool rng)
          (List.nth !signals (Random.State.int rng (List.length !signals)))
      in
      for _ = 1 to 70 do
        let s =
          match Random.State.int rng 3 with
          | 0 -> Aig.create_and t (pick ()) (pick ())
          | 1 -> Aig.create_or t (pick ()) (pick ())
          | _ -> Aig.create_ite t (pick ()) (pick ()) (pick ())
        in
        signals := s :: !signals
      done;
      for _ = 1 to 4 do
        Aig.create_po t (pick ())
      done;
      let reference = Cl.cleanup t in
      ignore (Rs.run t ~kernel:Algo.Resub.And_or ~max_inserted:2 ~use_odc:true ());
      (match Aig.check_integrity t with
      | [] -> ()
      | errs -> Alcotest.failf "seed %d integrity: %s" seed (String.concat "; " errs));
      match C.check reference t with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
        Alcotest.failf "odc resub seed %d: outputs changed" seed)
    (Seed.list [ 41; 42; 43; 44; 45; 46 ])

let test_odc_resub_gains () =
  (* on a real benchmark, ODC resub should do at least as well as plain *)
  let module S = Lsgen.Suite.Make (Aig) in
  let module Rs = Algo.Resub.Make (Aig) in
  let t1 = S.build "priority" in
  let t2 = S.build "priority" in
  ignore (Rs.run t1 ~kernel:Algo.Resub.And_or ());
  ignore (Rs.run t2 ~kernel:Algo.Resub.And_or ~use_odc:true ());
  Alcotest.(check bool)
    (Printf.sprintf "odc >= plain (%d vs %d gates)" (Aig.num_gates t2)
       (Aig.num_gates t1))
    true
    (Aig.num_gates t2 <= Aig.num_gates t1)

let odc_suite =
  [
    Alcotest.test_case "odc absorption" `Quick test_odc_absorption;
    Alcotest.test_case "odc window care" `Quick test_odc_window_care;
    Alcotest.test_case "odc resub preserves outputs" `Slow test_odc_resub_preserves_random;
    Alcotest.test_case "odc resub gains" `Quick test_odc_resub_gains;
  ]

let suite = suite @ odc_suite
