(* Tests for the CDCL SAT solver, including a brute-force cross-check on
   random small CNFs. *)

open Satkit

let lit v neg = Lit.of_var v ~negated:neg

let test_trivial_sat () =
  let s = Solver.create () in
  Solver.add_clause s [ lit 0 false ];
  Solver.add_clause s [ lit 1 true ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x0 = true" true (Solver.model_value s 0);
  Alcotest.(check bool) "x1 = false" false (Solver.model_value s 1)

let test_trivial_unsat () =
  let s = Solver.create () in
  Solver.add_clause s [ lit 0 false ];
  Solver.add_clause s [ lit 0 true ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  let s = Solver.create () in
  (* x0 -> x1 -> ... -> x20, x0, !x20 : unsat *)
  for i = 0 to 19 do
    Solver.add_clause s [ lit i true; lit (i + 1) false ]
  done;
  Solver.add_clause s [ lit 0 false ];
  Solver.add_clause s [ lit 20 true ];
  Alcotest.(check bool) "unsat chain" true (Solver.solve s = Solver.Unsat)

(* Pigeonhole principle: n+1 pigeons in n holes is UNSAT and requires real
   conflict-driven search. *)
let pigeonhole n =
  let s = Solver.create () in
  let var p h = (p * n) + h in
  (* every pigeon in some hole *)
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> lit (var p h) false))
  done;
  (* no two pigeons share a hole *)
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ lit (var p1 h) true; lit (var p2 h) true ]
      done
    done
  done;
  Solver.solve s

let test_pigeonhole () =
  Alcotest.(check bool) "php(4,3) unsat" true (pigeonhole 3 = Solver.Unsat);
  Alcotest.(check bool) "php(6,5) unsat" true (pigeonhole 5 = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  (* (x0 | x1) & (!x0 | x2) *)
  Solver.add_clause s [ lit 0 false; lit 1 false ];
  Solver.add_clause s [ lit 0 true; lit 2 false ];
  Alcotest.(check bool) "sat under x0" true
    (Solver.solve ~assumptions:[ lit 0 false ] s = Solver.Sat);
  Alcotest.(check bool) "x2 forced" true (Solver.model_value s 2);
  Alcotest.(check bool) "unsat under x0 & !x2" true
    (Solver.solve ~assumptions:[ lit 0 false; lit 2 true ] s = Solver.Unsat);
  Alcotest.(check bool) "still sat without assumptions" true
    (Solver.solve s = Solver.Sat)

(* brute force evaluation of a CNF over [n] variables *)
let brute_force_sat n cnf =
  let rec try_assignment a =
    if a >= 1 lsl n then false
    else
      let clause_ok clause =
        List.exists
          (fun l ->
            let v = Lit.var l in
            let value = (a lsr v) land 1 = 1 in
            if Lit.is_neg l then not value else value)
          clause
      in
      if List.for_all clause_ok cnf then true else try_assignment (a + 1)
  in
  try_assignment 0

let prop_random_3sat =
  QCheck.Test.make ~name:"random 3-SAT agrees with brute force" ~count:120
    QCheck.(make Gen.(pair (int_range 3 8) (int_bound 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let num_clauses = 2 + Random.State.int rng (4 * n) in
      let cnf =
        List.init num_clauses (fun _ ->
            List.init 3 (fun _ ->
                lit (Random.State.int rng n) (Random.State.bool rng)))
      in
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cnf;
      let expected = brute_force_sat n cnf in
      match Solver.solve s with
      | Solver.Sat ->
        (* verify the model actually satisfies the formula *)
        expected
        && List.for_all
             (fun clause ->
               List.exists
                 (fun l ->
                   let v = Solver.model_value s (Lit.var l) in
                   if Lit.is_neg l then not v else v)
                 clause)
             cnf
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)

let prop_random_3sat_assumptions =
  QCheck.Test.make
    ~name:"random 3-SAT with assumptions agrees with brute force" ~count:120
    QCheck.(make Gen.(pair (int_range 3 7) (int_bound 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let num_clauses = 2 + Random.State.int rng (4 * n) in
      let cnf =
        List.init num_clauses (fun _ ->
            List.init 3 (fun _ ->
                lit (Random.State.int rng n) (Random.State.bool rng)))
      in
      let assumptions =
        List.init 2 (fun _ -> lit (Random.State.int rng n) (Random.State.bool rng))
      in
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cnf;
      (* brute force over the CNF plus the assumptions as unit clauses *)
      let expected =
        brute_force_sat n (cnf @ List.map (fun l -> [ l ]) assumptions)
      in
      match Solver.solve ~assumptions s with
      | Solver.Sat ->
        (* the model must satisfy both the formula and the assumptions *)
        expected
        && List.for_all
             (fun clause ->
               List.exists
                 (fun l ->
                   let v = Solver.model_value s (Lit.var l) in
                   if Lit.is_neg l then not v else v)
                 clause)
             (cnf @ List.map (fun l -> [ l ]) assumptions)
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false)

let test_repeated_solves_with_assumptions () =
  (* the same solver instance must answer a sequence of assumption queries
     correctly (the FRAIG usage pattern) *)
  let s = Solver.create () in
  (* x2 = x0 xor x1 *)
  Solver.add_clause s [ lit 2 true; lit 0 false; lit 1 false ];
  Solver.add_clause s [ lit 2 true; lit 0 true; lit 1 true ];
  Solver.add_clause s [ lit 2 false; lit 0 false; lit 1 true ];
  Solver.add_clause s [ lit 2 false; lit 0 true; lit 1 false ];
  Alcotest.(check bool) "x2 possible" true
    (Solver.solve ~assumptions:[ lit 2 false ] s = Solver.Sat);
  Alcotest.(check bool) "!x2 possible" true
    (Solver.solve ~assumptions:[ lit 2 true ] s = Solver.Sat);
  Alcotest.(check bool) "x2 & x0 & x1 impossible" true
    (Solver.solve ~assumptions:[ lit 2 false; lit 0 false; lit 1 false ] s
    = Solver.Unsat);
  Alcotest.(check bool) "still solvable afterwards" true
    (Solver.solve s = Solver.Sat)

let test_conflict_budget () =
  (* a hard instance with a tiny budget returns Unknown, not a wrong answer *)
  let s = Solver.create () in
  let n = 8 in
  let var p h = (p * n) + h in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> lit (var p h) false))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ lit (var p1 h) true; lit (var p2 h) true ]
      done
    done
  done;
  match Solver.solve ~conflict_budget:10 s with
  | Solver.Unknown | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "php(9,8) cannot be SAT"

(* An intentionally over-eager configuration: reduction and inprocessing
   fire orders of magnitude more often than the defaults, so minimization,
   subsumption, vivification and clause deletion all churn on even tiny
   instances.  Any unsoundness in those paths shows up as a wrong answer
   or an invalid model below. *)
let aggressive_config =
  {
    Solver.default_config with
    Solver.name = "aggressive";
    reduce_interval = 60;
    inprocess_interval = 40;
  }

let prop_minimization_preserves_models =
  QCheck.Test.make
    ~name:"minimization/inprocessing never drops satisfying assignments"
    ~count:150
    QCheck.(make Gen.(pair (int_range 6 11) (int_bound 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed + 7 |] in
      let num_clauses = (3 * n) + Random.State.int rng (3 * n) in
      let cnf =
        List.init num_clauses (fun _ ->
            List.init 3 (fun _ ->
                lit (Random.State.int rng n) (Random.State.bool rng)))
      in
      let expected = brute_force_sat n cnf in
      List.for_all
        (fun config ->
          let s = Solver.create ~config () in
          List.iter (Solver.add_clause s) cnf;
          match Solver.solve s with
          | Solver.Sat ->
            expected
            && List.for_all
                 (fun clause ->
                   List.exists
                     (fun l ->
                       let v = Solver.model_value s (Lit.var l) in
                       if Lit.is_neg l then not v else v)
                     clause)
                 cnf
          | Solver.Unsat -> not expected
          | Solver.Unknown -> false)
        [ aggressive_config; Solver.legacy_config ])

(* every roster configuration of the portfolio must agree with brute force
   on its own (diversification must never cost soundness) *)
let prop_config_matrix =
  QCheck.Test.make ~name:"portfolio roster configs agree with brute force"
    ~count:60
    QCheck.(make Gen.(pair (int_range 4 9) (int_bound 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed + 13 |] in
      let num_clauses = 2 + Random.State.int rng (4 * n) in
      let cnf =
        List.init num_clauses (fun _ ->
            List.init 3 (fun _ ->
                lit (Random.State.int rng n) (Random.State.bool rng)))
      in
      let expected = brute_force_sat n cnf in
      List.for_all
        (fun config ->
          let s = Solver.create ~config () in
          List.iter (Solver.add_clause s) cnf;
          match Solver.solve s with
          | Solver.Sat -> expected
          | Solver.Unsat -> not expected
          | Solver.Unknown -> false)
        (Portfolio.default_roster 6))

let add_php s n =
  let var p h = (p * n) + h in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> lit (var p h) false))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ lit (var p1 h) true; lit (var p2 h) true ]
      done
    done
  done

let test_portfolio_unsat () =
  let o = Portfolio.solve ~jobs:3 ~build:(fun s -> add_php s 6) () in
  Alcotest.(check bool) "php(7,6) unsat" true
    (o.Portfolio.result = Solver.Unsat);
  Alcotest.(check bool) "winner named" true (o.Portfolio.winner <> "");
  Alcotest.(check int) "one report per racer" 3
    (List.length o.Portfolio.per_config)

let test_portfolio_sat_model () =
  (* x2 = x0 xor x1, plus x2: the winning solver's model must be readable
     through [payload] *)
  let build s =
    Solver.add_clause s [ lit 2 true; lit 0 false; lit 1 false ];
    Solver.add_clause s [ lit 2 true; lit 0 true; lit 1 true ];
    Solver.add_clause s [ lit 2 false; lit 0 false; lit 1 true ];
    Solver.add_clause s [ lit 2 false; lit 0 true; lit 1 false ];
    Solver.add_clause s [ lit 2 false ]
  in
  let o = Portfolio.solve ~jobs:3 ~build () in
  Alcotest.(check bool) "sat" true (o.Portfolio.result = Solver.Sat);
  let v i = Solver.model_value o.Portfolio.solver i in
  Alcotest.(check bool) "model is an xor witness" true (v 0 <> v 1);
  Alcotest.(check bool) "x2 true" true (v 2)

let test_portfolio_budget () =
  let o =
    Portfolio.solve ~jobs:2 ~conflict_budget:10 ~build:(fun s -> add_php s 9)
      ()
  in
  match o.Portfolio.result with
  | Solver.Unknown | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "php(10,9) cannot be SAT"

let test_stop_hook () =
  (* a stop hook that fires immediately must yield Unknown, not an answer *)
  let s = Solver.create () in
  add_php s 8;
  match Solver.solve ~stop:(fun () -> true) s with
  | Solver.Unknown -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "stopped solve must be Unknown"

let suite =
  [
    Alcotest.test_case "trivial sat + model" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "conflict budget" `Quick test_conflict_budget;
    QCheck_alcotest.to_alcotest prop_random_3sat;
    QCheck_alcotest.to_alcotest prop_random_3sat_assumptions;
    Alcotest.test_case "repeated assumption solves" `Quick test_repeated_solves_with_assumptions;
    QCheck_alcotest.to_alcotest prop_minimization_preserves_models;
    QCheck_alcotest.to_alcotest prop_config_matrix;
    Alcotest.test_case "portfolio unsat race" `Quick test_portfolio_unsat;
    Alcotest.test_case "portfolio sat model" `Quick test_portfolio_sat_model;
    Alcotest.test_case "portfolio conflict budget" `Quick test_portfolio_budget;
    Alcotest.test_case "stop hook" `Quick test_stop_hook;
  ]
