(* Tests for the solver-depth telemetry layer and the cross-run history:
   Solver snapshot monotonicity under both kernels, race-event emission
   and per-pass SAT aggregation in Trace.summarize, history
   append/rolling-median/regression logic, and the HTML dashboard's
   golden structure. *)

open Network
module T = Obs.Trace
module H = Obs.History
module J = Obs.Json
module Solver = Satkit.Solver

let lit v neg = Satkit.Lit.of_var v ~negated:neg

(* php(n+1, n): UNSAT with real conflict-driven search, so every counter
   the snapshot tracks actually moves. *)
let add_php s n =
  let var p h = (p * n) + h in
  for p = 0 to n do
    Solver.add_clause s (List.init n (fun h -> lit (var p h) false))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ lit (var p1 h) true; lit (var p2 h) true ]
      done
    done
  done

(* -- snapshot monotonicity, both kernels -- *)

let monotone_fields (a : Solver.snapshot) (b : Solver.snapshot) =
  [
    ("learned_total", a.Solver.s_learned_total, b.Solver.s_learned_total);
    ("conflicts", a.Solver.s_conflicts, b.Solver.s_conflicts);
    ("decisions", a.Solver.s_decisions, b.Solver.s_decisions);
    ("propagations", a.Solver.s_propagations, b.Solver.s_propagations);
    ("restarts", a.Solver.s_restarts, b.Solver.s_restarts);
    ("reduces", a.Solver.s_reduces, b.Solver.s_reduces);
    ("inprocess_rounds", a.Solver.s_inprocess_rounds, b.Solver.s_inprocess_rounds);
    ("minimized_lits", a.Solver.s_minimized_lits, b.Solver.s_minimized_lits);
    ("subsumed", a.Solver.s_subsumed, b.Solver.s_subsumed);
    ("strengthened", a.Solver.s_strengthened, b.Solver.s_strengthened);
    ("vivified", a.Solver.s_vivified, b.Solver.s_vivified);
  ]

let check_snapshot_monotone config name =
  let s = Solver.create ~config () in
  add_php s 6;
  let s0 = Solver.snapshot s in
  (* fresh solver: every counter starts at zero *)
  List.iter
    (fun (k, v, _) ->
      Alcotest.(check int) (name ^ ": " ^ k ^ " starts at 0") 0 v)
    (monotone_fields s0 s0);
  Alcotest.(check bool)
    (name ^ ": unsat") true
    (Solver.solve s = Solver.Unsat);
  let s1 = Solver.snapshot s in
  List.iter
    (fun (k, before, after) ->
      Alcotest.(check bool)
        (name ^ ": " ^ k ^ " monotone")
        true (after >= before))
    (monotone_fields s0 s1);
  Alcotest.(check bool)
    (name ^ ": search happened") true
    (s1.Solver.s_conflicts > 0 && s1.Solver.s_propagations > 0
    && s1.Solver.s_decisions > 0);
  (* the learn-time LBD histogram accounts for every learnt clause *)
  Alcotest.(check int)
    (name ^ ": lbd histogram sums to learned_total")
    s1.Solver.s_learned_total
    (Array.fold_left ( + ) 0 s1.Solver.s_lbd);
  (* diff against the zero snapshot is the snapshot itself (counters) *)
  let d = Solver.diff_snapshot s0 s1 in
  Alcotest.(check int)
    (name ^ ": diff conflicts")
    s1.Solver.s_conflicts d.Solver.s_conflicts;
  (* stats_of_snapshot exposes the counters under stable labels *)
  let labels = List.map fst (Solver.stats_of_snapshot s1) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (name ^ ": stats carries " ^ k) true
        (List.mem k labels))
    [ "conflicts"; "propagations"; "learned_total"; "lbd_glue"; "lbd_mid";
      "lbd_high" ]

let test_snapshot_modern () =
  check_snapshot_monotone Solver.default_config "modern"

let test_snapshot_legacy () =
  check_snapshot_monotone Solver.legacy_config "legacy"

(* -- race events: emission by CEC and aggregation by summarize -- *)

module C = Algo.Cec.Make (Aig) (Aig)
module S = Lsgen.Suite.Make (Aig)

let test_cec_race_event () =
  let net = S.build "ctrl" in
  let trace = T.create ~flow:"eq" () in
  T.pass_begin trace ~pass:"cec" ~index:0 ~gates:1 ~depth:1;
  let result = C.check ~trace ~jobs:2 net net in
  T.pass_end trace ~pass:"cec" ~index:0 ~gates:1 ~depth:1 ~elapsed:0.01 ();
  Alcotest.(check bool) "self-equivalent" true (result = Algo.Cec.Equivalent);
  let races =
    List.filter_map
      (function
        | T.Race { algo; winner; configs; _ } -> Some (algo, winner, configs)
        | _ -> None)
      (T.events trace)
  in
  (match races with
  | [ (algo, winner, configs) ] ->
    Alcotest.(check string) "race algo" "cec" algo;
    Alcotest.(check bool) "winner among configs" true
      (List.exists (fun (n, _, _) -> n = winner) configs);
    Alcotest.(check bool) "two workers recorded" true
      (List.length configs = 2);
    (* the winner's counters are present and the result is decisive *)
    let _, res, counters =
      List.find (fun (n, _, _) -> n = winner) configs
    in
    Alcotest.(check string) "winner result" "unsat" res;
    Alcotest.(check bool) "winner has counter payload" true
      (List.mem_assoc "conflicts" counters)
  | l -> Alcotest.failf "expected exactly one race event, got %d" (List.length l));
  (* summarize folds the race into the enclosing span *)
  match T.summarize trace with
  | [ row ] ->
    Alcotest.(check (list (pair string int))) "winner tally" row.T.row_races
      (match races with
      | [ (_, winner, _) ] -> [ (winner, 1) ]
      | _ -> [])
  | rows -> Alcotest.failf "expected one pass row, got %d" (List.length rows)

(* Hand-built event stream: gauges and races from child flows must fold
   into the nearest open ancestor span, without double counting. *)
let test_summarize_sat_attribution () =
  let events =
    [
      T.Pass_begin { t = 0.0; flow = "opt"; pass = "rw"; index = 0; gates = 10; depth = 3 };
      (* single-solver telemetry: solver_* gauges through a metrics event,
         emitted from a child flow of the open span *)
      T.Metrics
        {
          t = 0.1; flow = "opt/part1"; algo = "cec"; counters = [];
          gauges = [ ("solver_conflicts", 5); ("solver_propagations", 100) ];
          hists = [];
        };
      (* a race: all configs' work counts, winner is tallied *)
      T.Race
        {
          t = 0.2; flow = "opt"; algo = "exact"; winner = "luby";
          configs =
            [
              ("luby", "unsat", [ ("conflicts", 7); ("propagations", 50) ]);
              ("default", "unknown", [ ("conflicts", 3); ("propagations", 30) ]);
            ];
        };
      T.Pass_end
        {
          t = 0.3; flow = "opt"; pass = "rw"; index = 0; gates = 8; depth = 3;
          elapsed = 0.3; gc = T.gc_zero;
        };
    ]
  in
  match T.summarize (T.of_events events) with
  | [ row ] ->
    Alcotest.(check int) "conflicts summed" (5 + 7 + 3) row.T.row_sat_conflicts;
    Alcotest.(check int) "propagations summed" (100 + 50 + 30)
      row.T.row_sat_propagations;
    Alcotest.(check (list (pair string int))) "winner tally" [ ("luby", 1) ]
      row.T.row_races
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

(* Race events survive the JSONL round trip (trace.ml renders, report.ml
   parses). *)
let test_race_jsonl_roundtrip () =
  let trace = T.create ~flow:"x" () in
  T.race trace ~algo:"cec" ~winner:"neg"
    ~configs:
      [
        ("neg", "sat", [ ("conflicts", 42) ]);
        ("default", "unknown", [ ("conflicts", 17) ]);
      ];
  let path = Filename.temp_file "race" ".jsonl" in
  T.write_file trace path;
  let parsed = Obs.Report.load_trace path in
  Sys.remove path;
  match T.events parsed with
  | [ T.Race { algo; winner; configs; _ } ] ->
    Alcotest.(check string) "algo" "cec" algo;
    Alcotest.(check string) "winner" "neg" winner;
    (match configs with
    | [ (n1, r1, c1); (n2, r2, _) ] ->
      Alcotest.(check string) "config 1 name" "neg" n1;
      Alcotest.(check string) "config 1 result" "sat" r1;
      Alcotest.(check (list (pair string int))) "config 1 counters"
        [ ("conflicts", 42) ] c1;
      Alcotest.(check string) "config 2 name" "default" n2;
      Alcotest.(check string) "config 2 result" "unknown" r2
    | l -> Alcotest.failf "expected 2 configs, got %d" (List.length l))
  | _ -> Alcotest.fail "expected exactly one race event after round trip"

(* Empty / meta-only traces degrade to a clean message, not a table. *)
let test_empty_trace_graceful () =
  let str pp v = Format.asprintf "%a" pp v in
  let empty = T.of_events [] in
  Alcotest.(check string) "pp_summary empty" "trace: no spans recorded\n"
    (str T.pp_summary empty);
  Alcotest.(check string) "pp_trace empty"
    "trace: no spans recorded (empty or meta-only file)\n"
    (str Obs.Report.pp_trace empty);
  (* a real file holding only the meta line parses to zero events *)
  let path = Filename.temp_file "meta" ".jsonl" in
  T.write_file empty path;
  let parsed = Obs.Report.load_trace path in
  Sys.remove path;
  Alcotest.(check int) "meta-only file has no events" 0
    (List.length (T.events parsed))

(* -- exact synthesis telemetry -- *)

let test_exact_telemetry () =
  Exact.Synth.reset_telemetry ();
  let t0 = H.median [] in
  ignore t0;
  let get k l = match List.assoc_opt k l with Some v -> v | None -> -1 in
  let before = Exact.Synth.telemetry () in
  Alcotest.(check int) "calls reset" 0 (get "calls" before);
  (* a 2-input XOR needs 3 AND gates: several SAT calls, some UNSAT *)
  let f = Kitty.Tt.of_hex 2 "6" in
  (match Exact.Synth.(synthesize aig_config f) with
  | Exact.Synth.Chain _ -> ()
  | _ -> Alcotest.fail "xor2 must synthesize as a chain");
  let after = Exact.Synth.telemetry () in
  Alcotest.(check bool) "calls counted" true (get "calls" after > 0);
  Alcotest.(check bool) "sat+unsat+unknown = calls" true
    (get "sat" after + get "unsat" after + get "unknown" after
    = get "calls" after);
  Alcotest.(check bool) "propagations counted" true
    (get "solver_propagations" after > 0)

(* -- history: append / load / rolling median / regression flag -- *)

let bench_payload ~seconds ~nodes ~commit ~at =
  J.parse
    (Printf.sprintf
       "{\"bench\":\"smoke\",\"schema\":2,\"git_commit\":\"%s\",\
        \"generated_unix\":%d,\"rows\":[{\"benchmark\":\"voter\",\
        \"stage\":\"generic\",\"nodes\":%d,\"seconds\":%f}]}"
       commit at nodes seconds)

let test_history_roundtrip () =
  let path = Filename.temp_file "hist" ".jsonl" in
  Sys.remove path;
  H.append ~path (bench_payload ~seconds:1.0 ~nodes:100 ~commit:"aaa" ~at:1);
  H.append ~path (bench_payload ~seconds:1.1 ~nodes:100 ~commit:"bbb" ~at:2);
  (* a corrupt line must be skipped, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{corrupt\n";
  close_out oc;
  H.append ~path (bench_payload ~seconds:0.9 ~nodes:100 ~commit:"ccc" ~at:3);
  let runs, skipped = H.load ~path in
  Sys.remove path;
  Alcotest.(check int) "three runs" 3 (List.length runs);
  Alcotest.(check int) "one corrupt line skipped" 1 skipped;
  let commits = List.map (fun (r : H.run) -> r.H.commit) runs in
  Alcotest.(check (list string)) "append order" [ "aaa"; "bbb"; "ccc" ] commits;
  match H.series_of_runs runs with
  | series ->
    let sec =
      List.find (fun (s : H.series) -> s.H.s_field = "seconds") series
    in
    Alcotest.(check (list (float 1e-9))) "series in run order" [ 1.0; 1.1; 0.9 ]
      sec.H.values

let test_history_median () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (H.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "even" 1.5 (H.median [ 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (H.median [])

let test_history_regression_flag () =
  let runs =
    [
      bench_payload ~seconds:1.00 ~nodes:100 ~commit:"a" ~at:1;
      bench_payload ~seconds:1.02 ~nodes:100 ~commit:"b" ~at:2;
      bench_payload ~seconds:0.99 ~nodes:100 ~commit:"c" ~at:3;
    ]
    |> List.filter_map H.run_of_json
  in
  (* three steady runs: no regression *)
  Alcotest.(check int) "steady history clean" 0
    (List.length (H.regressions runs));
  (* +20% time on the next run trips the (15%) time gate *)
  let with_reg =
    runs
    @ List.filter_map H.run_of_json
        [ bench_payload ~seconds:1.20 ~nodes:100 ~commit:"d" ~at:4 ]
  in
  (match H.regressions with_reg with
  | [ v ] ->
    Alcotest.(check string) "regressed field" "seconds"
      v.H.v_series.H.s_field;
    Alcotest.(check bool) "delta is ~20%" true
      (v.H.v_delta_pct > 15.0 && v.H.v_delta_pct < 25.0)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* a QoR step of +1 node on 100 is under the 2% gate; +5 is over *)
  let qor_ok =
    runs
    @ List.filter_map H.run_of_json
        [ bench_payload ~seconds:1.0 ~nodes:101 ~commit:"e" ~at:5 ]
  in
  Alcotest.(check int) "+1% nodes passes" 0 (List.length (H.regressions qor_ok));
  let qor_bad =
    runs
    @ List.filter_map H.run_of_json
        [ bench_payload ~seconds:1.0 ~nodes:105 ~commit:"f" ~at:6 ]
  in
  Alcotest.(check int) "+5% nodes flagged" 1
    (List.length (H.regressions qor_bad))

let test_history_window () =
  (* the rolling window forgets old values: after K fast runs, an old slow
     era must not mask a regression against the recent median *)
  let mk s i = bench_payload ~seconds:s ~nodes:100 ~commit:"x" ~at:i in
  let runs =
    [ mk 5.0 1; mk 1.0 2; mk 1.0 3; mk 1.0 4; mk 1.0 5; mk 1.0 6; mk 1.3 7 ]
    |> List.filter_map H.run_of_json
  in
  let th = { H.default_thresholds with H.window = 5 } in
  match H.regressions ~thresholds:th runs with
  | [ v ] ->
    (* reference is the median of the last 5 (all 1.0), not of everything *)
    Alcotest.(check (float 1e-9)) "windowed reference" 1.0 v.H.v_reference
  | l -> Alcotest.failf "expected 1 windowed regression, got %d" (List.length l)

(* -- HTML dashboard golden structure -- *)

let test_html_structure () =
  let trace =
    T.of_events
      [
        T.Pass_begin { t = 0.0; flow = "aig"; pass = "rw"; index = 0; gates = 10; depth = 3 };
        T.Race
          {
            t = 0.1; flow = "aig"; algo = "cec"; winner = "luby";
            configs = [ ("luby", "unsat", [ ("conflicts", 4); ("propagations", 9) ]) ];
          };
        T.Pass_end
          { t = 0.2; flow = "aig"; pass = "rw"; index = 0; gates = 8; depth = 3;
            elapsed = 0.2; gc = T.gc_zero };
      ]
  in
  let bench = bench_payload ~seconds:1.0 ~nodes:100 ~commit:"aaa" ~at:1 in
  let history =
    [
      bench_payload ~seconds:1.0 ~nodes:100 ~commit:"a" ~at:1;
      bench_payload ~seconds:1.1 ~nodes:100 ~commit:"b" ~at:2;
      bench_payload ~seconds:0.9 ~nodes:100 ~commit:"c" ~at:3;
    ]
    |> List.filter_map H.run_of_json
  in
  let html = Obs.Html.render ~trace ~bench ~history () in
  let contains needle =
    let nl = String.length needle and hl = String.length html in
    let rec go i =
      i + nl <= hl && (String.sub html i nl = needle || go (i + 1))
    in
    go 0
  in
  (* well-formed shell *)
  Alcotest.(check bool) "doctype" true (contains "<!DOCTYPE html>");
  Alcotest.(check bool) "closes html" true (contains "</html>");
  (* every section anchor present *)
  List.iter
    (fun anchor ->
      Alcotest.(check bool) ("anchor " ^ anchor) true
        (contains (Printf.sprintf "id=\"%s\"" anchor)))
    [ "meta"; "passes"; "sat"; "bench"; "history" ];
  (* content made it in: race winner, bench row, sparkline *)
  Alcotest.(check bool) "race winner shown" true (contains "luby");
  Alcotest.(check bool) "benchmark row shown" true (contains "voter");
  Alcotest.(check bool) "sparkline svg" true (contains "<svg class=\"spark\"");
  (* self-contained: no external requests of any kind *)
  List.iter
    (fun banned ->
      Alcotest.(check bool) ("no " ^ banned) true (not (contains banned)))
    [ "http://"; "https://"; "src="; "href="; "url("; "@import" ]

let suite =
  [
    Alcotest.test_case "snapshot monotone (modern kernel)" `Quick
      test_snapshot_modern;
    Alcotest.test_case "snapshot monotone (legacy kernel)" `Quick
      test_snapshot_legacy;
    Alcotest.test_case "cec portfolio emits race event" `Quick
      test_cec_race_event;
    Alcotest.test_case "summarize attributes SAT work to spans" `Quick
      test_summarize_sat_attribution;
    Alcotest.test_case "race event jsonl round trip" `Quick
      test_race_jsonl_roundtrip;
    Alcotest.test_case "empty trace renders gracefully" `Quick
      test_empty_trace_graceful;
    Alcotest.test_case "exact synthesis telemetry counters" `Quick
      test_exact_telemetry;
    Alcotest.test_case "history append/load round trip" `Quick
      test_history_roundtrip;
    Alcotest.test_case "history median" `Quick test_history_median;
    Alcotest.test_case "history regression flag" `Quick
      test_history_regression_flag;
    Alcotest.test_case "history rolling window" `Quick test_history_window;
    Alcotest.test_case "html dashboard golden structure" `Quick
      test_html_structure;
  ]
