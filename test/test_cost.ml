(* Cost-axiom conformance suite for the cost-generic optimization layer
   (Algo.Cost): every built-in COST instance must satisfy the laws the
   [Network.Intf.COST] signature documents —

   - [add zero x = x] and [add x zero = x]            (identity)
   - [add (add a b) c = add a (add b c)]              (associativity)
   - [add a b = add b a]                              (commutativity)
   - [compare] is a total order consistent with [to_int]
   - [eval net] = [add]-fold of [of_node net] over live gates
   - gain telescoping (additive objectives): [freed] is exactly the MFFC
     objective mass, [added] is exactly the eval delta of a build, and a
     pass's accumulated gain lower-bounds the realized network delta

   The monoid laws run under QCheck on random values; the network-level
   laws run on random networks over random seeds. *)

open Network

module Co = Algo.Cost.Make (Aig)
module CoM = Algo.Cost.Make (Mig)
module G = Gen.Make (Aig)
module Gm = Gen.Make (Mig)
module Rw = Algo.Rewrite.Make (Aig)
module Rf = Algo.Refactor.Make (Aig)
module T = Algo.Topo.Make (Aig)

let test_weights =
  Algo.Cost.Spec.Weights
    {
      Algo.Cost.Spec.w_source = "test";
      w_and = 3;
      w_xor = 2;
      w_maj = 5;
      w_lut = 4;
      w_default = 1;
    }

(* every built-in spec, including a non-default LUT size *)
let specs =
  [
    Algo.Cost.Spec.Area;
    Algo.Cost.Spec.Depth;
    Algo.Cost.Spec.Edges;
    Algo.Cost.Spec.Activity;
    Algo.Cost.Spec.Lut 6;
    Algo.Cost.Spec.Lut 4;
    test_weights;
  ]

let additive_specs = List.filter Algo.Cost.Spec.is_additive specs
let spec_name = Algo.Cost.Spec.to_string

(* -- monoid + order laws, one QCheck property per instance -- *)

let monoid_props =
  List.concat_map
    (fun spec ->
      let module I = (val Co.instance spec) in
      let name = spec_name spec in
      [
        QCheck.Test.make
          ~name:(Printf.sprintf "%s: zero identity" name)
          ~count:200 QCheck.small_nat
          (fun x -> I.add I.zero x = x && I.add x I.zero = x);
        QCheck.Test.make
          ~name:(Printf.sprintf "%s: add assoc + comm" name)
          ~count:200
          QCheck.(triple small_nat small_nat small_nat)
          (fun (a, b, c) ->
            I.add (I.add a b) c = I.add a (I.add b c) && I.add a b = I.add b a);
        QCheck.Test.make
          ~name:(Printf.sprintf "%s: compare total order" name)
          ~count:200
          QCheck.(triple small_int small_int small_int)
          (fun (a, b, c) ->
            (* antisymmetry, totality, transitivity on a sample, and
               agreement with the to_int embedding *)
            let sgn x = compare x 0 in
            sgn (I.compare a b) = -sgn (I.compare b a)
            && ((not (I.compare a b <= 0 && I.compare b c <= 0))
               || I.compare a c <= 0)
            && sgn (I.compare a b) = sgn (Int.compare (I.to_int a) (I.to_int b)));
      ])
    specs

(* -- eval = fold of of_node over live gates, on random networks -- *)

let fold_eval (type a) (module N : Intf.NETWORK with type t = a) ~add ~zero
    ~of_node (net : a) =
  let acc = ref zero in
  N.foreach_gate net (fun n -> if not (N.is_dead net n) then acc := add !acc (of_node net n));
  !acc

let eval_is_fold_props =
  List.map
    (fun spec ->
      let module I = (val Co.instance spec) in
      QCheck.Test.make
        ~name:(Printf.sprintf "%s: eval = fold of_node (aig)" (spec_name spec))
        ~count:20
        QCheck.(int_bound 10_000)
        (fun seed ->
          let net =
            G.generate ~seed:(seed + 1) ~num_pis:5 ~num_gates:30 ~num_pos:3 ()
          in
          I.eval net
          = fold_eval (module Aig) ~add:I.add ~zero:I.zero ~of_node:I.of_node
              net))
    specs

let eval_is_fold_mig_props =
  List.map
    (fun spec ->
      let module I = (val CoM.instance spec) in
      QCheck.Test.make
        ~name:(Printf.sprintf "%s: eval = fold of_node (mig)" (spec_name spec))
        ~count:10
        QCheck.(int_bound 10_000)
        (fun seed ->
          let net =
            Gm.generate ~use_maj:true ~seed:(seed + 1) ~num_pis:5 ~num_gates:30
              ~num_pos:3 ()
          in
          I.eval net
          = fold_eval (module Mig) ~add:I.add ~zero:I.zero ~of_node:I.of_node
              net))
    specs

(* -- gain telescoping --

   The per-move accounting must be exact: [freed n] is the objective mass
   of n's MFFC (the nodes that die with n), and [added] is the objective
   mass of the slice built above the watermark — both must telescope into
   whole-network [eval] deltas.  Across a full pass the accumulated gain
   is a LOWER bound on the realized delta, not an equality: substitution
   redirects fanouts through the structural hash, which can cascade into
   merges beyond the measured MFFC (the seed's node-count protocol had
   the same property). *)

let db = lazy (Exact.Database.create Exact.Synth.aig_config)

module Mf = Algo.Mffc.Make (Aig)

let freed_is_mffc_mass_props =
  List.map
    (fun spec ->
      let module I = (val Co.instance spec) in
      QCheck.Test.make
        ~name:(Printf.sprintf "%s: freed = MFFC mass" (spec_name spec))
        ~count:15
        QCheck.(int_bound 10_000)
        (fun seed ->
          let net =
            G.generate ~seed:(seed + 1) ~num_pis:5 ~num_gates:30 ~num_pos:3 ()
          in
          let eng = Co.engine spec in
          let ok = ref true in
          Aig.foreach_gate net (fun n ->
              if (not (Aig.is_dead net n)) && Aig.ref_count net n > 0 then begin
                let mass =
                  List.fold_left
                    (fun acc m -> I.add acc (I.of_node net m))
                    I.zero (Mf.collect net n)
                in
                if eng.Co.freed net n <> mass then ok := false
              end);
          !ok))
    additive_specs

let added_is_eval_delta_props =
  List.map
    (fun spec ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s: added = eval delta of build" (spec_name spec))
        ~count:15
        QCheck.(int_bound 10_000)
        (fun seed ->
          let net =
            G.generate ~seed:(seed + 1) ~num_pis:5 ~num_gates:25 ~num_pos:3 ()
          in
          let eng = Co.engine spec in
          let before = eng.Co.eval net in
          let mark = eng.Co.mark net in
          (* grow a deterministic slice above the watermark; structural
             hashing may dedupe some of it — the accounting must agree
             either way *)
          let rng = Random.State.make [| seed |] in
          let pool = ref [] in
          Aig.foreach_gate net (fun n ->
              if not (Aig.is_dead net n) then
                pool := Aig.signal_of_node n :: !pool);
          let pool = Array.of_list !pool in
          let pick () =
            Network.Signal.complement_if
              (Random.State.bool rng)
              pool.(Random.State.int rng (Array.length pool))
          in
          let root = ref (pick ()) in
          for _ = 1 to 5 do
            root := Aig.create_and net !root (pick ())
          done;
          let added =
            eng.Co.added net ~mark ~root:(Aig.node_of_signal !root)
          in
          eng.Co.eval net - before = added))
    additive_specs

let telescoping_props =
  List.map
    (fun spec ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "%s: pass gain bounds realized delta"
             (spec_name spec))
        ~count:8
        QCheck.(int_bound 10_000)
        (fun seed ->
          let net =
            G.generate ~seed:(seed + 1) ~num_pis:5 ~num_gates:40 ~num_pos:3 ()
          in
          let before = Co.eval spec net in
          let gain = Rw.run net ~db:(Lazy.force db) ~cost:spec () in
          let after = Co.eval spec net in
          gain >= 0 && before - after >= gain))
    additive_specs

(* -- depth monotonicity: the max-monoid pass never deepens -- *)

let depth_never_worsens =
  QCheck.Test.make ~name:"depth: rewrite+refactor never deepen" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let spec = Algo.Cost.Spec.Depth in
      let net =
        G.generate ~seed:(seed + 1) ~num_pis:5 ~num_gates:40 ~num_pos:3 ()
      in
      let before = Co.eval spec net in
      ignore (Rw.run net ~db:(Lazy.force db) ~cost:spec ());
      ignore (Rf.run net ~cost:spec ());
      Co.eval spec net <= before)

(* -- spec parsing -- *)

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      match Algo.Cost.Spec.of_string s with
      | Ok spec ->
        Alcotest.(check string) ("roundtrip " ^ s) s (spec_name spec)
      | Error e -> Alcotest.failf "of_string %S: %s" s e)
    [ "area"; "depth"; "edges"; "activity"; "lut"; "lut:4" ];
  (match Algo.Cost.Spec.of_string "lut:1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lut:1 must be rejected");
  (match Algo.Cost.Spec.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus must be rejected");
  (* syntax-only validation accepts weights specs without touching disk *)
  (match Algo.Cost.Spec.validate_string "weights:/nonexistent/w.txt" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate_string weights: %s" e);
  match Algo.Cost.Spec.validate_string "bogus" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validate_string bogus must be rejected"

let test_weights_file () =
  let path = Filename.temp_file "genlog_weights" ".txt" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "# comment\nand 3\nxor 2\nmaj 5\n\nlut 4\ndefault 7\n");
  (match Algo.Cost.Spec.of_string ("weights:" ^ path) with
  | Ok (Algo.Cost.Spec.Weights w) ->
    Alcotest.(check int) "and" 3 w.Algo.Cost.Spec.w_and;
    Alcotest.(check int) "xor" 2 w.Algo.Cost.Spec.w_xor;
    Alcotest.(check int) "maj" 5 w.Algo.Cost.Spec.w_maj;
    Alcotest.(check int) "lut" 4 w.Algo.Cost.Spec.w_lut;
    Alcotest.(check int) "default" 7 w.Algo.Cost.Spec.w_default
  | Ok _ -> Alcotest.fail "expected a Weights spec"
  | Error e -> Alcotest.failf "weights file: %s" e);
  Out_channel.with_open_text path (fun oc -> output_string oc "bogus 3\n");
  (match Algo.Cost.Spec.of_string ("weights:" ^ path) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must be rejected");
  Sys.remove path;
  match Algo.Cost.Spec.of_string "weights:/nonexistent/w.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing weights file must be rejected"

(* -- engine sanity: area semantics match the seed protocol -- *)

let test_engine_area () =
  let net = G.generate ~seed:7 ~num_pis:5 ~num_gates:30 ~num_pos:3 () in
  let eng = Co.engine Algo.Cost.Spec.Area in
  Alcotest.(check bool) "additive" true eng.Co.additive;
  Alcotest.(check int) "eval = num_gates" (Aig.num_gates net) (eng.Co.eval net);
  (* freed of a live gate = MFFC size = 1 + recursive_deref *)
  let n =
    List.find (fun n -> Aig.ref_count net n > 0) (List.rev (T.order net))
  in
  let mffc = 1 + Aig.recursive_deref net n in
  ignore (Aig.recursive_ref net n);
  Alcotest.(check int) "freed = mffc" mffc (eng.Co.freed net n);
  (* accept: strict gain, or zero gain only in zero-gain mode *)
  Alcotest.(check bool) "gain 1 accepted" true (Co.accept eng 1);
  Alcotest.(check bool) "gain 0 rejected" false (Co.accept eng 0);
  Alcotest.(check bool) "gain 0 zero-gain ok" true
    (Co.accept ~zero_gain:true eng 0);
  Alcotest.(check bool) "gain -1 never" false (Co.accept ~zero_gain:true eng (-1))

let test_network_cost_area_is_seed_order () =
  let a = G.generate ~seed:11 ~num_pis:5 ~num_gates:30 ~num_pos:3 () in
  let eng = Co.engine Algo.Cost.Spec.Area in
  let module Dp = Algo.Depth.Make (Aig) in
  let o, g, d = Co.network_cost eng a in
  Alcotest.(check int) "objective = gates" (Aig.num_gates a) o;
  Alcotest.(check int) "gates" (Aig.num_gates a) g;
  Alcotest.(check int) "depth" (Dp.depth a) d

let suite =
  List.map QCheck_alcotest.to_alcotest
    (monoid_props @ eval_is_fold_props @ eval_is_fold_mig_props
   @ freed_is_mffc_mass_props @ added_is_eval_delta_props @ telescoping_props
   @ [ depth_never_worsens ])
  @ [
      Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
      Alcotest.test_case "weights file" `Quick test_weights_file;
      Alcotest.test_case "engine area semantics" `Quick test_engine_area;
      Alcotest.test_case "network cost (area = seed order)" `Quick
        test_network_cost_area_is_seed_order;
    ]
