(* Tests for the truth-table package: Tt, Npn, Isop, Factor. *)

open Kitty

let tt_testable = Alcotest.testable Tt.pp Tt.equal

(* -- deterministic unit tests -- *)

let test_const () =
  Alcotest.(check bool) "const0 is const0" true (Tt.is_const0 (Tt.const0 4));
  Alcotest.(check bool) "const1 is const1" true (Tt.is_const1 (Tt.const1 4));
  Alcotest.(check bool) "const0 of 8 vars" true (Tt.is_const0 (Tt.const0 8));
  Alcotest.(check tt_testable) "not const0 = const1" (Tt.const1 3) Tt.(~:(const0 3))

let test_nth_var () =
  for n = 1 to 8 do
    for i = 0 to n - 1 do
      let v = Tt.nth_var n i in
      Alcotest.(check int)
        (Printf.sprintf "x%d over %d vars has 2^%d ones" i n (n - 1))
        (1 lsl (n - 1)) (Tt.count_ones v);
      for m = 0 to (1 lsl n) - 1 do
        Alcotest.(check int) "bit matches minterm" ((m lsr i) land 1) (Tt.get_bit v m)
      done
    done
  done

let test_ops_small () =
  let a = Tt.nth_var 3 0 and b = Tt.nth_var 3 1 and c = Tt.nth_var 3 2 in
  Alcotest.(check string) "and" "80" (Tt.to_hex Tt.(a &: b &: c));
  Alcotest.(check string) "or" "fe" (Tt.to_hex Tt.(a |: b |: c));
  Alcotest.(check string) "maj" "e8" (Tt.to_hex (Tt.maj a b c));
  Alcotest.(check string) "xor3" "96" (Tt.to_hex Tt.(a ^: b ^: c))

let test_hex_roundtrip () =
  let cases = [ (4, "cafe"); (3, "e8"); (2, "6"); (5, "deadbeef") ] in
  List.iter
    (fun (n, s) ->
      Alcotest.(check string) ("hex roundtrip " ^ s) s (Tt.to_hex (Tt.of_hex n s)))
    cases

let test_cofactors () =
  let f = Tt.of_hex 3 "e8" (* maj *) in
  (* maj(1,b,c) = b|c ; maj(0,b,c) = b&c *)
  let b = Tt.nth_var 3 1 and c = Tt.nth_var 3 2 in
  Alcotest.(check tt_testable) "cofactor1 maj" Tt.(b |: c) (Tt.cofactor1 f 0);
  Alcotest.(check tt_testable) "cofactor0 maj" Tt.(b &: c) (Tt.cofactor0 f 0)

let test_support () =
  let f = Tt.(nth_var 5 1 &: nth_var 5 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Tt.support f);
  Alcotest.(check bool) "has_var" true (Tt.has_var f 1);
  Alcotest.(check bool) "no var" false (Tt.has_var f 0)

let test_flip_swap () =
  let f = Tt.(nth_var 3 0 &: ~:(nth_var 3 1)) in
  let g = Tt.flip f 1 in
  Alcotest.(check tt_testable) "flip" Tt.(nth_var 3 0 &: nth_var 3 1) g;
  let h = Tt.swap_vars f 0 1 in
  Alcotest.(check tt_testable) "swap" Tt.(nth_var 3 1 &: ~:(nth_var 3 0)) h

let test_extend_shrink () =
  let f = Tt.(nth_var 3 0 ^: nth_var 3 2) in
  let g = Tt.extend f 6 in
  Alcotest.(check tt_testable) "extend" Tt.(nth_var 6 0 ^: nth_var 6 2) g;
  Alcotest.(check tt_testable) "shrink inverse" f (Tt.shrink g 3)

let test_apply () =
  (* compose maj with (and, or, xor) inputs over 2 fresh variables *)
  let maj = Tt.of_hex 3 "e8" in
  let x = Tt.nth_var 2 0 and y = Tt.nth_var 2 1 in
  let got = Tt.apply maj [| Tt.(x &: y); Tt.(x |: y); Tt.(x ^: y) |] in
  let expected = Tt.maj Tt.(x &: y) Tt.(x |: y) Tt.(x ^: y) in
  Alcotest.(check tt_testable) "apply = direct composition" expected got

(* -- NPN -- *)

let test_npn_roundtrip_exhaustive () =
  (* every 3-variable function: canonical + transforms are consistent *)
  for v = 0 to 255 do
    let f = Tt.of_int64 3 (Int64.of_int v) in
    let g, tr = Npn.canonize f in
    Alcotest.(check tt_testable) "apply tr f = canonical" g (Npn.apply tr f);
    Alcotest.(check tt_testable) "apply_inverse tr g = f" f (Npn.apply_inverse tr g)
  done

let test_npn_class_count_3 () =
  (* the number of NPN classes of 3-variable functions is 14 *)
  let classes = Hashtbl.create 32 in
  for v = 0 to 255 do
    let f = Tt.of_int64 3 (Int64.of_int v) in
    let g, _ = Npn.canonize f in
    Hashtbl.replace classes (Tt.to_hex g) ()
  done;
  Alcotest.(check int) "14 NPN classes of 3 vars" 14 (Hashtbl.length classes)

let test_npn_db_assignment () =
  (* db_input_assignment reconstructs f from the canonical form *)
  let rng = Seed.state 42 in
  for _ = 1 to 200 do
    let v = Random.State.int rng 65536 in
    let f = Tt.of_int64 4 (Int64.of_int v) in
    let g, tr = Npn.canonize f in
    let assignment, out_c = Npn.db_input_assignment tr in
    (* feed g with (possibly complemented) projections per the assignment *)
    let args =
      Array.map
        (fun (leaf, c) ->
          let p = Tt.nth_var 4 leaf in
          if c then Tt.( ~: ) p else p)
        assignment
    in
    let rebuilt = Tt.apply g args in
    let rebuilt = if out_c then Tt.( ~: ) rebuilt else rebuilt in
    Alcotest.(check tt_testable) "db assignment rebuilds f" f rebuilt
  done

(* -- ISOP / factoring -- *)

let test_isop_simple () =
  let f = Tt.(nth_var 3 0 |: (nth_var 3 1 &: nth_var 3 2)) in
  let cubes = Isop.of_tt f in
  Alcotest.(check tt_testable) "isop covers f" f (Cube.sop_to_tt 3 cubes);
  Alcotest.(check int) "two cubes" 2 (List.length cubes)

let test_factor_simple () =
  (* x0 x1 + x0 x2 factors into x0 (x1 + x2): 3 literals *)
  let f = Tt.((nth_var 3 0 &: nth_var 3 1) |: (nth_var 3 0 &: nth_var 3 2)) in
  let e = Factor.of_tt f in
  Alcotest.(check tt_testable) "factor sound" f (Factor.to_tt 3 e);
  Alcotest.(check int) "3 literals" 3 (Factor.literal_count e)

(* -- property-based tests -- *)

let arb_tt n =
  QCheck.make
    ~print:(fun v -> Printf.sprintf "0x%Lx" v)
    QCheck.Gen.(map Int64.of_int (int_bound ((1 lsl min 16 (1 lsl n)) - 1)))

let prop_demorgan =
  QCheck.Test.make ~name:"DeMorgan on truth tables" ~count:500
    (QCheck.pair (arb_tt 4) (arb_tt 4))
    (fun (a, b) ->
      let a = Tt.of_int64 4 a and b = Tt.of_int64 4 b in
      Tt.equal Tt.(~:(a &: b)) Tt.(~:a |: ~:b))

let prop_shannon =
  QCheck.Test.make ~name:"Shannon expansion" ~count:500 (arb_tt 4)
    (fun v ->
      let f = Tt.of_int64 4 v in
      let ok = ref true in
      for i = 0 to 3 do
        let x = Tt.nth_var 4 i in
        let expanded = Tt.((x &: cofactor1 f i) |: (~:x &: cofactor0 f i)) in
        ok := !ok && Tt.equal f expanded
      done;
      !ok)

let prop_npn_invariant =
  QCheck.Test.make ~name:"NPN canonical is class invariant" ~count:200
    (QCheck.pair (arb_tt 4) (QCheck.int_bound 15))
    (fun (v, flips) ->
      let f = Tt.of_int64 4 v in
      (* apply a random input-flip transform; canonical must not change *)
      let tr = { Npn.perm = [| 0; 1; 2; 3 |]; flips; out_flip = false } in
      let f' = Npn.apply tr f in
      let g, _ = Npn.canonize f and g', _ = Npn.canonize f' in
      Tt.equal g g')

let prop_isop_sound =
  QCheck.Test.make ~name:"ISOP cover equals function" ~count:500 (arb_tt 4)
    (fun v ->
      let f = Tt.of_int64 4 v in
      Tt.equal f (Cube.sop_to_tt 4 (Isop.of_tt f)))

let prop_factor_sound =
  QCheck.Test.make ~name:"factored form equals function" ~count:500 (arb_tt 4)
    (fun v ->
      let f = Tt.of_int64 4 v in
      Tt.equal f (Factor.to_tt 4 (Factor.of_tt f)))

let prop_isop_sound_6 =
  QCheck.Test.make ~name:"ISOP sound on 6 vars" ~count:100
    (QCheck.pair (arb_tt 4) (arb_tt 4))
    (fun (v1, v2) ->
      (* build a 6-var function from two 4-var pieces *)
      let a = Tt.extend (Tt.of_int64 4 v1) 6 in
      let b = Tt.extend (Tt.of_int64 4 v2) 6 in
      let f = Tt.(ite (nth_var 6 5) a (b ^: nth_var 6 4)) in
      Tt.equal f (Cube.sop_to_tt 6 (Isop.of_tt f)))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_const;
    Alcotest.test_case "nth_var" `Quick test_nth_var;
    Alcotest.test_case "basic ops" `Quick test_ops_small;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "cofactors" `Quick test_cofactors;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "flip/swap" `Quick test_flip_swap;
    Alcotest.test_case "extend/shrink" `Quick test_extend_shrink;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "npn roundtrip (all 3-var)" `Quick test_npn_roundtrip_exhaustive;
    Alcotest.test_case "npn class count (3 vars)" `Quick test_npn_class_count_3;
    Alcotest.test_case "npn db assignment" `Quick test_npn_db_assignment;
    Alcotest.test_case "isop simple" `Quick test_isop_simple;
    Alcotest.test_case "factor simple" `Quick test_factor_simple;
    QCheck_alcotest.to_alcotest prop_demorgan;
    QCheck_alcotest.to_alcotest prop_shannon;
    QCheck_alcotest.to_alcotest prop_npn_invariant;
    QCheck_alcotest.to_alcotest prop_isop_sound;
    QCheck_alcotest.to_alcotest prop_factor_sound;
    QCheck_alcotest.to_alcotest prop_isop_sound_6;
  ]

(* -- multi-word truth tables (more than 6 variables) -- *)

let test_multiword_ops () =
  let n = 8 in
  let a = Tt.nth_var n 0 and g = Tt.nth_var n 7 in
  (* variables below and above the word boundary behave identically *)
  Alcotest.(check int) "count a" (1 lsl (n - 1)) (Tt.count_ones a);
  Alcotest.(check int) "count g" (1 lsl (n - 1)) (Tt.count_ones g);
  Alcotest.(check int) "count a&g" (1 lsl (n - 2)) (Tt.count_ones Tt.(a &: g));
  Alcotest.(check tt_testable) "demorgan 8 vars" Tt.(~:(a &: g)) Tt.(~:a |: ~:g)

let test_multiword_cofactor_flip () =
  let n = 8 in
  for i = 0 to n - 1 do
    let f = Tt.(nth_var n i &: nth_var n ((i + 3) mod n)) in
    (* cofactors of f in i *)
    Alcotest.(check bool)
      (Printf.sprintf "cof0 var %d" i)
      true
      (Tt.is_const0 (Tt.cofactor0 f i));
    Alcotest.(check tt_testable)
      (Printf.sprintf "cof1 var %d" i)
      (Tt.nth_var n ((i + 3) mod n))
      (Tt.cofactor1 f i);
    (* double flip is identity *)
    Alcotest.(check tt_testable)
      (Printf.sprintf "flip twice var %d" i)
      f
      (Tt.flip (Tt.flip f i) i);
    (* flip exchanges cofactors *)
    Alcotest.(check tt_testable)
      (Printf.sprintf "flip swaps cofactors var %d" i)
      (Tt.cofactor0 f i)
      (Tt.cofactor1 (Tt.flip f i) i)
  done

let test_multiword_swap () =
  let n = 9 in
  (* swap across the word boundary: vars 2 and 8 *)
  let f = Tt.(nth_var n 2 &: ~:(nth_var n 8)) in
  let g = Tt.swap_vars f 2 8 in
  Alcotest.(check tt_testable) "swap" Tt.(nth_var n 8 &: ~:(nth_var n 2)) g;
  Alcotest.(check tt_testable) "swap involutive" f (Tt.swap_vars g 2 8)

let test_extend_shrink_multiword () =
  let f = Tt.(nth_var 5 1 ^: nth_var 5 4) in
  let g = Tt.extend f 9 in
  Alcotest.(check tt_testable) "extend to 9" Tt.(nth_var 9 1 ^: nth_var 9 4) g;
  Alcotest.(check tt_testable) "shrink back" f (Tt.shrink g 5);
  Alcotest.(check (list int)) "support preserved" [ 1; 4 ] (Tt.support g)

let test_npn_class_count_4 () =
  (* the classic result: 222 NPN classes of 4-variable functions *)
  let classes = Hashtbl.create 256 in
  for v = 0 to 65535 do
    let f = Tt.of_int64 4 (Int64.of_int v) in
    let g, _ = Npn.canonize f in
    Hashtbl.replace classes (Tt.to_hex g) ()
  done;
  Alcotest.(check int) "222 NPN classes of 4 vars" 222 (Hashtbl.length classes)

let test_npn_roundtrip_4 () =
  let rng = Seed.state 99 in
  for _ = 1 to 500 do
    let v = Random.State.int rng 65536 in
    let f = Tt.of_int64 4 (Int64.of_int v) in
    let g, tr = Npn.canonize f in
    Alcotest.(check tt_testable) "apply" g (Npn.apply tr f);
    Alcotest.(check tt_testable) "inverse" f (Npn.apply_inverse tr g)
  done

let test_cube_ops () =
  let c = Cube.of_literal 2 true in
  let c = Cube.add_literal c 5 false in
  Alcotest.(check int) "2 literals" 2 (Cube.num_literals c);
  Alcotest.(check bool) "has 2" true (Cube.has_literal c 2);
  Alcotest.(check bool) "polarity 2" true (Cube.polarity c 2);
  Alcotest.(check bool) "polarity 5" false (Cube.polarity c 5);
  let c' = Cube.remove_literal c 2 in
  Alcotest.(check int) "1 literal" 1 (Cube.num_literals c');
  Alcotest.(check tt_testable) "cube tt"
    Tt.(nth_var 6 2 &: ~:(nth_var 6 5))
    (Cube.to_tt 6 c)

let test_isop_irredundant () =
  (* each ISOP cube must be necessary: removing any changes the function *)
  let rng = Seed.state 7 in
  for _ = 1 to 50 do
    let v = Random.State.int rng 65536 in
    let f = Tt.of_int64 4 (Int64.of_int v) in
    let cubes = Isop.of_tt f in
    List.iteri
      (fun i _ ->
        let without = List.filteri (fun j _ -> j <> i) cubes in
        if Tt.equal (Cube.sop_to_tt 4 without) f then
          Alcotest.failf "redundant cube in ISOP of %s" (Tt.to_hex f))
      cubes
  done

let test_factor_not_worse_than_sop () =
  (* the factored form never has more literals than the flat SOP *)
  let rng = Seed.state 13 in
  for _ = 1 to 100 do
    let v = Random.State.int rng 65536 in
    let f = Tt.of_int64 4 (Int64.of_int v) in
    if not (Tt.is_const0 f || Tt.is_const1 f) then begin
      let sop_lits = Cube.sop_literal_count (Isop.of_tt f) in
      let factored_lits = Factor.literal_count (Factor.of_tt f) in
      if factored_lits > sop_lits then
        Alcotest.failf "factoring increased literals for %s: %d > %d"
          (Tt.to_hex f) factored_lits sop_lits
    end
  done

let extra_suite =
  [
    Alcotest.test_case "multiword ops" `Quick test_multiword_ops;
    Alcotest.test_case "multiword cofactor/flip" `Quick test_multiword_cofactor_flip;
    Alcotest.test_case "multiword swap" `Quick test_multiword_swap;
    Alcotest.test_case "extend/shrink multiword" `Quick test_extend_shrink_multiword;
    Alcotest.test_case "npn class count (4 vars) = 222" `Quick test_npn_class_count_4;
    Alcotest.test_case "npn roundtrip (4 vars)" `Quick test_npn_roundtrip_4;
    Alcotest.test_case "cube operations" `Quick test_cube_ops;
    Alcotest.test_case "isop irredundant" `Quick test_isop_irredundant;
    Alcotest.test_case "factoring no worse than sop" `Quick test_factor_not_worse_than_sop;
  ]

let suite = suite @ extra_suite
