(* One knob for every random seed in the test suite.

   Each [Random.State.make] site routes its constant through [get] (or
   builds its state with [state], or its seed list with [list]), so a CI
   failure that prints a seed is replayable locally with

     GENLOG_TEST_SEED=<seed> dune runtest

   Without the environment override everything defaults to the historical
   constants, keeping the suite deterministic. *)

let override =
  match Sys.getenv_opt "GENLOG_TEST_SEED" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> Some n
    | None ->
      Printf.eprintf "GENLOG_TEST_SEED=%S is not an integer; ignoring\n%!" s;
      None)

(* The seed actually used where the suite historically used [default]. *)
let get default = Option.value override ~default

(* A RNG state seeded with [get default]. *)
let state default = Random.State.make [| get default |]

(* A seed list: the historical list, or just the override when set (one
   replayed failure instead of the whole sweep). *)
let list defaults = match override with None -> defaults | Some s -> [ s ]

(* Iteration-budget multiplier for the fuzz suites: nightly CI runs with
   GENLOG_FUZZ_ITERS=10 for a 10x deeper sweep. *)
let fuzz_iters =
  match Sys.getenv_opt "GENLOG_FUZZ_ITERS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "GENLOG_FUZZ_ITERS=%S is not a positive integer; using 1\n%!" s;
      1)
