(* Tests for the generic algorithm layer: depth, simulation, cuts,
   windows, rewriting, resubstitution, refactoring, balancing, LUT mapping
   and CEC.  The central invariant — every optimization pass preserves
   functional equivalence — is checked with SAT CEC on randomly generated
   networks for every representation. *)

open Kitty
open Network

let tt_testable = Alcotest.testable Tt.pp Tt.equal

module Sim_aig = Algo.Simulate.Make (Aig)
module Depth_aig = Algo.Depth.Make (Aig)
module Cuts_aig = Algo.Cuts.Make (Aig)
module Mffc_aig = Algo.Mffc.Make (Aig)
module Reconv_aig = Algo.Reconv.Make (Aig)
module Cec_aig = Algo.Cec.Make (Aig) (Aig)

(* -- helpers -- *)

(* a & (b & (c & d)) with an xor output for spice *)
let sample_aig () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let c = Aig.create_pi t and d = Aig.create_pi t in
  let cd = Aig.create_and t c d in
  let bcd = Aig.create_and t b cd in
  let abcd = Aig.create_and t a bcd in
  Aig.create_po t abcd;
  (t, (a, b, c, d))

(* Random networks come from the shared [Gen] module (test/gen.ml); seeds
   route through [Seed] so GENLOG_TEST_SEED can replay a failure. *)

(* -- depth (paper Algorithm 1) -- *)

let test_depth () =
  let t, _ = sample_aig () in
  Alcotest.(check int) "chain depth 3" 3 (Depth_aig.depth t)

(* -- simulation -- *)

let test_simulate () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  Aig.create_po t (Aig.create_maj t a b c);
  Aig.create_po t (Aig.complement (Aig.create_xor t a b));
  let outs = Sim_aig.output_functions t in
  Alcotest.(check tt_testable) "maj" (Tt.of_hex 3 "e8") outs.(0);
  Alcotest.(check tt_testable) "xnor"
    Tt.(~:(nth_var 3 0 ^: nth_var 3 1))
    outs.(1)

(* -- cuts -- *)

let test_cuts () =
  let t, _ = sample_aig () in
  let r = Cuts_aig.enumerate t ~k:4 ~cut_limit:8 () in
  let root = Aig.node_of_signal (Aig.po_at t 0) in
  let cuts = Cuts_aig.cuts_of r root in
  (* the 4-leaf cut {a,b,c,d} must be present with function a&b&c&d *)
  let found =
    List.exists
      (fun cut ->
        Array.length cut.Cuts_aig.leaves = 4
        && Tt.equal cut.Cuts_aig.tt
             Tt.(nth_var 4 0 &: nth_var 4 1 &: nth_var 4 2 &: nth_var 4 3))
      cuts
  in
  Alcotest.(check bool) "4-and cut found" true found;
  (* every cut function must agree with the root function restricted to the
     cut leaves: verify via full simulation *)
  let values = Sim_aig.simulate_exhaustive t in
  List.iter
    (fun cut ->
      let args = Array.map (fun l -> values.(l)) cut.Cuts_aig.leaves in
      let recomposed = Tt.apply cut.Cuts_aig.tt args in
      Alcotest.(check tt_testable) "cut function correct" values.(root) recomposed)
    cuts

let test_cut_count_limit () =
  let module R = Gen.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 7) ~num_pis:6 ~num_gates:60 ~num_pos:4 () in
  let r = Cuts_aig.enumerate t ~k:4 ~cut_limit:6 () in
  Aig.foreach_gate t (fun n ->
      let c = List.length (Cuts_aig.cuts_of r n) in
      if c > 6 then Alcotest.failf "node %d has %d cuts" n c)

(* -- MFFC -- *)

let test_mffc () =
  let t, _ = sample_aig () in
  let root = Aig.node_of_signal (Aig.po_at t 0) in
  Alcotest.(check int) "mffc of root covers the whole chain" 3
    (Mffc_aig.size t root);
  let leaves = Mffc_aig.leaves t root in
  Alcotest.(check int) "4 leaves" 4 (List.length leaves)

(* -- reconvergence-driven cuts -- *)

let test_reconv () =
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  (* reconvergent: f = (a&b) | (a&c) *)
  let ab = Aig.create_and t a b in
  let ac = Aig.create_and t a c in
  let f = Aig.create_or t ab ac in
  Aig.create_po t f;
  let leaves = Reconv_aig.compute t ~max_leaves:8 (Aig.node_of_signal f) in
  (* expansion should reach the PIs: {a, b, c} *)
  Alcotest.(check int) "3 leaves" 3 (List.length leaves);
  List.iter
    (fun l -> Alcotest.(check bool) "leaf is pi" true (Aig.is_pi t l))
    leaves

(* -- equivalence framework -- *)

let cec_equal name a b =
  match Cec_aig.check a b with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ -> Alcotest.fail (name ^ ": counterexample found")
  | Algo.Cec.Unknown -> Alcotest.fail (name ^ ": cec unknown")

let test_cec_basic () =
  let t1, _ = sample_aig () in
  let t2 = Aig.create () in
  let a = Aig.create_pi t2 and b = Aig.create_pi t2 in
  let c = Aig.create_pi t2 and d = Aig.create_pi t2 in
  (* balanced version of the same function *)
  Aig.create_po t2 (Aig.create_and t2 (Aig.create_and t2 a b) (Aig.create_and t2 c d));
  cec_equal "balanced vs chain" t1 t2;
  (* a genuinely different function must yield a valid counterexample *)
  let t3 = Aig.create () in
  let a3 = Aig.create_pi t3 and b3 = Aig.create_pi t3 in
  let c3 = Aig.create_pi t3 and d3 = Aig.create_pi t3 in
  Aig.create_po t3 (Aig.create_and t3 (Aig.create_or t3 a3 b3) (Aig.create_and t3 c3 d3));
  (match Cec_aig.check t1 t3 with
  | Algo.Cec.Counterexample cex ->
    Alcotest.(check int) "cex width" 4 (Array.length cex);
    (* the counterexample must actually distinguish the two networks *)
    let eval t =
      let pis = Array.map (fun v -> if v then Tt.const1 0 else Tt.const0 0) cex in
      let module S = Algo.Simulate.Make (Aig) in
      let values = S.simulate t pis in
      S.output_values t values
    in
    let o1 = eval t1 and o3 = eval t3 in
    Alcotest.(check bool) "cex distinguishes" false (Tt.equal o1.(0) o3.(0))
  | Algo.Cec.Equivalent | Algo.Cec.Unknown -> Alcotest.fail "expected cex")

let test_cec_cross_representation () =
  let module Conv = Convert.Make (Aig) (Mig) in
  let module Cec_am = Algo.Cec.Make (Aig) (Mig) in
  let module R = Gen.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 21) ~num_pis:5 ~num_gates:40 ~num_pos:3 () in
  let m = Conv.convert t in
  (match Cec_am.check t m with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "aig->mig conversion not equivalent")

(* -- balancing -- *)

let test_balance_reduces_depth () =
  let t, _ = sample_aig () in
  let before = Aig.num_gates t in
  let module B = Algo.Balance.Make (Aig) in
  let t_ref, _ = sample_aig () in
  let subs = B.run t in
  Alcotest.(check bool) "balanced something" true (subs > 0);
  Alcotest.(check int) "depth reduced to 2" 2 (Depth_aig.depth t);
  Alcotest.(check bool) "no size increase" true (Aig.num_gates t <= before);
  cec_equal "balance preserves function" t_ref t

let test_balance_mig () =
  (* an or-chain in a MIG: maj(1, a, maj(1, b, maj(1, c, d))) *)
  let t = Mig.create () in
  let a = Mig.create_pi t and b = Mig.create_pi t in
  let c = Mig.create_pi t and d = Mig.create_pi t in
  Mig.create_po t (Mig.create_or t a (Mig.create_or t b (Mig.create_or t c d)));
  let module Dm = Algo.Depth.Make (Mig) in
  let module Bm = Algo.Balance.Make (Mig) in
  let module Cm = Algo.Cec.Make (Mig) (Mig) in
  let t_ref = Mig.create () in
  let a' = Mig.create_pi t_ref and b' = Mig.create_pi t_ref in
  let c' = Mig.create_pi t_ref and d' = Mig.create_pi t_ref in
  Mig.create_po t_ref
    (Mig.create_or t_ref a' (Mig.create_or t_ref b' (Mig.create_or t_ref c' d')));
  Alcotest.(check int) "initial depth 3" 3 (Dm.depth t);
  ignore (Bm.run t);
  Alcotest.(check int) "balanced depth 2" 2 (Dm.depth t);
  (match Cm.check t_ref t with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "mig balance broke the function")

(* -- rewriting -- *)

let test_rewrite_reduces () =
  (* redundant structure and(a, and(a, b)): the {a,b} cut computes a&b, so
     the database replacement is the inner gate itself — gain 1 through
     DAG-aware sharing *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let t1 = Aig.create_and t a b in
  let t2 = Aig.create_and t a t1 in
  Aig.create_po t t2;
  let module Cl = Convert.Cleanup (Aig) in
  let t_ref = Cl.cleanup t in
  let module Rw = Algo.Rewrite.Make (Aig) in
  let db = Exact.Database.create Exact.Synth.aig_config in
  let before = Aig.num_gates t in
  let gain = Rw.run t ~db () in
  Alcotest.(check bool) "gain positive" true (gain > 0);
  Alcotest.(check bool) "fewer gates" true (Aig.num_gates t < before);
  cec_equal "rewrite preserves function" t_ref t

(* -- resubstitution -- *)

let test_resub_shares () =
  (* f = (a&b)|(a&c) with divisor (b|c) available: and 1-resub finds
     f = a & (b|c), freeing two gates for one *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let ac = Aig.create_and t a c in
  let f = Aig.create_or t ab ac in
  let bc = Aig.create_or t b c in
  Aig.create_po t f;
  Aig.create_po t bc;
  let module C = Convert.Cleanup (Aig) in
  let t_ref = C.cleanup t in
  let module Rs = Algo.Resub.Make (Aig) in
  let before = Aig.num_gates t in
  let subs = Rs.run t ~kernel:Algo.Resub.And_or () in
  Alcotest.(check bool) "resubstituted" true (subs > 0);
  Alcotest.(check bool) "fewer gates" true (Aig.num_gates t < before);
  cec_equal "resub preserves function" t_ref t

(* -- refactoring -- *)

let test_refactor_reduces () =
  (* a redundant sum-of-products cone: f = ab + ab' (= a), built literally;
     the collapsed MFFC function is the projection a *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let ab' = Aig.create_and t a (Aig.complement b) in
  let f = Aig.create_or t ab ab' in
  Aig.create_po t f;
  let module C = Convert.Cleanup (Aig) in
  let t_ref = C.cleanup t in
  let module Rf = Algo.Refactor.Make (Aig) in
  let subs = Rf.run t () in
  Alcotest.(check bool) "refactored" true (subs > 0);
  Alcotest.(check int) "collapsed to a wire" 0 (Aig.num_gates t);
  Alcotest.(check int) "po = a" a (Aig.po_at t 0);
  cec_equal "refactor preserves function" t_ref t

(* -- LUT mapping -- *)

let test_lutmap () =
  let module R = Gen.Make (Aig) in
  let module L = Algo.Lutmap.Make (Aig) in
  let module Cx = Algo.Cec.Make (Aig) (Klut) in
  let t = R.generate ~seed:(Seed.get 3) ~num_pis:6 ~num_gates:80 ~num_pos:4 () in
  let m = L.map t ~k:6 () in
  Alcotest.(check bool) "mapping nonempty" true (m.L.lut_count > 0);
  Alcotest.(check bool) "fewer luts than gates" true
    (m.L.lut_count <= Aig.num_gates t);
  (match Cx.check t m.L.klut with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "lut mapping not equivalent");
  (* every LUT respects the fanin bound *)
  Klut.foreach_gate m.L.klut (fun n ->
      Alcotest.(check bool) "lut arity <= 6" true (Klut.fanin_size m.L.klut n <= 6))

(* -- equivalence preservation on random networks, all passes, all reps -- *)

let shared_aig_db = lazy (Exact.Database.create Exact.Synth.aig_config)
let shared_xag_db = lazy (Exact.Database.create Exact.Synth.xag_config)
let shared_mig_db = lazy (Exact.Database.create Exact.Synth.mig_config)

let preservation_test (type t) ~name
    (module N : Intf.NETWORK with type t = t) ~(pass : t -> unit) ~seeds () =
  let module R = Gen.Make (N) in
  let module C = Algo.Cec.Make (N) (N) in
  let module Cl = Convert.Cleanup (N) in
  List.iter
    (fun seed ->
      let t =
        R.generate ~use_maj:(N.max_fanin >= 3) ~seed ~num_pis:5 ~num_gates:50
          ~num_pos:4 ()
      in
      let t_ref = Cl.cleanup t in
      pass t;
      (match N.check_integrity t with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: seed %d integrity: %s" name seed
          (String.concat "; " errs));
      match C.check t_ref t with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ ->
        Alcotest.failf "%s: seed %d produced a counterexample" name seed
      | Algo.Cec.Unknown -> Alcotest.failf "%s: seed %d cec unknown" name seed)
    seeds

let seeds = Seed.list [ 1; 2; 3; 4; 5 ]

let test_preserve_rewrite_aig () =
  let module Rw = Algo.Rewrite.Make (Aig) in
  preservation_test ~name:"rewrite/aig" (module Aig)
    ~pass:(fun t -> ignore (Rw.run t ~db:(Lazy.force shared_aig_db) ()))
    ~seeds ()

let test_preserve_rewrite_xag () =
  let module Rw = Algo.Rewrite.Make (Xag) in
  preservation_test ~name:"rewrite/xag" (module Xag)
    ~pass:(fun t -> ignore (Rw.run t ~db:(Lazy.force shared_xag_db) ()))
    ~seeds ()

let test_preserve_rewrite_mig () =
  let module Rw = Algo.Rewrite.Make (Mig) in
  preservation_test ~name:"rewrite/mig" (module Mig)
    ~pass:(fun t -> ignore (Rw.run t ~db:(Lazy.force shared_mig_db) ()))
    ~seeds:(Seed.list [ 1; 2; 3 ]) ()

let test_preserve_resub () =
  let module Rs_a = Algo.Resub.Make (Aig) in
  let module Rs_x = Algo.Resub.Make (Xag) in
  let module Rs_m = Algo.Resub.Make (Mig) in
  preservation_test ~name:"resub/aig" (module Aig)
    ~pass:(fun t -> ignore (Rs_a.run t ~kernel:Algo.Resub.And_or ~max_inserted:2 ()))
    ~seeds ();
  preservation_test ~name:"resub/xag" (module Xag)
    ~pass:(fun t -> ignore (Rs_x.run t ~kernel:Algo.Resub.And_or_xor ~max_inserted:2 ()))
    ~seeds ();
  preservation_test ~name:"resub/mig" (module Mig)
    ~pass:(fun t -> ignore (Rs_m.run t ~kernel:Algo.Resub.Maj3 ()))
    ~seeds ()

let test_preserve_refactor () =
  let module Rf_a = Algo.Refactor.Make (Aig) in
  let module Rf_x = Algo.Refactor.Make (Xag) in
  let module Rf_m = Algo.Refactor.Make (Mig) in
  preservation_test ~name:"refactor/aig" (module Aig)
    ~pass:(fun t -> ignore (Rf_a.run t ())) ~seeds ();
  preservation_test ~name:"refactor/xag" (module Xag)
    ~pass:(fun t -> ignore (Rf_x.run t ())) ~seeds ();
  preservation_test ~name:"refactor/mig" (module Mig)
    ~pass:(fun t -> ignore (Rf_m.run t ())) ~seeds ()

let test_preserve_balance () =
  let module B_a = Algo.Balance.Make (Aig) in
  let module B_x = Algo.Balance.Make (Xag) in
  let module B_m = Algo.Balance.Make (Mig) in
  preservation_test ~name:"balance/aig" (module Aig)
    ~pass:(fun t -> ignore (B_a.run t)) ~seeds ();
  preservation_test ~name:"balance/xag" (module Xag)
    ~pass:(fun t -> ignore (B_x.run t)) ~seeds ();
  preservation_test ~name:"balance/mig" (module Mig)
    ~pass:(fun t -> ignore (B_m.run t)) ~seeds ()

let suite =
  [
    Alcotest.test_case "depth" `Quick test_depth;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "cuts: functions correct" `Quick test_cuts;
    Alcotest.test_case "cuts: limit respected" `Quick test_cut_count_limit;
    Alcotest.test_case "mffc" `Quick test_mffc;
    Alcotest.test_case "reconvergence-driven cut" `Quick test_reconv;
    Alcotest.test_case "cec basic + counterexample" `Quick test_cec_basic;
    Alcotest.test_case "cec across representations" `Quick test_cec_cross_representation;
    Alcotest.test_case "balance reduces depth" `Quick test_balance_reduces_depth;
    Alcotest.test_case "balance mig or-chain" `Quick test_balance_mig;
    Alcotest.test_case "rewrite reduces" `Quick test_rewrite_reduces;
    Alcotest.test_case "resub shares divisor" `Quick test_resub_shares;
    Alcotest.test_case "refactor reduces" `Quick test_refactor_reduces;
    Alcotest.test_case "lut mapping" `Quick test_lutmap;
    Alcotest.test_case "preservation: rewrite aig" `Slow test_preserve_rewrite_aig;
    Alcotest.test_case "preservation: rewrite xag" `Slow test_preserve_rewrite_xag;
    Alcotest.test_case "preservation: rewrite mig" `Slow test_preserve_rewrite_mig;
    Alcotest.test_case "preservation: resub" `Slow test_preserve_resub;
    Alcotest.test_case "preservation: refactor" `Slow test_preserve_refactor;
    Alcotest.test_case "preservation: balance" `Slow test_preserve_balance;
  ]

(* -- additional coverage -- *)

let test_cuts_k6 () =
  let module R = Gen.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 9) ~num_pis:8 ~num_gates:60 ~num_pos:4 () in
  let r = Cuts_aig.enumerate t ~k:6 ~cut_limit:8 () in
  let values = Sim_aig.simulate_exhaustive t in
  Aig.foreach_gate t (fun n ->
      List.iter
        (fun cut ->
          Alcotest.(check bool) "leaf bound" true
            (Array.length cut.Cuts_aig.leaves <= 6);
          let args = Array.map (fun l -> values.(l)) cut.Cuts_aig.leaves in
          let recomposed = Tt.apply cut.Cuts_aig.tt args in
          if not (Tt.equal recomposed values.(n)) then
            Alcotest.failf "k=6 cut function wrong at node %d" n)
        (Cuts_aig.cuts_of r n))

let test_cuts_mig () =
  (* cut functions across a representation with constant fanins *)
  let module R = Gen.Make (Mig) in
  let module Cm = Algo.Cuts.Make (Mig) in
  let module Sm = Algo.Simulate.Make (Mig) in
  let t =
    R.generate ~use_maj:true ~seed:(Seed.get 4) ~num_pis:5 ~num_gates:40
      ~num_pos:3 ()
  in
  let r = Cm.enumerate t ~k:4 ~cut_limit:6 () in
  let values = Sm.simulate_exhaustive t in
  Mig.foreach_gate t (fun n ->
      List.iter
        (fun cut ->
          let args = Array.map (fun l -> values.(l)) cut.Cm.leaves in
          let recomposed = Tt.apply cut.Cm.tt args in
          if not (Tt.equal recomposed values.(n)) then
            Alcotest.failf "mig cut function wrong at node %d" n)
        (Cm.cuts_of r n))

let test_window_divisors () =
  (* side divisors must not be in the root's TFO and must be simulatable *)
  let module R = Gen.Make (Aig) in
  let module W = Algo.Window.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 15) ~num_pis:6 ~num_gates:80 ~num_pos:4 () in
  Aig.foreach_gate t (fun n ->
      if Aig.ref_count t n > 0 then begin
        let leaves = Reconv_aig.compute t ~max_leaves:8 n in
        if leaves <> [] then begin
          let w = W.of_cut t n leaves in
          let divisors = W.divisors t w ~max:20 in
          Alcotest.(check bool) "root not a divisor" true
            (not (List.mem n divisors));
          let values = W.simulate t w in
          W.simulate_divisors t w values divisors;
          List.iter
            (fun d ->
              Alcotest.(check bool) "divisor simulated" true
                (Hashtbl.mem values d))
            divisors
        end
      end)

let test_lutmap_k4 () =
  let module R = Gen.Make (Aig) in
  let module L = Algo.Lutmap.Make (Aig) in
  let module Cx = Algo.Cec.Make (Aig) (Klut) in
  let t = R.generate ~seed:(Seed.get 19) ~num_pis:6 ~num_gates:100 ~num_pos:4 () in
  let m = L.map t ~k:4 () in
  Klut.foreach_gate m.L.klut (fun n ->
      Alcotest.(check bool) "lut arity <= 4" true (Klut.fanin_size m.L.klut n <= 4));
  match Cx.check t m.L.klut with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "k=4 mapping not equivalent"

let test_lutmap_of_mig () =
  (* LUT mapping is generic: map a MIG *)
  let module R = Gen.Make (Mig) in
  let module L = Algo.Lutmap.Make (Mig) in
  let module Cx = Algo.Cec.Make (Mig) (Klut) in
  let t =
    R.generate ~use_maj:true ~seed:(Seed.get 28) ~num_pis:6 ~num_gates:60
      ~num_pos:3 ()
  in
  let m = L.map t ~k:6 () in
  Alcotest.(check bool) "nonempty" true (m.L.lut_count > 0);
  match Cx.check t m.L.klut with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "mig mapping not equivalent"

let test_depth_klut () =
  let module R = Gen.Make (Aig) in
  let module L = Algo.Lutmap.Make (Aig) in
  let t = R.generate ~seed:(Seed.get 3) ~num_pis:6 ~num_gates:80 ~num_pos:4 () in
  let m = L.map t ~k:6 () in
  let module Dk = Algo.Depth.Make (Klut) in
  Alcotest.(check int) "depth consistent" m.L.depth (Dk.depth m.L.klut);
  Alcotest.(check bool) "depth below aig depth" true
    (m.L.depth <= Depth_aig.depth t)

let test_cec_budget_unknown () =
  (* a large inequivalent pair with a 1-conflict budget must not claim
     equivalence *)
  let module R = Gen.Make (Aig) in
  (* two *distinct* seeds even under GENLOG_TEST_SEED: the test needs
     inequivalent networks *)
  let s = Seed.get 51 in
  let t1 = R.generate ~seed:s ~num_pis:8 ~num_gates:150 ~num_pos:2 () in
  let t2 = R.generate ~seed:(s + 1) ~num_pis:8 ~num_gates:150 ~num_pos:2 () in
  match Cec_aig.check ~conflict_budget:1 t1 t2 with
  | Algo.Cec.Equivalent -> Alcotest.fail "different seeds equivalent?"
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown -> ()

let test_fraig_then_rewrite_chain () =
  (* passes compose: fraig + rewrite + resub + balance in sequence *)
  let module R = Gen.Make (Aig) in
  let module Fr = Algo.Fraig.Make (Aig) in
  let module Rw = Algo.Rewrite.Make (Aig) in
  let module Rs = Algo.Resub.Make (Aig) in
  let module B = Algo.Balance.Make (Aig) in
  let module Cl = Convert.Cleanup (Aig) in
  let t = R.generate ~seed:(Seed.get 61) ~num_pis:6 ~num_gates:120 ~num_pos:5 () in
  let reference = Cl.cleanup t in
  ignore (Fr.run t ());
  ignore (Rw.run t ~db:(Lazy.force shared_aig_db) ());
  ignore (Rs.run t ~kernel:Algo.Resub.And_or ~max_inserted:2 ());
  ignore (B.run t);
  (match Aig.check_integrity t with
  | [] -> ()
  | errs -> Alcotest.failf "integrity: %s" (String.concat "; " errs));
  cec_equal "composed passes" reference t

let test_preserve_xmg_passes () =
  (* the fourth representation (extension) through the same algorithms *)
  let module Rw = Algo.Rewrite.Make (Xmg) in
  let module Rs = Algo.Resub.Make (Xmg) in
  let module B = Algo.Balance.Make (Xmg) in
  let db = Exact.Database.create Exact.Synth.xmg_config in
  preservation_test ~name:"rewrite/xmg" (module Xmg)
    ~pass:(fun t -> ignore (Rw.run t ~db ()))
    ~seeds:(Seed.list [ 1; 2 ]) ();
  preservation_test ~name:"resub/xmg" (module Xmg)
    ~pass:(fun t -> ignore (Rs.run t ~kernel:Algo.Resub.Maj3 ()))
    ~seeds:(Seed.list [ 1; 2 ]) ();
  preservation_test ~name:"balance/xmg" (module Xmg)
    ~pass:(fun t -> ignore (B.run t))
    ~seeds:(Seed.list [ 1; 2 ]) ()

let test_mffc_respects_po_refs () =
  (* a node driving a PO directly is referenced and not inside any MFFC *)
  let t = Aig.create () in
  let a = Aig.create_pi t and b = Aig.create_pi t and c = Aig.create_pi t in
  let ab = Aig.create_and t a b in
  let f = Aig.create_and t ab c in
  Aig.create_po t f;
  Aig.create_po t ab;
  Alcotest.(check int) "mffc of f excludes ab" 1 (Mffc_aig.size t (Aig.node_of_signal f))

(* -- cuts on k-LUT networks (node-function cache regression) -- *)

let test_cuts_klut_distinct_luts () =
  (* Two LUT nodes with the same arity but different functions: a node-
     function cache keyed by (kind, fanin arity) alone would conflate
     them, so [Cuts] must read the table off the node for LUT kinds. *)
  let module Cuts_k = Algo.Cuts.Make (Klut) in
  let module Sim_k = Algo.Simulate.Make (Klut) in
  let t = Klut.create () in
  let a = Klut.create_pi t and b = Klut.create_pi t and c = Klut.create_pi t in
  let xor3 = Klut.create_lut t [| a; b; c |] (Tt.of_hex 3 "96") in
  let maj3 = Klut.create_lut t [| a; b; c |] (Tt.of_hex 3 "e8") in
  Klut.create_po t xor3;
  Klut.create_po t maj3;
  let r = Cuts_k.enumerate t ~k:4 ~cut_limit:8 () in
  let values = Sim_k.simulate_exhaustive t in
  let check_node s =
    let n = Klut.node_of_signal s in
    let cuts = Cuts_k.cuts_of r n in
    Alcotest.(check bool) "has cuts" true (cuts <> []);
    List.iter
      (fun cut ->
        let args = Array.map (fun l -> values.(l)) cut.Cuts_k.leaves in
        Alcotest.(check tt_testable) "klut cut function" values.(n)
          (Tt.apply cut.Cuts_k.tt args))
      cuts
  in
  check_node xor3;
  check_node maj3;
  (* the two full {a,b,c} cuts must carry *different* functions *)
  let full s =
    List.find
      (fun cut -> Array.length cut.Cuts_k.leaves = 3)
      (Cuts_k.cuts_of r (Klut.node_of_signal s))
  in
  Alcotest.(check bool) "distinct same-arity LUT functions" false
    (Tt.equal (full xor3).Cuts_k.tt (full maj3).Cuts_k.tt)

(* -- property: cut sets on random Lsgen networks -- *)

(* sorted-leaf subset test, mirroring the dominance definition *)
let leaves_subset a b =
  let la = Array.length a and lb = Array.length b in
  la <= lb
  &&
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    if a.(!i) = b.(!j) then begin
      incr i;
      incr j
    end
    else if a.(!i) > b.(!j) then incr j
    else j := lb (* a.(i) missing from b *)
  done;
  !i = la

let prop_cuts_random =
  QCheck.Test.make
    ~name:"cuts: functions match bit-parallel simulation, no dominated cut"
    ~count:15
    QCheck.(int_bound 9999)
    (fun seed ->
      let t = Aig.create () in
      let module C = Lsgen.Control.Make (Aig) in
      C.random_logic t ~seed ~num_pis:8 ~num_pos:4 ~num_gates:80;
      let r = Cuts_aig.enumerate t ~k:6 ~cut_limit:8 () in
      let values =
        Sim_aig.simulate t (Sim_aig.random_values ~num_vars:6 ~seed:(seed + 1) t)
      in
      let ok = ref true in
      Aig.foreach_gate t (fun n ->
          let cuts = Cuts_aig.cuts_array r n in
          Array.iter
            (fun cut ->
              let args =
                Array.map (fun l -> values.(l)) cut.Cuts_aig.leaves
              in
              if not (Tt.equal values.(n) (Tt.apply cut.Cuts_aig.tt args)) then
                ok := false)
            cuts;
          let m = Array.length cuts in
          for i = 0 to m - 1 do
            for j = 0 to m - 1 do
              if
                i <> j
                && leaves_subset cuts.(i).Cuts_aig.leaves
                     cuts.(j).Cuts_aig.leaves
              then ok := false
            done
          done);
      !ok)

let extra_suite =
  [
    Alcotest.test_case "cuts k=6 functions" `Quick test_cuts_k6;
    Alcotest.test_case "cuts on klut with distinct luts" `Quick
      test_cuts_klut_distinct_luts;
    QCheck_alcotest.to_alcotest prop_cuts_random;
    Alcotest.test_case "cuts on mig" `Quick test_cuts_mig;
    Alcotest.test_case "window divisors" `Quick test_window_divisors;
    Alcotest.test_case "lutmap k=4" `Quick test_lutmap_k4;
    Alcotest.test_case "lutmap of mig" `Quick test_lutmap_of_mig;
    Alcotest.test_case "depth of klut mapping" `Quick test_depth_klut;
    Alcotest.test_case "cec budget" `Quick test_cec_budget_unknown;
    Alcotest.test_case "composed passes" `Quick test_fraig_then_rewrite_chain;
    Alcotest.test_case "preservation: xmg passes" `Slow test_preserve_xmg_passes;
    Alcotest.test_case "mffc respects po refs" `Quick test_mffc_respects_po_refs;
  ]

let suite = suite @ extra_suite
