(* Tests for the offline observability consumers: the minimal JSON
   parser, the BENCH QoR regression gate ([Report.check]), the JSONL
   round-trip through [Report.load_trace], and the Chrome trace-event
   export (valid JSON, per-track timestamp monotonicity). *)

module T = Obs.Trace
module J = Obs.Json
module R = Obs.Report

(* -- the JSON parser -- *)

let test_json_parser () =
  (match J.parse "  {\"a\": 1, \"b\": [true, false, null], \"c\": \"x\\ny\"} " with
  | J.Obj kvs ->
    Alcotest.(check int) "object size" 3 (List.length kvs);
    Alcotest.(check (option (float 0.0))) "int member" (Some 1.0)
      (Option.bind (List.assoc_opt "a" kvs) J.to_num);
    (match List.assoc_opt "b" kvs with
    | Some (J.Arr [ J.Bool true; J.Bool false; J.Null ]) -> ()
    | _ -> Alcotest.fail "array member");
    Alcotest.(check (option string)) "escaped string" (Some "x\ny")
      (Option.bind (List.assoc_opt "c" kvs) J.to_string)
  | _ -> Alcotest.fail "expected object");
  (match J.parse "-12.5e1" with
  | J.Num f -> Alcotest.(check (float 1e-9)) "scientific number" (-125.0) f
  | _ -> Alcotest.fail "expected number");
  (match J.parse "\"\\u0041\\\\\\\"\"" with
  | J.Str s -> Alcotest.(check string) "unicode + escapes" "A\\\"" s
  | _ -> Alcotest.fail "expected string");
  List.iter
    (fun bad ->
      let rejected =
        match J.parse bad with
        | exception J.Parse_error _ -> true
        | _ -> false
      in
      Alcotest.(check bool) ("rejects " ^ bad) true rejected)
    [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

(* -- the QoR gate -- *)

let bench_json ?cost rows =
  let cost_header =
    match cost with
    | None -> ""
    | Some c -> Printf.sprintf "\"cost\":\"%s\"," c
  in
  J.parse
    (Printf.sprintf
       "{\"bench\":\"t\",\"schema\":2,%s\"rows\":[%s]}" cost_header
       (String.concat ","
          (List.map
             (fun (b, s, fields) ->
               Printf.sprintf
                 "{\"benchmark\":\"%s\",\"stage\":\"%s\"%s}" b s
                 (String.concat ""
                    (List.map
                       (fun (k, v) -> Printf.sprintf ",\"%s\":%g" k v)
                       fields)))
             rows)))

let base_rows =
  [
    ("ctrl", "generic", [ ("nodes", 150.0); ("luts", 61.0); ("seconds", 1.0) ]);
    ("cavlc", "generic", [ ("nodes", 450.0); ("luts", 182.0); ("seconds", 2.0) ]);
  ]

let test_check_self_passes () =
  let b = bench_json base_rows in
  Alcotest.(check (list string))
    "identical files pass" []
    (R.check ~baseline:b ~current:b R.default_thresholds);
  (* improvements and sub-threshold jitter also pass *)
  let better =
    bench_json
      [
        ("ctrl", "generic", [ ("nodes", 140.0); ("luts", 60.0); ("seconds", 0.9) ]);
        ("cavlc", "generic",
         [ ("nodes", 450.0); ("luts", 183.0); ("seconds", 2.01) ]);
        ("extra", "generic", [ ("nodes", 10.0) ]);
      ]
  in
  Alcotest.(check (list string))
    "improvement + jitter + new coverage pass" []
    (R.check ~baseline:(bench_json base_rows) ~current:better
       { R.default_thresholds with R.qor_pct = 2.0 })

let test_check_flags_regressions () =
  let regressed =
    bench_json
      [
        ("ctrl", "generic", [ ("nodes", 150.0); ("luts", 80.0); ("seconds", 1.0) ]);
        ("cavlc", "generic",
         [ ("nodes", 450.0); ("luts", 182.0); ("seconds", 9.0) ]);
      ]
  in
  let problems =
    R.check ~baseline:(bench_json base_rows) ~current:regressed
      R.default_thresholds
  in
  (* luts 61 -> 80 breaks the QoR threshold; seconds 2 -> 9 breaks the
     time threshold *)
  Alcotest.(check int) "two regressions" 2 (List.length problems);
  let mentions needle =
    List.exists
      (fun p ->
        let n = String.length p and m = String.length needle in
        let rec scan i = i + m <= n && (String.sub p i m = needle || scan (i + 1)) in
        scan 0)
      problems
  in
  Alcotest.(check bool) "flags luts" true (mentions "luts");
  Alcotest.(check bool) "flags seconds" true (mentions "seconds");
  (* --ignore-time keeps only the QoR failure *)
  let qor_only =
    R.check ~baseline:(bench_json base_rows) ~current:regressed
      { R.default_thresholds with R.check_time = false }
  in
  Alcotest.(check int) "time ignored" 1 (List.length qor_only)

let test_check_missing_row_fails () =
  let dropped = bench_json [ List.hd base_rows ] in
  let problems =
    R.check ~baseline:(bench_json base_rows) ~current:dropped
      R.default_thresholds
  in
  Alcotest.(check int) "dropped benchmark is a regression" 1
    (List.length problems)

(* -- the cost-aware gate -- *)

let mentions problems needle =
  List.exists
    (fun p ->
      let n = String.length p and m = String.length needle in
      let rec scan i = i + m <= n && (String.sub p i m = needle || scan (i + 1)) in
      scan 0)
    problems

let test_check_cost_mismatch () =
  (* comparing runs optimized for different objectives is meaningless and
     must be flagged rather than silently passing *)
  let rows = [ ("ctrl", "generic", [ ("nodes", 150.0) ]) ] in
  let problems =
    R.check
      ~baseline:(bench_json ~cost:"area" rows)
      ~current:(bench_json ~cost:"depth" rows)
      R.default_thresholds
  in
  Alcotest.(check bool) "mismatch flagged" true
    (mentions problems "cost-spec mismatch");
  (* same spec on both sides: no mismatch problem *)
  Alcotest.(check (list string))
    "matching cost passes" []
    (R.check
       ~baseline:(bench_json ~cost:"depth" rows)
       ~current:(bench_json ~cost:"depth" rows)
       R.default_thresholds)

let test_check_cost_gated_fields () =
  (* a depth run gates levels, not nodes: an area explosion alone passes,
     a level regression fails *)
  let base =
    bench_json ~cost:"depth"
      [ ("ctrl", "generic", [ ("nodes", 150.0); ("levels", 20.0) ]) ]
  in
  let fatter_but_flat =
    bench_json ~cost:"depth"
      [ ("ctrl", "generic", [ ("nodes", 400.0); ("levels", 20.0) ]) ]
  in
  Alcotest.(check (list string))
    "depth gate ignores node growth" []
    (R.check ~baseline:base ~current:fatter_but_flat R.default_thresholds);
  let deeper =
    bench_json ~cost:"depth"
      [ ("ctrl", "generic", [ ("nodes", 150.0); ("levels", 30.0) ]) ]
  in
  let problems =
    R.check ~baseline:base ~current:deeper R.default_thresholds
  in
  Alcotest.(check bool) "depth gate flags levels" true
    (mentions problems "levels");
  (* the engine's own objective field is gated whenever present *)
  let with_obj v =
    bench_json ~cost:"depth"
      [ ("ctrl", "generic", [ ("objective", v); ("levels", 20.0) ]) ]
  in
  let problems =
    R.check ~baseline:(with_obj 20.0) ~current:(with_obj 40.0)
      R.default_thresholds
  in
  Alcotest.(check bool) "objective regression flagged" true
    (mentions problems "objective")

(* -- JSONL round-trip through the offline loader -- *)

let sample_trace () =
  let trace = T.create ~flow:"root" ~sample:1 () in
  let a = T.child trace ~flow:"a" in
  let b = T.child trace ~flow:"b" in
  List.iter
    (fun tr ->
      T.pass_begin tr ~pass:"rw" ~index:0 ~gates:100 ~depth:10;
      T.report tr ~algo:"rewrite" [ ("tried", 5) ];
      T.node_event tr ~algo:"rewrite" ~node:7 ~gain:2 ~accepted:true;
      T.pass_end tr ~pass:"rw" ~index:0 ~gates:90 ~depth:9 ~elapsed:0.25 ();
      T.pass_begin tr ~pass:"bz" ~index:1 ~gates:90 ~depth:9;
      T.pass_end tr ~pass:"bz" ~index:1 ~gates:90 ~depth:8 ~elapsed:0.5 ())
    [ a; b ];
  T.merge trace [ a; b ];
  trace

let test_trace_roundtrip () =
  let trace = sample_trace () in
  let path = Filename.temp_file "genlog_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.write_file trace path;
      let reloaded = R.load_trace path in
      Alcotest.(check int) "event count survives"
        (List.length (T.events trace))
        (List.length (T.events reloaded));
      let rows = T.summarize reloaded and orig = T.summarize trace in
      Alcotest.(check int) "row count" (List.length orig) (List.length rows);
      List.iter2
        (fun (a : T.pass_row) (b : T.pass_row) ->
          Alcotest.(check string) "pass" a.T.row_pass b.T.row_pass;
          Alcotest.(check string) "flow" a.T.row_flow b.T.row_flow;
          Alcotest.(check int) "gates" a.T.gates_after b.T.gates_after;
          Alcotest.(check (float 1e-9)) "elapsed" a.T.row_elapsed b.T.row_elapsed)
        orig rows)

(* -- Chrome trace-event export -- *)

let test_chrome_export () =
  let trace = sample_trace () in
  let s = Obs.Chrome.to_string trace in
  let j = J.parse s in
  let events =
    match Option.bind (J.member "traceEvents" j) J.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  (* runmeta footer *)
  (match J.member "otherData" j with
  | Some other ->
    Alcotest.(check bool) "otherData has schema" true
      (J.int_member "schema" other <> None)
  | None -> Alcotest.fail "no otherData");
  (* split metadata from timed events *)
  let is_meta e = J.str_member "ph" e = Some "M" in
  let meta, timed = List.partition is_meta events in
  (* one process_name + one thread_name per flow with events (a, b; the
     root sink itself logged nothing) *)
  Alcotest.(check int) "metadata events" 3 (List.length meta);
  List.iter
    (fun e ->
      Alcotest.(check bool) "timed event has ts" true
        (J.num_member "ts" e <> None))
    timed;
  (* ts monotone per tid — the Perfetto-friendliness invariant *)
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let tid = Option.get (J.int_member "tid" e) in
      let ts = Option.get (J.num_member "ts" e) in
      let prev = Option.value ~default:neg_infinity (Hashtbl.find_opt by_tid tid) in
      Alcotest.(check bool)
        (Printf.sprintf "tid %d monotone" tid)
        true (ts >= prev);
      Hashtbl.replace by_tid tid ts)
    timed;
  (* complete events carry duration and the pass args *)
  let spans =
    List.filter (fun e -> J.str_member "ph" e = Some "X") timed
  in
  Alcotest.(check int) "one span per pass" 4 (List.length spans);
  List.iter
    (fun e ->
      Alcotest.(check bool) "span has dur" true (J.num_member "dur" e <> None);
      match J.member "args" e with
      | Some args ->
        Alcotest.(check bool) "span args carry gates" true
          (J.int_member "gates_after" args <> None)
      | None -> Alcotest.fail "span without args")
    spans

let suite =
  [
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "qor gate: self-comparison passes" `Quick
      test_check_self_passes;
    Alcotest.test_case "qor gate: regressions flagged" `Quick
      test_check_flags_regressions;
    Alcotest.test_case "qor gate: dropped row fails" `Quick
      test_check_missing_row_fails;
    Alcotest.test_case "qor gate: cost-spec mismatch" `Quick
      test_check_cost_mismatch;
    Alcotest.test_case "qor gate: cost-gated fields" `Quick
      test_check_cost_gated_fields;
    Alcotest.test_case "trace jsonl round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "chrome export golden" `Quick test_chrome_export;
  ]
