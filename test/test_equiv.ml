(* Equivalence-fuzz harness: every optimization pass, on every
   representation it supports, must preserve functional equivalence on
   random networks — proven by SAT CEC against a cleaned-up copy of the
   input.

   Budget: 25 pass/representation pairs x 8 seeds = 200 combos per run.
   GENLOG_FUZZ_ITERS=k multiplies the seed set k-fold (the nightly CI job
   uses 10).  A failure prints the seed; replay locally with
   GENLOG_TEST_SEED=<seed>, and set GENLOG_FUZZ_LOG=<file> to append
   failing combos for artifact upload. *)

open Network

let base_seeds = [ 101; 102; 103; 104; 105; 106; 107; 108 ]

(* GENLOG_FUZZ_ITERS widens the sweep; GENLOG_TEST_SEED collapses it to
   one replayed seed (Seed.list). *)
let seeds =
  Seed.list
    (List.concat
       (List.init Seed.fuzz_iters (fun k ->
            List.map (fun s -> s + (1000 * k)) base_seeds)))

let combos = ref 0

let fuzz_log name seed =
  match Sys.getenv_opt "GENLOG_FUZZ_LOG" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Printf.fprintf oc "%s seed=%d\n" name seed;
    close_out oc

(* Run [pass] over random networks and CEC the result against the input.
   [pass] returns the network to check so both in-place passes (return
   the argument) and rebuilding passes (partition) fit. *)
let check_pass (type t) ~name (module N : Intf.NETWORK with type t = t)
    ~(pass : t -> t) () =
  let module G = Gen.Make (N) in
  let module C = Algo.Cec.Make (N) (N) in
  let module Cl = Convert.Cleanup (N) in
  let use_maj = N.max_fanin >= 3 in
  List.iter
    (fun seed ->
      incr combos;
      let t = G.generate ~use_maj ~seed ~num_pis:5 ~num_gates:40 ~num_pos:3 () in
      let reference = Cl.cleanup t in
      let result = pass t in
      (match N.check_integrity result with
      | [] -> ()
      | errs ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d integrity: %s" name seed
          (String.concat "; " errs));
      match C.check reference result with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d produced a counterexample" name
          seed
      | Algo.Cec.Unknown ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d cec unknown" name seed)
    seeds

(* shared per-representation exact-synthesis databases (warm across seeds) *)
let aig_db = lazy (Exact.Database.create Exact.Synth.aig_config)
let xag_db = lazy (Exact.Database.create Exact.Synth.xag_config)
let mig_db = lazy (Exact.Database.create Exact.Synth.mig_config)
let xmg_db = lazy (Exact.Database.create Exact.Synth.xmg_config)

(* one engine env per representation for the partition pass, sharing the
   database above so cold NPN classes are synthesized once per run (MIG
   exact synthesis dominates the budget otherwise) *)
let env_with db kernel =
  lazy
    {
      Flow.Engine.db = Lazy.force db;
      kernel;
      max_refactor_inputs = 10;
      sat_jobs = 1;
      cost = Algo.Cost.Spec.Area;
    }

let aig_env = env_with aig_db Algo.Resub.And_or
let xag_env = env_with xag_db Algo.Resub.And_or_xor
let mig_env = env_with mig_db Algo.Resub.Maj3
let xmg_env = env_with xmg_db Algo.Resub.Maj3

let partition_pass (type t) (module N : Intf.NETWORK with type t = t) env ~jobs
    (t : t) : t =
  let module P = Flow.Partition.Make (N) in
  (* tiny cap so 40-gate networks split into several pieces *)
  let r, _ =
    P.run ~size_cap:12 ~jobs ~script:"rw; bz"
      ~make_env:(fun () -> Lazy.force env)
      t
  in
  r

(* -- per-representation pass suites -- *)

let test_rewrite (type t) name (module N : Intf.NETWORK with type t = t) db () =
  let module Rw = Algo.Rewrite.Make (N) in
  check_pass ~name:("rewrite/" ^ name) (module N)
    ~pass:(fun t ->
      ignore (Rw.run t ~db:(Lazy.force db) ());
      t)
    ()

let test_resub (type t) name (module N : Intf.NETWORK with type t = t) kernel () =
  let module Rs = Algo.Resub.Make (N) in
  check_pass ~name:("resub/" ^ name) (module N)
    ~pass:(fun t ->
      ignore (Rs.run t ~kernel ~max_inserted:2 ());
      t)
    ()

let test_refactor (type t) name (module N : Intf.NETWORK with type t = t) () =
  let module Rf = Algo.Refactor.Make (N) in
  check_pass ~name:("refactor/" ^ name) (module N)
    ~pass:(fun t ->
      ignore (Rf.run t ());
      t)
    ()

let test_balance (type t) name (module N : Intf.NETWORK with type t = t) () =
  let module B = Algo.Balance.Make (N) in
  check_pass ~name:("balance/" ^ name) (module N)
    ~pass:(fun t ->
      ignore (B.run t);
      t)
    ()

let test_fraig (type t) name (module N : Intf.NETWORK with type t = t) () =
  let module Fr = Algo.Fraig.Make (N) in
  check_pass ~name:("fraig/" ^ name) (module N)
    ~pass:(fun t ->
      ignore (Fr.run t ());
      t)
    ()

let test_mig_algebraic () =
  check_pass ~name:"mig_algebraic/mig" (module Mig)
    ~pass:(fun t ->
      ignore (Algo.Mig_algebraic.run t ());
      t)
    ()

(* -- the cost dimension: pass x representation x cost x seeds --

   Every non-default objective must (a) stay CEC-equivalent and (b) never
   be accepted with a worsened objective: the whole-pass objective delta,
   measured by [Cost.eval] on cleaned copies, must be <= 0.  A failure
   prints the replay seed augmented with the cost spec. *)

let cost_seeds = Seed.list [ 101; 102 ]
let cost_specs = [ Algo.Cost.Spec.Depth; Algo.Cost.Spec.Edges; Algo.Cost.Spec.Activity ]

let check_pass_cost (type t) ~name ~(spec : Algo.Cost.Spec.t)
    (module N : Intf.NETWORK with type t = t)
    ~(pass : Algo.Cost.Spec.t -> t -> t) () =
  let module G = Gen.Make (N) in
  let module C = Algo.Cec.Make (N) (N) in
  let module Cl = Convert.Cleanup (N) in
  let module Co = Algo.Cost.Make (N) in
  let cost_name = Algo.Cost.Spec.to_string spec in
  let use_maj = N.max_fanin >= 3 in
  List.iter
    (fun seed ->
      incr combos;
      let t = G.generate ~use_maj ~seed ~num_pis:5 ~num_gates:40 ~num_pos:3 () in
      let reference = Cl.cleanup t in
      let before = Co.eval spec reference in
      let result = pass spec t in
      (match N.check_integrity result with
      | [] -> ()
      | errs ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d cost=%s integrity: %s" name
          seed cost_name
          (String.concat "; " errs));
      let after = Co.eval spec (Cl.cleanup result) in
      if after > before then begin
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d cost=%s objective worsened (%d -> %d)"
          name seed cost_name before after
      end;
      match C.check reference result with
      | Algo.Cec.Equivalent -> ()
      | Algo.Cec.Counterexample _ ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d cost=%s produced a counterexample"
          name seed cost_name
      | Algo.Cec.Unknown ->
        fuzz_log name seed;
        Alcotest.failf "%s: GENLOG_TEST_SEED=%d cost=%s cec unknown" name seed
          cost_name)
    cost_seeds

let cost_pass_instances (type t) rep (module N : Intf.NETWORK with type t = t)
    db kernel =
  let mk pname pass spec =
    Alcotest.test_case
      (Printf.sprintf "%s %s cost=%s" pname rep
         (Algo.Cost.Spec.to_string spec))
      `Quick
      (check_pass_cost
         ~name:(Printf.sprintf "%s/%s" pname rep)
         ~spec
         (module N)
         ~pass)
  in
  List.concat_map
    (fun spec ->
      [
        mk "rewrite"
          (fun cost t ->
            let module Rw = Algo.Rewrite.Make (N) in
            ignore (Rw.run t ~db:(Lazy.force db) ~cost ());
            t)
          spec;
        mk "refactor"
          (fun cost t ->
            let module Rf = Algo.Refactor.Make (N) in
            ignore (Rf.run t ~cost ());
            t)
          spec;
        mk "resub"
          (fun cost t ->
            let module Rs = Algo.Resub.Make (N) in
            ignore (Rs.run t ~kernel ~cost ~max_inserted:2 ());
            t)
          spec;
        mk "balance"
          (fun cost t ->
            let module B = Algo.Balance.Make (N) in
            ignore (B.run ~cost t);
            t)
          spec;
      ])
    cost_specs

let cost_fraig_instances =
  List.map
    (fun spec ->
      Alcotest.test_case
        (Printf.sprintf "fraig aig cost=%s" (Algo.Cost.Spec.to_string spec))
        `Quick
        (check_pass_cost ~name:"fraig/aig" ~spec (module Aig)
           ~pass:(fun cost t ->
             let module Fr = Algo.Fraig.Make (Aig) in
             ignore (Fr.run t ~cost ());
             t)))
    cost_specs

(* 4 passes x 2 representations x 3 costs, plus fraig on aig x 3 costs *)
let cost_combo_instances = (4 * 2 * 3) + 3

(* two workers on the aig suite exercise the cross-domain path; the other
   representations run single-worker (spawning a domain pair per combo is
   pure overhead on small boxes) *)
let test_partition (type t) ?(jobs = 1) name
    (module N : Intf.NETWORK with type t = t) env () =
  check_pass ~name:("partition/" ^ name) (module N)
    ~pass:(partition_pass (module N) env ~jobs)
    ()

let test_combo_count () =
  (* runs last: every combo above must have executed (Alcotest runs the
     suite sequentially in one process) *)
  let expected =
    (25 * List.length seeds)
    + (cost_combo_instances * List.length cost_seeds)
  in
  Alcotest.(check int) "all pass/rep/seed combos executed" expected !combos

let suite =
  [
    Alcotest.test_case "rewrite aig" `Quick (test_rewrite "aig" (module Aig) aig_db);
    Alcotest.test_case "rewrite xag" `Quick (test_rewrite "xag" (module Xag) xag_db);
    Alcotest.test_case "rewrite mig" `Quick (test_rewrite "mig" (module Mig) mig_db);
    Alcotest.test_case "rewrite xmg" `Quick (test_rewrite "xmg" (module Xmg) xmg_db);
    Alcotest.test_case "resub aig" `Quick
      (test_resub "aig" (module Aig) Algo.Resub.And_or);
    Alcotest.test_case "resub xag" `Quick
      (test_resub "xag" (module Xag) Algo.Resub.And_or_xor);
    Alcotest.test_case "resub mig" `Quick
      (test_resub "mig" (module Mig) Algo.Resub.Maj3);
    Alcotest.test_case "resub xmg" `Quick
      (test_resub "xmg" (module Xmg) Algo.Resub.Maj3);
    Alcotest.test_case "refactor aig" `Quick (test_refactor "aig" (module Aig));
    Alcotest.test_case "refactor xag" `Quick (test_refactor "xag" (module Xag));
    Alcotest.test_case "refactor mig" `Quick (test_refactor "mig" (module Mig));
    Alcotest.test_case "refactor xmg" `Quick (test_refactor "xmg" (module Xmg));
    Alcotest.test_case "balance aig" `Quick (test_balance "aig" (module Aig));
    Alcotest.test_case "balance xag" `Quick (test_balance "xag" (module Xag));
    Alcotest.test_case "balance mig" `Quick (test_balance "mig" (module Mig));
    Alcotest.test_case "balance xmg" `Quick (test_balance "xmg" (module Xmg));
    Alcotest.test_case "fraig aig" `Quick (test_fraig "aig" (module Aig));
    Alcotest.test_case "fraig xag" `Quick (test_fraig "xag" (module Xag));
    Alcotest.test_case "fraig mig" `Quick (test_fraig "mig" (module Mig));
    Alcotest.test_case "fraig xmg" `Quick (test_fraig "xmg" (module Xmg));
    Alcotest.test_case "mig algebraic" `Quick test_mig_algebraic;
    Alcotest.test_case "partition aig" `Quick
      (test_partition ~jobs:2 "aig" (module Aig) aig_env);
    Alcotest.test_case "partition xag" `Quick
      (test_partition "xag" (module Xag) xag_env);
    Alcotest.test_case "partition mig" `Quick
      (test_partition "mig" (module Mig) mig_env);
    Alcotest.test_case "partition xmg" `Quick
      (test_partition "xmg" (module Xmg) xmg_env);
  ]
  @ cost_pass_instances "aig" (module Aig) aig_db Algo.Resub.And_or
  @ cost_pass_instances "mig" (module Mig) mig_db Algo.Resub.Maj3
  @ cost_fraig_instances
  @ [ Alcotest.test_case "combo count" `Quick test_combo_count ]
