(* DIMACS regression suite for the satkit kernel.

   Every instance under [cnf/] is solved with both the legacy and the
   modern solver configuration.  The expected status is encoded in the
   file name ([*_sat.cnf] / [*_unsat.cnf]) and was fixed at generation
   time by brute force or by construction (pigeonhole, contradiction
   cycles).  Answers are not taken on faith:

   - Sat: the model is evaluated against every clause of the file.
   - Unsat: re-solved twice under single-literal assumptions (v and !v
     for the first variable) — both branches must stay unsatisfiable —
     and small instances are additionally brute-forced here. *)

module Solver = Satkit.Solver
module Lit = Satkit.Lit
module Dimacs = Satkit.Dimacs

(* cwd is [_build/default/test] under `dune runtest` (the corpus is
   attached via the dune deps glob) but the project root under
   `dune exec test/main.exe` *)
let cnf_dir = if Sys.file_exists "cnf" then "cnf" else "test/cnf"

let files () =
  if not (Sys.file_exists cnf_dir) then []
  else
    Sys.readdir cnf_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cnf")
    |> List.sort compare

let configs = [ Solver.legacy_config; Solver.default_config ]

let lit_true solver l =
  let v = Solver.model_value solver (Lit.var l) in
  if Lit.is_neg l then not v else v

let eval_model solver clauses =
  List.for_all (fun clause -> List.exists (lit_true solver) clause) clauses

let brute_force_sat num_vars clauses =
  let sat = ref false in
  let n = 1 lsl num_vars in
  let i = ref 0 in
  while (not !sat) && !i < n do
    let assign = !i in
    if
      List.for_all
        (List.exists (fun l ->
             let bit = (assign lsr Lit.var l) land 1 = 1 in
             if Lit.is_neg l then not bit else bit))
        clauses
    then sat := true;
    incr i
  done;
  !sat

let fresh_solver config num_vars clauses =
  let s = Solver.create ~config () in
  Solver.ensure_var s (num_vars - 1);
  List.iter (Solver.add_clause s) clauses;
  s

let check_file file () =
  let path = Filename.concat cnf_dir file in
  let num_vars, clauses = Dimacs.read_file path in
  let expect_unsat =
    Filename.check_suffix (Filename.remove_extension file) "_unsat"
  in
  List.iter
    (fun (config : Solver.config) ->
      let ctx = Printf.sprintf "%s [%s]" file config.Solver.name in
      let s = fresh_solver config num_vars clauses in
      match (Solver.solve s, expect_unsat) with
      | Solver.Unknown, _ -> Alcotest.failf "%s: unknown without budget" ctx
      | Solver.Sat, true -> Alcotest.failf "%s: expected unsat, got sat" ctx
      | Solver.Unsat, false -> Alcotest.failf "%s: expected sat, got unsat" ctx
      | Solver.Sat, false ->
        if not (eval_model s clauses) then
          Alcotest.failf "%s: model does not satisfy the formula" ctx
      | Solver.Unsat, true ->
        (* case-split certification: the instance must stay unsat on both
           branches of the first variable, solved from scratch *)
        let pivot = Lit.make 0 in
        List.iter
          (fun assumption ->
            let s2 = fresh_solver config num_vars clauses in
            match Solver.solve ~assumptions:[ assumption ] s2 with
            | Solver.Unsat -> ()
            | Solver.Sat | Solver.Unknown ->
              Alcotest.failf "%s: branch %d not certified unsat" ctx assumption)
          [ pivot; Lit.neg pivot ];
        if num_vars <= 18 && brute_force_sat num_vars clauses then
          Alcotest.failf "%s: brute force found a model" ctx)
    configs

let test_all_files_present () =
  (* the corpus is part of the repo; an empty directory means the test
     dependencies were not attached *)
  let n = List.length (files ()) in
  if n < 9 then Alcotest.failf "expected >= 9 cnf files, found %d" n

let suite =
  Alcotest.test_case "corpus present" `Quick test_all_files_present
  :: List.map
       (fun f -> Alcotest.test_case f `Quick (check_file f))
       (files ())
