(* Golden parity regression for the cost-generic refactor.

   The five optimization passes now compute every gain through the shared
   cost engine (Algo.Cost).  Under [--cost area] that engine must be
   bit-for-bit equivalent to the seed's inline node-count arithmetic: the
   smoke flow (compress2rs + 6-LUT map on the lsgen suite) must reproduce
   the seed's per-pass decision counters AND its final QoR exactly.  The
   pinned numbers below are the seed smoke goldens.

   [--cost depth] has no seed counterpart; its QoR is pinned as a plain
   regression value so objective-specific decision drift is caught. *)

open Network

module F = Flow.Engine.Make (Aig)
module S = Lsgen.Suite.Make (Aig)
module L = Algo.Lutmap.Make (Aig)
module D = Algo.Depth.Make (Aig)

type qor = { nodes : int; levels : int; luts : int; lut_levels : int }

(* algo -> (tried, accepted), aggregated over all invocations in the flow *)
type golden = { q : qor; decisions : (string * (int * int)) list }

(* seed smoke goldens: compress2rs + 6-LUT map, straight on the suite
   baselines (same construction as [bench smoke]) *)
let area_goldens =
  [
    ( "ctrl",
      {
        q = { nodes = 148; levels = 24; luts = 68; lut_levels = 7 };
        decisions =
          [
            ("balance", (28, 17));
            ("refactor", (60, 23));
            ("resub", (80, 38));
            ("rewrite", (1515, 42));
          ];
      } );
    ( "int2float",
      {
        q = { nodes = 90; levels = 17; luts = 32; lut_levels = 5 };
        decisions =
          [
            ("balance", (26, 16));
            ("refactor", (45, 15));
            ("resub", (110, 18));
            ("rewrite", (871, 25));
          ];
      } );
    ( "router",
      {
        q = { nodes = 220; levels = 25; luts = 68; lut_levels = 5 };
        decisions =
          [
            ("balance", (32, 22));
            ("refactor", (99, 43));
            ("resub", (40, 7));
            ("rewrite", (1178, 73));
          ];
      } );
  ]

(* regression pins for the depth objective (first recorded values; any
   drift means the depth engine changed its decisions) *)
let depth_goldens =
  [
    ("ctrl", { nodes = 223; levels = 18; luts = 87; lut_levels = 6 });
    ("int2float", { nodes = 113; levels = 17; luts = 46; lut_levels = 5 });
  ]

let run_smoke ~cost name =
  let baseline = S.build name in
  let trace = Obs.Trace.create ~flow:name () in
  let opt = F.run_script (Flow.Engine.aig_env ~cost ()) ~trace baseline
      Flow.Script.compress2rs
  in
  let m = L.map opt ~k:6 () in
  let q =
    {
      nodes = Aig.num_gates opt;
      levels = D.depth opt;
      luts = m.L.lut_count;
      lut_levels = m.L.depth;
    }
  in
  (* aggregate per-pass decision counters across the whole script *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (function
      | Obs.Trace.Counters { algo; counters; _ } ->
        let g k = Option.value ~default:0 (List.assoc_opt k counters) in
        let t0, a0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl algo)
        in
        Hashtbl.replace tbl algo (t0 + g "tried", a0 + g "accepted")
      | _ -> ())
    (Obs.Trace.events trace);
  (q, tbl)

let check_qor name expected actual =
  Alcotest.(check int) (name ^ " nodes") expected.nodes actual.nodes;
  Alcotest.(check int) (name ^ " levels") expected.levels actual.levels;
  Alcotest.(check int) (name ^ " luts") expected.luts actual.luts;
  Alcotest.(check int) (name ^ " lut_levels") expected.lut_levels
    actual.lut_levels

let test_area_parity () =
  List.iter
    (fun (name, golden) ->
      let q, decisions = run_smoke ~cost:Algo.Cost.Spec.Area name in
      check_qor (name ^ " (area)") golden.q q;
      List.iter
        (fun (algo, (tried, accepted)) ->
          let at, aa =
            Option.value ~default:(0, 0) (Hashtbl.find_opt decisions algo)
          in
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s %s tried/accepted" name algo)
            (tried, accepted) (at, aa))
        golden.decisions)
    area_goldens

let test_depth_regression () =
  List.iter
    (fun (name, golden) ->
      let q, _ = run_smoke ~cost:Algo.Cost.Spec.Depth name in
      Printf.eprintf "[golden] %s depth-run actual: %d/%d/%d/%d\n%!" name
        q.nodes q.levels q.luts q.lut_levels;
      check_qor (name ^ " (depth)") golden q)
    depth_goldens

let suite =
  [
    Alcotest.test_case "area matches seed smoke goldens" `Quick
      test_area_parity;
    Alcotest.test_case "depth QoR regression pins" `Quick
      test_depth_regression;
  ]
