(* Tests for the observability subsystem: trace span structure (golden
   event sequence for compress_lite), JSONL rendering, timestamp
   monotonicity, the telescoping invariant (per-pass deltas sum to the
   whole-flow delta), and per-domain portfolio traces. *)

open Network
module T = Obs.Trace
module F = Flow.Engine.Make (Aig)
module S = Lsgen.Suite.Make (Aig)
module Copy = Convert.Make (Aig) (Aig)

(* Run compress_lite on [ctrl] under a fresh trace.  Returns the gate
   count the flow started from (the copied network's — the copy sweeps
   dangling nodes, so it can be smaller than the raw generator output). *)
let traced_run () =
  let baseline = S.build "ctrl" in
  let work = Copy.convert baseline in
  let initial_gates = Aig.num_gates work in
  let env = Flow.Engine.aig_env () in
  let trace = T.create ~flow:"aig" () in
  let optimized = F.run_script env ~trace work Flow.Script.compress_lite in
  (initial_gates, optimized, trace)

let span_events trace =
  List.filter_map
    (function
      | T.Pass_begin { pass; index; _ } -> Some ("pass_begin", pass, index)
      | T.Pass_end { pass; index; _ } -> Some ("pass_end", pass, index)
      | T.Counters _ | T.Metrics _ | T.Node_event _ | T.Race _ | T.Degraded _
        -> None)
    (T.events trace)

let test_null_sink () =
  Alcotest.(check bool) "null disabled" false (T.enabled T.null);
  T.pass_begin T.null ~pass:"bz" ~index:0 ~gates:1 ~depth:1;
  T.report T.null ~algo:"balance" [ ("tried", 1) ];
  Alcotest.(check int) "null buffers nothing" 0 (List.length (T.events T.null))

(* Golden span sequence: one begin/end pair per script command, in command
   order, plus the final cleanup span. *)
let test_span_sequence () =
  let _, _, trace = traced_run () in
  let commands = Flow.Script.parse Flow.Script.compress_lite in
  let n = List.length commands in
  let expected =
    List.concat
      (List.mapi
         (fun i c ->
           let p = Flow.Script.to_string c in
           [ ("pass_begin", p, i); ("pass_end", p, i) ])
         commands)
    @ [ ("pass_begin", "cleanup", n); ("pass_end", "cleanup", n) ]
  in
  Alcotest.(check (list (triple string string int)))
    "span sequence" expected (span_events trace)

let timestamp = function
  | T.Pass_begin { t; _ }
  | T.Pass_end { t; _ }
  | T.Counters { t; _ }
  | T.Metrics { t; _ }
  | T.Node_event { t; _ }
  | T.Race { t; _ }
  | T.Degraded { t; _ } -> t

let flow_of = function
  | T.Pass_begin { flow; _ }
  | T.Pass_end { flow; _ }
  | T.Counters { flow; _ }
  | T.Metrics { flow; _ }
  | T.Node_event { flow; _ }
  | T.Race { flow; _ }
  | T.Degraded { flow; _ } -> flow

let test_monotonic_timestamps () =
  let _, _, trace = traced_run () in
  let ts = List.map timestamp (T.events trace) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "non-negative" true (List.for_all (fun t -> t >= 0.0) ts);
  Alcotest.(check bool) "non-decreasing" true (mono ts)

(* The final pass_end must report the stats of the network the flow
   actually returned (the cleaned copy). *)
let test_final_stats_match () =
  let _, optimized, trace = traced_run () in
  let s = F.network_stats optimized in
  let last_end =
    List.fold_left
      (fun acc e -> match e with T.Pass_end _ -> Some e | _ -> acc)
      None (T.events trace)
  in
  match last_end with
  | Some (T.Pass_end { gates; depth; _ }) ->
    Alcotest.(check int) "final gates" s.Flow.Engine.nodes gates;
    Alcotest.(check int) "final depth" s.Flow.Engine.levels depth
  | _ -> Alcotest.fail "no pass_end event"

(* Spans are contiguous, so per-pass deltas telescope: the sum of
   (after - before) over all passes equals the whole-flow delta. *)
let test_deltas_telescope () =
  let initial_gates, optimized, trace = traced_run () in
  let rows = T.summarize trace in
  Alcotest.(check bool) "has rows" true (rows <> []);
  let rec contiguous = function
    | (a : T.pass_row) :: (b :: _ as rest) ->
      a.T.gates_after = b.T.gates_before
      && a.T.depth_after = b.T.depth_before
      && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous spans" true (contiguous rows);
  let first = List.hd rows in
  let last = List.nth rows (List.length rows - 1) in
  Alcotest.(check int) "starts at initial gates" initial_gates
    first.T.gates_before;
  Alcotest.(check int) "ends at final gates" (Aig.num_gates optimized)
    last.T.gates_after;
  let gate_delta =
    List.fold_left
      (fun acc (r : T.pass_row) -> acc + (r.T.gates_after - r.T.gates_before))
      0 rows
  in
  let depth_delta =
    List.fold_left
      (fun acc (r : T.pass_row) -> acc + (r.T.depth_after - r.T.depth_before))
      0 rows
  in
  Alcotest.(check int) "gate deltas telescope"
    (last.T.gates_after - first.T.gates_before)
    gate_delta;
  Alcotest.(check int) "depth deltas telescope"
    (last.T.depth_after - first.T.depth_before)
    depth_delta

(* Every line of the JSONL rendering is one non-empty object with an
   "event" discriminator; line count equals event count plus the leading
   run-metadata line. *)
let test_jsonl_rendering () =
  let _, _, trace = traced_run () in
  let path = Filename.temp_file "genlog_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.write_file trace path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per event plus meta"
        (List.length (T.events trace) + 1)
        (List.length lines);
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec scan i =
          i + m <= n && (String.sub hay i m = needle || scan (i + 1))
        in
        scan 0
      in
      let meta = List.hd lines in
      Alcotest.(check bool) "meta line first" true
        (contains meta "\"event\":\"meta\"");
      Alcotest.(check bool) "meta has schema" true (contains meta "\"schema\"");
      Alcotest.(check bool) "meta has ocaml version" true
        (contains meta "\"ocaml\"");
      List.iter
        (fun line ->
          let n = String.length line in
          Alcotest.(check bool) "object braces" true
            (n > 2 && line.[0] = '{' && line.[n - 1] = '}');
          let has_event =
            let needle = "\"event\":" in
            let m = String.length needle in
            let rec scan i =
              i + m <= n && (String.sub line i m = needle || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "has event field" true has_event)
        lines)

(* Counters events are emitted inside their enclosing span and attached by
   [summarize]; every optimization pass reports at least one counter. *)
let test_counters_attached () =
  let _, _, trace = traced_run () in
  let rows = T.summarize trace in
  List.iter
    (fun (r : T.pass_row) ->
      if r.T.row_pass <> "cleanup" then
        Alcotest.(check bool)
          (r.T.row_pass ^ " has counters")
          true
          (r.T.row_counters <> []))
    rows

(* The portfolio merges one child sink per representation; events from
   different domains stay per-flow contiguous and per-flow monotonic. *)
let test_portfolio_trace () =
  let baseline = S.build "ctrl" in
  let trace = T.create () in
  let _ =
    Flow.Portfolio.run ~script:Flow.Script.compress_lite ~trace baseline
  in
  let flows =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           (* the parent sink carries one roster-level counters record on
              the root flow ""; the per-representation labels are the
              children's *)
           match flow_of e with "" -> None | f -> Some f)
         (T.events trace))
  in
  Alcotest.(check (list string))
    "one flow label per representation"
    [ "aig"; "mig"; "xag"; "xmg" ]
    flows;
  List.iter
    (fun flow ->
      let ts =
        List.filter_map
          (fun e -> if flow_of e = flow then Some (timestamp e) else None)
          (T.events trace)
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      Alcotest.(check bool) (flow ^ " monotonic") true (mono ts))
    flows

(* -- metrics: log2 histogram bucketing edge cases -- *)

module M = Obs.Metrics

let test_histogram_buckets () =
  Alcotest.(check int) "bucket of 0" 0 (M.bucket_of 0);
  Alcotest.(check int) "bucket of negatives clamps" 0 (M.bucket_of (-7));
  Alcotest.(check int) "bucket of 1" 1 (M.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (M.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (M.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (M.bucket_of 4);
  Alcotest.(check int) "bucket of max_int" 62 (M.bucket_of max_int);
  Alcotest.(check int) "lo of bucket 0" 0 (M.bucket_lo 0);
  Alcotest.(check int) "lo of bucket 1" 1 (M.bucket_lo 1);
  Alcotest.(check int) "lo of bucket 62" (1 lsl 61) (M.bucket_lo 62);
  (* observing the edge values round-trips through the summary *)
  let m = M.create ~algo:"t" () in
  let h = M.histogram m "h" in
  List.iter (M.observe h) [ 0; 1; max_int ];
  let s = M.summary h in
  Alcotest.(check int) "count" 3 s.T.h_count;
  Alcotest.(check int) "min" 0 s.T.h_min;
  Alcotest.(check int) "max" max_int s.T.h_max;
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 1); (1, 1); (62, 1) ] s.T.h_buckets

let test_null_metrics () =
  let m = M.null in
  Alcotest.(check bool) "null disabled" false (M.enabled m);
  (* all handles are shared scratch cells: operations must not raise and
     emit must not add events *)
  let c = M.counter m "c" and h = M.histogram m "h" in
  M.incr c;
  M.observe h 5;
  let trace = T.create () in
  M.emit m trace;
  Alcotest.(check int) "emit on null adds nothing" 0
    (List.length (T.events trace))

(* -- Gc deltas: clamped non-negative, attached to pass_end -- *)

let test_gc_delta_nonnegative () =
  let g0 = Gc.quick_stat () in
  let _ = Array.init 10_000 (fun i -> i) in
  let g1 = Gc.quick_stat () in
  let d = T.gc_diff g0 g1 in
  Alcotest.(check bool) "minor words >= 0" true (d.T.minor_words >= 0.0);
  Alcotest.(check bool) "major words >= 0" true (d.T.major_words >= 0.0);
  Alcotest.(check bool) "minor collections >= 0" true
    (d.T.minor_collections >= 0);
  (* reversed order must clamp, not go negative *)
  let r = T.gc_diff g1 g0 in
  Alcotest.(check bool) "reversed clamps to zero" true
    (r.T.minor_words >= 0.0 && r.T.major_words >= 0.0
    && r.T.minor_collections >= 0 && r.T.major_collections >= 0);
  (* every pass_end of a real run carries a non-negative delta *)
  let _, _, trace = traced_run () in
  List.iter
    (function
      | T.Pass_end { gc; _ } ->
        Alcotest.(check bool) "pass gc non-negative" true
          (gc.T.minor_words >= 0.0 && gc.T.major_words >= 0.0
          && gc.T.promoted_words >= 0.0 && gc.T.minor_collections >= 0
          && gc.T.major_collections >= 0)
      | _ -> ())
    (T.events trace)

(* -- node-event sampling: deterministic 1-in-n by arrival order -- *)

let test_node_sampling () =
  let emit_n trace n =
    for i = 1 to n do
      T.node_event trace ~algo:"t" ~node:i ~gain:1 ~accepted:true
    done
  in
  let count trace =
    List.length
      (List.filter (function T.Node_event _ -> true | _ -> false)
         (T.events trace))
  in
  let t0 = T.create () in
  Alcotest.(check bool) "sample 0 disables" false (T.sampling t0);
  emit_n t0 10;
  Alcotest.(check int) "no node events without sampling" 0 (count t0);
  let t3 = T.create ~sample:3 () in
  Alcotest.(check bool) "sample 3 enables" true (T.sampling t3);
  emit_n t3 10;
  Alcotest.(check int) "1-in-3 of 10 arrivals" 4 (count t3);
  (* children inherit the rate with their own tick *)
  let child = T.child t3 ~flow:"c" in
  emit_n child 10;
  Alcotest.(check int) "child samples independently" 4 (count child)

(* -- summary rendering: % column and totals row -- *)

let test_summary_totals () =
  let _, _, trace = traced_run () in
  let s = Format.asprintf "%a" T.pp_summary trace in
  let contains needle =
    let n = String.length s and m = String.length needle in
    let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has %% column header" true (contains "%");
  Alcotest.(check bool) "has totals row" true (contains "total")

let suite =
  [
    Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_buckets;
    Alcotest.test_case "null metrics registry" `Quick test_null_metrics;
    Alcotest.test_case "gc deltas non-negative" `Slow test_gc_delta_nonnegative;
    Alcotest.test_case "node-event sampling" `Quick test_node_sampling;
    Alcotest.test_case "summary totals row" `Slow test_summary_totals;
    Alcotest.test_case "span sequence (compress_lite golden)" `Slow
      test_span_sequence;
    Alcotest.test_case "monotonic timestamps" `Slow test_monotonic_timestamps;
    Alcotest.test_case "final stats match returned network" `Slow
      test_final_stats_match;
    Alcotest.test_case "per-pass deltas telescope" `Slow test_deltas_telescope;
    Alcotest.test_case "jsonl rendering" `Slow test_jsonl_rendering;
    Alcotest.test_case "counters attached to spans" `Slow
      test_counters_attached;
    Alcotest.test_case "portfolio per-domain traces" `Slow
      test_portfolio_trace;
  ]
