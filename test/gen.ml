(* Shared random-network generator for the test suite.

   Promoted from the ad-hoc [Random_net] functors that used to live in
   test_algo.ml and test_network.ml: one seeded generator, parameterized
   over any {!Network.Intf.BUILDER} slice (construction capabilities only
   — the generator never reads structure), with shape knobs:

   - [use_maj]: include MAJ gates in the operator mix.  Defaults to
     [false]; pass [true] for majority-capable representations (MIG,
     XMG).  The RNG draw sequence matches the historical generator
     exactly, so existing seeded tests keep their networks bit-for-bit.
   - [locality]: when positive, gate operands are drawn from the
     [locality] most recent signals instead of uniformly from all
     signals.  Small values produce deep, narrow chains; 0 (the default,
     and the historical behavior) produces shallow, high-fanout DAGs.

   For QCheck properties, {!arb_params} is a shrinkable (seed, gates)
   pair: the network is regenerated from the pair, so shrinking toward
   seed 0 and fewer gates stays sound and minimizes failing cases. *)

module Make (N : Network.Intf.BUILDER) = struct
  let generate ?(use_maj = false) ?(locality = 0) ~seed ~num_pis ~num_gates
      ~num_pos () =
    let rng = Random.State.make [| seed |] in
    let t = N.create () in
    let signals = ref [] in
    for _ = 1 to num_pis do
      signals := N.create_pi t :: !signals
    done;
    let pick () =
      let l = !signals in
      let bound =
        if locality > 0 then min locality (List.length l) else List.length l
      in
      let s = List.nth l (Random.State.int rng bound) in
      N.complement_if (Random.State.bool rng) s
    in
    for _ = 1 to num_gates do
      let s =
        match Random.State.int rng (if use_maj then 4 else 3) with
        | 0 -> N.create_and t (pick ()) (pick ())
        | 1 -> N.create_or t (pick ()) (pick ())
        | 2 -> N.create_xor t (pick ()) (pick ())
        | _ -> N.create_maj t (pick ()) (pick ()) (pick ())
      in
      signals := s :: !signals
    done;
    for _ = 1 to num_pos do
      N.create_po t (pick ())
    done;
    t
end

(* Shrinkable QCheck parameters: a (seed, num_gates) pair.  QCheck shrinks
   pairs componentwise, so failures minimize toward seed 0 and the
   smallest gate count that still fails. *)
let arb_params ?(max_seed = 9999) ?(max_gates = 60) () =
  QCheck.(pair (int_bound max_seed) (int_range 1 max_gates))
