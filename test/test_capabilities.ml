(* Compile-time checks for the capability-signature lattice: every functor
   in the codebase is instantiated with a module coerced down to *exactly*
   its declared minimal sub-signature.  If an algorithm starts using a
   capability outside its slice, or an implementation stops providing one,
   this file fails to compile.  A small runtime check confirms the coerced
   instantiations agree with the full-signature ones. *)

open Network

(* Aig coerced to each lattice point: the coercions themselves prove that
   every implementation satisfies every slice. *)
module Structure : Intf.STRUCTURE with type t = Aig.t = Aig
module Builder : Intf.BUILDER with type t = Aig.t = Aig
module Traversable : Intf.TRAVERSABLE with type t = Aig.t = Aig
module Counted : Intf.COUNTED with type t = Aig.t = Aig
module Sweepable : Intf.SWEEPABLE with type t = Aig.t = Aig
module Full : Intf.NETWORK with type t = Aig.t = Aig

(* Every other representation satisfies the full union (and therefore each
   slice). *)
module _ : Intf.NETWORK = Mig
module _ : Intf.NETWORK = Xag
module _ : Intf.NETWORK = Xmg
module _ : Intf.NETWORK = Klut

(* Each functor at its minimal slice.  TRAVERSABLE: pure traversals. *)
module Topo_min = Algo.Topo.Make (Traversable)
module Depth_min = Algo.Depth.Make (Traversable)
module _ = Algo.Simulate.Make (Traversable)
module _ = Algo.Simulate.Cross (Traversable) (Traversable)
module _ = Algo.Cuts.Make (Traversable)
module _ = Algo.Reconv.Make (Traversable)
module _ = Algo.Cec.Make (Traversable) (Traversable)

(* COUNTED: traversal + reference counts. *)
module _ = Algo.Mffc.Make (Counted)
module _ = Algo.Window.Make (Counted)
module _ = Algo.Odc.Make (Counted)
module Lutmap_min = Algo.Lutmap.Make (Counted)

(* SWEEPABLE: traversal + substitution, no construction. *)
module _ = Algo.Fraig.Make (Sweepable)

(* BUILDER: constructors only. *)
module _ = Network.Build.Make (Builder)
module _ = Exact.Decode.Make (Builder)
module _ = Lsgen.Blocks.Make (Builder)

(* STRUCTURE: read-only writers. *)
module _ = Lsio.Bench.Make (Structure)
module _ = Lsio.Dot.Make (Structure)

(* Conversion: read-only source, construct-only destination. *)
module _ = Convert.Make (Traversable) (Builder)

(* The restructuring passes use every capability. *)
module _ = Algo.Balance.Make (Full)
module _ = Algo.Rewrite.Make (Full)
module _ = Algo.Refactor.Make (Full)
module _ = Algo.Resub.Make (Full)

module S = Lsgen.Suite.Make (Aig)
module Depth_full = Algo.Depth.Make (Aig)
module Topo_full = Algo.Topo.Make (Aig)

(* The coerced functor instance operates on the same values and computes
   the same results as the full-signature instance. *)
let test_sliced_equals_full () =
  let t = S.build "ctrl" in
  Alcotest.(check int) "depth agrees" (Depth_full.depth t) (Depth_min.depth t);
  Alcotest.(check int)
    "topo order length agrees"
    (List.length (Topo_full.order t))
    (List.length (Topo_min.order t))

let test_lutmap_on_slice () =
  let t = S.build "int2float" in
  let m = Lutmap_min.map t ~k:6 () in
  Alcotest.(check bool) "mapped" true (m.Lutmap_min.lut_count > 0)

let suite =
  [
    Alcotest.test_case "sliced functors = full functors" `Quick
      test_sliced_equals_full;
    Alcotest.test_case "lutmap over COUNTED slice" `Quick test_lutmap_on_slice;
  ]
