(* Tests for the benchmark generators: each word-level block is verified
   functionally against integer arithmetic via exhaustive simulation. *)

open Network

module B = Lsgen.Blocks.Make (Aig)
module Sim = Algo.Simulate.Make (Aig)

(* Evaluate an AIG on one integer input assignment: PI i <- bit i of x. *)
let eval_net t x =
  let pis = Array.init (Aig.num_pis t) (fun i ->
      if (x lsr i) land 1 = 1 then Kitty.Tt.const1 0 else Kitty.Tt.const0 0)
  in
  let values = Sim.simulate t pis in
  let outs = Sim.output_values t values in
  Array.fold_left
    (fun (acc, bit) tt ->
      ((if Kitty.Tt.is_const1 tt then acc lor (1 lsl bit) else acc), bit + 1))
    (0, 0) outs
  |> fst

let test_adder () =
  let t = Aig.create () in
  let a = B.input_word t ~width:4 and b = B.input_word t ~width:4 in
  let sum, carry = B.add t a b in
  B.output_word t sum;
  Aig.create_po t carry;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let got = eval_net t (x lor (y lsl 4)) in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) got
    done
  done

let test_subtract_compare () =
  let t = Aig.create () in
  let a = B.input_word t ~width:4 and b = B.input_word t ~width:4 in
  let diff, geq = B.subtract t a b in
  B.output_word t diff;
  Aig.create_po t geq;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let got = eval_net t (x lor (y lsl 4)) in
      let expected = ((x - y) land 15) lor (if x >= y then 16 else 0) in
      Alcotest.(check int) (Printf.sprintf "%d-%d" x y) expected got
    done
  done

let test_multiplier () =
  let t = Aig.create () in
  let a = B.input_word t ~width:3 and b = B.input_word t ~width:3 in
  B.output_word t (B.multiplier t a b);
  for x = 0 to 7 do
    for y = 0 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (eval_net t (x lor (y lsl 3)))
    done
  done

let test_divider () =
  let t = Aig.create () in
  let a = B.input_word t ~width:4 and b = B.input_word t ~width:4 in
  let q, r = B.divider t a b in
  B.output_word t q;
  B.output_word t r;
  for x = 0 to 15 do
    for y = 1 to 15 do
      let got = eval_net t (x lor (y lsl 4)) in
      let expected = (x / y) lor ((x mod y) lsl 4) in
      Alcotest.(check int) (Printf.sprintf "%d/%d" x y) expected got
    done
  done

let test_sqrt () =
  let t = Aig.create () in
  let a = B.input_word t ~width:6 in
  let root, rem = B.sqrt t a in
  B.output_word t root;
  B.output_word t rem;
  for x = 0 to 63 do
    let isqrt = int_of_float (Float.sqrt (float_of_int x)) in
    let got = eval_net t x in
    let expected = isqrt lor ((x - (isqrt * isqrt)) lsl 3) in
    Alcotest.(check int) (Printf.sprintf "sqrt %d" x) expected got
  done

let test_barrel_shifter () =
  let t = Aig.create () in
  let data = B.input_word t ~width:8 in
  let shamt = B.input_word t ~width:3 in
  B.output_word t (B.barrel_shifter t data shamt);
  for d = 0 to 255 do
    for s = 0 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "%d >> %d" d s)
        (d lsr s)
        (eval_net t (d lor (s lsl 8)))
    done
  done

let test_priority_encoder () =
  let t = Aig.create () in
  let x = B.input_word t ~width:8 in
  let idx, valid = B.priority_encoder t x in
  B.output_word t idx;
  Aig.create_po t valid;
  for v = 0 to 255 do
    let expected =
      if v = 0 then 0
      else begin
        let rec top i = if (v lsr i) land 1 = 1 then i else top (i - 1) in
        top 7 lor 8
      end
    in
    Alcotest.(check int) (Printf.sprintf "prio %d" v) expected (eval_net t v)
  done

let test_decoder () =
  let t = Aig.create () in
  let sel = B.input_word t ~width:3 in
  B.output_word t (B.decoder t sel);
  for v = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "dec %d" v) (1 lsl v) (eval_net t v)
  done

let test_popcount () =
  let t = Aig.create () in
  let xs = List.init 7 (fun _ -> Aig.create_pi t) in
  B.output_word t (B.popcount t xs);
  for v = 0 to 127 do
    let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
    Alcotest.(check int) (Printf.sprintf "pop %d" v) (pop v) (eval_net t v)
  done

let test_max_tree () =
  let t = Aig.create () in
  let words = List.init 4 (fun _ -> B.input_word t ~width:3) in
  let best, idx = B.max_tree t words in
  B.output_word t best;
  B.output_word t idx;
  let rng = Seed.state 5 in
  for _ = 1 to 200 do
    let vals = Array.init 4 (fun _ -> Random.State.int rng 8) in
    let x = vals.(0) lor (vals.(1) lsl 3) lor (vals.(2) lsl 6) lor (vals.(3) lsl 9) in
    let got = eval_net t x in
    let m = Array.fold_left max 0 vals in
    Alcotest.(check int) "max value" m (got land 7)
    (* index is any argmax; check it points at a maximal word *)
    ;
    let idx_got = (got lsr 3) land 3 in
    Alcotest.(check int) "argmax" m vals.(idx_got)
  done

let test_mux_word () =
  let t = Aig.create () in
  let s = Aig.create_pi t in
  let a = B.input_word t ~width:4 and b = B.input_word t ~width:4 in
  B.output_word t (B.mux_word t s a b);
  for v = 0 to 511 do
    let sv = v land 1 and av = (v lsr 1) land 15 and bv = (v lsr 5) land 15 in
    Alcotest.(check int) "mux" (if sv = 1 then av else bv) (eval_net t v)
  done

(* suite-level sanity: every benchmark builds, is non-trivial, and has the
   right interface shape *)
let test_suite_builds () =
  let module S = Lsgen.Suite.Make (Aig) in
  List.iter
    (fun name ->
      let t = S.build name in
      Alcotest.(check bool) (name ^ " has gates") true (Aig.num_gates t > 20);
      Alcotest.(check bool) (name ^ " has outputs") true (Aig.num_pos t > 0);
      (match Aig.check_integrity t with
      | [] -> ()
      | errs -> Alcotest.failf "%s integrity: %s" name (String.concat "; " errs));
      (* no primary output may be a constant: that would mean the generator
         collapsed *)
      let module Dp = Algo.Depth.Make (Aig) in
      Alcotest.(check bool) (name ^ " has depth") true (Dp.depth t > 2))
    S.names

let test_voter_majority () =
  let module S = Lsgen.Suite.Make (Aig) in
  ignore S.names;
  (* small voter instance checked exhaustively *)
  let t = Aig.create () in
  let xs = List.init 7 (fun _ -> Aig.create_pi t) in
  let count = B.popcount t xs in
  let threshold = B.constant_word t ~width:(Array.length count) 4 in
  let _, geq = B.subtract t count threshold in
  Aig.create_po t geq;
  for v = 0 to 127 do
    let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
    Alcotest.(check int)
      (Printf.sprintf "voter %d" v)
      (if pop v >= 4 then 1 else 0)
      (eval_net t v)
  done

let suite =
  [
    Alcotest.test_case "adder" `Quick test_adder;
    Alcotest.test_case "subtract/compare" `Quick test_subtract_compare;
    Alcotest.test_case "multiplier" `Quick test_multiplier;
    Alcotest.test_case "divider" `Quick test_divider;
    Alcotest.test_case "sqrt" `Quick test_sqrt;
    Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
    Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
    Alcotest.test_case "decoder" `Quick test_decoder;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "max tree" `Quick test_max_tree;
    Alcotest.test_case "mux word" `Quick test_mux_word;
    Alcotest.test_case "voter majority" `Quick test_voter_majority;
    Alcotest.test_case "all suite benchmarks build" `Slow test_suite_builds;
  ]

(* -- control generators -- *)

let test_arbiter_one_hot () =
  (* the round-robin arbiter grants at most one requester, and grants only
     actual requesters *)
  let module C = Lsgen.Control.Make (Aig) in
  let t = Aig.create () in
  let req = Array.init 4 (fun _ -> Aig.create_pi t) in
  let ptr = Array.init 4 (fun _ -> Aig.create_pi t) in
  let grant, any = C.rr_arbiter t req ptr in
  Array.iter (fun g -> Aig.create_po t g) grant;
  Aig.create_po t any;
  for v = 0 to 255 do
    let got = eval_net t v in
    let grants = got land 15 in
    let any_bit = (got lsr 4) land 1 in
    (* one-hot or zero *)
    Alcotest.(check bool)
      (Printf.sprintf "at most one grant (v=%d)" v)
      true
      (grants land (grants - 1) = 0);
    (* grants only requesters *)
    let reqs = v land 15 in
    Alcotest.(check int)
      (Printf.sprintf "grant implies request (v=%d)" v)
      grants (grants land reqs);
    (* any = (grants <> 0) *)
    Alcotest.(check bool)
      (Printf.sprintf "any consistent (v=%d)" v)
      (grants <> 0) (any_bit = 1)
  done

let test_random_logic_depth_reasonable () =
  (* the stand-in control logic should have realistic (logarithmic-ish)
     depth, not linear chains *)
  let module C = Lsgen.Control.Make (Aig) in
  let module D = Algo.Depth.Make (Aig) in
  let t = Aig.create () in
  C.random_logic t ~seed:1234 ~num_pis:32 ~num_pos:16 ~num_gates:800;
  let d = D.depth t in
  Alcotest.(check bool)
    (Printf.sprintf "depth %d in [5, 120]" d)
    true
    (d >= 5 && d <= 120);
  Alcotest.(check bool) "gates created" true (Aig.num_gates t > 400)

let test_random_logic_deterministic () =
  let module C = Lsgen.Control.Make (Aig) in
  let build () =
    let t = Aig.create () in
    C.random_logic t ~seed:77 ~num_pis:10 ~num_pos:5 ~num_gates:100;
    t
  in
  let t1 = build () and t2 = build () in
  Alcotest.(check int) "same gates" (Aig.num_gates t1) (Aig.num_gates t2);
  let module Cc = Algo.Cec.Make (Aig) (Aig) in
  match Cc.check t1 t2 with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "generator not deterministic"

let test_suite_generic_over_reps () =
  (* the same generator emits every representation *)
  let module Sm = Lsgen.Suite.Make (Mig) in
  let module Sx = Lsgen.Suite.Make (Xag) in
  let m = Sm.build "adder" in
  let x = Sx.build "adder" in
  Alcotest.(check bool) "mig adder has majority gates" true (Mig.num_gates m > 0);
  Alcotest.(check bool) "xag adder has gates" true (Xag.num_gates x > 0);
  (* the XAG adder should contain XOR gates natively *)
  let has_xor = ref false in
  Xag.foreach_gate x (fun n ->
      if Kind.equal (Xag.gate_kind x n) Kind.Xor then has_xor := true);
  Alcotest.(check bool) "xag adder uses xor" true !has_xor;
  (* cross-representation equivalence of the same generator *)
  let module Ca = Algo.Cec.Make (Mig) (Xag) in
  match Ca.check m x with
  | Algo.Cec.Equivalent -> ()
  | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
    Alcotest.fail "mig and xag adders differ"

let extra_suite =
  [
    Alcotest.test_case "arbiter one-hot" `Quick test_arbiter_one_hot;
    Alcotest.test_case "random logic depth" `Quick test_random_logic_depth_reasonable;
    Alcotest.test_case "random logic deterministic" `Quick test_random_logic_deterministic;
    Alcotest.test_case "suite generic over reps" `Quick test_suite_generic_over_reps;
  ]

let suite = suite @ extra_suite
