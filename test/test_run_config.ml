(* The typed run configuration: builder defaults, the environment
   override layer, and the JSON round-trip that makes it a job spec. *)

module RC = Flow.Run_config

let cfg =
  Alcotest.testable (fun fmt c -> Format.pp_print_string fmt (RC.to_json c)) ( = )

let test_json_round_trip () =
  let c =
    RC.make ~representation:RC.Xmg ~script:"bz; rw; rf" ~trace_path:"t.jsonl"
      ~stats:true ~sample:10 ~partition:500 ~jobs:3 ~sat_jobs:2 ~budget:1000
      ~kernel:"legacy" ~cost:"depth" ~cache:"/tmp/store.glxs" ~timeout:1.5
      ~retries:2 ~faults:"parmap.job:0.1,sat.solve:1:2" ()
  in
  match RC.of_json_string (RC.to_json c) with
  | Ok c' -> Alcotest.check cfg "round-trips" c c'
  | Error e -> Alcotest.fail e

let test_json_defaults () =
  (* missing fields fall back to the builder defaults *)
  match RC.of_json_string "{}" with
  | Ok c -> Alcotest.check cfg "empty object is default" RC.default c
  | Error e -> Alcotest.fail e

let test_json_rejects_unknown () =
  (match RC.of_json_string "{\"representation\":\"zzz\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown representation"
  | Error _ -> ());
  (match RC.of_json_string "{\"kernel\":\"quantum\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown kernel"
  | Error _ -> ());
  (match RC.of_json_string "{\"cost\":\"bogus\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown cost spec"
  | Error _ -> ());
  match RC.of_json_string "[1,2]" with
  | Ok _ -> Alcotest.fail "accepted non-object"
  | Error _ -> ()

let with_env kvs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) kvs in
  List.iter (fun (k, v) -> Unix.putenv k v) kvs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value ~default:"" old))
        saved)
    f

let test_env_overrides () =
  with_env
    [
      ("GENLOG_SAT_JOBS", "3");
      ("GENLOG_PARTITION", "250");
      ("GENLOG_CACHE", "/tmp/env_store.glxs");
      ("GENLOG_SAT_KERNEL", "legacy");
      ("GENLOG_JOBS", "not-a-number");
      ("GENLOG_TIMEOUT", "2.5");
      ("GENLOG_RETRIES", "3");
      ("GENLOG_FAULTS", "store.append:1:1");
    ]
    (fun () ->
      let c = RC.of_env () in
      Alcotest.(check int) "sat_jobs from env" 3 c.RC.sat_jobs;
      Alcotest.(check int) "partition from env" 250 c.RC.partition;
      Alcotest.(check (option string))
        "cache from env"
        (Some "/tmp/env_store.glxs")
        c.RC.cache;
      Alcotest.(check string) "kernel from env" "legacy" c.RC.kernel;
      Alcotest.(check (float 1e-9)) "timeout from env" 2.5 c.RC.timeout;
      Alcotest.(check int) "retries from env" 3 c.RC.retries;
      Alcotest.(check (option string))
        "faults from env"
        (Some "store.append:1:1")
        c.RC.faults;
      (* unparsable integers keep the default rather than failing *)
      Alcotest.(check int) "bad int ignored" RC.default.RC.jobs c.RC.jobs)

let test_env_cost () =
  Alcotest.(check string) "default cost is area" "area" RC.default.RC.cost;
  with_env
    [ ("GENLOG_COST", "depth") ]
    (fun () ->
      Alcotest.(check string) "cost from env" "depth" (RC.of_env ()).RC.cost);
  with_env
    [ ("GENLOG_COST", "bogus") ]
    (fun () ->
      (* invalid specs are ignored, like unparsable integers *)
      Alcotest.(check string) "bad cost ignored" "area" (RC.of_env ()).RC.cost);
  (* syntax-only validation: a weights spec round-trips through JSON even
     when the file is not present on the consuming machine *)
  let c = RC.make ~cost:"weights:/nonexistent/w.txt" () in
  match RC.of_json_string (RC.to_json c) with
  | Ok c' -> Alcotest.check cfg "weights spec round-trips" c c'
  | Error e -> Alcotest.fail e

let test_env_layering () =
  (* env overrides defaults, explicit values override env *)
  with_env
    [ ("GENLOG_SAT_JOBS", "7") ]
    (fun () ->
      let base = RC.of_env () in
      Alcotest.(check int) "env wins over default" 7 base.RC.sat_jobs;
      let explicit = { base with RC.sat_jobs = 2 } in
      Alcotest.(check int) "explicit wins over env" 2 explicit.RC.sat_jobs)

let test_solver_config () =
  let legacy = RC.solver_config { RC.default with RC.kernel = "legacy" } in
  let modern = RC.solver_config RC.default in
  Alcotest.(check string)
    "legacy kernel" Satkit.Solver.legacy_config.Satkit.Solver.name
    legacy.Satkit.Solver.name;
  Alcotest.(check string)
    "modern kernel" Satkit.Solver.default_config.Satkit.Solver.name
    modern.Satkit.Solver.name

let test_representation_strings () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        "round-trips" true
        (RC.representation_of_string (RC.representation_to_string r) = Some r))
    [ RC.Aig; RC.Mig; RC.Xag; RC.Xmg ];
  Alcotest.(check bool)
    "unknown rejected" true
    (RC.representation_of_string "klut" = None)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json defaults" `Quick test_json_defaults;
    Alcotest.test_case "json rejects unknown" `Quick test_json_rejects_unknown;
    Alcotest.test_case "env overrides" `Quick test_env_overrides;
    Alcotest.test_case "env cost spec" `Quick test_env_cost;
    Alcotest.test_case "env layering" `Quick test_env_layering;
    Alcotest.test_case "solver config" `Quick test_solver_config;
    Alcotest.test_case "representation strings" `Quick
      test_representation_strings;
  ]
