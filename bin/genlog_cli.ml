(* genlog_cli: command-line driver.

     genlog_cli gen adder -o adder.aag          generate a benchmark
     genlog_cli stats adder.aag                 print size/depth
     genlog_cli opt adder.aag -r mig -o out.aag run compress2rs
     genlog_cli map adder.aag -k 6 -o out.blif  6-LUT mapping
     genlog_cli cec a.aag b.aag                 SAT equivalence check *)

open Cmdliner

module Aig = Genlog.Aig
module D = Genlog.Depth.Make (Aig)

let read_aig path = Genlog.Aiger.read_file path

let stats_of_aig t =
  Printf.sprintf "i/o = %d/%d  gates = %d  depth = %d" (Aig.num_pis t)
    (Aig.num_pos t) (Aig.num_gates t) (D.depth t)

(* -- gen -- *)

let gen_cmd =
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run name output =
    if not (List.mem name Genlog.Suite.names) then begin
      Printf.eprintf "unknown benchmark %s; available: %s\n" name
        (String.concat ", " Genlog.Suite.names);
      exit 1
    end;
    let t = Genlog.Suite.build name in
    (match output with
    | Some path -> Genlog.Aiger.write_file t path
    | None -> Genlog.Aiger.write t stdout);
    Printf.eprintf "%s: %s\n" name (stats_of_aig t)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a benchmark circuit as ASCII AIGER")
    Term.(const run $ bench_name $ output)

(* -- stats -- *)

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file = Printf.printf "%s: %s\n" file (stats_of_aig (read_aig file)) in
  Cmd.v (Cmd.info "stats" ~doc:"Print network statistics") Term.(const run $ file)

(* -- opt -- *)

let representation =
  Arg.(
    value
    & opt (enum [ ("aig", `Aig); ("mig", `Mig); ("xag", `Xag); ("xmg", `Xmg) ]) `Aig
    & info [ "r"; "representation" ] ~docv:"REP")

let script_arg =
  Arg.(
    value
    & opt string Genlog.Script.compress2rs
    & info [ "s"; "script" ] ~docv:"SCRIPT")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL pass-level trace (one event per line) to $(docv).")

let stats_flag =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:"Print a per-pass summary table (gates/depth deltas, wall time, \
              per-algorithm counters) to stderr.")

let opt_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run file rep script output trace_file stats =
    let t = read_aig file in
    Printf.eprintf "baseline: %s\n%!" (stats_of_aig t);
    let rep_name =
      match rep with `Aig -> "aig" | `Mig -> "mig" | `Xag -> "xag" | `Xmg -> "xmg"
    in
    let trace =
      if trace_file <> None || stats then Genlog.Trace.create ~flow:rep_name ()
      else Genlog.Trace.null
    in
    let optimized_aig =
      match rep with
      | `Aig ->
        let module F = Genlog.Flow.Make (Aig) in
        let r = F.run_script (Genlog.Flow.aig_env ()) ~trace t script in
        Printf.eprintf "aig: gates = %d depth = %d\n%!" (Aig.num_gates r) (D.depth r);
        r
      | `Mig ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Mig) in
        let module Cb = Genlog.Convert.Make (Genlog.Mig) (Aig) in
        let module F = Genlog.Flow.Make (Genlog.Mig) in
        let module Dm = Genlog.Depth.Make (Genlog.Mig) in
        let r = F.run_script (Genlog.Flow.mig_env ()) ~trace (C.convert t) script in
        Printf.eprintf "mig: gates = %d depth = %d (written back as AIG)\n%!"
          (Genlog.Mig.num_gates r) (Dm.depth r);
        Cb.convert r
      | `Xag ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Xag) in
        let module Cb = Genlog.Convert.Make (Genlog.Xag) (Aig) in
        let module F = Genlog.Flow.Make (Genlog.Xag) in
        let module Dx = Genlog.Depth.Make (Genlog.Xag) in
        let r = F.run_script (Genlog.Flow.xag_env ()) ~trace (C.convert t) script in
        Printf.eprintf "xag: gates = %d depth = %d (written back as AIG)\n%!"
          (Genlog.Xag.num_gates r) (Dx.depth r);
        Cb.convert r
      | `Xmg ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Xmg) in
        let module Cb = Genlog.Convert.Make (Genlog.Xmg) (Aig) in
        let module F = Genlog.Flow.Make (Genlog.Xmg) in
        let module Dx = Genlog.Depth.Make (Genlog.Xmg) in
        let r = F.run_script (Genlog.Flow.xmg_env ()) ~trace (C.convert t) script in
        Printf.eprintf "xmg: gates = %d depth = %d (written back as AIG)\n%!"
          (Genlog.Xmg.num_gates r) (Dx.depth r);
        Cb.convert r
    in
    (match trace_file with
    | Some path -> Genlog.Trace.write_file trace path
    | None -> ());
    if stats then
      Format.eprintf "%a%!" Genlog.Trace.pp_summary trace;
    match output with
    | Some path -> Genlog.Aiger.write_file optimized_aig path
    | None -> Genlog.Aiger.write optimized_aig stdout
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize with the generic resynthesis flow")
    Term.(const run $ file $ representation $ script_arg $ output $ trace_arg
          $ stats_flag)

(* -- map -- *)

let map_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~docv:"K") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run file k output =
    let t = read_aig file in
    let module L = Genlog.Lutmap.Make (Aig) in
    let m = L.map t ~k () in
    Printf.eprintf "%d-LUTs: %d  depth: %d\n%!" k m.L.lut_count m.L.depth;
    match output with
    | Some path -> Genlog.Blif.write_file m.L.klut path
    | None -> Genlog.Blif.write m.L.klut stdout
  in
  Cmd.v (Cmd.info "map" ~doc:"Map into k-input LUTs, writing BLIF")
    Term.(const run $ file $ k $ output)

(* -- cec -- *)

let cec_cmd =
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B") in
  let run file_a file_b =
    let a = read_aig file_a and b = read_aig file_b in
    let module C = Genlog.Cec.Make (Aig) (Aig) in
    match C.check a b with
    | Genlog.Cec.Equivalent ->
      print_endline "EQUIVALENT";
      exit 0
    | Genlog.Cec.Counterexample cex ->
      Printf.printf "NOT EQUIVALENT: counterexample =";
      Array.iter (fun v -> print_string (if v then " 1" else " 0")) cex;
      print_newline ();
      exit 1
    | Genlog.Cec.Unknown ->
      print_endline "UNKNOWN";
      exit 2
  in
  Cmd.v (Cmd.info "cec" ~doc:"SAT combinational equivalence check")
    Term.(const run $ file_a $ file_b)

(* -- exact -- *)

let exact_cmd =
  let hex = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  let rep =
    Arg.(
      value
      & opt (enum [ ("aig", `Aig); ("xag", `Xag); ("mig", `Mig); ("xmg", `Xmg) ]) `Xag
      & info [ "r"; "representation" ] ~docv:"REP")
  in
  let run hex rep =
    (* infer the variable count from the hex length: 2^n bits = 4*len *)
    let bits = 4 * String.length hex in
    let n =
      let rec go n = if 1 lsl n >= bits then n else go (n + 1) in
      go 0
    in
    let f = Genlog.Tt.of_hex n hex in
    let config =
      match rep with
      | `Aig -> Genlog.Exact_synth.aig_config
      | `Xag -> Genlog.Exact_synth.xag_config
      | `Mig -> Genlog.Exact_synth.mig_config
      | `Xmg -> Genlog.Exact_synth.xmg_config
    in
    match Genlog.Exact_synth.synthesize config f with
    | Genlog.Exact_synth.Const b -> Printf.printf "constant %d\n" (if b then 1 else 0)
    | Genlog.Exact_synth.Projection (v, c) ->
      Printf.printf "%sx%d (wire)\n" (if c then "!" else "") v
    | Genlog.Exact_synth.Chain c ->
      Format.printf "%a" Genlog.Exact_chain.pp c;
      Printf.printf "optimal size: %d gates\n" (Genlog.Exact_chain.size c)
    | Genlog.Exact_synth.Failed ->
      print_endline "synthesis gave up (budget exhausted)";
      exit 1
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"SAT-exact synthesis of a function given as a hex truth table")
    Term.(const run $ hex $ rep)

(* -- fraig -- *)

let fraig_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run file output =
    let t = read_aig file in
    Printf.eprintf "before: %s\n%!" (stats_of_aig t);
    let module Fr = Genlog.Fraig.Make (Aig) in
    let stats = Fr.run t () in
    let module Cl = Genlog.Convert.Cleanup (Aig) in
    let t = Cl.cleanup t in
    Printf.eprintf "after:  %s (%d proved, %d refuted, %d unknown)\n%!"
      (stats_of_aig t) stats.Fr.proved stats.Fr.refuted stats.Fr.unknown;
    match output with
    | Some path -> Genlog.Aiger.write_file t path
    | None -> Genlog.Aiger.write t stdout
  in
  Cmd.v (Cmd.info "fraig" ~doc:"SAT sweeping (functional reduction)")
    Term.(const run $ file $ output)

let () =
  let info = Cmd.info "genlog_cli" ~doc:"Generic logic synthesis (DAC'19 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; stats_cmd; opt_cmd; map_cmd; cec_cmd; exact_cmd; fraig_cmd ]))
