(* genlog_cli: command-line driver.

     genlog_cli gen adder -o adder.aag          generate a benchmark
     genlog_cli stats adder.aag                 print size/depth
     genlog_cli opt adder.aag -r mig -o out.aag run compress2rs
     genlog_cli map adder.aag -k 6 -o out.blif  6-LUT mapping
     genlog_cli cec a.aag b.aag                 SAT equivalence check *)

open Cmdliner

module Aig = Genlog.Aig
module D = Genlog.Depth.Make (Aig)

let read_aig path = Genlog.Aiger.read_file path

let stats_of_aig t =
  Printf.sprintf "i/o = %d/%d  gates = %d  depth = %d" (Aig.num_pis t)
    (Aig.num_pos t) (Aig.num_gates t) (D.depth t)

(* -- gen -- *)

let gen_cmd =
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run name output =
    if not (List.mem name Genlog.Suite.names) then begin
      Printf.eprintf "unknown benchmark %s; available: %s\n" name
        (String.concat ", " Genlog.Suite.names);
      exit 1
    end;
    let t = Genlog.Suite.build name in
    (match output with
    | Some path -> Genlog.Aiger.write_file t path
    | None -> Genlog.Aiger.write t stdout);
    Printf.eprintf "%s: %s\n" name (stats_of_aig t)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a benchmark circuit as ASCII AIGER")
    Term.(const run $ bench_name $ output)

(* -- stats -- *)

let stats_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file = Printf.printf "%s: %s\n" file (stats_of_aig (read_aig file)) in
  Cmd.v (Cmd.info "stats" ~doc:"Print network statistics") Term.(const run $ file)

(* -- opt -- *)

module RC = Genlog.Run_config

(* Flag defaults are seeded from the environment-resolved config, so the
   precedence is: built-in defaults < GENLOG_* variables < explicit
   flags.  One resolution, shared by every subcommand. *)
let base_cfg = RC.of_env ()

let representation =
  Arg.(
    value
    & opt (enum [ ("aig", `Aig); ("mig", `Mig); ("xag", `Xag); ("xmg", `Xmg) ]) `Aig
    & info [ "r"; "representation" ] ~docv:"REP")

let script_arg =
  Arg.(
    value
    & opt string base_cfg.RC.script
    & info [ "s"; "script" ] ~docv:"SCRIPT")

let trace_arg =
  Arg.(
    value
    & opt (some string) base_cfg.RC.trace_path
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL pass-level trace (one event per line) to $(docv).")

let stats_flag =
  Arg.(
    value
    & flag
    & info [ "stats" ]
        ~doc:"Print a per-pass summary table (gates/depth deltas, wall time, \
              per-algorithm counters) to stderr.")

let sample_arg =
  Arg.(
    value
    & opt int base_cfg.RC.sample
    & info [ "sample" ] ~docv:"N"
        ~doc:"Record 1-in-$(docv) node-level events (candidate, gain, \
              accepted) in the trace; 0 disables node sampling. Implies \
              nothing by itself — combine with $(b,--trace) or $(b,--stats).")

let partition_arg =
  Arg.(
    value
    & opt int base_cfg.RC.partition
    & info [ "partition" ] ~docv:"SIZE"
        ~doc:"Carve the network into partitions of at most $(docv) gates and \
              optimize them in parallel (0 disables partitioning). Every \
              stitched replacement is guarded by random simulation with SAT \
              escalation, so the result is equivalence-checked by \
              construction.")

let jobs_arg =
  Arg.(
    value
    & opt int base_cfg.RC.jobs
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for $(b,--partition) and for batch runs over \
              several input files (default: the runtime's recommended \
              domain count).")

let sat_jobs_arg =
  Arg.(
    value
    & opt int base_cfg.RC.sat_jobs
    & info [ "sat-jobs" ] ~docv:"N"
        ~doc:"Race $(docv) diversified SAT solver configurations in parallel \
              in SAT-heavy passes (fraig escalation, exact synthesis); the \
              first answer wins and cancels the rest. 1 disables the \
              portfolio.")

let cache_arg =
  Arg.(
    value
    & opt (some string) base_cfg.RC.cache
    & info [ "cache" ] ~docv:"PATH"
        ~doc:"Persistent exact-synthesis store: NPN-class results are \
              loaded from $(docv) on start and newly synthesized classes \
              are appended once at exit, so warm runs skip SAT-based \
              re-synthesis entirely. The file is keyed to the synthesis \
              domain by a fingerprinted header; a mismatched or corrupt \
              store is skipped with a warning, never an error.")

let kernel_arg =
  Arg.(
    value
    & opt (enum [ ("modern", "modern"); ("legacy", "legacy") ]) base_cfg.RC.kernel
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:"SAT kernel: $(b,modern) (EMA restarts, inprocessing) or \
              $(b,legacy) (pre-modernization baseline). Equivalent to \
              setting GENLOG_SAT_KERNEL.")

let cost_arg =
  Arg.(
    value
    & opt string base_cfg.RC.cost
    & info [ "cost" ] ~docv:"SPEC"
        ~doc:"Optimization objective every pass gains against: \
              $(b,area) (gate count, the default), $(b,depth), \
              $(b,edges), $(b,activity) (switching activity from \
              deterministic simulation), $(b,lut) or $(b,lut:K) \
              (technology-aware K-LUT cost), or $(b,weights:FILE) \
              (per-gate-kind integer weights). The spec is stamped into \
              trace meta and BENCH headers. Equivalent to GENLOG_COST.")

let timeout_arg =
  Arg.(
    value
    & opt float base_cfg.RC.timeout
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget per input network (0 disables). On expiry \
              the engine stops at the next pass boundary and returns the \
              best checkpointed network so far, marked degraded; the \
              process exits 4 instead of 0. Equivalent to GENLOG_TIMEOUT.")

let retries_arg =
  Arg.(
    value
    & opt int base_cfg.RC.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:"Extra attempts for a failed batch file or partition job \
              before it is reported as failed (default 0). Equivalent to \
              GENLOG_RETRIES.")

let faults_arg =
  Arg.(
    value
    & opt (some string) base_cfg.RC.faults
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"Deterministic fault injection for robustness testing: \
              $(i,point:rate[:max]) entries separated by commas, e.g. \
              $(b,parmap.job:0.5,sat.solve:1:2). Equivalent to \
              GENLOG_FAULTS; seeded by GENLOG_FAULT_SEED.")

(* SIGINT/SIGTERM wind-down: the handler only sets a flag; the engine's
   stop hooks and the batch pool notice it at the next pass / item
   boundary, the epilogue still flushes the store and finalizes the
   trace, and the process exits 128+signum. *)
let interrupted = Atomic.make 0
let stop_requested () = Atomic.get interrupted <> 0

let install_signal_handlers () =
  let handle signum code =
    try Sys.set_signal signum (Sys.Signal_handle (fun _ -> Atomic.set interrupted code))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  handle Sys.sigint 130;
  handle Sys.sigterm 143

(* One code path for all four representations: run the whole-network script
   engine, or the partition-parallel engine when a partition size is set.
   The exact-synthesis database is domain-safe, so a single [env] is shared
   by every worker. *)
let optimize_network (type t)
    (module N : Genlog.Intf.NETWORK with type t = t) env ~(cfg : RC.t) ~trace
    (net : t) : t * Genlog.Flow.degradation list =
  if cfg.RC.partition > 0 then begin
    let module P = Genlog.Flow.Partition.Make (N) in
    let r, st = P.run_with ~trace ~config:cfg ~make_env:(fun () -> env) net in
    Printf.eprintf
      "partition: %d pieces, %d accepted, %d rejected (cost), %d rejected \
       (cex), %d failed, %d degraded, %d sim mismatches, jobs = %d%s\n\
       %!"
      st.P.partitions st.P.accepted st.P.rejected_cost st.P.rejected_cex
      st.P.failed st.P.degraded_pieces st.P.sim_mismatches st.P.jobs
      (if st.P.stitch_fallbacks > 0 then
         Printf.sprintf " (stitch fallback level %d)" st.P.stitch_fallbacks
       else "");
    let degs = ref [] in
    if st.P.stitch_fallbacks > 0 then
      degs :=
        {
          Genlog.Flow.d_pass = "partition-stitch";
          d_reason = "exception";
          d_detail =
            Printf.sprintf "stitch fallback level %d" st.P.stitch_fallbacks;
        }
        :: !degs;
    if st.P.failed > 0 then
      degs :=
        {
          Genlog.Flow.d_pass = "partition-opt";
          d_reason = "exception";
          d_detail =
            Printf.sprintf "%d piece job(s) failed; original cones kept"
              st.P.failed;
        }
        :: !degs;
    if st.P.degraded_pieces > st.P.failed then
      degs :=
        {
          Genlog.Flow.d_pass = "partition-opt";
          d_reason = "degraded";
          d_detail =
            Printf.sprintf "%d piece(s) returned best-so-far"
              (st.P.degraded_pieces - st.P.failed);
        }
        :: !degs;
    (r, !degs)
  end
  else begin
    let module F = Genlog.Flow.Make (N) in
    let deadline =
      if cfg.RC.timeout > 0. then Unix.gettimeofday () +. cfg.RC.timeout
      else 0.
    in
    F.run_script_safe env ~trace ~deadline ~stop:stop_requested net
      cfg.RC.script
  end

let opt_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
         ~doc:"Input AIGER file(s). Several files form a batch: all of \
               them run through one process sharing one warm \
               exact-synthesis database.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT"
          ~doc:"Single input: output file (stdout when omitted). Batch: \
                output directory, created if missing (default: \
                $(i,FILE).opt.aag next to each input).")
  in
  let run files rep script output trace_file stats sample partition jobs
      sat_jobs cache kernel cost timeout retries faults =
    let representation =
      match rep with
      | `Aig -> RC.Aig
      | `Mig -> RC.Mig
      | `Xag -> RC.Xag
      | `Xmg -> RC.Xmg
    in
    (match Genlog.Cost.Spec.of_string cost with
    | Ok _ -> ()
    | Error msg ->
      Printf.eprintf "opt: bad --cost spec: %s\n" msg;
      exit 2);
    let cfg =
      RC.make ~representation ~script ?trace_path:trace_file ~stats ~sample
        ~partition ~jobs ~sat_jobs ~budget:base_cfg.RC.budget ~kernel ~cost
        ?cache ~timeout ~retries ?faults ()
    in
    RC.publish_kernel cfg;
    (* stamp the objective into trace meta and BENCH headers *)
    Genlog.Runmeta.set_cost cfg.RC.cost;
    (match cfg.RC.faults with
    | None -> ()
    | Some spec -> (
      match Genlog.Fault.configure spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "opt: bad --faults spec: %s\n" msg;
        exit 2));
    Printexc.record_backtrace true;
    install_signal_handlers ();
    let rep_name = RC.representation_to_string representation in
    let trace =
      if cfg.RC.trace_path <> None || cfg.RC.stats then
        Genlog.Trace.create ~flow:rep_name ~sample:cfg.RC.sample ()
      else Genlog.Trace.null
    in
    let env = Genlog.Flow.env_of_config cfg in
    (* per-representation processing function: AIG in, optimized AIG out,
       plus whatever degradation markers the engine recorded *)
    let process : Genlog.Trace.t -> Aig.t -> Aig.t * Genlog.Flow.degradation list
        =
      match representation with
      | RC.Aig ->
        fun tr t ->
          let r, degs = optimize_network (module Aig) env ~cfg ~trace:tr t in
          Printf.eprintf "aig: gates = %d depth = %d\n%!" (Aig.num_gates r)
            (D.depth r);
          (r, degs)
      | RC.Mig ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Mig) in
        let module Cb = Genlog.Convert.Make (Genlog.Mig) (Aig) in
        let module Dm = Genlog.Depth.Make (Genlog.Mig) in
        fun tr t ->
          let r, degs =
            optimize_network (module Genlog.Mig) env ~cfg ~trace:tr (C.convert t)
          in
          Printf.eprintf "mig: gates = %d depth = %d (written back as AIG)\n%!"
            (Genlog.Mig.num_gates r) (Dm.depth r);
          (Cb.convert r, degs)
      | RC.Xag ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Xag) in
        let module Cb = Genlog.Convert.Make (Genlog.Xag) (Aig) in
        let module Dx = Genlog.Depth.Make (Genlog.Xag) in
        fun tr t ->
          let r, degs =
            optimize_network (module Genlog.Xag) env ~cfg ~trace:tr (C.convert t)
          in
          Printf.eprintf "xag: gates = %d depth = %d (written back as AIG)\n%!"
            (Genlog.Xag.num_gates r) (Dx.depth r);
          (Cb.convert r, degs)
      | RC.Xmg ->
        let module C = Genlog.Convert.Make (Aig) (Genlog.Xmg) in
        let module Cb = Genlog.Convert.Make (Genlog.Xmg) (Aig) in
        let module Dx = Genlog.Depth.Make (Genlog.Xmg) in
        fun tr t ->
          let r, degs =
            optimize_network (module Genlog.Xmg) env ~cfg ~trace:tr (C.convert t)
          in
          Printf.eprintf "xmg: gates = %d depth = %d (written back as AIG)\n%!"
            (Genlog.Xmg.num_gates r) (Dx.depth r);
          (Cb.convert r, degs)
    in
    let optimize_one (file, tr) =
      let t = read_aig file in
      Printf.eprintf "%s: %s\n%!" file (stats_of_aig t);
      let r, degs = process tr t in
      List.iter
        (fun d ->
          Printf.eprintf "%s: DEGRADED %s (%s): %s\n%!" file
            d.Genlog.Flow.d_pass d.Genlog.Flow.d_reason d.Genlog.Flow.d_detail)
        degs;
      (r, degs)
    in
    let many = List.length files > 1 in
    (* child trace sinks are created up front on this domain; each batch
       worker writes only its own, preserving the single-writer rule *)
    let items =
      List.map
        (fun f ->
          ( f,
            if many then Genlog.Trace.child trace ~flow:(Filename.basename f)
            else trace ))
        files
    in
    let n_files = List.length files in
    let results :
        (Aig.t * Genlog.Flow.degradation list, Genlog.Flow.Parmap.job_error)
        result
        array
        ref =
      ref [||]
    in
    (* Everything that must survive a job failure or an interrupt lives in
       the [finally]: the store flush (so paid-for exact synthesis results
       persist), the trace write-out, and the stats.  The body only
       computes results and writes outputs. *)
    let epilogue () =
      if many then Genlog.Trace.merge trace (List.map snd items);
      (* one store flush for the whole batch *)
      Genlog.Database.flush env.Genlog.Flow.db;
      (match cfg.RC.cache with
      | Some path ->
        let db = env.Genlog.Flow.db in
        let si = Genlog.Database.store_info db in
        Printf.eprintf
          "cache %s: %d classes (%d loaded, %d skipped, %d appended), %d \
           hits, %d misses\n\
           %!"
          path (Genlog.Database.size db) si.Genlog.Database.loaded
          si.Genlog.Database.skipped si.Genlog.Database.flushed
          (Genlog.Database.hits db)
          (Genlog.Database.misses db);
        Genlog.Runmeta.set_cache (Genlog.Database.obs_gauges db)
      | None -> ());
      Genlog.Flow.emit_db_metrics env trace;
      (if Genlog.Fault.active () then
         let counters =
           List.concat_map
             (fun (point, draws, fires) ->
               [ (point ^ ".draws", draws); (point ^ ".fired", fires) ])
             (Genlog.Fault.counts ())
         in
         if counters <> [] then
           Genlog.Trace.report trace ~algo:"faults" counters);
      (match cfg.RC.trace_path with
      | Some path -> Genlog.Trace.write_file trace path
      | None -> ());
      if cfg.RC.stats then Format.eprintf "%a%!" Genlog.Trace.pp_summary trace
    in
    Fun.protect ~finally:epilogue (fun () ->
        (* outer batch parallelism only when partition keeps the inner
           pool idle; a single file still goes through the pool so the
           isolation / retry / cancellation semantics are uniform *)
        let outer_jobs =
          if many && cfg.RC.partition = 0 && cfg.RC.jobs > 1 then cfg.RC.jobs
          else 1
        in
        let res, _ =
          Genlog.Flow.Parmap.map_results ~jobs:outer_jobs
            ~retries:cfg.RC.retries ~stop:stop_requested
            ~init:(fun _ -> ())
            ~f:(fun () item -> optimize_one item)
            (Array.of_list items)
        in
        results := res;
        (* write what succeeded; failed inputs are reported below *)
        match (files, output) with
        | [ _ ], None -> (
          match res.(0) with
          | Ok (r, _) -> Genlog.Aiger.write r stdout
          | Error _ -> ())
        | [ _ ], Some path -> (
          match res.(0) with
          | Ok (r, _) -> Genlog.Aiger.write_file r path
          | Error _ -> ())
        | _ ->
          let dest file =
            match output with
            | None -> file ^ ".opt.aag"
            | Some dir ->
              if Sys.file_exists dir then begin
                if not (Sys.is_directory dir) then begin
                  Printf.eprintf "opt: %s exists and is not a directory\n" dir;
                  exit 2
                end
              end
              else Unix.mkdir dir 0o755;
              Filename.concat dir (Filename.basename file)
          in
          List.iteri
            (fun i file ->
              match res.(i) with
              | Ok (r, _) ->
                let path = dest file in
                Genlog.Aiger.write_file r path;
                Printf.eprintf "%s -> %s\n%!" file path
              | Error _ -> ())
            files);
    let res = !results in
    let n_ok = ref 0 and n_failed = ref 0 and n_cancelled = ref 0 in
    let n_degraded = ref 0 in
    Array.iteri
      (fun i result ->
        match result with
        | Ok (_, degs) ->
          incr n_ok;
          if degs <> [] then incr n_degraded
        | Error (e : Genlog.Flow.Parmap.job_error) ->
          let file = List.nth files i in
          if e.err_exn = Genlog.Flow.Parmap.Cancelled then begin
            incr n_cancelled;
            Printf.eprintf "opt: %s: skipped (interrupted)\n%!" file
          end
          else begin
            incr n_failed;
            Printf.eprintf "opt: %s: FAILED after %d attempt(s): %s\n%!" file
              e.err_attempts
              (Printexc.to_string e.err_exn);
            let bt = Printexc.raw_backtrace_to_string e.err_backtrace in
            if String.trim bt <> "" then Printf.eprintf "%s%!" bt
          end)
      res;
    if many then
      Printf.eprintf "opt: %d/%d optimized, %d failed, %d degraded%s\n%!"
        !n_ok n_files !n_failed !n_degraded
        (if !n_cancelled > 0 then
           Printf.sprintf ", %d cancelled" !n_cancelled
         else "");
    (* exit codes: 0 ok, 1 everything failed, 3 partial batch failure,
       4 clean but degraded output, 128+signum on interrupt (after the
       epilogue flushed the store and finalized the trace) *)
    let code =
      if Atomic.get interrupted <> 0 then Atomic.get interrupted
      else if !n_ok = 0 && !n_failed > 0 then 1
      else if !n_failed > 0 then 3
      else if !n_degraded > 0 then 4
      else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:"Optimize with the generic resynthesis flow (batch mode: pass \
             several FILEs to amortize exact synthesis across them)")
    Term.(const run $ files $ representation $ script_arg $ output $ trace_arg
          $ stats_flag $ sample_arg $ partition_arg $ jobs_arg $ sat_jobs_arg
          $ cache_arg $ kernel_arg $ cost_arg $ timeout_arg $ retries_arg
          $ faults_arg)

(* -- map -- *)

let map_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~docv:"K") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run file k cost output =
    let t = read_aig file in
    let spec =
      match Genlog.Cost.Spec.of_string cost with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "map: bad --cost spec: %s\n" msg;
        exit 2
    in
    let module L = Genlog.Lutmap.Make (Aig) in
    let m = L.map t ~cost:spec ~k () in
    Printf.eprintf "%d-LUTs: %d  depth: %d\n%!" k m.L.lut_count m.L.depth;
    match output with
    | Some path -> Genlog.Blif.write_file m.L.klut path
    | None -> Genlog.Blif.write m.L.klut stdout
  in
  Cmd.v (Cmd.info "map" ~doc:"Map into k-input LUTs, writing BLIF")
    Term.(const run $ file $ k $ cost_arg $ output)

(* -- cec -- *)

let cec_cmd =
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A") in
  let file_b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B") in
  let budget =
    Arg.(
      value
      & opt int base_cfg.RC.budget
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:"Single-attempt conflict budget. 0 (the default) climbs the \
                escalating budget ladder and reports UNKNOWN when the \
                instance stays open; -1 solves without any budget.")
  in
  let run file_a file_b budget sat_jobs kernel =
    let cfg = RC.make ~budget ~sat_jobs ~kernel () in
    RC.publish_kernel cfg;
    let a = read_aig file_a and b = read_aig file_b in
    let module C = Genlog.Cec.Make (Aig) (Aig) in
    let config = RC.solver_config cfg in
    let result, report =
      if cfg.RC.budget < 0 then
        C.check_full ~ladder:[] ~config ~jobs:cfg.RC.sat_jobs a b
      else
        C.check_full ~conflict_budget:cfg.RC.budget ~config
          ~jobs:cfg.RC.sat_jobs a b
    in
    Printf.eprintf "cec: winner = %s, conflicts = %d, rungs = %d\n%!"
      report.C.winner report.C.conflicts report.C.rungs_used;
    match result with
    | Genlog.Cec.Equivalent ->
      print_endline "EQUIVALENT";
      exit 0
    | Genlog.Cec.Counterexample cex ->
      Printf.printf "NOT EQUIVALENT: counterexample =";
      Array.iter (fun v -> print_string (if v then " 1" else " 0")) cex;
      print_newline ();
      exit 1
    | Genlog.Cec.Unknown ->
      print_endline "UNKNOWN";
      exit 2
  in
  Cmd.v (Cmd.info "cec" ~doc:"SAT combinational equivalence check")
    Term.(const run $ file_a $ file_b $ budget $ sat_jobs_arg $ kernel_arg)

(* -- exact -- *)

let exact_cmd =
  let hex = Arg.(required & pos 0 (some string) None & info [] ~docv:"HEX") in
  let rep =
    Arg.(
      value
      & opt (enum [ ("aig", `Aig); ("xag", `Xag); ("mig", `Mig); ("xmg", `Xmg) ]) `Xag
      & info [ "r"; "representation" ] ~docv:"REP")
  in
  let run hex rep sat_jobs kernel =
    let cfg = RC.make ~sat_jobs ~kernel () in
    RC.publish_kernel cfg;
    (* infer the variable count from the hex length: 2^n bits = 4*len *)
    let bits = 4 * String.length hex in
    let n =
      let rec go n = if 1 lsl n >= bits then n else go (n + 1) in
      go 0
    in
    let f = Genlog.Tt.of_hex n hex in
    let config =
      match rep with
      | `Aig -> Genlog.Exact_synth.aig_config
      | `Xag -> Genlog.Exact_synth.xag_config
      | `Mig -> Genlog.Exact_synth.mig_config
      | `Xmg -> Genlog.Exact_synth.xmg_config
    in
    let config = { config with Genlog.Exact_synth.sat_jobs = cfg.RC.sat_jobs } in
    match Genlog.Exact_synth.synthesize config f with
    | Genlog.Exact_synth.Const b -> Printf.printf "constant %d\n" (if b then 1 else 0)
    | Genlog.Exact_synth.Projection (v, c) ->
      Printf.printf "%sx%d (wire)\n" (if c then "!" else "") v
    | Genlog.Exact_synth.Chain c ->
      Format.printf "%a" Genlog.Exact_chain.pp c;
      Printf.printf "optimal size: %d gates\n" (Genlog.Exact_chain.size c)
    | Genlog.Exact_synth.Failed ->
      print_endline "synthesis gave up (budget exhausted)";
      exit 1
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"SAT-exact synthesis of a function given as a hex truth table")
    Term.(const run $ hex $ rep $ sat_jobs_arg $ kernel_arg)

(* -- report -- *)

let report_cmd =
  let trace_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"TRACE.jsonl"
          ~doc:"Pass-level JSONL trace to report on (written by \
                $(b,opt --trace) or $(b,bench)).")
  in
  let bench_in =
    Arg.(
      value
      & opt (some file) None
      & info [ "bench" ] ~docv:"BENCH.json"
          ~doc:"Benchmark result file to report on / gate against.")
  in
  let chrome_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"OUT.json"
          ~doc:"Export the trace as Chrome trace-event JSON (load in \
                chrome://tracing or Perfetto). Requires $(b,--trace).")
  in
  let check_against =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"BASELINE.json"
          ~doc:"QoR gate: compare $(b,--bench) against $(docv) and exit \
                nonzero when nodes/levels/luts/lut_levels or wall time \
                regress beyond thresholds. Requires $(b,--bench).")
  in
  let max_qor_pct =
    Arg.(
      value
      & opt float Genlog.Report.default_thresholds.Genlog.Report.qor_pct
      & info [ "max-qor-pct" ] ~docv:"PCT"
          ~doc:"Maximum allowed QoR (gates/depth/LUTs) regression, percent.")
  in
  let max_time_pct =
    Arg.(
      value
      & opt float Genlog.Report.default_thresholds.Genlog.Report.time_pct
      & info [ "max-time-pct" ] ~docv:"PCT"
          ~doc:"Maximum allowed wall-time regression, percent.")
  in
  let ignore_time =
    Arg.(
      value
      & flag
      & info [ "ignore-time" ]
          ~doc:"Gate only on QoR fields; skip the (noisy) time fields. \
                Recommended on shared CI runners.")
  in
  let history_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"HISTORY.jsonl"
          ~doc:"Cross-run history log (appended by $(b,--append-history)): \
                render per-benchmark trend tables and exit nonzero when the \
                latest run regresses against the rolling median of the last \
                runs.")
  in
  let append_history =
    Arg.(
      value
      & opt (some string) None
      & info [ "append-history" ] ~docv:"HISTORY.jsonl"
          ~doc:"Append the $(b,--bench) payload to $(docv) (created if \
                missing) before any $(b,--history) analysis. Requires \
                $(b,--bench).")
  in
  let history_window =
    Arg.(
      value
      & opt int Genlog.History.default_thresholds.Genlog.History.window
      & info [ "history-window" ] ~docv:"K"
          ~doc:"Rolling window for drift detection: the latest run is \
                compared against the median of the previous $(docv) runs.")
  in
  let html_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"OUT.html"
          ~doc:"Write a self-contained HTML dashboard (no external assets) \
                joining whatever artifacts were passed: per-pass tables and \
                SAT summaries from $(b,--trace), rows from $(b,--bench), \
                sparkline trends from $(b,--history).")
  in
  let run trace_in bench_in chrome_out check_against max_qor_pct max_time_pct
      ignore_time history_in append_history history_window html_out =
    if trace_in = None && bench_in = None && history_in = None then begin
      Printf.eprintf
        "report: nothing to do; pass --trace, --bench and/or --history\n";
      exit 2
    end;
    (match chrome_out with
    | Some _ when trace_in = None ->
      Printf.eprintf "report: --chrome requires --trace\n";
      exit 2
    | _ -> ());
    (match check_against with
    | Some _ when bench_in = None ->
      Printf.eprintf "report: --check requires --bench (the current run)\n";
      exit 2
    | _ -> ());
    (match append_history with
    | Some _ when bench_in = None ->
      Printf.eprintf "report: --append-history requires --bench\n";
      exit 2
    | _ -> ());
    let failed = ref false in
    let trace =
      Option.map
        (fun path ->
          let trace = Genlog.Report.load_trace path in
          Format.printf "%a" Genlog.Report.pp_trace trace;
          (match chrome_out with
          | None -> ()
          | Some out ->
            Genlog.Chrome.write_file trace out;
            Printf.printf "[report] wrote chrome trace %s\n" out);
          trace)
        trace_in
    in
    let current = Option.map Genlog.Json.parse_file bench_in in
    (match current with
    | None -> ()
    | Some current -> (
      Format.printf "%a" Genlog.Report.pp_bench current;
      (match append_history with
      | None -> ()
      | Some hpath ->
        Genlog.History.append ~path:hpath current;
        Printf.printf "[report] appended %s to %s\n"
          (Option.get bench_in) hpath);
      match check_against with
      | None -> ()
      | Some base_path -> (
        let baseline = Genlog.Json.parse_file base_path in
        let thresholds =
          {
            Genlog.Report.qor_pct = max_qor_pct;
            time_pct = max_time_pct;
            time_floor = Genlog.Report.default_thresholds.Genlog.Report.time_floor;
            check_time = not ignore_time;
          }
        in
        match Genlog.Report.check ~baseline ~current thresholds with
        | [] ->
          (* evidence on success too: what was compared, and how it moved *)
          Printf.printf "[report] QoR gate passed: %s vs baseline %s\n"
            (Option.get bench_in) base_path;
          List.iter
            (fun d -> Printf.printf "  %s\n" d)
            (Genlog.Report.deltas ~baseline ~current)
        | problems ->
          Printf.eprintf "[report] QoR gate FAILED (%d regressions):\n"
            (List.length problems);
          List.iter (fun p -> Printf.eprintf "  %s\n" p) problems;
          failed := true)));
    let history_runs =
      match history_in with
      | None -> []
      | Some path ->
        let runs, skipped = Genlog.History.load ~path in
        if skipped > 0 then
          Printf.eprintf "[report] history: skipped %d corrupt line(s)\n"
            skipped;
        let thresholds =
          {
            Genlog.History.default_thresholds with
            Genlog.History.window = history_window;
          }
        in
        Format.printf "%a" (Genlog.History.pp_trends ~thresholds) runs;
        (match Genlog.History.regressions ~thresholds runs with
        | [] -> ()
        | regs ->
          Printf.eprintf "[report] history: %d regression(s) vs rolling median:\n"
            (List.length regs);
          List.iter
            (fun (v : Genlog.History.verdict) ->
              let s = v.Genlog.History.v_series in
              Printf.eprintf "  %s/%s/%s: %s %.6g -> %.6g (%+.1f%%)\n"
                s.Genlog.History.s_bench s.Genlog.History.s_benchmark
                s.Genlog.History.s_stage s.Genlog.History.s_field
                v.Genlog.History.v_reference v.Genlog.History.v_latest
                v.Genlog.History.v_delta_pct)
            regs;
          failed := true);
        runs
    in
    (match html_out with
    | None -> ()
    | Some out ->
      Genlog.Html.write_file ?trace ?bench:current ~history:history_runs
        ~path:out ();
      Printf.printf "[report] wrote dashboard %s\n" out);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Join trace/bench artifacts into tables; gate QoR against a \
             baseline and cross-run history; export Chrome traces and an \
             HTML dashboard")
    Term.(const run $ trace_in $ bench_in $ chrome_out $ check_against
          $ max_qor_pct $ max_time_pct $ ignore_time $ history_in
          $ append_history $ history_window $ html_out)

(* -- fraig -- *)

let fraig_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let run file output =
    let t = read_aig file in
    Printf.eprintf "before: %s\n%!" (stats_of_aig t);
    let module Fr = Genlog.Fraig.Make (Aig) in
    let stats = Fr.run t () in
    let module Cl = Genlog.Convert.Cleanup (Aig) in
    let t = Cl.cleanup t in
    Printf.eprintf "after:  %s (%d proved, %d refuted, %d unknown)\n%!"
      (stats_of_aig t) stats.Fr.proved stats.Fr.refuted stats.Fr.unknown;
    match output with
    | Some path -> Genlog.Aiger.write_file t path
    | None -> Genlog.Aiger.write t stdout
  in
  Cmd.v (Cmd.info "fraig" ~doc:"SAT sweeping (functional reduction)")
    Term.(const run $ file $ output)

let () =
  let info = Cmd.info "genlog_cli" ~doc:"Generic logic synthesis (DAC'19 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            stats_cmd;
            opt_cmd;
            map_cmd;
            cec_cmd;
            exact_cmd;
            fraig_cmd;
            report_cmd;
          ]))
