(* Genlog: generic, scalable logic synthesis — the public umbrella API.

   This library reproduces "Scalable Generic Logic Synthesis: One Approach
   to Rule Them All" (DAC 2019).  The architecture follows the paper's
   four layers:

   {ol
   {- {!Network.Intf.NETWORK} — the network interface API (module types);}
   {- the functors under {!Algo} — algorithms written once against that
      interface (rewriting, resubstitution, refactoring, balancing, LUT
      mapping, cut enumeration, CEC, ...);}
   {- {!Aig}, {!Mig}, {!Xag}, {!Xmg}, {!Klut} — network implementations
      with structural hashing and complemented edges;}
   {- performance tweaks — e.g. {!Algo.Rewrite_aig} (specialized AIG
      rewriting) and the per-representation exact-synthesis encodings in
      {!Exact.Synth}.}}

   Typical use:
   {[
     let aig = Genlog.Suite.build "adder" in
     let env = Genlog.Flow.aig_env () in
     let module F = Genlog.Flow.Make (Genlog.Aig) in
     let optimized = F.compress2rs env aig in
     let module L = Genlog.Lutmap.Make (Genlog.Aig) in
     let mapping = L.map optimized ~k:6 ()
   ]} *)

(* truth tables and Boolean function utilities *)
module Tt = Kitty.Tt
module Npn = Kitty.Npn
module Props = Kitty.Props
module Isop = Kitty.Isop
module Cube = Kitty.Cube
module Factor = Kitty.Factor

(* network representations (paper layer 3) *)
module Signal = Network.Signal
module Kind = Network.Kind
module Intf = Network.Intf
module Aig = Network.Aig
module Mig = Network.Mig
module Xag = Network.Xag
module Xmg = Network.Xmg
module Klut = Network.Klut
module Convert = Network.Convert
module Build = Network.Build

(* generic algorithms (paper layer 2) *)
module Topo = Algo.Topo
module Depth = Algo.Depth
module Simulate = Algo.Simulate
module Cuts = Algo.Cuts
module Reconv = Algo.Reconv
module Window = Algo.Window
module Mffc = Algo.Mffc
module Balance = Algo.Balance
module Rewrite = Algo.Rewrite
module Rewrite_aig = Algo.Rewrite_aig
module Mig_algebraic = Algo.Mig_algebraic
module Fraig = Algo.Fraig
module Odc = Algo.Odc
module Refactor = Algo.Refactor
module Resub = Algo.Resub
module Lutmap = Algo.Lutmap
module Cec = Algo.Cec
module Cost = Algo.Cost

(* SAT and exact synthesis *)
module Sat = Satkit.Solver
module Sat_lit = Satkit.Lit
module Sat_portfolio = Satkit.Portfolio
module Dimacs = Satkit.Dimacs
module Exact_chain = Exact.Chain
module Exact_synth = Exact.Synth
module Exact_store = Exact.Store
module Database = Exact.Database
module Decode = Exact.Decode

(* I/O *)
module Aiger = Lsio.Aiger
module Blif = Lsio.Blif
module Bench_format = Lsio.Bench
module Dot = Lsio.Dot

(* benchmark generators *)
module Blocks = Lsgen.Blocks
module Control = Lsgen.Control
module Suite_gen = Lsgen.Suite

module Suite = Lsgen.Suite.Make (Network.Aig)

(* observability *)
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Chrome = Obs.Chrome
module Report = Obs.Report
module Json = Obs.Json
module Runmeta = Obs.Runmeta
module Bench_json = Obs.Bench_json
module History = Obs.History
module Html = Obs.Html

(* flows *)
module Script = Flow.Script
module Run_config = Flow.Run_config
module Fault = Flow.Fault
module Flow = struct
  include Flow.Engine

  module Run_config = Flow.Run_config
  module Portfolio = Flow.Portfolio
  module Specialized_aig = Flow.Specialized_aig
  module Partition = Flow.Partition
  module Parmap = Flow.Parmap
  module Fault = Flow.Fault
end
