(* Deterministic fault-injection registry.

   Production code declares named injection points ([hit]/[fire] calls
   guarded by [active ()]); tests and the nightly fuzz harness arm them
   with a spec string:

     GENLOG_FAULTS="parmap.job:0.25,store.append:1,sat.solve:1:2"

   Each entry is [point:rate[:max_fires]] where [rate] is a firing
   probability in [0,1] and the optional [max_fires] caps how many times
   the point triggers.  Whether a given draw fires is a pure function of
   (seed, point name, per-point draw index), so a run is reproducible
   from its seed regardless of wall time — and, for a fixed schedule of
   draws per point, regardless of domain interleaving (which *item* a
   firing draw lands on can still vary under work stealing, but the
   multiset of fired draws cannot).

   When no spec is armed the whole module is one relaxed [Atomic.get]
   per call site: safe to leave in hot paths. *)

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Fault.Injected(%s)" p)
    | _ -> None)

type point = {
  name : string;
  rate_ppm : int; (* firing probability in parts-per-million *)
  max_fires : int; (* negative = unlimited *)
  draws : int Atomic.t;
  fires : int Atomic.t;
}

type config = { seed : int; points : point list }

(* [None] = disabled.  The config itself is immutable; only the per-point
   counters mutate, so readers never need the lock. *)
let state : config option Atomic.t = Atomic.make None
let armed = Atomic.make false
let env_consulted = Atomic.make false
let lock = Mutex.create ()
let default_seed = 0x6c6f67 (* "log" *)

(* SplitMix64 finalizer: full-avalanche mixing so consecutive draw
   indexes decorrelate. *)
let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let draw_fires ~seed ~point ~index ~rate_ppm =
  if rate_ppm >= 1_000_000 then true
  else if rate_ppm <= 0 then false
  else
    let h =
      mix64
        (Int64.add
           (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
           (Int64.of_int (Hashtbl.hash (point, index))))
    in
    let v = Int64.rem (Int64.logand h Int64.max_int) 1_000_000L in
    Int64.to_int v < rate_ppm

let parse_entry s =
  match String.split_on_char ':' (String.trim s) with
  | [ name; rate ] | [ name; rate; "" ] -> (
      match float_of_string_opt rate with
      | Some r when r >= 0. && r <= 1. && name <> "" ->
          Ok (name, int_of_float (r *. 1e6), -1)
      | _ -> Error (Printf.sprintf "bad rate in fault entry %S" s))
  | [ name; rate; max ] -> (
      match (float_of_string_opt rate, int_of_string_opt max) with
      | Some r, Some m when r >= 0. && r <= 1. && m >= 0 && name <> "" ->
          Ok (name, int_of_float (r *. 1e6), m)
      | _ -> Error (Printf.sprintf "bad fault entry %S" s))
  | _ -> Error (Printf.sprintf "bad fault entry %S (want point:rate[:max])" s)

let parse_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_entry e with
        | Ok (name, rate_ppm, max_fires) ->
            go
              ({
                 name;
                 rate_ppm;
                 max_fires;
                 draws = Atomic.make 0;
                 fires = Atomic.make 0;
               }
              :: acc)
              rest
        | Error _ as err -> err)
  in
  go [] entries

let install cfg =
  Mutex.lock lock;
  Atomic.set state cfg;
  Atomic.set armed (match cfg with Some c -> c.points <> [] | None -> false);
  Atomic.set env_consulted true;
  Mutex.unlock lock

let configure ?seed spec =
  let seed =
    match seed with
    | Some s -> s
    | None -> (
        match Sys.getenv_opt "GENLOG_FAULT_SEED" with
        | Some s -> ( match int_of_string_opt s with Some i -> i | None -> default_seed)
        | None -> default_seed)
  in
  match parse_spec spec with
  | Ok [] ->
      install None;
      Ok ()
  | Ok points ->
      install (Some { seed; points });
      Ok ()
  | Error _ as err -> err

let disable () = install None

(* First armed-state query consults GENLOG_FAULTS once, so library code
   picks the spec up without any CLI wiring.  An explicit [configure] or
   [disable] beforehand wins over the environment. *)
let ensure_env () =
  if not (Atomic.get env_consulted) then begin
    Mutex.lock lock;
    if not (Atomic.get env_consulted) then begin
      (match Sys.getenv_opt "GENLOG_FAULTS" with
      | Some spec when String.trim spec <> "" -> (
          match parse_spec spec with
          | Ok points when points <> [] ->
              let seed =
                match Sys.getenv_opt "GENLOG_FAULT_SEED" with
                | Some s -> (
                    match int_of_string_opt s with
                    | Some i -> i
                    | None -> default_seed)
                | None -> default_seed
              in
              Atomic.set state (Some { seed; points });
              Atomic.set armed true
          | Ok _ | Error _ ->
              prerr_endline
                ("fault: ignoring malformed GENLOG_FAULTS spec: " ^ spec))
      | _ -> ());
      Atomic.set env_consulted true
    end;
    Mutex.unlock lock
  end

let active () =
  if not (Atomic.get env_consulted) then ensure_env ();
  Atomic.get armed

(* Decide whether this draw of [name] fires.  Deterministic in the draw
   index; [max_fires] is enforced with a fetch-and-add so concurrent
   domains never overshoot the cap. *)
let hit name =
  active ()
  && (match Atomic.get state with
     | None -> false
     | Some cfg -> (
         match List.find_opt (fun p -> p.name = name) cfg.points with
         | None -> false
         | Some p ->
             let index = Atomic.fetch_and_add p.draws 1 in
             if
               draw_fires ~seed:cfg.seed ~point:name ~index
                 ~rate_ppm:p.rate_ppm
             then
               if p.max_fires < 0 then begin
                 Atomic.incr p.fires;
                 true
               end
               else Atomic.fetch_and_add p.fires 1 < p.max_fires
             else false))

let fire name = if hit name then raise (Injected name)

(* (point, draws, fires) for every armed point, in spec order. *)
let counts () =
  match Atomic.get state with
  | None -> []
  | Some cfg ->
      List.map
        (fun p ->
          let fires = Atomic.get p.fires in
          let fires = if p.max_fires >= 0 then min fires p.max_fires else fires in
          (p.name, Atomic.get p.draws, fires))
        cfg.points

let fired () = List.exists (fun (_, _, f) -> f > 0) (counts ())

let seed () =
  match Atomic.get state with Some cfg -> Some cfg.seed | None -> None
