(* On-disk persistence for the exact-synthesis database.

   Format and crash-safety argument are documented in store.mli and
   DESIGN.md.  Invariants the code below maintains:

   - the header (magic + domain fingerprint) is written once, by whichever
     process creates the file (O_CREAT|O_EXCL decides the race);
   - entries are appended as self-delimiting checksummed frames, one
     frame per write(2) on an O_APPEND descriptor;
   - reading validates every frame (checksum, decode, semantic check of
     the decoded network against its key) and skips what fails — a store
     file can make a load slower or smaller, never wrong, and never
     crashes the process. *)

open Kitty

type entry = { num_vars : int; key : string; result : Synth.result }

type load_result = {
  entries : entry list;
  loaded : int;
  skipped : int;
  domain_ok : bool;
}

let magic = "GLXS0001"
let header_size = String.length magic + 4
let max_payload = 1 lsl 24 (* sanity bound when reading length fields *)

(* ---------------------------------------------------------------- CRC-32 *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xffffffffl

let fingerprint (config : Synth.config) =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int config.Synth.arity);
  Buffer.add_char b '|';
  List.iter
    (fun op ->
      Buffer.add_string b (Tt.to_hex op);
      Buffer.add_char b ',')
    config.Synth.allowed_ops;
  Buffer.add_string b (if config.Synth.allow_constant then "|c|" else "|-|");
  Buffer.add_string b (string_of_int config.Synth.max_gates);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int config.Synth.conflict_budget);
  crc32 (Buffer.contents b)

let warn path fmt = Printf.eprintf ("[exact-store] %s: " ^^ fmt ^^ "\n%!") path

(* --------------------------------------------------------------- encoding *)

let encode_result buf = function
  | Synth.Const false -> Buffer.add_uint8 buf 0
  | Synth.Const true -> Buffer.add_uint8 buf 1
  | Synth.Projection (v, compl_) ->
    Buffer.add_uint8 buf 2;
    Buffer.add_uint8 buf v;
    Buffer.add_uint8 buf (if compl_ then 1 else 0)
  | Synth.Failed -> Buffer.add_uint8 buf 3
  | Synth.Chain c ->
    Buffer.add_uint8 buf 4;
    Buffer.add_uint8 buf c.Chain.num_inputs;
    Buffer.add_uint8 buf (if c.Chain.out_complement then 1 else 0);
    Buffer.add_uint16_le buf (Array.length c.Chain.steps);
    Array.iter
      (fun (s : Chain.step) ->
        Buffer.add_uint8 buf (Array.length s.Chain.fanins);
        Array.iter (Buffer.add_uint16_le buf) s.Chain.fanins;
        let hex = Tt.to_hex s.Chain.op in
        Buffer.add_uint16_le buf (String.length hex);
        Buffer.add_string buf hex)
      c.Chain.steps

let encode (e : entry) =
  let b = Buffer.create 64 in
  Buffer.add_uint8 b e.num_vars;
  Buffer.add_int32_le b (Int32.of_int (String.length e.key));
  Buffer.add_string b e.key;
  encode_result b e.result;
  Buffer.contents b

let frame payload =
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* --------------------------------------------------------------- decoding *)

exception Corrupt

let decode_entry payload =
  let len = String.length payload in
  let pos = ref 0 in
  let u8 () =
    if !pos >= len then raise Corrupt;
    let v = Char.code payload.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    if !pos + 2 > len then raise Corrupt;
    let v = String.get_uint16_le payload !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    if !pos + 4 > len then raise Corrupt;
    let v = Int32.to_int (String.get_int32_le payload !pos) in
    pos := !pos + 4;
    if v < 0 || v > max_payload then raise Corrupt;
    v
  in
  let str n =
    if !pos + n > len then raise Corrupt;
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  let num_vars = u8 () in
  let key = str (u32 ()) in
  let result =
    match u8 () with
    | 0 -> Synth.Const false
    | 1 -> Synth.Const true
    | 2 ->
      let v = u8 () in
      let compl_ = u8 () in
      Synth.Projection (v, compl_ = 1)
    | 3 -> Synth.Failed
    | 4 ->
      let num_inputs = u8 () in
      let out_complement = u8 () = 1 in
      let nsteps = u16 () in
      let dummy = { Chain.fanins = [||]; op = Tt.create 0 } in
      let steps = Array.make nsteps dummy in
      for i = 0 to nsteps - 1 do
        let k = u8 () in
        let fanins = Array.make k 0 in
        for j = 0 to k - 1 do
          fanins.(j) <- u16 ()
        done;
        let hex = str (u16 ()) in
        let op =
          match Tt.of_hex k hex with
          | op -> op
          | exception Invalid_argument _ -> raise Corrupt
        in
        steps.(i) <- { Chain.fanins; op }
      done;
      Synth.Chain { Chain.num_inputs; steps; out_complement }
    | _ -> raise Corrupt
  in
  if !pos <> len then raise Corrupt;
  { num_vars; key; result }

(* An entry vouches for itself: the decoded result must actually compute
   the function named by the key.  This turns any surviving corruption (or
   a hand-edited file) into a skipped entry instead of a wrong rewrite. *)
let valid (e : entry) =
  e.num_vars >= 0 && e.num_vars <= Tt.max_vars
  &&
  match Tt.of_hex e.num_vars e.key with
  | exception Invalid_argument _ -> false
  | f -> (
    match e.result with
    | Synth.Const b ->
      Tt.equal f (if b then Tt.const1 e.num_vars else Tt.const0 e.num_vars)
    | Synth.Projection (v, compl_) ->
      v >= 0 && v < e.num_vars
      &&
      let p = Tt.nth_var e.num_vars v in
      Tt.equal f (if compl_ then Tt.( ~: ) p else p)
    | Synth.Failed -> true
    | Synth.Chain c ->
      c.Chain.num_inputs = e.num_vars
      && (let ok = ref true in
          Array.iteri
            (fun i (s : Chain.step) ->
              Array.iter
                (fun j -> if j < 0 || j > e.num_vars + i then ok := false)
                s.Chain.fanins)
            c.Chain.steps;
          !ok)
      && (match Chain.simulate c with
         | g -> Tt.equal f g
         | exception _ -> false))

(* ------------------------------------------------------------------- load *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let empty_load = { entries = []; loaded = 0; skipped = 0; domain_ok = true }

let load ~config path =
  if not (Sys.file_exists path) then empty_load
  else
    let data = read_file path in
    let n = String.length data in
    if n = 0 then empty_load
    else if
      n < header_size || String.sub data 0 (String.length magic) <> magic
    then begin
      warn path "unrecognized header; ignoring store";
      { empty_load with domain_ok = false }
    end
    else
      let fp = String.get_int32_le data (String.length magic) in
      let want = fingerprint config in
      if fp <> want then begin
        warn path
          "synthesis-domain fingerprint mismatch (store %08lx, config %08lx); \
           ignoring store"
          fp want;
        { empty_load with domain_ok = false }
      end
      else begin
        let entries = ref [] in
        let loaded = ref 0 in
        let skipped = ref 0 in
        let pos = ref header_size in
        let stop = ref false in
        while (not !stop) && !pos + 8 <= n do
          let len = Int32.to_int (String.get_int32_le data !pos) in
          let crc = String.get_int32_le data (!pos + 4) in
          if len < 0 || len > max_payload || !pos + 8 + len > n then begin
            (* implausible length or not enough bytes left: a torn tail
               write (or corruption of the length field itself) — nothing
               after this point can be re-framed reliably *)
            incr skipped;
            stop := true
          end
          else begin
            let payload = String.sub data (!pos + 8) len in
            (if crc32 payload <> crc then incr skipped
             else
               match decode_entry payload with
               | exception Corrupt -> incr skipped
               | e ->
                 if valid e then begin
                   entries := e :: !entries;
                   incr loaded
                 end
                 else incr skipped);
            pos := !pos + 8 + len
          end
        done;
        if (not !stop) && !pos < n then incr skipped (* trailing runt *);
        if !skipped > 0 then
          warn path "skipped %d corrupt or truncated entr%s (%d loaded)"
            !skipped
            (if !skipped = 1 then "y" else "ies")
            !loaded;
        {
          entries = List.rev !entries;
          loaded = !loaded;
          skipped = !skipped;
          domain_ok = true;
        }
      end

(* ----------------------------------------------------------------- append *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let header fp =
  let b = Buffer.create header_size in
  Buffer.add_string b magic;
  Buffer.add_int32_le b fp;
  Buffer.contents b

(* Create the file with its header iff it does not exist; O_EXCL makes the
   filesystem arbitrate when several processes race to create it. *)
let ensure_header path fp =
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
  with
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> write_all fd (header fp))
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_header path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      if in_channel_length ic < header_size then Error "short header"
      else
        let h = really_input_string ic header_size in
        if String.sub h 0 (String.length magic) <> magic then
          Error "unrecognized header"
        else Ok (String.get_int32_le h (String.length magic)))

let append ~config path entries =
  if entries = [] then true
  else begin
    let fp = fingerprint config in
    match ensure_header path fp with
    | exception Unix.Unix_error (e, _, _) ->
      warn path "cannot create store: %s" (Unix.error_message e);
      false
    | () -> (
      match read_header path with
      | Error msg ->
        warn path "%s; not appending" msg;
        false
      | Ok fp' when fp' <> fp ->
        warn path "synthesis-domain fingerprint mismatch; not appending";
        false
      | Ok _ -> (
        match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
        | exception Unix.Unix_error (e, _, _) ->
          warn path "cannot append: %s" (Unix.error_message e);
          false
        | fd ->
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              (* [store.append] fault point: simulate a crash mid-write by
                 emitting half of one frame and stopping — exactly the torn
                 tail that [load] is built to skip *)
              let torn = ref false in
              List.iter
                (fun e ->
                  if not !torn then begin
                    let fr = frame (encode e) in
                    if Fault_core.active () && Fault_core.hit "store.append"
                    then begin
                      write_all fd (String.sub fr 0 (String.length fr / 2));
                      torn := true
                    end
                    else write_all fd fr
                  end)
                entries);
          true))
  end

(* ---------------------------------------------------------------- compact *)

let compact ~config path entries =
  let tmp = Printf.sprintf "%s.compact.%d.tmp" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     write_all fd (header (fingerprint config));
     List.iter (fun e -> write_all fd (frame (encode e))) entries;
     Unix.fsync fd;
     Unix.close fd
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  (* [store.compact] fault point: simulate a crash after the temp file is
     durable but before the rename commits — the original store must
     survive untouched (which is the whole point of tmp+fsync+rename) *)
  if Fault_core.active () && Fault_core.hit "store.compact" then
    try Sys.remove tmp with Sys_error _ -> ()
  else Unix.rename tmp path
