(* NPN-keyed database of optimal chains.

   Rewriting asks for the optimum implementation of millions of cut
   functions, but only a few hundred NPN classes occur (222 classes for all
   4-variable functions).  Each class is synthesized at most once per
   process; the result — or the fact that synthesis gave up — is cached
   under the canonical truth table.  This realizes option (ii) of paper
   §2.3.2, exact synthesis on the fly, with the cache standing in for
   mockturtle's precomputed database.

   The cache is domain-safe: accesses are mutex-guarded so one database
   can be shared across parallel workers (the portfolio's domains, the
   partition engine's work-stealing pool), which matters because the
   expensive part — SAT-based synthesis of a cold class — would otherwise
   be repeated once per worker.  Synthesis itself runs *outside* the lock:
   two workers missing different classes synthesize concurrently, and the
   rare race where both miss the same class costs one duplicated synthesis
   (the first inserted result wins), never a wrong answer.

   A database can additionally be attached to an on-disk {!Store}: known
   classes are merged in at attach time (existing in-memory entries win,
   preserving first-insert-wins across the process/disk boundary) and
   classes synthesized since the last flush are appended by [flush] — one
   append per batch, not per class, so a batch run pays the write cost
   once at exit. *)

open Kitty

type t = {
  config : Synth.config;
  cache : (string, Synth.result) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable failures : int;
  (* persistence; [store_path = None] means detached (no disk traffic) *)
  mutable store_path : string option;
  mutable pending : Store.entry list; (* newest first; flushed in order *)
  mutable loaded : int; (* entries merged from the store at attach *)
  mutable skipped : int; (* corrupt/truncated entries the load passed over *)
  mutable flushed : int; (* entries appended to the store so far *)
}

(* Cache keys carry the variable count: a bare hex string is ambiguous
   below three variables (0-, 1- and 2-variable tables all print as a
   single nibble). *)
let key_of num_vars hex = string_of_int num_vars ^ ":" ^ hex

let split_key k =
  match String.index_opt k ':' with
  | Some i ->
    ( int_of_string (String.sub k 0 i),
      String.sub k (i + 1) (String.length k - i - 1) )
  | None -> invalid_arg "Database.split_key"

let attach db path =
  let l = Store.load ~config:db.config path in
  Mutex.lock db.lock;
  if l.Store.domain_ok then begin
    db.store_path <- Some path;
    List.iter
      (fun (e : Store.entry) ->
        let k = key_of e.Store.num_vars e.Store.key in
        if not (Hashtbl.mem db.cache k) then
          Hashtbl.replace db.cache k e.Store.result)
      l.Store.entries;
    db.loaded <- db.loaded + l.Store.loaded
  end;
  db.skipped <- db.skipped + l.Store.skipped;
  Mutex.unlock db.lock

let create ?store config =
  let db =
    {
      config;
      cache = Hashtbl.create 512;
      lock = Mutex.create ();
      hits = 0;
      misses = 0;
      failures = 0;
      store_path = None;
      pending = [];
      loaded = 0;
      skipped = 0;
      flushed = 0;
    }
  in
  (match store with Some path -> attach db path | None -> ());
  db

(* Result for the *canonical* representative of [f]'s NPN class, plus the
   transform mapping [f] to that representative. *)
let lookup db f =
  let canonical, tr = Npn.canonize f in
  let num_vars = Tt.num_vars canonical in
  let hex = Tt.to_hex canonical in
  let key = key_of num_vars hex in
  Mutex.lock db.lock;
  match Hashtbl.find_opt db.cache key with
  | Some e ->
    db.hits <- db.hits + 1;
    Mutex.unlock db.lock;
    (e, tr)
  | None ->
    db.misses <- db.misses + 1;
    Mutex.unlock db.lock;
    let e = Synth.synthesize db.config canonical in
    Mutex.lock db.lock;
    let e =
      match Hashtbl.find_opt db.cache key with
      | Some winner -> winner (* another worker raced us; keep its result *)
      | None ->
        if e = Synth.Failed then db.failures <- db.failures + 1;
        Hashtbl.replace db.cache key e;
        if db.store_path <> None then
          db.pending <- { Store.num_vars; key = hex; result = e } :: db.pending;
        e
    in
    Mutex.unlock db.lock;
    (e, tr)

let flush db =
  Mutex.lock db.lock;
  let path = db.store_path in
  let batch = List.rev db.pending in
  db.pending <- [];
  Mutex.unlock db.lock;
  match path with
  | Some p when batch <> [] ->
    if Store.append ~config:db.config p batch then begin
      Mutex.lock db.lock;
      db.flushed <- db.flushed + List.length batch;
      Mutex.unlock db.lock
    end
  | _ -> ()

let compact db =
  match db.store_path with
  | None -> ()
  | Some p ->
    Mutex.lock db.lock;
    let entries =
      Hashtbl.fold
        (fun k result acc ->
          let num_vars, key = split_key k in
          { Store.num_vars; key; result } :: acc)
        db.cache []
    in
    db.pending <- [] (* the cache is a superset of pending *);
    Mutex.unlock db.lock;
    Store.compact ~config:db.config p entries

let with_lock db f =
  Mutex.lock db.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock db.lock) f

let size db = with_lock db (fun () -> Hashtbl.length db.cache)
let hits db = db.hits
let misses db = db.misses
let failures db = db.failures
let stats db = (db.hits, db.misses, db.failures)

type store_info = {
  path : string option;
  loaded : int;
  skipped : int;
  flushed : int;
  pending : int;
}

let store_info db =
  with_lock db (fun () ->
      {
        path = db.store_path;
        loaded = db.loaded;
        skipped = db.skipped;
        flushed = db.flushed;
        pending = List.length db.pending;
      })

(* Counter snapshot in the shape the obs layer wants (metrics gauges, the
   run-metadata cache block). *)
let obs_gauges db =
  let si = store_info db in
  [
    ("classes", size db);
    ("hits", db.hits);
    ("misses", db.misses);
    ("failures", db.failures);
    ("store_loaded", si.loaded);
    ("store_skipped", si.skipped);
    ("store_flushed", si.flushed);
    ("store_pending", si.pending);
  ]

let pp_stats fmt db =
  Format.fprintf fmt "db: %d classes cached, %d hits, %d failures"
    (Hashtbl.length db.cache) db.hits db.failures
