(* NPN-keyed database of optimal chains.

   Rewriting asks for the optimum implementation of millions of cut
   functions, but only a few hundred NPN classes occur (222 classes for all
   4-variable functions).  Each class is synthesized at most once per
   process; the result — or the fact that synthesis gave up — is cached
   under the canonical truth table.  This realizes option (ii) of paper
   §2.3.2, exact synthesis on the fly, with the cache standing in for
   mockturtle's precomputed database.

   The cache is domain-safe: accesses are mutex-guarded so one database
   can be shared across parallel workers (the portfolio's domains, the
   partition engine's work-stealing pool), which matters because the
   expensive part — SAT-based synthesis of a cold class — would otherwise
   be repeated once per worker.  Synthesis itself runs *outside* the lock:
   two workers missing different classes synthesize concurrently, and the
   rare race where both miss the same class costs one duplicated synthesis
   (the first inserted result wins), never a wrong answer. *)

open Kitty

type t = {
  config : Synth.config;
  cache : (string, Synth.result) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable failures : int;
}

let create config =
  {
    config;
    cache = Hashtbl.create 512;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    failures = 0;
  }

(* Result for the *canonical* representative of [f]'s NPN class, plus the
   transform mapping [f] to that representative. *)
let lookup db f =
  let canonical, tr = Npn.canonize f in
  let key = Tt.to_hex canonical in
  Mutex.lock db.lock;
  match Hashtbl.find_opt db.cache key with
  | Some e ->
    db.hits <- db.hits + 1;
    Mutex.unlock db.lock;
    (e, tr)
  | None ->
    db.misses <- db.misses + 1;
    Mutex.unlock db.lock;
    let e = Synth.synthesize db.config canonical in
    Mutex.lock db.lock;
    let e =
      match Hashtbl.find_opt db.cache key with
      | Some winner -> winner (* another worker raced us; keep its result *)
      | None ->
        if e = Synth.Failed then db.failures <- db.failures + 1;
        Hashtbl.replace db.cache key e;
        e
    in
    Mutex.unlock db.lock;
    (e, tr)

let stats db = (db.hits, db.misses, db.failures)

let pp_stats fmt db =
  Format.fprintf fmt "db: %d classes cached, %d hits, %d failures"
    (Hashtbl.length db.cache) db.hits db.failures
