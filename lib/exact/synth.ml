(* SAT-based exact synthesis of Boolean chains (paper §2.2.2, refs [9,10]).

   The encoding is the standard single-selection-variable (SSV) scheme over
   normal Boolean chains: for a candidate gate count [r] we introduce
   - simulation variables  x(i,t): value of gate i on minterm t,
   - selection variables   s(i,c): gate i picks fanin combination c,
   - operator variables    o(i,p): bit p of gate i's (normal) operator,
   and ask a SAT solver whether the last gate can realize the target on all
   minterms.  [r] is incremented until SAT, which yields a size-optimal
   chain for the given operator set.

   Operator sets make the same encoder serve different representations
   (paper layer 4: specialized encodings, transparent to the user):
   AND-family ops for AIGs, +XOR for XAGs, MAJ-family ops with a constant
   fanin candidate for MIGs (+XOR3 for XMGs). *)

open Kitty

(* How the search over gate counts is organized:
   - [Incremental]: one SAT instance per gate count r (all DAG topologies
     at once);
   - [Fences]: one SAT instance per *fence* — a partition of the r gates
     into levels where every gate must use a fanin from the immediately
     preceding level (ref [10]).  Each instance is smaller; there are more
     of them. *)
type strategy = Incremental | Fences

type config = {
  arity : int;
  allowed_ops : Tt.t list;  (* normal operators over [arity] variables *)
  allow_constant : bool;    (* offer constant-0 as a fanin candidate *)
  max_gates : int;
  conflict_budget : int;    (* per SAT call; 0 = unlimited *)
  strategy : strategy;
  sat_jobs : int;           (* > 1 races a diversified solver portfolio *)
}

(* AND with optionally complemented inputs / output covers AND, OR and the
   two difference functions; these are the normal members. *)
let and_family =
  List.filter_map
    (fun hex ->
      let tt = Tt.of_hex 2 hex in
      if Tt.get_bit tt 0 = 0 then Some tt else None)
    [ "8" (* a & b *); "2" (* a & !b *); "4" (* !a & b *); "e" (* a | b *) ]

let xor2 = Tt.of_hex 2 "6"

(* MAJ with at most one complemented input (the normal members of the
   maj-with-complements family). *)
let maj_family =
  let m = Network.Kind.function_of Network.Kind.Maj 3 in
  [ m; Tt.flip m 0; Tt.flip m 1; Tt.flip m 2 ]

let xor3 = Tt.(nth_var 3 0 ^: nth_var 3 1 ^: nth_var 3 2)

let aig_config =
  { arity = 2; allowed_ops = and_family; allow_constant = false;
    max_gates = 10; conflict_budget = 10_000; strategy = Incremental;
    sat_jobs = 1 }

let xag_config =
  { arity = 2; allowed_ops = xor2 :: and_family; allow_constant = false;
    max_gates = 10; conflict_budget = 10_000; strategy = Incremental;
    sat_jobs = 1 }

let mig_config =
  { arity = 3; allowed_ops = maj_family; allow_constant = true;
    max_gates = 7; conflict_budget = 10_000; strategy = Incremental;
    sat_jobs = 1 }

let xmg_config =
  { arity = 3; allowed_ops = xor3 :: maj_family; allow_constant = true;
    max_gates = 7; conflict_budget = 10_000; strategy = Incremental;
    sat_jobs = 1 }

type result =
  | Const of bool
  | Projection of int * bool  (* variable, complemented *)
  | Chain of Chain.t
  | Failed

(* -- telemetry --

   Process-wide atomic counters of the SAT work exact synthesis burns.
   exact sits below the observability layer (and is called concurrently
   from the partition engine's domains), so the counters are lock-free
   atomics here and the flow layer publishes [telemetry ()] into its
   metrics sink; per-pass deltas come from sampling around a pass. *)

let t_calls = Atomic.make 0        (* SAT solver invocations *)
let t_sat = Atomic.make 0
let t_unsat = Atomic.make 0
let t_unknown = Atomic.make 0
let t_races = Atomic.make 0        (* portfolio races among the calls *)
let t_conflicts = Atomic.make 0
let t_propagations = Atomic.make 0
let t_decisions = Atomic.make 0
let t_restarts = Atomic.make 0

let bump c n = ignore (Atomic.fetch_and_add c n)

let note_result = function
  | Satkit.Solver.Sat -> bump t_sat 1
  | Satkit.Solver.Unsat -> bump t_unsat 1
  | Satkit.Solver.Unknown -> bump t_unknown 1

let note_counters counters =
  let g k = match List.assoc_opt k counters with Some v -> v | None -> 0 in
  bump t_conflicts (g "conflicts");
  bump t_propagations (g "propagations");
  bump t_decisions (g "decisions");
  bump t_restarts (g "restarts")

let telemetry () =
  [
    ("calls", Atomic.get t_calls);
    ("sat", Atomic.get t_sat);
    ("unsat", Atomic.get t_unsat);
    ("unknown", Atomic.get t_unknown);
    ("races", Atomic.get t_races);
    ("solver_conflicts", Atomic.get t_conflicts);
    ("solver_propagations", Atomic.get t_propagations);
    ("solver_decisions", Atomic.get t_decisions);
    ("solver_restarts", Atomic.get t_restarts);
  ]

let reset_telemetry () =
  List.iter
    (fun c -> Atomic.set c 0)
    [ t_calls; t_sat; t_unsat; t_unknown; t_races; t_conflicts;
      t_propagations; t_decisions; t_restarts ]

(* choose [k] elements of [candidates] (ascending combinations) *)
let combinations k candidates =
  let rec go k cands =
    if k = 0 then [ [] ]
    else
      match cands with
      | [] -> []
      | c :: rest ->
        List.map (fun combo -> c :: combo) (go (k - 1) rest) @ go k rest
  in
  List.map Array.of_list (go k candidates)

(* try to synthesize with exactly [r] gates; [f] is normal (f(0...0) = 0).
   When [fence] is given (gate index -> level), fanin candidates are
   restricted to strictly earlier levels and every combination must include
   a signal from the immediately preceding level (ref [10]). *)
let synthesize_fixed_size ?fence config f r =
  let n = Tt.num_vars f in
  let num_minterms = (1 lsl n) - 1 in
  let k = config.arity in
  let num_op_bits = (1 lsl k) - 1 in
  (* candidates, as chain signal indices: 0 = const, 1..n inputs, n+1+i gates *)
  let level_of_gate g = match fence with Some lv -> lv.(g) | None -> -1 in
  let candidates_for i =
    let gates =
      match fence with
      | None -> List.init i (fun g -> n + 1 + g)
      | Some lv ->
        List.filteri (fun g _ -> lv.(g) < lv.(i)) (List.init r (fun g -> g))
        |> List.map (fun g -> n + 1 + g)
    in
    (if config.allow_constant then [ 0 ] else [])
    @ List.init n (fun v -> 1 + v)
    @ gates
  in
  let combo_allowed i combo =
    match fence with
    | None -> true
    | Some lv ->
      lv.(i) = 0
      || Array.exists
           (fun j -> j > n && level_of_gate (j - n - 1) = lv.(i) - 1)
           combo
  in
  let combos =
    Array.init r (fun i ->
        Array.of_list
          (List.filter (combo_allowed i)
             (combinations k (candidates_for i))))
  in
  let pos v = Satkit.Lit.of_var v ~negated:false in
  let neg v = Satkit.Lit.of_var v ~negated:true in
  (* Encode the whole instance into [s]; returns the variable layout needed
     to decode a model.  Run once per solver, so a portfolio can build the
     same instance in every worker. *)
  let build s =
  let fresh =
    let counter = ref (-1) in
    fun () ->
      incr counter;
      ignore (Satkit.Solver.new_var s);
      !counter
  in
  (* simulation vars: x.(i).(t-1) *)
  let x = Array.init r (fun _ -> Array.init num_minterms (fun _ -> fresh ())) in
  (* operator vars: o.(i).(p-1) *)
  let o = Array.init r (fun _ -> Array.init num_op_bits (fun _ -> fresh ())) in
  let sel = Array.init r (fun i -> Array.map (fun _ -> fresh ()) combos.(i)) in
  (* exactly-one selection per gate *)
  for i = 0 to r - 1 do
    Satkit.Solver.add_clause s (Array.to_list (Array.map pos sel.(i)));
    let m = Array.length sel.(i) in
    for a = 0 to m - 1 do
      for b = a + 1 to m - 1 do
        Satkit.Solver.add_clause s [ neg sel.(i).(a); neg sel.(i).(b) ]
      done
    done
  done;
  (* operator restriction: block every bit pattern outside the allowed set *)
  let allowed_patterns =
    List.map
      (fun tt ->
        let p = ref 0 in
        for b = 1 to num_op_bits do
          if Tt.get_bit tt b = 1 then p := !p lor (1 lsl (b - 1))
        done;
        !p)
      config.allowed_ops
  in
  for i = 0 to r - 1 do
    for pat = 0 to (1 lsl num_op_bits) - 1 do
      if not (List.mem pat allowed_patterns) then
        Satkit.Solver.add_clause s
          (List.init num_op_bits (fun b ->
               if (pat lsr b) land 1 = 1 then neg o.(i).(b) else pos o.(i).(b)))
    done
  done;
  (* value of candidate [j] on minterm [t]: either a known constant or a
     simulation variable *)
  let candidate_value j t =
    if j = 0 then `Known false
    else if j <= n then `Known ((t lsr (j - 1)) land 1 = 1)
    else `Var x.(j - n - 1).(t - 1)
  in
  (* semantics clauses *)
  for i = 0 to r - 1 do
    Array.iteri
      (fun ci combo ->
        for t = 1 to num_minterms do
          (* enumerate fanin value assignments *)
          for a = 0 to (1 lsl k) - 1 do
            (* antecedent literals; [skip] when a fixed fanin contradicts *)
            let skip = ref false in
            let base = ref [ neg sel.(i).(ci) ] in
            for m = 0 to k - 1 do
              let want = (a lsr m) land 1 = 1 in
              match candidate_value combo.(m) t with
              | `Known v -> if v <> want then skip := true
              | `Var xv -> base := (if want then neg xv else pos xv) :: !base
            done;
            if not !skip then begin
              if a = 0 then
                (* normality: all-zero inputs give zero output *)
                Satkit.Solver.add_clause s (neg x.(i).(t - 1) :: !base)
              else begin
                Satkit.Solver.add_clause s
                  (neg x.(i).(t - 1) :: pos o.(i).(a - 1) :: !base);
                Satkit.Solver.add_clause s
                  (pos x.(i).(t - 1) :: neg o.(i).(a - 1) :: !base)
              end
            end
          done
        done)
      combos.(i)
  done;
  (* every gate but the last must feed some later gate *)
  for i = 0 to r - 2 do
    let users = ref [] in
    for i' = i + 1 to r - 1 do
      Array.iteri
        (fun ci combo ->
          if Array.exists (fun j -> j = n + 1 + i) combo then
            users := pos sel.(i').(ci) :: !users)
        combos.(i')
    done;
    Satkit.Solver.add_clause s !users
  done;
  (* the last gate realizes the target *)
  for t = 1 to num_minterms do
    let l = if Tt.get_bit f t = 1 then pos x.(r - 1).(t - 1) else neg x.(r - 1).(t - 1) in
    Satkit.Solver.add_clause s [ l ]
  done;
  (o, sel)
  in
  let decode s (o, sel) =
    Array.init r (fun i ->
        let ci =
          let rec find j =
            if j >= Array.length sel.(i) then assert false
            else if Satkit.Solver.model_value s sel.(i).(j) then j
            else find (j + 1)
          in
          find 0
        in
        let op = Tt.create k in
        for b = 1 to num_op_bits do
          if Satkit.Solver.model_value s o.(i).(b - 1) then Tt.set_bit op b
        done;
        { Chain.fanins = Array.copy combos.(i).(ci); op })
  in
  if config.sat_jobs <= 1 then begin
    let s = Satkit.Solver.create ~config:(Satkit.Solver.env_config ()) () in
    let layout = build s in
    let r = Satkit.Solver.solve ~conflict_budget:config.conflict_budget s in
    bump t_calls 1;
    note_result r;
    note_counters (Satkit.Solver.stats s);
    match r with
    | Satkit.Solver.Unsat -> `Unsat
    | Satkit.Solver.Unknown -> `Unknown
    | Satkit.Solver.Sat -> `Sat (decode s layout)
  end
  else begin
    (* diversified portfolio race over the same encoding *)
    let out =
      Satkit.Portfolio.solve ~jobs:config.sat_jobs
        ~conflict_budget:config.conflict_budget ~build ()
    in
    bump t_calls 1;
    bump t_races 1;
    note_result out.Satkit.Portfolio.result;
    (* attribute every worker's work, losers included *)
    List.iter (fun (_, cs) -> note_counters cs) out.Satkit.Portfolio.stats;
    match out.Satkit.Portfolio.result with
    | Satkit.Solver.Unsat -> `Unsat
    | Satkit.Solver.Unknown -> `Unknown
    | Satkit.Solver.Sat ->
      `Sat (decode out.Satkit.Portfolio.solver out.Satkit.Portfolio.payload)
  end

(* All fences with [r] gates: compositions of r into levels (each level
   non-empty), returned as per-gate level arrays, fewest levels first. *)
let fences r =
  let rec compositions r =
    if r = 0 then [ [] ]
    else
      List.concat_map
        (fun first ->
          List.map (fun rest -> first :: rest) (compositions (r - first)))
        (List.init r (fun i -> i + 1))
  in
  compositions r
  |> List.sort (fun a b -> compare (List.length a) (List.length b))
  |> List.map (fun parts ->
         let lv = Array.make r 0 in
         let g = ref 0 in
         List.iteri
           (fun level count ->
             for _ = 1 to count do
               lv.(!g) <- level;
               incr g
             done)
           parts;
         lv)

(* Size-optimal synthesis of [f]; increments the gate count until SAT. *)
let synthesize config f =
  let n = Tt.num_vars f in
  if Tt.is_const0 f then Const false
  else if Tt.is_const1 f then Const true
  else begin
    (* projections *)
    let proj = ref None in
    for v = 0 to n - 1 do
      if Tt.equal f (Tt.nth_var n v) then proj := Some (v, false)
      else if Tt.equal f (Tt.( ~: ) (Tt.nth_var n v)) then proj := Some (v, true)
    done;
    match !proj with
    | Some (v, c) -> Projection (v, c)
    | None ->
      let out_complement = Tt.get_bit f 0 = 1 in
      let target = if out_complement then Tt.( ~: ) f else f in
      let finish steps =
        let chain = { Chain.num_inputs = n; steps; out_complement } in
        assert (Tt.equal (Chain.simulate chain) f);
        Chain chain
      in
      let rec loop r =
        if r > config.max_gates then Failed
        else
          match config.strategy with
          | Incremental -> (
            match synthesize_fixed_size config target r with
            | `Unsat -> loop (r + 1)
            | `Unknown -> Failed
            | `Sat steps -> finish steps)
          | Fences ->
            (* one smaller SAT instance per fence of r gates *)
            let rec try_fences = function
              | [] -> loop (r + 1)
              | fence :: rest -> (
                match synthesize_fixed_size ~fence config target r with
                | `Unsat -> try_fences rest
                | `Unknown -> Failed
                | `Sat steps -> finish steps)
            in
            try_fences (fences r)
      in
      loop 1
  end
