(* Decoding Boolean chains into any network representation, through the
   generic constructors.  Chain operators are recognized as (possibly
   complemented) AND / XOR / MAJ applications; anything unexpected falls
   back to the factored-form builder, so decoding never fails. *)

open Kitty
open Network

module Make (N : Intf.BUILDER) = struct
  module B = Build.Make (N)

  let xor2_tt = Tt.of_hex 2 "6"

  let decode_op2 t op a b =
    let x0 = Tt.nth_var 2 0 and x1 = Tt.nth_var 2 1 in
    if Tt.equal op xor2_tt then N.create_xor t a b
    else begin
      let found = ref None in
      List.iter
        (fun (pa, pb, po) ->
          if !found = None then begin
            let cand =
              let base =
                Tt.( &: )
                  (if pa then Tt.( ~: ) x0 else x0)
                  (if pb then Tt.( ~: ) x1 else x1)
              in
              if po then Tt.( ~: ) base else base
            in
            if Tt.equal cand op then found := Some (pa, pb, po)
          end)
        [
          (false, false, false); (true, false, false); (false, true, false);
          (true, true, false); (false, false, true); (true, false, true);
          (false, true, true); (true, true, true);
        ];
      match !found with
      | Some (pa, pb, po) ->
        N.complement_if po
          (N.create_and t (N.complement_if pa a) (N.complement_if pb b))
      | None -> B.of_tt t [| a; b |] op
    end

  let decode_op3 t op a b c =
    let maj = Kind.function_of Kind.Maj 3 in
    let xor3 = Tt.(nth_var 3 0 ^: nth_var 3 1 ^: nth_var 3 2) in
    if Tt.equal op maj then N.create_maj t a b c
    else if Tt.equal op (Tt.flip maj 0) then N.create_maj t (N.complement a) b c
    else if Tt.equal op (Tt.flip maj 1) then N.create_maj t a (N.complement b) c
    else if Tt.equal op (Tt.flip maj 2) then N.create_maj t a b (N.complement c)
    else if Tt.equal op xor3 then N.create_xor t (N.create_xor t a b) c
    else B.of_tt t [| a; b; c |] op

  (* Build the chain over [inputs] (inputs.(i) drives chain input i). *)
  let chain t (c : Chain.t) (inputs : N.signal array) : N.signal =
    assert (Array.length inputs >= c.Chain.num_inputs);
    let n = c.Chain.num_inputs in
    let values = Array.make (1 + n + Array.length c.Chain.steps) (N.constant false) in
    for i = 0 to n - 1 do
      values.(1 + i) <- inputs.(i)
    done;
    Array.iteri
      (fun i step ->
        let args = Array.map (fun j -> values.(j)) step.Chain.fanins in
        let s =
          match Array.length args with
          | 2 -> decode_op2 t step.Chain.op args.(0) args.(1)
          | 3 -> decode_op3 t step.Chain.op args.(0) args.(1) args.(2)
          | _ -> B.of_tt t args step.Chain.op
        in
        values.(1 + n + i) <- s)
      c.Chain.steps;
    let out = values.(n + Array.length c.Chain.steps) in
    N.complement_if c.Chain.out_complement out

  (* Build a [Synth.result] over [inputs]. *)
  let result t (r : Synth.result) (inputs : N.signal array) : N.signal option =
    match r with
    | Synth.Const b -> Some (N.constant b)
    | Synth.Projection (v, c) -> Some (N.complement_if c inputs.(v))
    | Synth.Chain ch -> Some (chain t ch inputs)
    | Synth.Failed -> None

  (* Build a database lookup result (canonical entry + NPN transform) over
     concrete inputs. *)
  let of_lookup t ((entry, tr) : Synth.result * Kitty.Npn.transform)
      (inputs : N.signal array) : N.signal option =
    match entry with
    | Synth.Failed -> None
    | Synth.Const _ | Synth.Projection _ | Synth.Chain _ ->
      let assignment, out_c = Npn.db_input_assignment tr in
      let mapped =
        Array.map
          (fun (leaf, c) -> N.complement_if c inputs.(leaf))
          assignment
      in
      Option.map (N.complement_if out_c) (result t entry mapped)

  (* Build [f] over [inputs] through the NPN database [db].  When synthesis
     gave up on the class and [fallback] is set, an ISOP-factored structure
     is built instead (the DAG-aware gain check of the caller decides
     whether it pays off); otherwise [None]. *)
  let of_database ?(fallback = false) t db f (inputs : N.signal array) :
      N.signal option =
    match of_lookup t (Database.lookup db f) inputs with
    | Some s -> Some s
    | None -> if fallback then Some (B.of_tt t inputs f) else None
end
