(** Append-only on-disk persistence for the exact-synthesis database.

    The store is a binary log of NPN-class -> synthesis-result records.
    The file layout is

    {v
      "GLXS0001"            8-byte magic (format version in the name)
      fingerprint           u32 LE, CRC-32 of the synthesis domain
      entry*                frames appended over time
    v}

    where each entry frame is

    {v
      length                u32 LE, payload bytes
      checksum              u32 LE, CRC-32 of the payload
      payload               one encoded entry
    v}

    Crash safety comes from the append-only discipline: every state of the
    file is a valid store plus at most one torn tail frame, which [load]
    skips with a warning.  Frames whose checksum does not match are skipped
    individually (the length field still delimits them).  Concurrent
    appenders open the file in [O_APPEND] mode and write whole frames in
    one [write], so interleaved appends from several processes never
    corrupt each other's records.

    The fingerprint pins the store to a synthesis domain (arity, operator
    set, gate and conflict budgets): results are only valid answers for the
    configuration that produced them, so [load] refuses — without touching
    the file — when the fingerprint disagrees. *)

type entry = {
  num_vars : int;  (** variables of the canonical table *)
  key : string;  (** canonical truth table, kitty hex *)
  result : Synth.result;
}

type load_result = {
  entries : entry list;  (** decoded entries, in file order *)
  loaded : int;  (** [List.length entries] *)
  skipped : int;  (** corrupt or truncated frames that were passed over *)
  domain_ok : bool;  (** header matched [fingerprint config] *)
}

val fingerprint : Synth.config -> int32
(** Identity of the synthesis domain a store caches results for.  Covers
    arity, allowed operators, [allow_constant], [max_gates] and
    [conflict_budget] (a result — especially a [Failed] one — is only
    reusable under the budgets that produced it); deliberately excludes
    [strategy] and [sat_jobs], which affect how a result is found, not
    which result is correct. *)

val load : config:Synth.config -> string -> load_result
(** Read a store file.  A missing or empty file is an empty store.  A file
    with a foreign magic or a mismatched fingerprint is ignored
    ([domain_ok = false], warning on stderr).  Corrupt frames and a torn
    tail are skipped with a warning; [load] never raises on bad content. *)

val append : config:Synth.config -> string -> entry list -> bool
(** Append entries, creating the file (with its header) if needed.
    Returns [false] — with a warning, without writing — when the existing
    file belongs to a different domain.  Each entry is written as one
    [write] on an [O_APPEND] descriptor, so concurrent appenders
    interleave at frame granularity. *)

val compact : config:Synth.config -> string -> entry list -> unit
(** Rewrite the store to exactly [entries]: fresh header and frames are
    written to a temporary file, fsync'd, then atomically renamed over
    [path] — a crash leaves either the old or the new store, never a mix. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string; exposed for tests. *)
