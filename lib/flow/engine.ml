(* The flow engine: interprets optimization scripts against any network
   representation.  An [env] bundles the two representation-specific
   choices — the exact-synthesis database feeding rewriting and the
   resubstitution kernel — which is precisely the paper's layer-4
   specialization surface; everything else is shared. *)

type env = {
  db : Exact.Database.t;
  kernel : Algo.Resub.kernel;
  max_refactor_inputs : int;
  sat_jobs : int;  (* > 1 races a solver portfolio in SAT-heavy passes *)
  cost : Algo.Cost.Spec.t;  (* optimization objective for every pass *)
}

(* Per-representation presets.  [cache] attaches the database to a
   persistent on-disk store (see Exact.Store): known NPN classes are
   loaded up front and new ones appended when the driver calls
   [Exact.Database.flush]. *)
let aig_env ?(sat_jobs = 1) ?(cost = Algo.Cost.Spec.Area) ?cache () =
  {
    db =
      Exact.Database.create ?store:cache { Exact.Synth.aig_config with sat_jobs };
    kernel = Algo.Resub.And_or;
    max_refactor_inputs = 10;
    sat_jobs;
    cost;
  }

let xag_env ?(sat_jobs = 1) ?(cost = Algo.Cost.Spec.Area) ?cache () =
  {
    db =
      Exact.Database.create ?store:cache { Exact.Synth.xag_config with sat_jobs };
    kernel = Algo.Resub.And_or_xor;
    max_refactor_inputs = 10;
    sat_jobs;
    cost;
  }

let mig_env ?(sat_jobs = 1) ?(cost = Algo.Cost.Spec.Area) ?cache () =
  {
    db =
      Exact.Database.create ?store:cache { Exact.Synth.mig_config with sat_jobs };
    kernel = Algo.Resub.Maj3;
    max_refactor_inputs = 10;
    sat_jobs;
    cost;
  }

let xmg_env ?(sat_jobs = 1) ?(cost = Algo.Cost.Spec.Area) ?cache () =
  {
    db =
      Exact.Database.create ?store:cache { Exact.Synth.xmg_config with sat_jobs };
    kernel = Algo.Resub.Maj3;
    max_refactor_inputs = 10;
    sat_jobs;
    cost;
  }

(* The typed run configuration selects the whole env in one step. *)
let env_of_config (cfg : Run_config.t) =
  let mk =
    match cfg.Run_config.representation with
    | Run_config.Aig -> aig_env
    | Run_config.Mig -> mig_env
    | Run_config.Xag -> xag_env
    | Run_config.Xmg -> xmg_env
  in
  let cost =
    match Algo.Cost.Spec.of_string cfg.Run_config.cost with
    | Ok c -> c
    | Error e -> invalid_arg ("run config: " ^ e)
  in
  mk ~sat_jobs:cfg.Run_config.sat_jobs ~cost ?cache:cfg.Run_config.cache ()

(* Snapshot the exact-synthesis database counters into the trace as
   metrics gauges (algo "exact_db"), so report/QoR tooling can see cache
   behaviour per run. *)
let emit_db_metrics (env : env) trace =
  if Obs.Trace.enabled trace then begin
    let m = Obs.Metrics.create ~algo:"exact_db" () in
    List.iter
      (fun (name, v) -> Obs.Metrics.set (Obs.Metrics.gauge m name) v)
      (Exact.Database.obs_gauges env.db);
    Obs.Metrics.emit m trace
  end

(* Exact synthesis sits below the obs layer and is shared across domains,
   so it keeps process-wide atomic counters (Exact.Synth.telemetry); the
   engine samples them around each pass and publishes the delta inside
   the span as "exact_sat" gauges.  The [solver_*] keys feed the per-pass
   SAT totals in Trace.summarize. *)
let emit_exact_sat_delta trace before =
  let after = Exact.Synth.telemetry () in
  let delta =
    List.map
      (fun (k, v) ->
        ( k,
          v - (match List.assoc_opt k before with Some b -> b | None -> 0) ))
      after
  in
  if List.exists (fun (_, v) -> v <> 0) delta then begin
    let m = Obs.Metrics.create ~algo:"exact_sat" () in
    List.iter
      (fun (name, v) -> Obs.Metrics.set (Obs.Metrics.gauge m name) v)
      delta;
    Obs.Metrics.emit m trace
  end

type stats = {
  nodes : int;
  levels : int;
}

(* One graceful-degradation record from a defensive script run: which
   pass gave up and why.  Reasons are a small closed vocabulary so
   consumers (exit codes, dashboards) can switch on them:
   "deadline" (wall-clock budget expired before/inside the pass),
   "exception" (the pass raised; the network was rolled back to the last
   checkpoint), "interrupt" (the caller's [stop] hook asked to wind
   down). *)
type degradation = { d_pass : string; d_reason : string; d_detail : string }

module Make (N : Network.Intf.NETWORK) = struct
  module Copy = Network.Convert.Make (N) (N)
  module Bal = Algo.Balance.Make (N)
  module Rw = Algo.Rewrite.Make (N)
  module Rf = Algo.Refactor.Make (N)
  module Rs = Algo.Resub.Make (N)
  module Dp = Algo.Depth.Make (N)
  module Cl = Network.Convert.Cleanup (N)
  module Fr = Algo.Fraig.Make (N)
  module Co = Algo.Cost.Make (N)

  let network_stats (net : N.t) : stats =
    { nodes = N.num_gates net; levels = Dp.depth net }

  let dispatch (env : env) ~trace (net : N.t) (cmd : Script.command) : unit =
    if Fault.active () then Fault.fire "engine.pass";
    match cmd with
    | Script.Balance -> ignore (Bal.run ~trace ~cost:env.cost net)
    | Script.Rewrite { zero_gain } ->
      ignore
        (Rw.run net ~db:env.db ~trace ~cost:env.cost
           ~allow_zero_gain:zero_gain ())
    | Script.Refactor { zero_gain } ->
      ignore
        (Rf.run net ~trace ~cost:env.cost
           ~max_inputs:env.max_refactor_inputs ~allow_zero_gain:zero_gain ())
    | Script.Resub { cut_size; max_inserted } ->
      ignore
        (Rs.run net ~kernel:env.kernel ~trace ~cost:env.cost
           ~max_leaves:cut_size ~max_inserted ())
    | Script.Fraig ->
      ignore (Fr.run net ~trace ~cost:env.cost ~sat_jobs:env.sat_jobs ())

  (* Interpret one script command as a traced span: a [pass_begin] /
     [pass_end] pair bracketing the command, carrying gate count and depth
     before and after plus the GC work ([Gc.quick_stat] deltas) the pass
     caused.  With tracing disabled ([Trace.null]) neither stats nor
     timestamps nor GC counters are computed. *)
  let run_command (env : env) ?(trace = Obs.Trace.null) ?(index = 0)
      (net : N.t) (cmd : Script.command) : unit =
    if not (Obs.Trace.enabled trace) then dispatch env ~trace net cmd
    else begin
      let pass = Script.to_string cmd in
      let { nodes; levels } = network_stats net in
      let t0 = Unix.gettimeofday () in
      let g0 = Gc.quick_stat () in
      let x0 = Exact.Synth.telemetry () in
      Obs.Trace.pass_begin trace ~pass ~index ~gates:nodes ~depth:levels;
      dispatch env ~trace net cmd;
      emit_exact_sat_delta trace x0;
      let elapsed = Unix.gettimeofday () -. t0 in
      let gc = Obs.Trace.gc_diff g0 (Gc.quick_stat ()) in
      let { nodes; levels } = network_stats net in
      Obs.Trace.pass_end trace ~gc ~pass ~index ~gates:nodes ~depth:levels
        ~elapsed ()
    end

  (* The final sweep, traced as its own "cleanup" span so the last
     [pass_end] reports the stats of the network actually returned. *)
  let cleanup_pass (env : env) ~trace ~index (net : N.t) : N.t =
    if not (Obs.Trace.enabled trace) then Cl.cleanup net
    else begin
      let { nodes; levels } = network_stats net in
      let t0 = Unix.gettimeofday () in
      let g0 = Gc.quick_stat () in
      Obs.Trace.pass_begin trace ~pass:"cleanup" ~index ~gates:nodes
        ~depth:levels;
      let cleaned = Cl.cleanup net in
      let elapsed = Unix.gettimeofday () -. t0 in
      let gc = Obs.Trace.gc_diff g0 (Gc.quick_stat ()) in
      let { nodes; levels } = network_stats cleaned in
      Obs.Trace.pass_end trace ~gc ~pass:"cleanup" ~index ~gates:nodes
        ~depth:levels ~elapsed ();
      emit_db_metrics env trace;
      cleaned
    end

  (* Run a script in place; returns a cleaned-up copy (dangling nodes
     swept).  Raises if a pass raises — callers that need a result no
     matter what use [run_script_safe]. *)
  let run_script (env : env) ?(trace = Obs.Trace.null) (net : N.t)
      (script : string) : N.t =
    let commands = Script.parse script in
    List.iteri (fun i cmd -> run_command env ~trace ~index:i net cmd) commands;
    cleanup_pass env ~trace ~index:(List.length commands) net

  (* Defensive script run: same passes as [run_script], but the engine
     checkpoints the best-cost network after every pass and *always*
     returns a valid network.

     - Before each pass the [deadline] (absolute wall clock, 0 = none)
       and the [stop] hook are checked; tripping either ends the run at
       the last checkpoint with a "deadline"/"interrupt" marker.
     - A pass that raises is rolled back: the in-place network may be
       mid-rewrite, so work resumes from a copy of the checkpoint, and an
       "exception" marker records the pass.  Later passes still run.
     - Cost is the env's objective as a lexicographic
       (objective, gates, depth) triple (for the default area objective
       this degenerates to the historical (gates, depth) order), [<=] so
       zero-gain passes (rwz/rfz) keep their semantics of refreshing the
       checkpoint.

     The degradation list is empty iff the run behaved exactly like
     [run_script].  Each marker is also emitted as a trace event plus an
     "engine" metrics counter, so offline consumers see degraded runs
     without the caller's help. *)
  let run_script_safe (env : env) ?(trace = Obs.Trace.null) ?(deadline = 0.)
      ?stop (net : N.t) (script : string) : N.t * degradation list =
    let commands = Script.parse script in
    let degradations = ref [] in
    let note pass reason detail =
      degradations :=
        { d_pass = pass; d_reason = reason; d_detail = detail }
        :: !degradations;
      Obs.Trace.degraded trace ~pass ~reason ~detail
    in
    let eng = Co.engine env.cost in
    let cost (n : N.t) = Co.network_cost eng n in
    let best = ref (Copy.convert net) in
    let best_cost = ref (cost net) in
    let work = ref net in
    let stopped = ref false in
    List.iteri
      (fun i cmd ->
        if not !stopped then begin
          let pass = Script.to_string cmd in
          if (match stop with Some p -> p () | None -> false) then begin
            note pass "interrupt" "stop requested; returning best-so-far";
            stopped := true
          end
          else if deadline > 0. && Unix.gettimeofday () >= deadline then begin
            note pass "deadline"
              "wall-clock budget exhausted; returning best-so-far";
            stopped := true
          end
          else
            match run_command env ~trace ~index:i !work cmd with
            | () ->
              let c = cost !work in
              if c <= !best_cost then begin
                best := Copy.convert !work;
                best_cost := c
              end
            | exception e ->
              note pass "exception" (Printexc.to_string e);
              (* the in-place network may be mid-rewrite: resume from a
                 fresh copy of the last good checkpoint *)
              work := Copy.convert !best
        end)
      commands;
    let degradations = List.rev !degradations in
    if degradations <> [] && Obs.Trace.enabled trace then begin
      let m = Obs.Metrics.create ~algo:"engine" () in
      Obs.Metrics.add
        (Obs.Metrics.counter m "degraded")
        (List.length degradations);
      Obs.Metrics.emit m trace
    end;
    let result = if degradations = [] then !work else !best in
    (cleanup_pass env ~trace ~index:(List.length commands) result, degradations)

  let compress2rs ?trace env net = run_script env ?trace net Script.compress2rs
end
