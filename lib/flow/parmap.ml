(* Domain-parallel map over a shared work queue.

   Jobs live in one array and idle workers steal the next unclaimed index
   through a single atomic cursor — the simplest work-stealing deque
   degenerate (one global queue, steal = fetch_and_add), which is the right
   trade-off here: partition optimization jobs are coarse (milliseconds to
   seconds each), so queue contention is irrelevant and the atomic cursor
   gives perfect dynamic load balancing without per-worker deques.

   Each worker owns private state built by [init] (index 0 is the calling
   domain).  This matters because flow state is not shareable across
   domains: an [Engine.env] carries a mutable exact-synthesis database and
   a trace child sink is single-writer, so every worker must build its
   own.  The per-worker states are returned in worker order so the caller
   can merge trace children deterministically (join order, like the
   portfolio does).

   Failure model: [map_results] isolates jobs — every item yields either
   [Ok result] or [Error {index; attempts; exn; backtrace}], one bad item
   never cancels the others, and transient failures get [retries] extra
   attempts.  [map] keeps the historic fail-the-batch contract on top of
   it, but re-raises as {!Job_failed} so the caller learns *which* item
   failed (and the original backtrace survives). *)

type job_error = {
  err_index : int;  (* which item failed *)
  err_attempts : int;  (* attempts made (retries + 1), 0 when cancelled *)
  err_exn : exn;  (* the last attempt's exception *)
  err_backtrace : Printexc.raw_backtrace;
}

exception Job_failed of int * exn
exception Cancelled

let () =
  Printexc.register_printer (function
    | Job_failed (i, e) ->
        Some (Printf.sprintf "Parmap.Job_failed(%d, %s)" i (Printexc.to_string e))
    | Cancelled -> Some "Parmap.Cancelled"
    | _ -> None)

(* Per-item isolation: [stop] is polled before each steal — once it
   returns [true] (a SIGINT flag, typically) the remaining unclaimed
   items are marked [Cancelled] instead of run, so the caller can report
   exactly which work was skipped.  The [parmap.job] fault point fires
   inside the per-item protection and is therefore subject to retry like
   any real failure. *)
let map_results (type s a b) ?(jobs = Domain.recommended_domain_count ())
    ?(retries = 0) ?stop ~(init : int -> s) ~(f : s -> a -> b)
    (items : a array) : (b, job_error) result array * s array =
  let n = Array.length items in
  let jobs = max 1 (min jobs (max 1 n)) in
  let results : (b, job_error) result option array = Array.make n None in
  let states : s option array = Array.make jobs None in
  let cursor = Atomic.make 0 in
  let worker k () =
    let state = init k in
    states.(k) <- Some state;
    let rec steal () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        let cancelled = match stop with Some p -> p () | None -> false in
        if cancelled then
          results.(i) <-
            Some
              (Error
                 {
                   err_index = i;
                   err_attempts = 0;
                   err_exn = Cancelled;
                   err_backtrace = Printexc.get_callstack 0;
                 })
        else begin
          let rec attempt a =
            match
              if Fault.active () then Fault.fire "parmap.job";
              f state items.(i)
            with
            | r -> results.(i) <- Some (Ok r)
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              if a <= retries then attempt (a + 1)
              else
                results.(i) <-
                  Some
                    (Error
                       {
                         err_index = i;
                         err_attempts = a;
                         err_exn = e;
                         err_backtrace = bt;
                       })
          in
          attempt 1
        end;
        steal ()
      end
    in
    steal ()
  in
  let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  let get = function Some r -> r | None -> assert false in
  (Array.map get results, Array.map get states)

let map (type s a b) ?jobs ~(init : int -> s) ~(f : s -> a -> b)
    (items : a array) : b array * s array =
  let results, states = map_results ?jobs ~init ~f items in
  let out =
    Array.map
      (function
        | Ok r -> r
        | Error e ->
          (* lowest failing index wins: deterministic, and names the item *)
          Printexc.raise_with_backtrace
            (Job_failed (e.err_index, e.err_exn))
            e.err_backtrace)
      results
  in
  (out, states)
