(* Domain-parallel map over a shared work queue.

   Jobs live in one array and idle workers steal the next unclaimed index
   through a single atomic cursor — the simplest work-stealing deque
   degenerate (one global queue, steal = fetch_and_add), which is the right
   trade-off here: partition optimization jobs are coarse (milliseconds to
   seconds each), so queue contention is irrelevant and the atomic cursor
   gives perfect dynamic load balancing without per-worker deques.

   Each worker owns private state built by [init] (index 0 is the calling
   domain).  This matters because flow state is not shareable across
   domains: an [Engine.env] carries a mutable exact-synthesis database and
   a trace child sink is single-writer, so every worker must build its
   own.  The per-worker states are returned in worker order so the caller
   can merge trace children deterministically (join order, like the
   portfolio does).

   The first exception raised by any job is re-raised on the calling
   domain after all workers have drained; remaining workers stop stealing
   once a failure is recorded. *)

let map (type s a b) ?(jobs = Domain.recommended_domain_count ())
    ~(init : int -> s) ~(f : s -> a -> b) (items : a array) : b array * s array
    =
  let n = Array.length items in
  let jobs = max 1 (min jobs (max 1 n)) in
  let results : b option array = Array.make n None in
  let states : s option array = Array.make jobs None in
  let cursor = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let worker k () =
    let state = init k in
    states.(k) <- Some state;
    let rec steal () =
      if Atomic.get failure = None then begin
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (try results.(i) <- Some (f state items.(i))
           with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          steal ()
        end
      end
    in
    steal ()
  in
  let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let get = function Some r -> r | None -> assert false in
  (Array.map get results, Array.map get states)
