(* The portfolio approach advocated in the paper's §3: run the same generic
   flow with every representation, map each result into 6-LUTs, and keep
   the best.  Also the driver behind Table 2's per-representation
   columns.

   Portfolio members are first-class [JOB] modules, each packaging one
   representation's functor instantiations (engine, mapper, converter) plus
   its default environment.  The default roster is AIG/MIG/XAG/XMG; callers
   can pass any roster, including custom jobs built with [Make_job].

   The per-representation flows are independent — each owns its network
   copy, its exact-synthesis environment, and its trace sink — so by
   default they run on separate OCaml 5 domains and the portfolio costs the
   *maximum* of the per-representation times instead of their sum (see
   DESIGN.md, "Domain-parallel portfolio").  Conversions happen up front on
   the calling domain because [Convert] marks traversal state on the source
   network; sharing [baseline] across domains would race.  Each domain
   writes only its own child sink; the parent merges them in join order, so
   tracing needs no lock. *)

open Network

type entry = {
  representation : string;
  nodes : int;      (* gates after optimization *)
  levels : int;     (* depth after optimization *)
  luts : int;       (* 6-LUTs after mapping *)
  lut_levels : int;
  time : float;     (* optimization + mapping seconds *)
}

type result = {
  entries : entry list;
  best : entry;  (* fewest LUTs *)
}

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One portfolio member.  [stage] converts the baseline on the *calling*
   domain (conversion marks traversal state on the source) and returns a
   thunk that is safe to run on a spawned domain. *)
module type JOB = sig
  val representation : string
  val default_env : unit -> Engine.env

  val stage :
    env:Engine.env ->
    script:string ->
    k:int ->
    trace:Obs.Trace.t ->
    Aig.t ->
    unit ->
    entry
end

module Make_job
    (N : Intf.NETWORK) (R : sig
      val representation : string
      val default_env : unit -> Engine.env
    end) : JOB = struct
  module F = Engine.Make (N)
  module L = Algo.Lutmap.Make (N)
  module Conv = Convert.Make (Aig) (N)

  let representation = R.representation
  let default_env = R.default_env

  let stage ~env ~script ~k ~trace baseline =
    let net = Conv.convert baseline in
    fun () ->
      let opt, t_opt = time_it (fun () -> F.run_script env ~trace net script) in
      let m, t_map = time_it (fun () -> L.map opt ~trace ~k ()) in
      let s = F.network_stats opt in
      {
        representation;
        nodes = s.Engine.nodes;
        levels = s.Engine.levels;
        luts = m.L.lut_count;
        lut_levels = m.L.depth;
        time = t_opt +. t_map;
      }
end

module Job_aig =
  Make_job
    (Aig)
    (struct
      let representation = "aig"
      let default_env () = Engine.aig_env ()
    end)

module Job_mig =
  Make_job
    (Mig)
    (struct
      let representation = "mig"
      let default_env () = Engine.mig_env ()
    end)

module Job_xag =
  Make_job
    (Xag)
    (struct
      let representation = "xag"
      let default_env () = Engine.xag_env ()
    end)

module Job_xmg =
  Make_job
    (Xmg)
    (struct
      let representation = "xmg"
      let default_env () = Engine.xmg_env ()
    end)

let default_jobs : (module JOB) list =
  [ (module Job_aig); (module Job_mig); (module Job_xag); (module Job_xmg) ]

(* Run the given script on every representation in [jobs].  Pass [envs]
   (keyed by representation name) to reuse exact-synthesis databases across
   benchmarks — they are keyed by NPN class, so they warm up once per
   process; each environment is only ever touched by its own
   representation's domain.  [parallel:false] falls back to sequential
   execution, e.g. for deterministic timing of the individual flows.

   [config] supplies the typed run configuration: its script is used
   unless [script] overrides it, and job environments missing from [envs]
   are built through [Engine.env_of_config] so sat-jobs and the
   persistent exact-synthesis cache apply to every roster member (the
   cache path is suffixed per representation — stores are
   per-synthesis-domain). *)
let run ?config ?script ?(k = 6) ?(envs = []) ?(jobs = default_jobs)
    ?(parallel = true) ?(trace = Obs.Trace.null) (baseline : Aig.t) : result =
  let script =
    match (script, config) with
    | Some s, _ -> s
    | None, Some c -> c.Run_config.script
    | None, None -> Script.compress2rs
  in
  let env_for (module J : JOB) =
    match List.assoc_opt J.representation envs with
    | Some e -> e
    | None -> (
      match
        ( config,
          Run_config.representation_of_string J.representation )
      with
      | Some c, Some representation ->
        let cache =
          Option.map
            (fun p -> p ^ "." ^ J.representation)
            c.Run_config.cache
        in
        Engine.env_of_config { c with Run_config.representation; cache }
      | _ -> J.default_env ())
  in
  let staged =
    List.map
      (fun (module J : JOB) ->
        let env = env_for (module J : JOB) in
        let child = Obs.Trace.child trace ~flow:J.representation in
        (child, J.stage ~env ~script ~k ~trace:child baseline))
      jobs
  in
  let entries =
    match staged with
    | [] -> invalid_arg "Portfolio.run: empty job list"
    | (_, first) :: rest ->
      if parallel then begin
        (* first job on the calling domain, the rest on spawned domains *)
        let spawned = List.map (fun (_, job) -> Domain.spawn job) rest in
        let first_entry = first () in
        first_entry :: List.map Domain.join spawned
      end
      else List.map (fun (_, job) -> job ()) staged
  in
  Obs.Trace.merge trace (List.map fst staged);
  (* one roster-level record so the merged trace is self-describing:
     how many jobs ran, whether they were domain-parallel, and how many
     hardware domains the host offers (the chrome export shows one [tid]
     track per job flow) *)
  Obs.Trace.report trace ~algo:"portfolio"
    [
      ("jobs", List.length staged);
      ("parallel", if parallel then 1 else 0);
      ("recommended_domains", Domain.recommended_domain_count ());
    ];
  let best =
    match entries with
    | first :: rest ->
      List.fold_left (fun acc e -> if e.luts < acc.luts then e else acc) first rest
    | [] -> assert false
  in
  { entries; best }
