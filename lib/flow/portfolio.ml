(* The portfolio approach advocated in the paper's §3: run the same generic
   flow with every representation, map each result into 6-LUTs, and keep
   the best.  Also the driver behind Table 2's per-representation
   columns.

   The three per-representation flows are independent — each owns its
   network copy and its exact-synthesis environment — so by default they
   run on separate OCaml 5 domains and the portfolio costs the *maximum*
   of the per-representation times instead of their sum (see DESIGN.md,
   "Domain-parallel portfolio").  Conversions happen up front on the
   calling domain because [Convert] marks traversal state on the source
   network; sharing [baseline] across domains would race. *)

open Network

type entry = {
  representation : string;
  nodes : int;      (* gates after optimization *)
  levels : int;     (* depth after optimization *)
  luts : int;       (* 6-LUTs after mapping *)
  lut_levels : int;
  time : float;     (* optimization + mapping seconds *)
}

type result = {
  entries : entry list;
  best : entry;  (* fewest LUTs *)
}

module Lut_aig = Algo.Lutmap.Make (Aig)
module Lut_mig = Algo.Lutmap.Make (Mig)
module Lut_xag = Algo.Lutmap.Make (Xag)

module Flow_aig = Engine.Make (Aig)
module Flow_mig = Engine.Make (Mig)
module Flow_xag = Engine.Make (Xag)

module To_mig = Convert.Make (Aig) (Mig)
module To_xag = Convert.Make (Aig) (Xag)
module Copy_aig = Convert.Make (Aig) (Aig)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Run the given script on all three representations of [baseline].  Pass
   [envs] to reuse exact-synthesis databases across benchmarks (they are
   keyed by NPN class, so they warm up once per process); each environment
   is only ever touched by its own representation's domain.  [parallel]
   falls back to sequential execution, e.g. for deterministic timing of the
   individual flows. *)
let run ?(script = Script.compress2rs) ?(k = 6) ?envs ?(parallel = true)
    (baseline : Aig.t) : result =
  let env_aig, env_mig, env_xag =
    match envs with
    | Some (a, m, x) -> (a, m, x)
    | None -> (Engine.aig_env (), Engine.mig_env (), Engine.xag_env ())
  in
  let net_aig = Copy_aig.convert baseline in
  let net_mig = To_mig.convert baseline in
  let net_xag = To_xag.convert baseline in
  let aig_job () =
    let opt, t_opt =
      time_it (fun () -> Flow_aig.run_script env_aig net_aig script)
    in
    let m, t_map = time_it (fun () -> Lut_aig.map opt ~k ()) in
    let s = Flow_aig.network_stats opt in
    {
      representation = "aig";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_aig.lut_count;
      lut_levels = m.Lut_aig.depth;
      time = t_opt +. t_map;
    }
  in
  let mig_job () =
    let opt, t_opt =
      time_it (fun () -> Flow_mig.run_script env_mig net_mig script)
    in
    let m, t_map = time_it (fun () -> Lut_mig.map opt ~k ()) in
    let s = Flow_mig.network_stats opt in
    {
      representation = "mig";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_mig.lut_count;
      lut_levels = m.Lut_mig.depth;
      time = t_opt +. t_map;
    }
  in
  let xag_job () =
    let opt, t_opt =
      time_it (fun () -> Flow_xag.run_script env_xag net_xag script)
    in
    let m, t_map = time_it (fun () -> Lut_xag.map opt ~k ()) in
    let s = Flow_xag.network_stats opt in
    {
      representation = "xag";
      nodes = s.Engine.nodes;
      levels = s.Engine.levels;
      luts = m.Lut_xag.lut_count;
      lut_levels = m.Lut_xag.depth;
      time = t_opt +. t_map;
    }
  in
  let entries =
    if parallel then begin
      let d_mig = Domain.spawn mig_job in
      let d_xag = Domain.spawn xag_job in
      let aig_entry = aig_job () in
      [ aig_entry; Domain.join d_mig; Domain.join d_xag ]
    end
    else [ aig_job (); mig_job (); xag_job () ]
  in
  let best =
    match entries with
    | first :: rest ->
      List.fold_left (fun acc e -> if e.luts < acc.luts then e else acc) first rest
    | [] -> assert false
  in
  { entries; best }
