(* One typed record for every run-configuration knob.

   Five PRs of growth sprawled the run surface into per-command optional
   arguments and ad-hoc environment variables; this module is the single
   place they all live.  Resolution order is

     built-in defaults  <  GENLOG_* environment  <  explicit flags

   — the CLI seeds its flag defaults from [of_env ()], so a flag given on
   the command line always wins, and an exported GENLOG_* variable wins
   over the built-ins.  The record round-trips to/from JSON so it can
   serve as the job spec of a future [genlog serve] daemon. *)

type representation = Aig | Mig | Xag | Xmg

type t = {
  representation : representation;
  script : string;  (* optimization script, e.g. Script.compress2rs *)
  trace_path : string option;  (* write a JSONL trace here *)
  stats : bool;  (* print the per-pass summary table *)
  sample : int;  (* node-event sampling rate; 0 = off *)
  partition : int;  (* partition size cap; 0 = whole-network flow *)
  jobs : int;  (* worker domains for partition/batch parallelism *)
  sat_jobs : int;  (* diversified SAT portfolio width; 1 = single solver *)
  budget : int;  (* CEC conflict budget; 0 = ladder default, <0 = complete *)
  kernel : string;  (* SAT kernel: "modern" | "legacy" *)
  cost : string;  (* optimization objective spec, e.g. "area", "depth" *)
  cache : string option;  (* persistent exact-synthesis store path *)
  timeout : float;  (* wall-clock budget per network, seconds; 0 = none *)
  retries : int;  (* extra attempts for a failed batch/partition job *)
  faults : string option;  (* fault-injection spec (see Fault), testing only *)
}

let representation_to_string = function
  | Aig -> "aig"
  | Mig -> "mig"
  | Xag -> "xag"
  | Xmg -> "xmg"

let representation_of_string = function
  | "aig" -> Some Aig
  | "mig" -> Some Mig
  | "xag" -> Some Xag
  | "xmg" -> Some Xmg
  | _ -> None

let default =
  {
    representation = Aig;
    script = Script.compress2rs;
    trace_path = None;
    stats = false;
    sample = 0;
    partition = 0;
    jobs = Domain.recommended_domain_count ();
    sat_jobs = 1;
    budget = 0;
    kernel = "modern";
    cost = "area";
    cache = None;
    timeout = 0.;
    retries = 0;
    faults = None;
  }

let make ?(representation = default.representation) ?(script = default.script)
    ?trace_path ?(stats = false) ?(sample = 0) ?(partition = 0)
    ?(jobs = default.jobs) ?(sat_jobs = 1) ?(budget = 0) ?(kernel = "modern")
    ?(cost = default.cost) ?cache ?(timeout = 0.) ?(retries = 0) ?faults () =
  {
    representation;
    script;
    trace_path;
    stats;
    sample;
    partition;
    jobs;
    sat_jobs;
    budget;
    kernel;
    cost;
    cache;
    timeout;
    retries;
    faults;
  }

(* ------------------------------------------- environment override layer *)

let int_env name current =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> current)
  | None -> current

let str_env name current =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> String.trim s
  | _ -> current

let float_env name current =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> current)
  | None -> current

let opt_env name current =
  match Sys.getenv_opt name with
  | Some s when String.trim s <> "" -> Some (String.trim s)
  | _ -> current

let with_env cfg =
  {
    cfg with
    script = str_env "GENLOG_SCRIPT" cfg.script;
    sample = int_env "GENLOG_SAMPLE" cfg.sample;
    partition = int_env "GENLOG_PARTITION" cfg.partition;
    jobs = int_env "GENLOG_JOBS" cfg.jobs;
    sat_jobs = int_env "GENLOG_SAT_JOBS" cfg.sat_jobs;
    budget = int_env "GENLOG_BUDGET" cfg.budget;
    kernel =
      (match str_env "GENLOG_SAT_KERNEL" cfg.kernel with
      | ("modern" | "legacy") as k -> k
      | _ -> cfg.kernel);
    cost =
      (let c = str_env "GENLOG_COST" cfg.cost in
       match Algo.Cost.Spec.validate_string c with
       | Ok () -> c
       | Error _ -> cfg.cost);
    cache = opt_env "GENLOG_CACHE" cfg.cache;
    timeout = float_env "GENLOG_TIMEOUT" cfg.timeout;
    retries = int_env "GENLOG_RETRIES" cfg.retries;
    faults = opt_env "GENLOG_FAULTS" cfg.faults;
  }

let of_env () = with_env default

(* ------------------------------------------------------------ SAT kernel *)

let solver_config cfg =
  if cfg.kernel = "legacy" then Satkit.Solver.legacy_config
  else Satkit.Solver.default_config

(* Deep layers (exact synthesis, fraig) pick their kernel with
   [Satkit.Solver.env_config] at solver-creation time; publish the
   resolved choice so a [kernel] set through the typed config reaches
   them too. *)
let publish_kernel cfg =
  if cfg.kernel = "legacy" then Unix.putenv "GENLOG_SAT_KERNEL" "legacy"
  else if Sys.getenv_opt "GENLOG_SAT_KERNEL" <> None then
    Unix.putenv "GENLOG_SAT_KERNEL" "modern"

(* ------------------------------------------------------------------ JSON *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ escape s ^ "\""
let json_opt = function None -> "null" | Some s -> json_string s

let to_json cfg =
  Printf.sprintf
    "{\"representation\":%s,\"script\":%s,\"trace\":%s,\"stats\":%b,\"sample\":%d,\"partition\":%d,\"jobs\":%d,\"sat_jobs\":%d,\"budget\":%d,\"kernel\":%s,\"cost\":%s,\"cache\":%s,\"timeout\":%.6g,\"retries\":%d,\"faults\":%s}"
    (json_string (representation_to_string cfg.representation))
    (json_string cfg.script) (json_opt cfg.trace_path) cfg.stats cfg.sample
    cfg.partition cfg.jobs cfg.sat_jobs cfg.budget (json_string cfg.kernel)
    (json_string cfg.cost) (json_opt cfg.cache) cfg.timeout cfg.retries
    (json_opt cfg.faults)

let of_json (j : Obs.Json.t) : (t, string) result =
  match j with
  | Obs.Json.Obj _ -> (
    let int k d = Option.value ~default:d (Obs.Json.int_member k j) in
    let bool k d =
      match Obs.Json.member k j with Some (Obs.Json.Bool b) -> b | _ -> d
    in
    let opt k =
      match Obs.Json.member k j with Some (Obs.Json.Str s) -> Some s | _ -> None
    in
    let rep =
      match Obs.Json.str_member "representation" j with
      | None -> Ok default.representation
      | Some s -> (
        match representation_of_string s with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "unknown representation %S" s))
    in
    let kernel =
      match Obs.Json.str_member "kernel" j with
      | None -> Ok default.kernel
      | Some (("modern" | "legacy") as k) -> Ok k
      | Some k -> Error (Printf.sprintf "unknown kernel %S" k)
    in
    let cost =
      match Obs.Json.str_member "cost" j with
      | None -> Ok default.cost
      | Some c -> (
        match Algo.Cost.Spec.validate_string c with
        | Ok () -> Ok c
        | Error e -> Error (Printf.sprintf "bad cost spec %S: %s" c e))
    in
    match (rep, kernel, cost) with
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
    | Ok representation, Ok kernel, Ok cost ->
      Ok
        {
          representation;
          script =
            Option.value ~default:default.script
              (Obs.Json.str_member "script" j);
          trace_path = opt "trace";
          stats = bool "stats" false;
          sample = int "sample" 0;
          partition = int "partition" 0;
          jobs = int "jobs" default.jobs;
          sat_jobs = int "sat_jobs" 1;
          budget = int "budget" 0;
          kernel;
          cost;
          cache = opt "cache";
          timeout =
            Option.value ~default:default.timeout
              (Obs.Json.num_member "timeout" j);
          retries = int "retries" default.retries;
          faults = opt "faults";
        })
  | _ -> Error "run config must be a JSON object"

let of_json_string s =
  match Obs.Json.parse s with
  | exception Obs.Json.Parse_error m -> Error ("parse error: " ^ m)
  | j -> of_json j
