(* Flow-level name for the fault-injection registry.

   The implementation lives in the zero-dependency [Fault_core] library
   so layers *below* flow (satkit's solver, the exact store) can declare
   injection points too; this alias is the name the rest of the flow
   layer and the CLI use.  See lib/faults/fault_core.ml for the spec
   grammar and determinism guarantees. *)

include Fault_core
