(* The layer-4 specialized AIG flow: identical to the generic engine except
   that rewriting steps run through [Algo.Rewrite_aig], the AIG-tuned
   implementation with packed integer truth tables.  This is the
   reproduction's stand-in for ABC in Table 1: comparing this flow against
   the fully generic functor instantiation measures the overhead of
   genericity within a single code base (see DESIGN.md, substitutions). *)

open Network

module F = Engine.Make (Aig)
module Cl = Convert.Cleanup (Aig)

let run_command (env : Engine.env) ?trace (net : Aig.t) (cmd : Script.command)
    : unit =
  match cmd with
  | Script.Rewrite { zero_gain } ->
    ignore
      (Algo.Rewrite_aig.run net ~db:env.Engine.db ~allow_zero_gain:zero_gain ())
  | Script.Balance | Script.Refactor _ | Script.Resub _ | Script.Fraig ->
    F.run_command env ?trace net cmd

let run_script (env : Engine.env) ?trace (net : Aig.t) (script : string) :
    Aig.t =
  List.iter (run_command env ?trace net) (Script.parse script);
  Cl.cleanup net
