(* Partition-parallel optimization: the intra-network counterpart of the
   portfolio's flow-level parallelism.

   The network is carved into disjoint, output-bounded partitions by
   reconvergence-driven region growing: regions are extended greedily by
   the eligible gate that introduces the fewest fresh leaves, so growth
   follows reconvergent paths (a gate whose fanins are already inside
   costs nothing) exactly like the min-cost leaf expansion of
   [Algo.Reconv].  A gate only becomes eligible once every fanin gate is
   assigned (to this or an earlier region), which makes every partition
   topologically convex by construction: partition indices are a valid
   evaluation order, and each partition's leaves are primary inputs or
   outputs of strictly earlier partitions.  That convexity is what makes
   the final stitch a single forward pass instead of a fixpoint.

   Each partition is exported as a standalone sub-network (fresh PI per
   leaf, PO per boundary gate) and any [Script] pipeline runs on the
   pieces concurrently across OCaml 5 domains ([Parmap]).  A replacement
   is kept only when it improves the cost function (gate count, then
   depth), and every kept replacement is guarded: a random-simulation
   fingerprint first ([Algo.Simulate.Cross]), escalating to a full SAT
   equivalence check ([Algo.Cec]) when the fingerprint disagrees.  The
   guarded pieces are then rebuilt into a fresh parent through the
   destination's structural hasher, which also deduplicates across
   partition boundaries and sweeps dangling logic.

   Instrumentation: one span per phase (carve / opt / stitch) plus one
   span and one counter event per partition on the worker's trace child,
   and a metrics registry with per-partition size/gain/latency
   histograms. *)

module Make (N : Network.Intf.NETWORK) = struct
  module B = Network.Build.Make (N)
  module T = Algo.Topo.Make (N)
  module E = Engine.Make (N)
  module Dp = Algo.Depth.Make (N)
  module Copy = Network.Convert.Make (N) (N)
  module Sim = Algo.Simulate.Cross (N) (N)
  module Cec = Algo.Cec.Make (N) (N)
  module Co = Algo.Cost.Make (N)

  type partition = {
    id : int;
    gates : N.node array;  (* parent gates, topological within the region *)
    leaves : N.node array;  (* distinct external fanins: PIs or earlier gates *)
    outputs : N.node array;  (* region gates referenced outside the region *)
  }

  (* -- carving -- *)

  let carve ?(size_cap = 2000) (net : N.t) : partition list =
    let size_cap = max 1 size_cap in
    let n = N.size net in
    let order = T.order net in
    let reachable = Array.make n false in
    List.iter (fun g -> reachable.(g) <- true) order;
    (* Unassigned-fanin-gate counters, one per fanin edge (fanout lists
       mirror fanin edges, so the decrements below stay consistent). *)
    let remaining = Array.make n 0 in
    List.iter
      (fun g ->
        let r = ref 0 in
        Array.iter
          (fun s -> if N.is_gate net (N.node_of_signal s) then incr r)
          (N.fanin net g);
        remaining.(g) <- !r)
      order;
    let part = Array.make n (-1) in
    let eligible = ref [] in
    List.iter
      (fun g -> if remaining.(g) = 0 then eligible := g :: !eligible)
      order;
    let rec remove_first x = function
      | [] -> []
      | y :: tl -> if y = x then tl else y :: remove_first x tl
    in
    let partitions = ref [] in
    let pid = ref 0 in
    while !eligible <> [] do
      let id = !pid in
      let region_rev = ref [] in
      let region_size = ref 0 in
      let leaves_rev = ref [] in
      let is_leaf = Hashtbl.create 64 in
      (* Fresh leaves gate [g] would add to the open region: fanins that are
         neither constant, inside the region, nor already leaves. *)
      let cost g =
        let c = ref 0 in
        Array.iter
          (fun s ->
            let f = N.node_of_signal s in
            if f <> 0 && part.(f) <> id && not (Hashtbl.mem is_leaf f) then
              incr c)
          (N.fanin net g);
        !c
      in
      let take_best () =
        match !eligible with
        | [] -> None
        | first :: rest ->
          let best = ref first and best_cost = ref (cost first) in
          (try
             List.iter
               (fun g ->
                 if !best_cost = 0 then raise Exit;
                 let c = cost g in
                 if c < !best_cost then begin
                   best := g;
                   best_cost := c
                 end)
               rest
           with Exit -> ());
          eligible := remove_first !best !eligible;
          Some !best
      in
      let growing = ref true in
      while !growing && !region_size < size_cap do
        match take_best () with
        | None -> growing := false
        | Some g ->
          part.(g) <- id;
          incr region_size;
          region_rev := g :: !region_rev;
          Array.iter
            (fun s ->
              let f = N.node_of_signal s in
              if f <> 0 && part.(f) <> id && not (Hashtbl.mem is_leaf f) then begin
                Hashtbl.replace is_leaf f ();
                leaves_rev := f :: !leaves_rev
              end)
            (N.fanin net g);
          List.iter
            (fun h ->
              if reachable.(h) && part.(h) = -1 then begin
                remaining.(h) <- remaining.(h) - 1;
                if remaining.(h) = 0 then eligible := h :: !eligible
              end)
            (N.fanout net g)
      done;
      partitions :=
        {
          id;
          gates = Array.of_list (List.rev !region_rev);
          leaves = Array.of_list (List.rev !leaves_rev);
          outputs = [||];
        }
        :: !partitions;
      incr pid
    done;
    (* Boundary gates: referenced by a primary output or by a gate of a
       different partition.  Dangling gates were never assigned and simply
       do not survive the stitch. *)
    let is_out = Array.make n false in
    N.foreach_po net (fun s ->
        let f = N.node_of_signal s in
        if N.is_gate net f then is_out.(f) <- true);
    List.iter
      (fun g ->
        Array.iter
          (fun s ->
            let f = N.node_of_signal s in
            if N.is_gate net f && part.(f) <> part.(g) then is_out.(f) <- true)
          (N.fanin net g))
      order;
    List.rev_map
      (fun p ->
        {
          p with
          outputs =
            Array.of_list
              (List.filter (fun g -> is_out.(g)) (Array.to_list p.gates));
        })
      !partitions

  (* -- export: one partition as a standalone sub-network -- *)

  (* Read-only on the parent, so exports may run concurrently. *)
  let export (net : N.t) (p : partition) : N.t =
    let cap = Array.length p.gates + Array.length p.leaves + 2 in
    let sub = N.create ~initial_capacity:cap () in
    let map = Hashtbl.create (2 * cap) in
    Array.iter (fun l -> Hashtbl.replace map l (N.create_pi sub)) p.leaves;
    let resolve s =
      let f = N.node_of_signal s in
      let base = if f = 0 then N.constant false else Hashtbl.find map f in
      N.complement_if (N.is_complemented s) base
    in
    Array.iter
      (fun g ->
        let fanins = Array.map resolve (N.fanin net g) in
        Hashtbl.replace map g (B.of_kind sub (N.gate_kind net g) fanins))
      p.gates;
    Array.iter (fun g -> N.create_po sub (Hashtbl.find map g)) p.outputs;
    sub

  (* -- per-partition optimization with the equivalence guard -- *)

  type verdict =
    | Accepted
    | Rejected_cost
    | Rejected_cex
    | Failed  (* the job raised even after retries: original cone kept *)

  type piece_result = {
    part : partition;
    chosen : N.t;  (* what the stitch will instantiate *)
    verdict : verdict;
    gates_before : int;
    gates_after : int;
    sim_mismatch : bool;
    cec_checked : bool;
    degraded : bool;  (* the piece's script run degraded (deadline/rollback) *)
    seconds : float;
  }

  type worker_state = { env : Engine.env; wtrace : Obs.Trace.t }

  let optimize_piece (st : worker_state) ~script ~sim_vars ~sim_rounds
      ~cec_conflict_budget ~deadline (net : N.t) (p : partition) :
      piece_result =
    let trace = st.wtrace in
    let traced = Obs.Trace.enabled trace in
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    let sub = export net p in
    let gates_before = N.num_gates sub in
    let pass = Printf.sprintf "part%d" p.id in
    if traced then
      Obs.Trace.pass_begin trace ~pass ~index:p.id ~gates:gates_before
        ~depth:(Dp.depth sub);
    (* the defensive runner: a pass exception or an expired deadline
       yields the best-so-far sub-network instead of killing the job, and
       the guard below still decides whether that is worth keeping *)
    let optimized, degs =
      E.run_script_safe st.env ~deadline (Copy.convert sub) script
    in
    let degraded = degs <> [] in
    (match degs with
    | [] -> ()
    | { Engine.d_reason; d_detail; _ } :: _ ->
      Obs.Trace.degraded trace ~pass ~reason:d_reason ~detail:d_detail);
    (* stitch gate: the piece is worth keeping only if it strictly
       improves the env's objective as a lexicographic
       (objective, gates, depth) triple — for the default area objective
       this is exactly the historical "fewer gates, or gates-equal with
       less depth" rule *)
    let improved =
      let eng = Co.engine st.env.Engine.cost in
      Co.network_better eng ~before:sub ~after:optimized
    in
    let chosen, verdict, sim_mismatch, cec_checked =
      if not improved then (sub, Rejected_cost, false, false)
      else if
        Sim.probably_equivalent ~num_vars:sim_vars ~rounds:sim_rounds sub
          optimized
      then (optimized, Accepted, false, false)
      else begin
        (* The fingerprint disagreed: let SAT decide.  Only a proof of
           equivalence may override it; Unknown keeps the original. *)
        match
          Cec.check ~trace ~conflict_budget:cec_conflict_budget sub optimized
        with
        | Algo.Cec.Equivalent -> (optimized, Accepted, true, true)
        | Algo.Cec.Counterexample _ | Algo.Cec.Unknown ->
          (sub, Rejected_cex, true, true)
      end
    in
    let seconds = Unix.gettimeofday () -. t0 in
    let gates_after = N.num_gates chosen in
    if traced then begin
      Obs.Trace.report trace ~algo:"partition"
        [
          ("part", p.id);
          ("gates", gates_before);
          ("leaves", Array.length p.leaves);
          ("outputs", Array.length p.outputs);
          ("gain", gates_before - gates_after);
          ("accepted", if verdict = Accepted then 1 else 0);
          ("sim_mismatch", if sim_mismatch then 1 else 0);
          ("cec_checked", if cec_checked then 1 else 0);
          ("degraded", if degraded then 1 else 0);
        ];
      Obs.Trace.pass_end trace
        ~gc:(Obs.Trace.gc_diff g0 (Gc.quick_stat ()))
        ~pass ~index:p.id ~gates:gates_after ~depth:(Dp.depth chosen)
        ~elapsed:seconds ()
    end;
    { part = p; chosen; verdict; gates_before; gates_after; sim_mismatch;
      cec_checked; degraded; seconds }

  (* -- stitch: rebuild the parent from the guarded pieces -- *)

  (* Convexity guarantees a single forward pass suffices: when partition
     [i] is instantiated, every leaf is a parent PI or an output of a
     partition [< i], so its destination signal is already known.  The
     destination's structural hasher deduplicates identical logic across
     partition boundaries, and logic not reachable from the POs is never
     instantiated. *)
  let stitch (net : N.t) (pieces : piece_result array) : N.t =
    if Fault.active () then Fault.fire "partition.stitch";
    let dst = N.create ~initial_capacity:(N.size net) () in
    let map = Array.make (N.size net) (-1) in
    map.(0) <- N.constant false;
    N.foreach_pi net (fun pi -> map.(pi) <- N.create_pi dst);
    Array.iter
      (fun r ->
        let chosen = r.chosen in
        let imap = Array.make (N.size chosen) (-1) in
        imap.(0) <- N.constant false;
        Array.iteri
          (fun i pi ->
            let leaf = r.part.leaves.(i) in
            assert (map.(leaf) >= 0);
            imap.(pi) <- map.(leaf))
          (N.pis chosen);
        List.iter
          (fun g ->
            let fanins =
              Array.map
                (fun s ->
                  N.complement_if (N.is_complemented s)
                    imap.(N.node_of_signal s))
                (N.fanin chosen g)
            in
            imap.(g) <- B.of_kind dst (N.gate_kind chosen g) fanins)
          (T.order chosen);
        Array.iteri
          (fun j s ->
            map.(r.part.outputs.(j)) <-
              N.complement_if (N.is_complemented s) imap.(N.node_of_signal s))
          (N.pos chosen))
      pieces;
    N.foreach_po net (fun s ->
        N.create_po dst
          (N.complement_if (N.is_complemented s) map.(N.node_of_signal s)));
    dst

  (* -- the engine -- *)

  type stats = {
    partitions : int;
    accepted : int;
    rejected_cost : int;
    rejected_cex : int;
    sim_mismatches : int;
    cec_escalations : int;
    failed : int;  (* jobs that raised even after retries (cone kept) *)
    degraded_pieces : int;  (* pieces whose script run degraded *)
    stitch_fallbacks : int;  (* 0 = clean; 1 = all-original; 2 = identity *)
    jobs : int;
    gates_before : int;
    gates_after : int;
    carve_seconds : float;
    optimize_seconds : float;
    stitch_seconds : float;
  }

  (* Run [script] over every partition of [net] in parallel and return the
     stitched result.  [make_env] builds one engine environment per worker
     domain: the exact-synthesis database is mutable, so workers must not
     share one.  The parent network is only read between carve and stitch,
     which is what makes the worker phase safe. *)
  let run ?(size_cap = 2000) ?(jobs = Domain.recommended_domain_count ())
      ?(script = Script.compress2rs) ?(trace = Obs.Trace.null) ?(sim_vars = 8)
      ?(sim_rounds = 4) ?(cec_conflict_budget = 0) ?(deadline = 0.)
      ?(retries = 0) ~make_env (net : N.t) : N.t * stats =
    let traced = Obs.Trace.enabled trace in
    let gates_before = N.num_gates net in
    let d0 = if traced then Dp.depth net else 0 in
    (* carve *)
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    if traced then
      Obs.Trace.pass_begin trace ~pass:"partition-carve" ~index:0
        ~gates:gates_before ~depth:d0;
    let parts = Array.of_list (carve ~size_cap net) in
    let carve_seconds = Unix.gettimeofday () -. t0 in
    if traced then begin
      Obs.Trace.report trace ~algo:"partition"
        [ ("partitions", Array.length parts); ("size_cap", size_cap) ];
      Obs.Trace.pass_end trace
        ~gc:(Obs.Trace.gc_diff g0 (Gc.quick_stat ()))
        ~pass:"partition-carve" ~index:0 ~gates:gates_before ~depth:d0
        ~elapsed:carve_seconds ()
    end;
    (* optimize (the parent is untouched here, so its stats are stable) *)
    let t1 = Unix.gettimeofday () in
    let g1 = Gc.quick_stat () in
    if traced then
      Obs.Trace.pass_begin trace ~pass:"partition-opt" ~index:1
        ~gates:gates_before ~depth:d0;
    let job_results, states =
      Parmap.map_results ~jobs ~retries
        ~init:(fun k ->
          {
            env = make_env ();
            wtrace = Obs.Trace.child trace ~flow:(Printf.sprintf "w%d" k);
          })
        ~f:(fun st p ->
          optimize_piece st ~script ~sim_vars ~sim_rounds ~cec_conflict_budget
            ~deadline net p)
        parts
    in
    let optimize_seconds = Unix.gettimeofday () -. t1 in
    Obs.Trace.merge trace
      (Array.to_list (Array.map (fun st -> st.wtrace) states));
    (* per-job isolation: a piece whose job raised (even after retries)
       keeps its original cone — the stitch then reproduces the parent's
       logic for that region, so a crash costs QoR, never correctness *)
    let results =
      Array.mapi
        (fun i -> function
          | Ok r -> r
          | Error (e : Parmap.job_error) ->
            let p = parts.(i) in
            let sub = export net p in
            let gates = N.num_gates sub in
            Obs.Trace.degraded trace
              ~pass:(Printf.sprintf "part%d" p.id)
              ~reason:"exception"
              ~detail:
                (Printf.sprintf "%s (after %d attempt(s))"
                   (Printexc.to_string e.Parmap.err_exn)
                   e.Parmap.err_attempts);
            {
              part = p;
              chosen = sub;
              verdict = Failed;
              gates_before = gates;
              gates_after = gates;
              sim_mismatch = false;
              cec_checked = false;
              degraded = true;
              seconds = 0.;
            })
        job_results
    in
    let count f = Array.fold_left (fun a r -> if f r then a + 1 else a) 0 results in
    let accepted = count (fun r -> r.verdict = Accepted) in
    let rejected_cost = count (fun r -> r.verdict = Rejected_cost) in
    let rejected_cex = count (fun r -> r.verdict = Rejected_cex) in
    let failed = count (fun r -> r.verdict = Failed) in
    let degraded_pieces = count (fun r -> r.degraded) in
    let sim_mismatches = count (fun r -> r.sim_mismatch) in
    let cec_escalations = count (fun r -> r.cec_checked) in
    if traced then begin
      let m = Obs.Metrics.of_trace trace ~algo:"partition" in
      let h_gates = Obs.Metrics.histogram m "partition_gates" in
      let h_gain = Obs.Metrics.histogram m "partition_gain" in
      let h_seconds = Obs.Metrics.histogram m "partition_seconds_ns" in
      Array.iter
        (fun (r : piece_result) ->
          Obs.Metrics.observe h_gates r.gates_before;
          Obs.Metrics.observe h_gain (r.gates_before - r.gates_after);
          Obs.Metrics.observe_time h_seconds r.seconds)
        results;
      Obs.Metrics.add (Obs.Metrics.counter m "accepted") accepted;
      Obs.Metrics.add (Obs.Metrics.counter m "rejected_cost") rejected_cost;
      Obs.Metrics.add (Obs.Metrics.counter m "rejected_cex") rejected_cex;
      Obs.Metrics.add (Obs.Metrics.counter m "sim_mismatches") sim_mismatches;
      Obs.Metrics.add (Obs.Metrics.counter m "cec_escalations") cec_escalations;
      Obs.Metrics.add (Obs.Metrics.counter m "failed") failed;
      Obs.Metrics.add (Obs.Metrics.counter m "degraded") degraded_pieces;
      Obs.Metrics.set (Obs.Metrics.gauge m "jobs") jobs;
      Obs.Metrics.set (Obs.Metrics.gauge m "size_cap") size_cap;
      Obs.Metrics.emit m trace;
      Obs.Trace.pass_end trace
        ~gc:(Obs.Trace.gc_diff g1 (Gc.quick_stat ()))
        ~pass:"partition-opt" ~index:1 ~gates:gates_before ~depth:d0
        ~elapsed:optimize_seconds ()
    end;
    (* stitch *)
    let t2 = Unix.gettimeofday () in
    let g2 = Gc.quick_stat () in
    if traced then
      Obs.Trace.pass_begin trace ~pass:"partition-stitch" ~index:2
        ~gates:gates_before ~depth:d0;
    (* the stitch itself is guarded: if it raises (an [partition.stitch]
       injection, or a genuine bug), retry with every piece reverted to
       its original cone; if even that fails, fall back to an identity
       copy of the parent.  Either fallback degrades QoR, never
       correctness. *)
    let out, stitch_fallbacks =
      match stitch net results with
      | out -> (out, 0)
      | exception e1 -> (
        Obs.Trace.degraded trace ~pass:"partition-stitch" ~reason:"exception"
          ~detail:(Printexc.to_string e1);
        let originals =
          Array.map (fun r -> { r with chosen = export net r.part }) results
        in
        match stitch net originals with
        | out -> (out, 1)
        | exception e2 ->
          Obs.Trace.degraded trace ~pass:"partition-stitch"
            ~reason:"exception"
            ~detail:
              ("fallback stitch also failed: " ^ Printexc.to_string e2
             ^ "; returning identity copy");
          (Copy.convert net, 2))
    in
    let stitch_seconds = Unix.gettimeofday () -. t2 in
    let gates_after = N.num_gates out in
    if traced then
      Obs.Trace.pass_end trace
        ~gc:(Obs.Trace.gc_diff g2 (Gc.quick_stat ()))
        ~pass:"partition-stitch" ~index:2 ~gates:gates_after
        ~depth:(Dp.depth out) ~elapsed:stitch_seconds ();
    ( out,
      {
        partitions = Array.length parts;
        accepted;
        rejected_cost;
        rejected_cex;
        sim_mismatches;
        cec_escalations;
        failed;
        degraded_pieces;
        stitch_fallbacks;
        jobs;
        gates_before;
        gates_after;
        carve_seconds;
        optimize_seconds;
        stitch_seconds;
      } )

  (* Typed-config entry point: partition size, worker count and script all
     come from one [Run_config.t].  [make_env] stays explicit because the
     caller knows which representation [N] is. *)
  let run_with ?(trace = Obs.Trace.null) ~(config : Run_config.t) ~make_env
      (net : N.t) : N.t * stats =
    let deadline =
      if config.Run_config.timeout > 0. then
        Unix.gettimeofday () +. config.Run_config.timeout
      else 0.
    in
    run
      ~size_cap:(max 1 config.Run_config.partition)
      ~jobs:config.Run_config.jobs ~script:config.Run_config.script ~trace
      ~deadline ~retries:config.Run_config.retries ~make_env net
end
