(* A minimal JSON reader for the observability artifacts this repo writes
   itself (TRACE_*.jsonl, BENCH_*.json, Chrome traces).  No external
   dependency: the container pins the package set, so [report] carries its
   own recursive-descent parser.  Numbers are floats (the artifacts only
   hold scalars), objects preserve key order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail msg = raise (Parse_error msg)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c' at %d" c !pos)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "bad literal at %d" !pos)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* the artifacts only escape control characters, which are
                  single-byte; anything else degrades to '?' *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else Buffer.add_char b '?';
               pos := !pos + 4
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number at %d" start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail (Printf.sprintf "expected ',' or '}' at %d" !pos)
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail (Printf.sprintf "expected ',' or ']' at %d" !pos)
        in
        Arr (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail (Printf.sprintf "trailing input at %d" !pos);
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* -- accessors -- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_num = function
  | Num f -> Some f
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | Arr l -> Some l
  | _ -> None

let num_member key j = Option.bind (member key j) to_num
let str_member key j = Option.bind (member key j) to_string
let int_member key j = Option.map int_of_float (num_member key j)

(* -- compact writer --

   One-line rendering, the inverse of [parse] for the values this repo
   produces: integers print without a fractional part so re-rendered
   artifacts stay byte-stable under parse/render round trips.  Used by
   the history log, which appends whole BENCH payloads as single JSONL
   lines. *)

let escape_string s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec render = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ escape_string s ^ "\""
  | Arr l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> "\"" ^ escape_string k ^ "\":" ^ render v)
           kvs)
    ^ "}"
