(* Cross-run performance history: an append-only JSONL log of every
   BENCH_*.json payload, one (minified) payload per line.

   report --check diffs the current run against one committed baseline;
   that catches cliffs but not drift, and it carries no trajectory.  The
   history log keeps every recorded run — keyed by the schema-v2 runmeta
   the BENCH writer stamps (commit, compiler, domains) — so trends are
   visible and regressions are judged against a *rolling median* of the
   last K runs instead of a single, possibly stale, baseline.  The median
   makes the reference robust to one noisy run; a mean would let a single
   outlier drag the gate. *)

(* One recorded run: a parsed BENCH payload plus its identifying header. *)
type run = {
  bench : string;     (* bench subcommand: "smoke", "table1", "sat", ... *)
  commit : string;
  generated : float;  (* unix time stamped by the writer *)
  rows : Report.bench_row list;
}

let run_of_json (j : Json.t) : run option =
  match Json.str_member "bench" j with
  | None -> None
  | Some bench ->
    Some
      {
        bench;
        commit = Option.value ~default:"unknown" (Json.str_member "git_commit" j);
        generated =
          Option.value ~default:0.0 (Json.num_member "generated_unix" j);
        rows = Report.bench_rows j;
      }

(* Append one BENCH payload to the log as a single minified line.  The
   log is append-only by construction: open in append mode, one write. *)
let append ~path (j : Json.t) =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.render j);
      output_char oc '\n')

let append_file ~path bench_file = append ~path (Json.parse_file bench_file)

(* Load the log in append order.  Corrupt or alien lines are counted and
   skipped, never fatal: a history file survives interrupted writes and
   producer upgrades, losing single entries instead of the whole log. *)
let load ~path : run list * int =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in path in
    let runs = ref [] in
    let skipped = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match run_of_json (Json.parse line) with
           | Some r -> runs := r :: !runs
           | None | (exception Json.Parse_error _) -> incr skipped
       done
     with End_of_file -> close_in ic);
    (List.rev !runs, !skipped)
  end

let median (xs : float list) : float =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let a = Array.of_list sorted in
    if n mod 2 = 1 then a.(n / 2)
    else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* -- series extraction -- *)

(* A metric series in run order, keyed by (bench, benchmark, stage,
   field).  Only the gated fields (QoR + time, see report.ml) are
   tracked: those are the ones with a trend worth watching, and it keeps
   the table and the dashboard bounded. *)
type series = {
  s_bench : string;
  s_benchmark : string;
  s_stage : string;
  s_field : string;
  values : float list;  (* oldest first *)
}

let tracked_field f =
  List.mem f Report.qor_fields || List.mem f Report.time_fields

let series_of_runs (runs : run list) : series list =
  let tbl : (string * string * string * string, float list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (row : Report.bench_row) ->
          List.iter
            (fun (field, v) ->
              if tracked_field field then begin
                let key = (r.bench, row.benchmark, row.stage, field) in
                match Hashtbl.find_opt tbl key with
                | Some l -> l := v :: !l
                | None ->
                  Hashtbl.add tbl key (ref [ v ]);
                  order := key :: !order
              end)
            row.fields)
        r.rows)
    runs;
  List.rev_map
    (fun ((s_bench, s_benchmark, s_stage, s_field) as key) ->
      {
        s_bench;
        s_benchmark;
        s_stage;
        s_field;
        values = List.rev !(Hashtbl.find tbl key);
      })
    !order

(* -- rolling-median drift detection -- *)

type thresholds = {
  window : int;      (* rolling window: reference = median of last K *)
  min_history : int; (* reference points required before judging *)
  qor_pct : float;
  time_pct : float;
  time_floor : float;  (* absolute seconds below which time diffs are noise *)
}

(* The time threshold is tighter than report --check's single-baseline
   50%: a rolling median has already absorbed run-to-run noise, so a
   sustained +15% is signal (and a synthetic +20% must trip the gate). *)
let default_thresholds =
  { window = 5; min_history = 2; qor_pct = 2.0; time_pct = 15.0;
    time_floor = 0.05 }

type verdict = {
  v_series : series;
  v_reference : float;  (* rolling median of the window before the latest *)
  v_latest : float;
  v_delta_pct : float;  (* latest vs reference, + = worse (all metrics
                           gated here are lower-is-better) *)
  v_regressed : bool;
}

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let judge (th : thresholds) (s : series) : verdict option =
  match List.rev s.values with
  | [] -> None
  | latest :: prev_rev ->
    let window = last_n th.window (List.rev prev_rev) in
    if List.length window < th.min_history then None
    else begin
      let reference = median window in
      let delta = latest -. reference in
      let delta_pct = 100.0 *. delta /. Float.max reference 1e-9 in
      let qor = List.mem s.s_field Report.qor_fields in
      let pct = if qor then th.qor_pct else th.time_pct in
      let floor = if qor then 0.0 else th.time_floor in
      let regressed = delta_pct > pct && delta > floor in
      Some
        {
          v_series = s;
          v_reference = reference;
          v_latest = latest;
          v_delta_pct = delta_pct;
          v_regressed = regressed;
        }
    end

let verdicts ?(thresholds = default_thresholds) (runs : run list) :
    verdict list =
  List.filter_map (judge thresholds) (series_of_runs runs)

let regressions ?thresholds runs =
  List.filter (fun v -> v.v_regressed) (verdicts ?thresholds runs)

(* -- trend table -- *)

let spark (values : float list) : string =
  (* seven-step ASCII sparkline, min..max normalized per series *)
  let glyphs = [| "_"; "."; "-"; "~"; "+"; "*"; "#" |] in
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let span = hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if span <= 0.0 then 0
             else
               min
                 (Array.length glyphs - 1)
                 (int_of_float ((v -. lo) /. span *. 6.99))
           in
           glyphs.(i))
         values)

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

(* Per-benchmark trend table over the whole log; one row per tracked
   metric with enough history to judge, flagged rows first in the exit
   code's mind but printed in series order for stable diffs. *)
let pp_trends ?(thresholds = default_thresholds) fmt (runs : run list) =
  if runs = [] then Format.fprintf fmt "history: no recorded runs@."
  else begin
    Format.fprintf fmt
      "history: %d runs (window %d, qor +%.0f%%, time +%.0f%%)@."
      (List.length runs) thresholds.window thresholds.qor_pct
      thresholds.time_pct;
    Format.fprintf fmt "%-8s %-14s %-14s %-12s | %4s %10s %10s %7s  %s@."
      "bench" "benchmark" "stage" "field" "runs" "median" "latest" "delta"
      "trend";
    List.iter
      (fun (s : series) ->
        match judge thresholds s with
        | None ->
          Format.fprintf fmt
            "%-8s %-14s %-14s %-12s | %4d %10s %10s %7s  %s@."
            s.s_bench s.s_benchmark s.s_stage s.s_field
            (List.length s.values) "-"
            (value_str (List.nth s.values (List.length s.values - 1)))
            "-" (spark s.values)
        | Some v ->
          Format.fprintf fmt
            "%-8s %-14s %-14s %-12s | %4d %10s %10s %+6.1f%%  %s%s@."
            s.s_bench s.s_benchmark s.s_stage s.s_field
            (List.length s.values) (value_str v.v_reference)
            (value_str v.v_latest) v.v_delta_pct (spark s.values)
            (if v.v_regressed then "  << REGRESSION" else ""))
      (series_of_runs runs)
  end
