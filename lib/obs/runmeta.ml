(* Run metadata stamped on every trace and benchmark artifact so results
   are comparable across PRs and machines: without the producing commit,
   compiler version, and domain count, two BENCH_*.json files cannot be
   diffed responsibly.  The schema version is bumped whenever the event
   or row layout changes incompatibly, so [report] can refuse to join
   artifacts written by incompatible producers. *)

(* v1: PR 1 BENCH rows / PR 2 trace events.
   v2: gc deltas on pass_end, metrics/node events, meta stamping. *)
let schema_version = 2

let git_commit () =
  match Sys.getenv_opt "GENLOG_GIT_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> (
    try
      let ic =
        Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
      in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown")

(* Lazy: one subprocess per process, not one per artifact. *)
let commit = lazy (git_commit ())

let domains () = Domain.recommended_domain_count ()

(* The shared key/value set, as strings; consumers render them into their
   own container format. *)
let fields () =
  [
    ("schema", string_of_int schema_version);
    ("git_commit", Lazy.force commit);
    ("ocaml", Sys.ocaml_version);
    ("domains", string_of_int (domains ()));
  ]

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Optional per-run cache block: counters of the exact-synthesis store
   (hits, misses, loaded, flushed, ...) stamped by the driver via
   [set_cache].  Rendered into the trace meta line and BENCH headers only
   when set, so schema-v2 consumers that predate the block are
   unaffected. *)
let cache_fields : (string * int) list option ref = ref None
let set_cache kvs = cache_fields := Some kvs

let cache_json () =
  Option.map
    (fun kvs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v)
             kvs)
      ^ "}")
    !cache_fields

(* Optional cost-objective spec ("area", "depth", "weights:FILE", ...)
   stamped by the driver via [set_cost]; rendered into the trace meta line
   and BENCH headers only when set, mirroring the cache block, so the QoR
   gate ([Report.check]) can refuse to compare runs optimized for
   different objectives. *)
let cost_field : string option ref = ref None
let set_cost spec = cost_field := Some spec
let cost () = !cost_field
let cost_json () = Option.map (fun s -> "\"" ^ escape s ^ "\"") !cost_field

(* The fields as the inner part of a JSON object (no braces), numbers
   unquoted: [ "schema":2,"git_commit":"6cdd9ab",... ]. *)
let json_fields () =
  String.concat ","
    (List.map
       (fun (k, v) ->
         let quoted =
           match int_of_string_opt v with
           | Some _ -> v
           | None -> Printf.sprintf "\"%s\"" (escape v)
         in
         Printf.sprintf "\"%s\":%s" k quoted)
       (fields ()))
