(* Offline report over the observability artifacts: join a TRACE_*.jsonl
   with its BENCH_*.json into per-pass / per-benchmark tables, and — the
   QoR regression gate — compare two BENCH files and fail when quality or
   time regress beyond thresholds.  This turns "did this PR regress
   Table 1" from eyeballing JSON diffs into an exit code CI can enforce.

   Everything here parses the files this repo writes (schema stamped by
   runmeta.ml); unknown events and fields are skipped so newer producers
   stay readable by older reports. *)

(* -- trace side: JSONL -> events -> spans -- *)

(* Rebuild trace events from a JSONL file.  Histogram payloads of metrics
   events are summarized away (count/min/max survive via the JSON but are
   not needed for tables); unknown events — including the meta line — are
   skipped. *)
let events_of_json (lines : Json.t list) : Trace.event list =
  List.filter_map
    (fun j ->
      let t = Option.value ~default:0.0 (Json.num_member "t" j) in
      let flow = Option.value ~default:"" (Json.str_member "flow" j) in
      let int k = Option.value ~default:0 (Json.int_member k j) in
      let counters key =
        match Json.member key j with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              Option.map (fun f -> (k, int_of_float f)) (Json.to_num v))
            kvs
        | _ -> []
      in
      match Json.str_member "event" j with
      | Some "pass_begin" ->
        Some
          (Trace.Pass_begin
             {
               t;
               flow;
               pass = Option.value ~default:"" (Json.str_member "pass" j);
               index = int "index";
               gates = int "gates";
               depth = int "depth";
             })
      | Some "pass_end" ->
        let gc =
          match Json.member "gc" j with
          | Some g ->
            let num k = Option.value ~default:0.0 (Json.num_member k g) in
            let cnt k = Option.value ~default:0 (Json.int_member k g) in
            {
              Trace.minor_words = num "minor_words";
              major_words = num "major_words";
              promoted_words = num "promoted_words";
              minor_collections = cnt "minor_collections";
              major_collections = cnt "major_collections";
            }
          | None -> Trace.gc_zero
        in
        Some
          (Trace.Pass_end
             {
               t;
               flow;
               pass = Option.value ~default:"" (Json.str_member "pass" j);
               index = int "index";
               gates = int "gates";
               depth = int "depth";
               elapsed = Option.value ~default:0.0 (Json.num_member "elapsed" j);
               gc;
             })
      | Some "counters" ->
        Some
          (Trace.Counters
             {
               t;
               flow;
               algo = Option.value ~default:"" (Json.str_member "algo" j);
               counters = counters "counters";
             })
      | Some "metrics" ->
        Some
          (Trace.Metrics
             {
               t;
               flow;
               algo = Option.value ~default:"" (Json.str_member "algo" j);
               counters = counters "counters";
               gauges = counters "gauges";
               hists = [];
             })
      | Some "node" ->
        Some
          (Trace.Node_event
             {
               t;
               flow;
               algo = Option.value ~default:"" (Json.str_member "algo" j);
               node = int "node";
               gain = int "gain";
               accepted = Json.member "accepted" j = Some (Json.Bool true);
             })
      | Some "race" ->
        let configs =
          match Option.bind (Json.member "configs" j) Json.to_list with
          | None -> []
          | Some cs ->
            List.filter_map
              (fun c ->
                match Json.str_member "name" c with
                | None -> None
                | Some name ->
                  let counters =
                    match Json.member "counters" c with
                    | Some (Json.Obj kvs) ->
                      List.filter_map
                        (fun (k, v) ->
                          Option.map
                            (fun f -> (k, int_of_float f))
                            (Json.to_num v))
                        kvs
                    | _ -> []
                  in
                  Some
                    ( name,
                      Option.value ~default:"unknown"
                        (Json.str_member "result" c),
                      counters ))
              cs
        in
        Some
          (Trace.Race
             {
               t;
               flow;
               algo = Option.value ~default:"" (Json.str_member "algo" j);
               winner = Option.value ~default:"" (Json.str_member "winner" j);
               configs;
             })
      | Some "degraded" ->
        Some
          (Trace.Degraded
             {
               t;
               flow;
               pass = Option.value ~default:"" (Json.str_member "pass" j);
               reason = Option.value ~default:"" (Json.str_member "reason" j);
               detail = Option.value ~default:"" (Json.str_member "detail" j);
             })
      | _ -> None)
    lines

let load_trace path : Trace.t =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then lines := Json.parse line :: !lines
     done
   with End_of_file -> close_in ic);
  Trace.of_events (events_of_json (List.rev !lines))

(* Compact winner tally for the races column: "modern:2,luby:1", or "-". *)
let races_cell (r : Trace.pass_row) =
  match r.Trace.row_races with
  | [] -> "-"
  | ws ->
    String.concat "," (List.map (fun (w, n) -> Printf.sprintf "%s:%d" w n) ws)

(* The per-pass table with GC and SAT accounting: time %, gate/depth
   deltas, minor/major words allocated during the pass, SAT kernel
   conflicts/propagations attributed to it, and portfolio race winners. *)
let pp_trace fmt (t : Trace.t) =
  let rows = Trace.summarize t in
  if rows = [] then
    Format.fprintf fmt "trace: no spans recorded (empty or meta-only file)@."
  else begin
    let total = List.fold_left (fun a r -> a +. r.Trace.row_elapsed) 0.0 rows in
    let pct e = if total <= 0.0 then 0.0 else 100.0 *. e /. total in
    Format.fprintf fmt
      "%4s  %-20s %-10s | %8s %5s | %5s | %8s %5s | %10s %10s | %9s %11s | %3s  %s@."
      "#" "flow" "pass" "gates" "dG" "dD" "time" "%" "minor_w" "major_w"
      "sat_confl" "sat_props" "deg" "races";
    List.iter
      (fun (r : Trace.pass_row) ->
        Format.fprintf fmt
          "%4d  %-20s %-10s | %8d %5d | %5d | %7.3fs %4.1f%% | %10.0f %10.0f | %9d %11d | %3d  %s@."
          r.Trace.row_index r.Trace.row_flow r.Trace.row_pass
          r.Trace.gates_after
          (r.Trace.gates_after - r.Trace.gates_before)
          (r.Trace.depth_after - r.Trace.depth_before)
          r.Trace.row_elapsed (pct r.Trace.row_elapsed)
          r.Trace.row_gc.Trace.minor_words r.Trace.row_gc.Trace.major_words
          r.Trace.row_sat_conflicts r.Trace.row_sat_propagations
          r.Trace.row_degraded (races_cell r))
      rows;
    let sum f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
    let sumi f = List.fold_left (fun a r -> a + f r) 0 rows in
    Format.fprintf fmt
      "%4s  %-20s %-10s | %8s %5d | %5d | %7.3fs %5s | %10.0f %10.0f | %9d %11d | %3d@."
      "" "total" "" ""
      (sumi (fun r -> r.Trace.gates_after - r.Trace.gates_before))
      (sumi (fun r -> r.Trace.depth_after - r.Trace.depth_before))
      total "100%"
      (sum (fun r -> r.Trace.row_gc.Trace.minor_words))
      (sum (fun r -> r.Trace.row_gc.Trace.major_words))
      (sumi (fun r -> r.Trace.row_sat_conflicts))
      (sumi (fun r -> r.Trace.row_sat_propagations))
      (sumi (fun r -> r.Trace.row_degraded));
    (* a run that degraded anywhere gets its markers spelled out under the
       table — the per-row count says "how many", these lines say "why" *)
    let degs = Trace.degraded_events t in
    if degs <> [] then begin
      Format.fprintf fmt "degraded: %d marker(s)@." (List.length degs);
      List.iter
        (fun (pass, reason, detail) ->
          Format.fprintf fmt "  %-16s %-10s %s@." pass reason detail)
        degs
    end;
    (* fault-injection telemetry (CLI runs under GENLOG_FAULTS emit one
       "faults" counters event at exit) *)
    List.iter
      (function
        | Trace.Counters { algo = "faults"; counters; _ } ->
          Format.fprintf fmt "faults: %s@."
            (String.concat " "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters))
        | _ -> ())
      (Trace.events t)
  end

(* -- bench side: BENCH_*.json rows -- *)

type bench_row = {
  benchmark : string;
  stage : string;
  fields : (string * float) list;  (* numeric fields only *)
}

let bench_rows (j : Json.t) : bench_row list =
  match Option.bind (Json.member "rows" j) Json.to_list with
  | None -> []
  | Some rows ->
    List.filter_map
      (fun row ->
        match (Json.str_member "benchmark" row, Json.str_member "stage" row) with
        | Some benchmark, Some stage ->
          let fields =
            match row with
            | Json.Obj kvs ->
              List.filter_map
                (fun (k, v) ->
                  if k = "benchmark" || k = "stage" then None
                  else Option.map (fun f -> (k, f)) (Json.to_num v))
                kvs
            | _ -> []
          in
          Some { benchmark; stage; fields }
        | _ -> None)
      rows

let pp_bench fmt (j : Json.t) =
  let rows = bench_rows j in
  let name = Option.value ~default:"?" (Json.str_member "bench" j) in
  Format.fprintf fmt "bench %s (%d rows)@." name (List.length rows);
  (match Json.member "cache" j with
  | Some (Json.Obj kvs) ->
    Format.fprintf fmt "cache: %s@."
      (String.concat " "
         (List.filter_map
            (fun (k, v) ->
              Option.map (fun n -> Printf.sprintf "%s=%.0f" k n) (Json.to_num v))
            kvs))
  | _ -> ());
  Format.fprintf fmt "%-14s %-14s  %s@." "benchmark" "stage" "fields";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s %-14s  %s@." r.benchmark r.stage
        (String.concat " "
           (List.map
              (fun (k, v) ->
                if Float.is_integer v && Float.abs v < 1e15 then
                  Printf.sprintf "%s=%.0f" k v
                else Printf.sprintf "%s=%.3f" k v)
              r.fields)))
    rows

(* -- the QoR regression gate -- *)

(* Lower is better for every metric we gate on.  QoR fields are exact
   (deterministic flows), so the threshold only absorbs genuine
   regressions; seconds are noisy, so their threshold is loose and an
   absolute floor ignores sub-50ms jitter entirely. *)
let qor_fields = [ "nodes"; "levels"; "luts"; "lut_levels" ]
let time_fields = [ "seconds"; "seconds_sum" ]

(* The gated QoR field set follows the run's cost objective (the "cost"
   header stamped by Runmeta): an area run gates the historical four
   fields, a depth run gates the level metrics, and so on.  An "objective"
   row field (the cost engine's own eval) is gated whenever present.
   Unknown or absent specs fall back to the historical set so old
   artifacts keep gating as before. *)
let qor_fields_for (cost : string option) =
  "objective"
  ::
  (match cost with
  | None | Some "area" -> qor_fields
  | Some "depth" -> [ "levels"; "lut_levels" ]
  | Some "edges" -> [ "edges"; "nodes" ]
  | Some "activity" -> [ "activity" ]
  | Some c when String.length c >= 3 && String.sub c 0 3 = "lut" ->
    [ "luts"; "lut_levels" ]
  | Some c when String.length c >= 8 && String.sub c 0 8 = "weights:" -> []
  | Some _ -> qor_fields)

let cost_of (doc : Json.t) = Json.str_member "cost" doc

type thresholds = {
  qor_pct : float;   (* max allowed relative QoR regression, percent *)
  time_pct : float;  (* max allowed relative time regression, percent *)
  time_floor : float;  (* absolute seconds below which time diffs are noise *)
  check_time : bool;
}

let default_thresholds =
  { qor_pct = 2.0; time_pct = 50.0; time_floor = 0.05; check_time = true }

(* Per-metric comparison lines over the gated fields, independent of the
   verdict: a passing gate should still leave evidence in the CI log of
   what was compared and by how much it moved. *)
let deltas ~baseline ~current : string list =
  let curr_rows = bench_rows current in
  let gated =
    qor_fields_for
      (match cost_of current with Some c -> Some c | None -> cost_of baseline)
  in
  let find b s =
    List.find_opt (fun r -> r.benchmark = b && r.stage = s) curr_rows
  in
  List.concat_map
    (fun (b : bench_row) ->
      match find b.benchmark b.stage with
      | None -> [ Printf.sprintf "%s/%s: missing from current" b.benchmark b.stage ]
      | Some c ->
        List.filter_map
          (fun (key, base_v) ->
            if not (List.mem key gated || List.mem key time_fields) then None
            else
              Option.map
                (fun cur_v ->
                  Printf.sprintf "%s/%s: %s %.6g -> %.6g (%+.1f%%)" b.benchmark
                    b.stage key base_v cur_v
                    (100.0 *. (cur_v -. base_v) /. Float.max base_v 1e-9))
                (List.assoc_opt key c.fields))
          b.fields)
    (bench_rows baseline)

(* Compare [current] against [baseline]; returns one message per
   regression (empty = gate passes).  Rows are matched on
   (benchmark, stage); rows missing from [current] are regressions (a
   silently dropped benchmark must not pass the gate), extra rows in
   [current] are fine (new coverage). *)
let check ~baseline ~current (th : thresholds) : string list =
  let curr_rows = bench_rows current in
  let find b s =
    List.find_opt (fun r -> r.benchmark = b && r.stage = s) curr_rows
  in
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (match (Json.int_member "schema" baseline, Json.int_member "schema" current) with
  | Some b, Some c when b > c ->
    problem "schema mismatch: baseline v%d is newer than current v%d" b c
  | _ -> ());
  (* a run optimized for one objective must not be gated against a
     baseline optimized for another: the comparison is meaningless and
     silently passing it would hide real regressions *)
  (match (cost_of baseline, cost_of current) with
  | Some b, Some c when b <> c ->
    problem "cost-spec mismatch: baseline optimized for %S, current for %S" b c
  | _ -> ());
  let gated =
    qor_fields_for
      (match cost_of current with Some c -> Some c | None -> cost_of baseline)
  in
  List.iter
    (fun (b : bench_row) ->
      match find b.benchmark b.stage with
      | None -> problem "%s/%s: row missing from current" b.benchmark b.stage
      | Some c ->
        List.iter
          (fun (key, base_v) ->
            match List.assoc_opt key c.fields with
            | None -> ()
            | Some cur_v ->
              let qor = List.mem key gated in
              let timed = List.mem key time_fields in
              if qor || (timed && th.check_time) then begin
                let pct = if qor then th.qor_pct else th.time_pct in
                let floor = if qor then 0.0 else th.time_floor in
                let limit = base_v *. (1.0 +. (pct /. 100.0)) in
                if cur_v > limit +. 1e-9 && cur_v -. base_v > floor then
                  problem "%s/%s: %s regressed %.6g -> %.6g (limit %.6g, +%.1f%%)"
                    b.benchmark b.stage key base_v cur_v limit
                    (100.0 *. (cur_v -. base_v) /. Float.max base_v 1e-9)
              end)
          b.fields)
    (bench_rows baseline);
  List.rev !problems
