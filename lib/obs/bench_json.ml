(* Tiny JSON writer for machine-readable benchmark results.

   Every bench subcommand emits a [BENCH_<name>.json] next to the working
   directory so that successive PRs have a perf trajectory to regress
   against (see EXPERIMENTS.md).  A result file holds one row per
   (benchmark, stage) pair; fields are flat scalars, no dependencies.

   Living in the obs library (rather than next to the bench driver) makes
   the schema-v2 runmeta header a property of the writer itself: every
   subcommand that goes through [write] — sat and cache included — is
   stamped identically, which is what keys the history log. *)

type value = Int of int | Float of float | Str of string

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write name (rows : (string * value) list list) =
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  (* run metadata first: commit, compiler, domain count, schema — the
     fields [report --check] needs to compare two BENCH files honestly *)
  let cache =
    match Runmeta.cache_json () with
    | Some c -> Printf.sprintf "  \"cache\": %s,\n" c
    | None -> ""
  in
  let cost =
    match Runmeta.cost_json () with
    | Some c -> Printf.sprintf "  \"cost\": %s,\n" c
    | None -> ""
  in
  Printf.fprintf oc
    "{\n  \"bench\": \"%s\",\n  %s,\n%s%s  \"generated_unix\": %.0f,\n  \"rows\": [\n"
    (escape name)
    (Runmeta.json_fields ())
    cache cost (Unix.time ());
  List.iteri
    (fun i row ->
      if i > 0 then output_string oc ",\n";
      output_string oc "    {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then output_string oc ", ";
          Printf.fprintf oc "\"%s\": %s" (escape k)
            (match v with
            | Int n -> string_of_int n
            | Float f -> Printf.sprintf "%.6f" f
            | Str s -> Printf.sprintf "\"%s\"" (escape s)))
        row;
      output_string oc "}")
    rows;
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "[bench] wrote %s (%d rows)\n%!" file (List.length rows)
