(* Pass-level observability (the telemetry substrate of the flow layers).

   A [Trace.t] is a sink for structured events describing what an
   optimization flow did: one [Pass_begin]/[Pass_end] span per script
   command (wall time plus gate/depth before and after) and one [Counters]
   event per algorithm invocation (candidates tried / accepted /
   rejected-by-gain, SAT verdicts, LUT-map results, ...).  mockturtle
   attaches a stats object to every algorithm for the same reason: without
   per-pass numbers a flow is a black box and regressions can only be
   localized at whole-flow granularity.

   The sink is either [Null] — every emit is a single pattern match, so
   disabled tracing costs nothing measurable — or an in-memory buffer that
   renders to JSONL (one event object per line).  Buffers are
   single-writer: parallel flows (e.g. the portfolio's domains) each write
   a [child] sink and the parent [merge]s them in join order, so tracing
   never needs a lock.  Timestamps are seconds relative to the root sink's
   creation; children share the parent's epoch so merged events remain
   comparable. *)

type counters = (string * int) list

type event =
  | Pass_begin of {
      t : float;
      flow : string;
      pass : string;
      index : int;
      gates : int;
      depth : int;
    }
  | Pass_end of {
      t : float;
      flow : string;
      pass : string;
      index : int;
      gates : int;
      depth : int;
      elapsed : float;
    }
  | Counters of { t : float; flow : string; algo : string; counters : counters }

type sink = {
  flow : string;  (* label stamped on every event; "" at the root *)
  epoch : float;
  mutable rev_events : event list;  (* newest first *)
}

type t = Null | Sink of sink

let null = Null
let enabled = function Null -> false | Sink _ -> true

let create ?(flow = "") () =
  Sink { flow; epoch = Unix.gettimeofday (); rev_events = [] }

(* A child sink for a sub-flow (one portfolio member, one benchmark):
   same epoch, extended label, its own buffer.  Null propagates, so a
   disabled parent makes every descendant free as well. *)
let child t ~flow =
  match t with
  | Null -> Null
  | Sink s ->
    let label = if s.flow = "" then flow else s.flow ^ "/" ^ flow in
    Sink { flow = label; epoch = s.epoch; rev_events = [] }

(* Append the children's events (in list order) after the parent's. *)
let merge t children =
  match t with
  | Null -> ()
  | Sink p ->
    List.iter
      (function Null -> () | Sink c -> p.rev_events <- c.rev_events @ p.rev_events)
      children

let events = function Null -> [] | Sink s -> List.rev s.rev_events

let now s = Unix.gettimeofday () -. s.epoch

let pass_begin t ~pass ~index ~gates ~depth =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Pass_begin { t = now s; flow = s.flow; pass; index; gates; depth }
      :: s.rev_events

let pass_end t ~pass ~index ~gates ~depth ~elapsed =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Pass_end { t = now s; flow = s.flow; pass; index; gates; depth; elapsed }
      :: s.rev_events

(* Per-algorithm counters, emitted between the enclosing span's begin and
   end events.  Call sites guard with [enabled] when building the counter
   list itself has a cost. *)
let report t ~algo counters =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Counters { t = now s; flow = s.flow; algo; counters } :: s.rev_events

(* -- JSONL rendering -- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_counters cs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) cs)
  ^ "}"

let json_of_event = function
  | Pass_begin { t; flow; pass; index; gates; depth } ->
    Printf.sprintf
      "{\"event\":\"pass_begin\",\"t\":%.6f,\"flow\":\"%s\",\"pass\":\"%s\",\"index\":%d,\"gates\":%d,\"depth\":%d}"
      t (escape flow) (escape pass) index gates depth
  | Pass_end { t; flow; pass; index; gates; depth; elapsed } ->
    Printf.sprintf
      "{\"event\":\"pass_end\",\"t\":%.6f,\"flow\":\"%s\",\"pass\":\"%s\",\"index\":%d,\"gates\":%d,\"depth\":%d,\"elapsed\":%.6f}"
      t (escape flow) (escape pass) index gates depth elapsed
  | Counters { t; flow; algo; counters } ->
    Printf.sprintf
      "{\"event\":\"counters\",\"t\":%.6f,\"flow\":\"%s\",\"algo\":\"%s\",\"counters\":%s}"
      t (escape flow) (escape algo) (json_of_counters counters)

let write_channel t oc =
  List.iter
    (fun e ->
      output_string oc (json_of_event e);
      output_char oc '\n')
    (events t)

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel t oc)

(* -- per-pass summary -- *)

type pass_row = {
  row_flow : string;
  row_pass : string;
  row_index : int;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
  row_elapsed : float;
  row_counters : (string * counters) list;  (* algo -> counters, in order *)
}

(* Pair begin/end events into rows.  Spans never nest within one flow, so a
   single pending slot per flow label suffices; counter events attach to
   the open span of their flow. *)
let summarize t : pass_row list =
  let pending : (string, pass_row) Hashtbl.t = Hashtbl.create 4 in
  let rows = ref [] in
  List.iter
    (function
      | Pass_begin { flow; pass; index; gates; depth; _ } ->
        Hashtbl.replace pending flow
          {
            row_flow = flow;
            row_pass = pass;
            row_index = index;
            gates_before = gates;
            gates_after = gates;
            depth_before = depth;
            depth_after = depth;
            row_elapsed = 0.0;
            row_counters = [];
          }
      | Counters { flow; algo; counters; _ } -> (
        match Hashtbl.find_opt pending flow with
        | Some row ->
          Hashtbl.replace pending flow
            { row with row_counters = row.row_counters @ [ (algo, counters) ] }
        | None -> ())
      | Pass_end { flow; gates; depth; elapsed; _ } -> (
        match Hashtbl.find_opt pending flow with
        | Some row ->
          Hashtbl.remove pending flow;
          rows :=
            {
              row with
              gates_after = gates;
              depth_after = depth;
              row_elapsed = elapsed;
            }
            :: !rows
        | None -> ()))
    (events t);
  List.rev !rows

let pp_counters fmt cs =
  Format.fprintf fmt "%s"
    (String.concat " "
       (List.map
          (fun (algo, counters) ->
            algo ^ "("
            ^ String.concat ","
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters)
            ^ ")")
          cs))

let pp_summary fmt t =
  let rows = summarize t in
  Format.fprintf fmt "%4s  %-16s %-10s | %7s %7s %5s | %5s %5s | %8s  %s@."
    "#" "flow" "pass" "gates" "->" "dG" "depth" "->" "time" "counters";
  List.iter
    (fun r ->
      Format.fprintf fmt "%4d  %-16s %-10s | %7d %7d %5d | %5d %5d | %7.3fs  %a@."
        r.row_index r.row_flow r.row_pass r.gates_before r.gates_after
        (r.gates_after - r.gates_before)
        r.depth_before r.depth_after r.row_elapsed pp_counters r.row_counters)
    rows
