(* Pass-level observability (the telemetry substrate of the flow layers).

   A [Trace.t] is a sink for structured events describing what an
   optimization flow did: one [Pass_begin]/[Pass_end] span per script
   command (wall time plus gate/depth before and after, plus the GC work
   the pass caused), one [Counters] event per algorithm invocation
   (candidates tried / accepted / rejected-by-gain, SAT verdicts, LUT-map
   results, ...), one [Metrics] event per algorithm registry (see
   metrics.ml: log2-bucketed histograms, gauges), and — when sampling is
   on — [Node_event]s recording individual candidate decisions.
   mockturtle attaches a stats object to every algorithm for the same
   reason: without per-pass numbers a flow is a black box and regressions
   can only be localized at whole-flow granularity.

   The sink is either [Null] — every emit is a single pattern match, so
   disabled tracing costs nothing measurable — or an in-memory buffer that
   renders to JSONL (one event object per line, preceded by one meta line
   stamping the producing run).  Buffers are single-writer: parallel flows
   (e.g. the portfolio's domains) each write a [child] sink and the parent
   [merge]s them in join order, so tracing never needs a lock.  Timestamps
   are seconds relative to the root sink's creation; children share the
   parent's epoch so merged events remain comparable.

   Node-level events are sampled: [create ~sample:n] keeps one candidate
   decision out of every [n] per sink, so the per-node firehose stays
   bounded when enabled ([sample = 0], the default, disables node events
   entirely).  Children inherit the parent's sampling rate with their own
   tick, so per-domain sampling stays deterministic. *)

type counters = (string * int) list

(* GC work attributed to a span: deltas of [Gc.quick_stat] taken at
   [pass_begin] and [pass_end].  Words are floats because that is how the
   runtime reports them (they overflow ints on 32-bit platforms). *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_zero =
  {
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

(* Counters of [Gc.quick_stat] are monotone within one domain, but clamp
   anyway: a span must never report negative GC work. *)
let gc_diff (g0 : Gc.stat) (g1 : Gc.stat) =
  {
    minor_words = Float.max 0.0 (g1.Gc.minor_words -. g0.Gc.minor_words);
    major_words = Float.max 0.0 (g1.Gc.major_words -. g0.Gc.major_words);
    promoted_words =
      Float.max 0.0 (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    minor_collections = max 0 (g1.Gc.minor_collections - g0.Gc.minor_collections);
    major_collections = max 0 (g1.Gc.major_collections - g0.Gc.major_collections);
  }

(* Rendered summary of one log2-bucketed histogram (built by metrics.ml).
   [buckets] holds (bucket index, count) for non-empty buckets only;
   bucket [i] covers [2^(i-1), 2^i) with bucket 0 reserved for zero. *)
type hist = {
  h_count : int;
  h_sum : float;  (* float: sums of observations near max_int overflow *)
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type event =
  | Pass_begin of {
      t : float;
      flow : string;
      pass : string;
      index : int;
      gates : int;
      depth : int;
    }
  | Pass_end of {
      t : float;
      flow : string;
      pass : string;
      index : int;
      gates : int;
      depth : int;
      elapsed : float;
      gc : gc_delta;
    }
  | Counters of { t : float; flow : string; algo : string; counters : counters }
  | Metrics of {
      t : float;
      flow : string;
      algo : string;
      counters : counters;
      gauges : counters;
      hists : (string * hist) list;
    }
  | Node_event of {
      t : float;
      flow : string;
      algo : string;
      node : int;
      gain : int;
      accepted : bool;
    }
  | Race of {
      t : float;
      flow : string;
      algo : string;  (* which racer: "cec", "fraig", "exact", ... *)
      winner : string;
      configs : (string * string * counters) list;
          (* per worker: config name, result ("sat"/"unsat"/"unknown"),
             kernel counters at finish or cancel time — losers included, so
             the work a lost race burned stays visible *)
    }
  | Degraded of {
      t : float;
      flow : string;
      pass : string;  (* which pass (or subsystem) gave up *)
      reason : string;  (* "deadline" | "exception" | "interrupt" *)
      detail : string;
    }

type sink = {
  flow : string;  (* label stamped on every event; "" at the root *)
  epoch : float;
  sample_every : int;  (* keep 1 node event in [n]; 0 disables them *)
  mutable sample_tick : int;
  mutable rev_events : event list;  (* newest first *)
}

type t = Null | Sink of sink

let null = Null
let enabled = function Null -> false | Sink _ -> true

(* Node events cost a little per candidate even when dropped by the
   sampler; hot loops guard the call itself with [sampling]. *)
let sampling = function Null -> false | Sink s -> s.sample_every > 0

let create ?(flow = "") ?(sample = 0) () =
  Sink
    {
      flow;
      epoch = Unix.gettimeofday ();
      sample_every = max 0 sample;
      sample_tick = 0;
      rev_events = [];
    }

(* A replay sink holding [events] verbatim — used by offline consumers
   (report, chrome export) to rebuild a trace from a JSONL file. *)
let of_events events =
  Sink
    {
      flow = "";
      epoch = 0.0;
      sample_every = 0;
      sample_tick = 0;
      rev_events = List.rev events;
    }

(* A child sink for a sub-flow (one portfolio member, one benchmark):
   same epoch and sampling rate, extended label, its own buffer.  Null
   propagates, so a disabled parent makes every descendant free as
   well. *)
let child t ~flow =
  match t with
  | Null -> Null
  | Sink s ->
    let label = if s.flow = "" then flow else s.flow ^ "/" ^ flow in
    Sink
      {
        flow = label;
        epoch = s.epoch;
        sample_every = s.sample_every;
        sample_tick = 0;
        rev_events = [];
      }

(* Append the children's events (in list order) after the parent's. *)
let merge t children =
  match t with
  | Null -> ()
  | Sink p ->
    List.iter
      (function Null -> () | Sink c -> p.rev_events <- c.rev_events @ p.rev_events)
      children

let events = function Null -> [] | Sink s -> List.rev s.rev_events

let now s = Unix.gettimeofday () -. s.epoch

let pass_begin t ~pass ~index ~gates ~depth =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Pass_begin { t = now s; flow = s.flow; pass; index; gates; depth }
      :: s.rev_events

let pass_end t ?(gc = gc_zero) ~pass ~index ~gates ~depth ~elapsed () =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Pass_end { t = now s; flow = s.flow; pass; index; gates; depth; elapsed; gc }
      :: s.rev_events

(* Per-algorithm counters, emitted between the enclosing span's begin and
   end events.  Call sites guard with [enabled] when building the counter
   list itself has a cost. *)
let report t ~algo counters =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Counters { t = now s; flow = s.flow; algo; counters } :: s.rev_events

(* A rendered metrics registry (metrics.ml builds the payload). *)
let metrics t ~algo ~counters ~gauges ~hists =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Metrics { t = now s; flow = s.flow; algo; counters; gauges; hists }
      :: s.rev_events

(* One portfolio race outcome (see satkit/portfolio.ml): who won, and what
   every worker — including cancelled losers — had done when it stopped.
   Building the [configs] payload walks the losers' solvers, so call sites
   guard with [enabled]. *)
let race t ~algo ~winner ~configs =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Race { t = now s; flow = s.flow; algo; winner; configs } :: s.rev_events

(* A graceful-degradation marker: the run kept a valid (best-so-far)
   result but gave up on part of the work — a pass deadline expired, a
   pass raised and was rolled back to the last checkpoint, a partition
   piece kept its original cone.  Consumers treat any nonzero count as
   "output is correct but QoR is not what the script asked for". *)
let degraded t ~pass ~reason ~detail =
  match t with
  | Null -> ()
  | Sink s ->
    s.rev_events <-
      Degraded { t = now s; flow = s.flow; pass; reason; detail }
      :: s.rev_events

(* One sampled candidate decision.  The sampler is a deterministic
   counter, not a RNG: 1-in-n by arrival order, reproducible across
   runs. *)
let node_event t ~algo ~node ~gain ~accepted =
  match t with
  | Null -> ()
  | Sink s ->
    if s.sample_every > 0 then begin
      let tick = s.sample_tick in
      s.sample_tick <- tick + 1;
      if tick mod s.sample_every = 0 then
        s.rev_events <-
          Node_event { t = now s; flow = s.flow; algo; node; gain; accepted }
          :: s.rev_events
    end

(* -- JSONL rendering -- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_counters cs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) cs)
  ^ "}"

let json_of_gc gc =
  Printf.sprintf
    "{\"minor_words\":%.0f,\"major_words\":%.0f,\"promoted_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d}"
    gc.minor_words gc.major_words gc.promoted_words gc.minor_collections
    gc.major_collections

let json_of_hist h =
  Printf.sprintf
    "{\"count\":%d,\"sum\":%.0f,\"min\":%d,\"max\":%d,\"buckets\":{%s}}"
    h.h_count h.h_sum
    (if h.h_count = 0 then 0 else h.h_min)
    h.h_max
    (String.concat ","
       (List.map (fun (b, c) -> Printf.sprintf "\"%d\":%d" b c) h.h_buckets))

let json_of_event = function
  | Pass_begin { t; flow; pass; index; gates; depth } ->
    Printf.sprintf
      "{\"event\":\"pass_begin\",\"t\":%.6f,\"flow\":\"%s\",\"pass\":\"%s\",\"index\":%d,\"gates\":%d,\"depth\":%d}"
      t (escape flow) (escape pass) index gates depth
  | Pass_end { t; flow; pass; index; gates; depth; elapsed; gc } ->
    Printf.sprintf
      "{\"event\":\"pass_end\",\"t\":%.6f,\"flow\":\"%s\",\"pass\":\"%s\",\"index\":%d,\"gates\":%d,\"depth\":%d,\"elapsed\":%.6f,\"gc\":%s}"
      t (escape flow) (escape pass) index gates depth elapsed (json_of_gc gc)
  | Counters { t; flow; algo; counters } ->
    Printf.sprintf
      "{\"event\":\"counters\",\"t\":%.6f,\"flow\":\"%s\",\"algo\":\"%s\",\"counters\":%s}"
      t (escape flow) (escape algo) (json_of_counters counters)
  | Metrics { t; flow; algo; counters; gauges; hists } ->
    Printf.sprintf
      "{\"event\":\"metrics\",\"t\":%.6f,\"flow\":\"%s\",\"algo\":\"%s\",\"counters\":%s,\"gauges\":%s,\"hists\":{%s}}"
      t (escape flow) (escape algo) (json_of_counters counters)
      (json_of_counters gauges)
      (String.concat ","
         (List.map
            (fun (k, h) -> Printf.sprintf "\"%s\":%s" (escape k) (json_of_hist h))
            hists))
  | Node_event { t; flow; algo; node; gain; accepted } ->
    Printf.sprintf
      "{\"event\":\"node\",\"t\":%.6f,\"flow\":\"%s\",\"algo\":\"%s\",\"node\":%d,\"gain\":%d,\"accepted\":%b}"
      t (escape flow) (escape algo) node gain accepted
  | Race { t; flow; algo; winner; configs } ->
    Printf.sprintf
      "{\"event\":\"race\",\"t\":%.6f,\"flow\":\"%s\",\"algo\":\"%s\",\"winner\":\"%s\",\"configs\":[%s]}"
      t (escape flow) (escape algo) (escape winner)
      (String.concat ","
         (List.map
            (fun (name, result, counters) ->
              Printf.sprintf
                "{\"name\":\"%s\",\"result\":\"%s\",\"counters\":%s}"
                (escape name) (escape result) (json_of_counters counters))
            configs))
  | Degraded { t; flow; pass; reason; detail } ->
    Printf.sprintf
      "{\"event\":\"degraded\",\"t\":%.6f,\"flow\":\"%s\",\"pass\":\"%s\",\"reason\":\"%s\",\"detail\":\"%s\"}"
      t (escape flow) (escape pass) (escape reason) (escape detail)

let meta_line () =
  let cache =
    match Runmeta.cache_json () with
    | Some c -> Printf.sprintf ",\"cache\":%s" c
    | None -> ""
  in
  let cost =
    match Runmeta.cost_json () with
    | Some c -> Printf.sprintf ",\"cost\":%s" c
    | None -> ""
  in
  Printf.sprintf "{\"event\":\"meta\",%s%s%s,\"generated_unix\":%.0f}"
    (Runmeta.json_fields ()) cache cost (Unix.time ())

let write_channel t oc =
  output_string oc (meta_line ());
  output_char oc '\n';
  List.iter
    (fun e ->
      output_string oc (json_of_event e);
      output_char oc '\n')
    (events t)

let write_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel t oc)

(* -- per-pass summary -- *)

type pass_row = {
  row_flow : string;
  row_pass : string;
  row_index : int;
  gates_before : int;
  gates_after : int;
  depth_before : int;
  depth_after : int;
  row_elapsed : float;
  row_gc : gc_delta;
  row_counters : (string * counters) list;  (* algo -> counters, in order *)
  row_sat_conflicts : int;     (* SAT kernel work attributed to the span *)
  row_sat_propagations : int;
  row_races : (string * int) list;  (* race winner name -> wins, in order *)
  row_degraded : int;  (* degradation markers attributed to the span *)
}

(* SAT work inside a span comes from two disjoint sources: single-solver
   call sites publish [solver_*] gauges through a metrics registry, and
   portfolio races publish per-config counters on the race event itself
   (the call sites emit one or the other, never both, so summing both here
   never double-counts). *)
let sat_of_gauges gauges =
  let g k = Option.value ~default:0 (List.assoc_opt k gauges) in
  (g "solver_conflicts", g "solver_propagations")

let sat_of_race configs =
  List.fold_left
    (fun (c, p) (_, _, counters) ->
      let g k = Option.value ~default:0 (List.assoc_opt k counters) in
      (c + g "conflicts", p + g "propagations"))
    (0, 0) configs

let bump_winner races winner =
  if List.mem_assoc winner races then
    List.map (fun (w, n) -> if w = winner then (w, n + 1) else (w, n)) races
  else races @ [ (winner, 1) ]

(* SAT events from child sinks (partition workers, racing domains) carry
   extended flow labels like ["opt/part3"] while the enclosing span lives
   under the parent label: resolve to the nearest open ancestor span. *)
let rec find_ancestor_span pending flow =
  match Hashtbl.find_opt pending flow with
  | Some _ as hit -> Option.map (fun row -> (flow, row)) hit
  | None -> (
    match String.rindex_opt flow '/' with
    | Some i -> find_ancestor_span pending (String.sub flow 0 i)
    | None -> if flow = "" then None else find_ancestor_span pending "")

(* Pair begin/end events into rows.  Spans never nest within one flow, so a
   single pending slot per flow label suffices; counter, metrics and race
   events attach to the open span of their flow. *)
let summarize t : pass_row list =
  let pending : (string, pass_row) Hashtbl.t = Hashtbl.create 4 in
  let rows = ref [] in
  List.iter
    (function
      | Pass_begin { flow; pass; index; gates; depth; _ } ->
        Hashtbl.replace pending flow
          {
            row_flow = flow;
            row_pass = pass;
            row_index = index;
            gates_before = gates;
            gates_after = gates;
            depth_before = depth;
            depth_after = depth;
            row_elapsed = 0.0;
            row_gc = gc_zero;
            row_counters = [];
            row_sat_conflicts = 0;
            row_sat_propagations = 0;
            row_races = [];
            row_degraded = 0;
          }
      | Counters { flow; algo; counters; _ } -> (
        match Hashtbl.find_opt pending flow with
        | Some row ->
          Hashtbl.replace pending flow
            { row with row_counters = row.row_counters @ [ (algo, counters) ] }
        | None -> ())
      | Metrics { flow; gauges; _ } -> (
        match find_ancestor_span pending flow with
        | Some (key, row) ->
          let c, p = sat_of_gauges gauges in
          if c <> 0 || p <> 0 then
            Hashtbl.replace pending key
              {
                row with
                row_sat_conflicts = row.row_sat_conflicts + c;
                row_sat_propagations = row.row_sat_propagations + p;
              }
        | None -> ())
      | Race { flow; winner; configs; _ } -> (
        match find_ancestor_span pending flow with
        | Some (key, row) ->
          let c, p = sat_of_race configs in
          Hashtbl.replace pending key
            {
              row with
              row_sat_conflicts = row.row_sat_conflicts + c;
              row_sat_propagations = row.row_sat_propagations + p;
              row_races = bump_winner row.row_races winner;
            }
        | None -> ())
      | Degraded { flow; _ } -> (
        match find_ancestor_span pending flow with
        | Some (key, row) ->
          Hashtbl.replace pending key
            { row with row_degraded = row.row_degraded + 1 }
        | None -> ())
      | Node_event _ -> ()
      | Pass_end { flow; gates; depth; elapsed; gc; _ } -> (
        match Hashtbl.find_opt pending flow with
        | Some row ->
          Hashtbl.remove pending flow;
          rows :=
            {
              row with
              gates_after = gates;
              depth_after = depth;
              row_elapsed = elapsed;
              row_gc = gc;
            }
            :: !rows
        | None -> ()))
    (events t);
  List.rev !rows

let pp_counters fmt cs =
  Format.fprintf fmt "%s"
    (String.concat " "
       (List.map
          (fun (algo, counters) ->
            algo ^ "("
            ^ String.concat ","
                (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters)
            ^ ")")
          cs))

(* The SAT/race annotation appended to a row's counters column: nothing
   when the pass did no SAT work, so pure-rewrite tables stay clean. *)
let pp_sat fmt r =
  if r.row_sat_conflicts <> 0 || r.row_sat_propagations <> 0 then
    Format.fprintf fmt " sat(confl=%d,props=%d)" r.row_sat_conflicts
      r.row_sat_propagations;
  if r.row_races <> [] then
    Format.fprintf fmt " race(%s)"
      (String.concat ","
         (List.map (fun (w, n) -> Printf.sprintf "%s=%d" w n) r.row_races));
  if r.row_degraded > 0 then
    Format.fprintf fmt " DEGRADED(%d)" r.row_degraded

(* All degradation markers in event order, whether or not a span was open
   to attribute them to (CLI-level markers land outside any span). *)
let degraded_events t =
  List.filter_map
    (function
      | Degraded { pass; reason; detail; _ } -> Some (pass, reason, detail)
      | _ -> None)
    (events t)

let degraded_count t = List.length (degraded_events t)

(* The per-pass table: one row per span plus a totals row; the [%] column
   is each pass's share of the summed wall time, so the table answers
   "where did the time go" without a calculator. *)
let pp_summary fmt t =
  let rows = summarize t in
  if rows = [] then Format.fprintf fmt "trace: no spans recorded@."
  else begin
    let total_elapsed =
      List.fold_left (fun acc r -> acc +. r.row_elapsed) 0.0 rows
    in
    let pct e =
      if total_elapsed <= 0.0 then 0.0 else 100.0 *. e /. total_elapsed
    in
    Format.fprintf fmt
      "%4s  %-16s %-10s | %7s %7s %5s | %5s %5s | %8s %5s  %s@."
      "#" "flow" "pass" "gates" "->" "dG" "depth" "->" "time" "%" "counters";
    List.iter
      (fun r ->
        Format.fprintf fmt
          "%4d  %-16s %-10s | %7d %7d %5d | %5d %5d | %7.3fs %4.1f%%  %a%a@."
          r.row_index r.row_flow r.row_pass r.gates_before r.gates_after
          (r.gates_after - r.gates_before)
          r.depth_before r.depth_after r.row_elapsed (pct r.row_elapsed)
          pp_counters r.row_counters pp_sat r)
      rows;
    match (rows, List.rev rows) with
    | first :: _, last :: _ ->
      Format.fprintf fmt
        "%4s  %-16s %-10s | %7d %7d %5d | %5d %5d | %7.3fs %4.1f%%@."
        "" "total" "" first.gates_before last.gates_after
        (List.fold_left (fun a r -> a + (r.gates_after - r.gates_before)) 0 rows)
        first.depth_before last.depth_after total_elapsed
        (pct total_elapsed)
    | _ -> ()
  end;
  let degs = degraded_events t in
  if degs <> [] then begin
    Format.fprintf fmt "degraded: %d event(s)@." (List.length degs);
    List.iter
      (fun (pass, reason, detail) ->
        Format.fprintf fmt "  %-16s %-10s %s@." pass reason detail)
      degs
  end
