(* Single-file HTML dashboard over the observability artifacts: per-pass
   time/gain tables from a trace, SAT kernel summaries (conflict and
   propagation totals, portfolio race winners), exact-store hit rates,
   bench rows, and cross-run history sparklines.

   The page is fully self-contained — inline CSS, inline SVG, no external
   assets or requests — so it can be archived as a CI artifact and opened
   years later, offline, and still render.  Section anchors (#meta,
   #passes, #sat, #bench, #history) are stable so CI job summaries can
   deep-link. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let style =
  "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:72em;\
   color:#1a1a2e;padding:0 1em}\
   h1{font-size:1.4em}h2{font-size:1.1em;border-bottom:1px solid #ccd;\
   padding-bottom:.2em;margin-top:2em}\
   table{border-collapse:collapse;margin:.5em 0;font-variant-numeric:tabular-nums}\
   th,td{border:1px solid #dde;padding:.25em .6em;text-align:right}\
   th{background:#eef;position:sticky;top:0}\
   td:first-child,th:first-child,td.l,th.l{text-align:left}\
   .bad{background:#fdd;font-weight:bold}\
   .ok{color:#161}\
   .muted{color:#667}\
   svg.spark{vertical-align:middle}"

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

(* Inline SVG sparkline: a polyline over the series, min..max normalized,
   latest point marked.  Pure markup, no script. *)
let sparkline ?(w = 120) ?(h = 24) (values : float list) : string =
  match values with
  | [] | [ _ ] -> "<span class=\"muted\">-</span>"
  | vs ->
    let n = List.length vs in
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    let span = if hi -. lo <= 0.0 then 1.0 else hi -. lo in
    let pt i v =
      let x = float_of_int i *. float_of_int w /. float_of_int (n - 1) in
      let y =
        2.0 +. ((1.0 -. ((v -. lo) /. span)) *. (float_of_int h -. 4.0))
      in
      (x, y)
    in
    let pts = List.mapi pt vs in
    let path =
      String.concat " "
        (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" x y) pts)
    in
    let lx, ly = List.nth pts (n - 1) in
    Printf.sprintf
      "<svg class=\"spark\" width=\"%d\" height=\"%d\" \
       viewBox=\"0 0 %d %d\"><polyline points=\"%s\" fill=\"none\" \
       stroke=\"#36c\" stroke-width=\"1.5\"/><circle cx=\"%.1f\" cy=\"%.1f\" \
       r=\"2\" fill=\"#c33\"/></svg>"
      w h w h path lx ly

(* -- sections -- *)

let section_meta b =
  Buffer.add_string b "<h2 id=\"meta\">Run metadata</h2><table>";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "<tr><th class=\"l\">%s</th><td class=\"l\">%s</td></tr>"
           (esc k) (esc v)))
    (Runmeta.fields ());
  Buffer.add_string b "</table>"

let races_cell (r : Trace.pass_row) =
  match r.Trace.row_races with
  | [] -> "<span class=\"muted\">-</span>"
  | ws ->
    esc
      (String.concat ", "
         (List.map (fun (w, n) -> Printf.sprintf "%s:%d" w n) ws))

let section_passes b (trace : Trace.t) (rows : Trace.pass_row list) =
  Buffer.add_string b "<h2 id=\"passes\">Passes</h2>";
  (* degraded-job banner first: a dashboard reader must not mistake a
     best-so-far run for a clean one *)
  (let degs = Trace.degraded_events trace in
   if degs <> [] then begin
     Buffer.add_string b
       (Printf.sprintf
          "<p class=\"bad\">degraded run: %d marker(s)</p><ul>"
          (List.length degs));
     List.iter
       (fun (pass, reason, detail) ->
         Buffer.add_string b
           (Printf.sprintf "<li><b>%s</b>: %s — %s</li>" (esc pass)
              (esc reason) (esc detail)))
       degs;
     Buffer.add_string b "</ul>"
   end);
  if rows = [] then
    Buffer.add_string b "<p class=\"muted\">no spans recorded</p>"
  else begin
    let total = List.fold_left (fun a r -> a +. r.Trace.row_elapsed) 0.0 rows in
    Buffer.add_string b
      "<table><tr><th class=\"l\">#</th><th class=\"l\">flow</th>\
       <th class=\"l\">pass</th><th>gates</th><th>dG</th><th>dD</th>\
       <th>time</th><th>%</th><th>sat confl</th><th>sat props</th>\
       <th>deg</th><th class=\"l\">races</th></tr>";
    List.iter
      (fun (r : Trace.pass_row) ->
        let pct =
          if total <= 0.0 then 0.0 else 100.0 *. r.Trace.row_elapsed /. total
        in
        Buffer.add_string b
          (Printf.sprintf
             "<tr><td class=\"l\">%d</td><td class=\"l\">%s</td>\
              <td class=\"l\">%s</td><td>%d</td><td>%d</td><td>%d</td>\
              <td>%.3fs</td><td>%.1f%%</td><td>%d</td><td>%d</td>\
              <td%s>%d</td><td class=\"l\">%s</td></tr>"
             r.Trace.row_index (esc r.Trace.row_flow) (esc r.Trace.row_pass)
             r.Trace.gates_after
             (r.Trace.gates_after - r.Trace.gates_before)
             (r.Trace.depth_after - r.Trace.depth_before)
             r.Trace.row_elapsed pct r.Trace.row_sat_conflicts
             r.Trace.row_sat_propagations
             (if r.Trace.row_degraded > 0 then " class=\"bad\"" else "")
             r.Trace.row_degraded (races_cell r)))
      rows;
    Buffer.add_string b "</table>"
  end

(* SAT summary: totals over the pass rows, winner tally over all races,
   and the exact-synthesis store's hit rate (from the last "exact_db"
   metrics event the engine emits after cleanup). *)
let section_sat b (trace : Trace.t) (rows : Trace.pass_row list) =
  Buffer.add_string b "<h2 id=\"sat\">SAT kernel</h2>";
  let confl =
    List.fold_left (fun a r -> a + r.Trace.row_sat_conflicts) 0 rows
  in
  let props =
    List.fold_left (fun a r -> a + r.Trace.row_sat_propagations) 0 rows
  in
  let winners = Hashtbl.create 8 in
  let races = ref 0 in
  List.iter
    (function
      | Trace.Race { winner; _ } ->
        incr races;
        Hashtbl.replace winners winner
          (1 + Option.value ~default:0 (Hashtbl.find_opt winners winner))
      | _ -> ())
    (Trace.events trace);
  Buffer.add_string b
    (Printf.sprintf
       "<p>conflicts <b>%d</b>, propagations <b>%d</b>, portfolio races \
        <b>%d</b></p>"
       confl props !races);
  if Hashtbl.length winners > 0 then begin
    Buffer.add_string b
      "<table><tr><th class=\"l\">race winner</th><th>wins</th></tr>";
    List.iter
      (fun (w, n) ->
        Buffer.add_string b
          (Printf.sprintf
             "<tr><td class=\"l\">%s</td><td>%d</td></tr>" (esc w) n))
      (List.sort
         (fun (_, a) (_, b) -> compare b a)
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) winners []));
    Buffer.add_string b "</table>"
  end;
  (* exact-synthesis store: last exact_db gauge set wins (cumulative) *)
  let db_gauges = ref [] in
  List.iter
    (function
      | Trace.Metrics { algo = "exact_db"; gauges; _ } -> db_gauges := gauges
      | _ -> ())
    (Trace.events trace);
  match !db_gauges with
  | [] -> ()
  | gauges ->
    let g k = Option.value ~default:0 (List.assoc_opt k gauges) in
    let hits = g "hits" and misses = g "misses" in
    let rate =
      if hits + misses = 0 then 0.0
      else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
    in
    Buffer.add_string b
      (Printf.sprintf "<p>exact store: hit rate <b>%.1f%%</b> (%s)</p>" rate
         (esc
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) gauges))))

let section_bench b (bench : Json.t) =
  Buffer.add_string b "<h2 id=\"bench\">Benchmark</h2>";
  let rows = Report.bench_rows bench in
  if rows = [] then Buffer.add_string b "<p class=\"muted\">no bench rows</p>"
  else begin
    let name = Option.value ~default:"?" (Json.str_member "bench" bench) in
    Buffer.add_string b
      (Printf.sprintf "<p>bench <b>%s</b>, %d rows</p>" (esc name)
         (List.length rows));
    (* union of field names, in first-seen order, for a rectangular table *)
    let cols = ref [] in
    List.iter
      (fun (r : Report.bench_row) ->
        List.iter
          (fun (k, _) -> if not (List.mem k !cols) then cols := !cols @ [ k ])
          r.fields)
      rows;
    Buffer.add_string b
      "<table><tr><th class=\"l\">benchmark</th><th class=\"l\">stage</th>";
    List.iter
      (fun c -> Buffer.add_string b (Printf.sprintf "<th>%s</th>" (esc c)))
      !cols;
    Buffer.add_string b "</tr>";
    List.iter
      (fun (r : Report.bench_row) ->
        Buffer.add_string b
          (Printf.sprintf "<tr><td class=\"l\">%s</td><td class=\"l\">%s</td>"
             (esc r.benchmark) (esc r.stage));
        List.iter
          (fun c ->
            Buffer.add_string b
              (match List.assoc_opt c r.fields with
              | Some v -> Printf.sprintf "<td>%s</td>" (fnum v)
              | None -> "<td class=\"muted\">-</td>"))
          !cols;
        Buffer.add_string b "</tr>")
      rows;
    Buffer.add_string b "</table>"
  end

let section_history b (runs : History.run list) =
  Buffer.add_string b "<h2 id=\"history\">History</h2>";
  if runs = [] then
    Buffer.add_string b "<p class=\"muted\">no recorded runs</p>"
  else begin
    Buffer.add_string b
      (Printf.sprintf "<p>%d recorded runs</p>" (List.length runs));
    Buffer.add_string b
      "<table><tr><th class=\"l\">bench</th><th class=\"l\">benchmark</th>\
       <th class=\"l\">stage</th><th class=\"l\">field</th><th>runs</th>\
       <th>median</th><th>latest</th><th>delta</th>\
       <th class=\"l\">trend</th></tr>";
    List.iter
      (fun (s : History.series) ->
        let latest = List.nth s.values (List.length s.values - 1) in
        let verdict = History.judge History.default_thresholds s in
        let cls, median_s, delta_s =
          match verdict with
          | None -> ("", "-", "-")
          | Some v ->
            ( (if v.History.v_regressed then " class=\"bad\"" else ""),
              fnum v.History.v_reference,
              Printf.sprintf "%+.1f%%" v.History.v_delta_pct )
        in
        Buffer.add_string b
          (Printf.sprintf
             "<tr%s><td class=\"l\">%s</td><td class=\"l\">%s</td>\
              <td class=\"l\">%s</td><td class=\"l\">%s</td><td>%d</td>\
              <td>%s</td><td>%s</td><td>%s</td><td class=\"l\">%s</td></tr>"
             cls (esc s.History.s_bench) (esc s.History.s_benchmark)
             (esc s.History.s_stage) (esc s.History.s_field)
             (List.length s.values) median_s (fnum latest) delta_s
             (sparkline s.values)))
      (History.series_of_runs runs);
    Buffer.add_string b "</table>"
  end

(* -- the page -- *)

let render ?(title = "genlog dashboard") ?trace ?bench ?(history = []) () :
    string =
  let b = Buffer.create 16384 in
  Buffer.add_string b
    (Printf.sprintf
       "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">\
        <meta name=\"viewport\" content=\"width=device-width\">\
        <title>%s</title><style>%s</style></head><body><h1>%s</h1>"
       (esc title) style (esc title));
  section_meta b;
  (match trace with
  | Some t ->
    let rows = Trace.summarize t in
    section_passes b t rows;
    section_sat b t rows
  | None -> ());
  (match bench with Some j -> section_bench b j | None -> ());
  section_history b history;
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b

let write_file ?title ?trace ?bench ?history ~path () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?title ?trace ?bench ?history ()))
