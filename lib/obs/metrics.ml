(* Allocation-light metrics registries: the fine-grained half of the
   observability layer, below the span/counter level of trace.ml.

   A registry belongs to one algorithm invocation and holds named
   counters, gauges, and log2-bucketed histograms.  Handles ([counter],
   [histogram]) are looked up once outside the hot loop; recording into
   them is a couple of stores and never allocates, so metrics can sit
   inside per-node and per-cut loops.  A [Null] registry hands out a
   shared scratch handle whose updates go nowhere, so call sites need no
   branches — but hot loops should still guard with [enabled] to skip
   building observation values at all.

   Histograms bucket by log2: bucket 0 holds zero (and clamped negatives),
   bucket i >= 1 holds values in [2^(i-1), 2^i).  63 buckets cover the
   whole native int range including max_int, so bucketing needs no
   overflow checks.  [emit] renders the registry as one [Trace.Metrics]
   event; a registry built from a [Null] trace emits nothing. *)

type counter = { mutable c : int }

type histogram = {
  mutable n : int;
  mutable sum : float;  (* float: observations near max_int overflow ints *)
  mutable mn : int;
  mutable mx : int;
  buckets : int array;  (* 64 slots; index = bits of the observed value *)
}

type item = Counter of counter | Gauge of counter | Hist of histogram

type registry = {
  algo : string;
  index : (string, item) Hashtbl.t;
  mutable rev_names : string list;  (* registration order, newest first *)
}

type t = Null | Reg of registry

let null = Null
let enabled = function Null -> false | Reg _ -> true

let create ~algo () =
  Reg { algo; index = Hashtbl.create 8; rev_names = [] }

(* The conventional constructor: a registry exactly when the trace is
   live, [Null] (free) otherwise. *)
let of_trace trace ~algo =
  if Trace.enabled trace then create ~algo () else Null

let new_histogram () =
  { n = 0; sum = 0.0; mn = max_int; mx = min_int; buckets = Array.make 64 0 }

(* Scratch sinks handed out by [Null] registries: shared, updated,
   never read. *)
let scratch_counter = { c = 0 }
let scratch_histogram = new_histogram ()

let register reg name item =
  match Hashtbl.find_opt reg.index name with
  | Some existing -> existing
  | None ->
    Hashtbl.replace reg.index name item;
    reg.rev_names <- name :: reg.rev_names;
    item

let counter t name =
  match t with
  | Null -> scratch_counter
  | Reg reg -> (
    match register reg name (Counter { c = 0 }) with
    | Counter c -> c
    | Gauge _ | Hist _ -> invalid_arg ("Metrics.counter: " ^ name))

let gauge t name =
  match t with
  | Null -> scratch_counter
  | Reg reg -> (
    match register reg name (Gauge { c = 0 }) with
    | Gauge c -> c
    | Counter _ | Hist _ -> invalid_arg ("Metrics.gauge: " ^ name))

let histogram t name =
  match t with
  | Null -> scratch_histogram
  | Reg reg -> (
    match register reg name (Hist (new_histogram ())) with
    | Hist h -> h
    | Counter _ | Gauge _ -> invalid_arg ("Metrics.histogram: " ^ name))

let incr c = c.c <- c.c + 1
let add c v = c.c <- c.c + v
let set c v = c.c <- v

(* Bucket index of [v]: its bit count.  0 (and negatives, clamped) land in
   bucket 0; 1 in bucket 1; [2,3] in bucket 2; ... max_int (62 bits) in
   bucket 62. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x <> 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

(* Inclusive lower bound of bucket [i]. *)
let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. float_of_int v;
  if v < h.mn then h.mn <- v;
  if v > h.mx then h.mx <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* Latency observation: seconds -> whole nanoseconds.  One log2 bucket is
   a factor of two in time, which is the right resolution for "where did
   rewrite's time go". *)
let observe_time h seconds =
  observe h (int_of_float (Float.max 0.0 (seconds *. 1e9)))

let summary (h : histogram) : Trace.hist =
  let buckets = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  {
    Trace.h_count = h.n;
    h_sum = h.sum;
    h_min = (if h.n = 0 then 0 else h.mn);
    h_max = (if h.n = 0 then 0 else h.mx);
    h_buckets = !buckets;
  }

(* Render the registry as one [Trace.Metrics] event, items in
   registration order.  Empty registries stay silent. *)
let emit t trace =
  match t with
  | Null -> ()
  | Reg reg ->
    if reg.rev_names <> [] then begin
      let counters = ref [] and gauges = ref [] and hists = ref [] in
      List.iter
        (fun name ->
          match Hashtbl.find reg.index name with
          | Counter c -> counters := (name, c.c) :: !counters
          | Gauge c -> gauges := (name, c.c) :: !gauges
          | Hist h -> hists := (name, summary h) :: !hists)
        reg.rev_names;
      Trace.metrics trace ~algo:reg.algo ~counters:!counters ~gauges:!gauges
        ~hists:!hists
    end
