(* Chrome trace-event export: render a merged trace as the JSON object
   format chrome://tracing and Perfetto load natively, so a portfolio run
   reads as a flamegraph timeline without any custom viewer.

   Mapping:
   - every distinct [flow] label becomes one thread track ([tid], named
     via a "thread_name" metadata event) — the portfolio's domains show up
     as parallel tracks under one process;
   - each pass span becomes a complete event (ph "X") anchored at the
     span's [pass_begin] timestamp with the measured duration, carrying
     gates/depth before/after and the GC delta as [args];
   - counters / metrics / sampled node events become thread-scoped
     instant events (ph "i") at their timestamp.

   Timestamps are microseconds (the format's unit).  Complete events are
   anchored at their *begin* time while they are paired at their end
   event, so the output is stable-sorted by timestamp before writing —
   [ts] is monotone over the whole file and therefore per track. *)

let us t = t *. 1e6

(* Assign tids by first appearance so track order mirrors flow start
   order; the root flow "" renders as "main". *)
let flow_tracks events =
  let tids = Hashtbl.create 8 in
  let order = ref [] in
  let see flow =
    if not (Hashtbl.mem tids flow) then begin
      Hashtbl.replace tids flow (Hashtbl.length tids + 1);
      order := flow :: !order
    end
  in
  List.iter
    (function
      | Trace.Pass_begin { flow; _ }
      | Trace.Pass_end { flow; _ }
      | Trace.Counters { flow; _ }
      | Trace.Metrics { flow; _ }
      | Trace.Node_event { flow; _ }
      | Trace.Race { flow; _ }
      | Trace.Degraded { flow; _ } -> see flow)
    events;
  (tids, List.rev !order)

let track_name flow = if flow = "" then "main" else flow

let esc = Trace.escape

let counters_args cs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (esc k) v) cs)

(* Render every event as (sort timestamp, line); metadata events carry no
   timestamp and are emitted first, unsorted. *)
let lines (t : Trace.t) =
  let events = Trace.events t in
  let tids, order = flow_tracks events in
  let tid flow = Hashtbl.find tids flow in
  let meta =
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"genlog\"}}"
    :: List.map
         (fun flow ->
           Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             (tid flow)
             (esc (track_name flow)))
         order
  in
  (* spans never nest within one flow, so one pending begin per flow
     pairs every end with its begin *)
  let pending : (string, float * int * int) Hashtbl.t = Hashtbl.create 8 in
  let timed = ref [] in
  let emit ts line = timed := (ts, line) :: !timed in
  List.iter
    (function
      | Trace.Pass_begin { t; flow; gates; depth; _ } ->
        Hashtbl.replace pending flow (t, gates, depth)
      | Trace.Pass_end { t; flow; pass; gates; depth; elapsed; gc; _ } ->
        let t0, gates0, depth0 =
          match Hashtbl.find_opt pending flow with
          | Some p ->
            Hashtbl.remove pending flow;
            p
          | None -> (t -. elapsed, gates, depth)
        in
        emit t0
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"pass\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"gates_before\":%d,\"gates_after\":%d,\"depth_before\":%d,\"depth_after\":%d,\"gc_minor_words\":%.0f,\"gc_major_words\":%.0f}}"
             (esc pass) (us t0)
             (us elapsed)
             (tid flow) gates0 gates depth0 depth gc.Trace.minor_words
             gc.Trace.major_words)
      | Trace.Counters { t; flow; algo; counters } ->
        emit t
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"counters\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (esc algo) (us t) (tid flow) (counters_args counters))
      | Trace.Metrics { t; flow; algo; counters; gauges; hists } ->
        let hist_args =
          List.map
            (fun (k, h) ->
              Printf.sprintf "\"%s_count\":%d,\"%s_max\":%d" (esc k)
                h.Trace.h_count (esc k) h.Trace.h_max)
            hists
        in
        let args =
          String.concat ","
            (List.filter
               (fun s -> s <> "")
               ([ counters_args counters; counters_args gauges ] @ hist_args))
        in
        emit t
          (Printf.sprintf
             "{\"name\":\"%s metrics\",\"cat\":\"metrics\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (esc algo) (us t) (tid flow) args)
      | Trace.Node_event { t; flow; algo; node; gain; accepted } ->
        emit t
          (Printf.sprintf
             "{\"name\":\"%s node\",\"cat\":\"node\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"node\":%d,\"gain\":%d,\"accepted\":%b}}"
             (esc algo) (us t) (tid flow) node gain accepted)
      | Trace.Race { t; flow; algo; winner; configs } ->
        (* one instant per race: winner in the name so Perfetto's track
           shows who won at a glance, per-config work in the args *)
        let args =
          ("\"winner\":\"" ^ esc winner ^ "\"")
          :: List.map
               (fun (name, result, counters) ->
                 let g k =
                   Option.value ~default:0 (List.assoc_opt k counters)
                 in
                 Printf.sprintf
                   "\"%s\":\"%s c=%d p=%d\"" (esc name) (esc result)
                   (g "conflicts") (g "propagations"))
               configs
        in
        emit t
          (Printf.sprintf
             "{\"name\":\"%s race: %s\",\"cat\":\"race\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
             (esc algo) (esc winner) (us t) (tid flow)
             (String.concat "," args))
      | Trace.Degraded { t; flow; pass; reason; detail } ->
        (* an instant marker so degradations are visible on the timeline *)
        emit t
          (Printf.sprintf
             "{\"name\":\"degraded: %s\",\"cat\":\"degraded\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"pass\":\"%s\",\"detail\":\"%s\"}}"
             (esc reason) (us t) (tid flow) (esc pass) (esc detail)))
    events;
  let timed =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !timed)
  in
  meta @ List.map snd timed

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b line)
    (lines t);
  Buffer.add_string b
    (Printf.sprintf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{%s}}\n"
       (Runmeta.json_fields ()));
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
