(* Word-level circuit blocks, generic over the network representation.
   These are the building blocks of the EPFL-suite stand-in generators:
   everything is expressed with the generic constructors, so the same
   generator emits AIGs, MIGs, XAGs or XMGs.

   Words are little-endian signal arrays (index 0 = LSB). *)

module Make (N : Network.Intf.BUILDER) = struct
  type word = N.signal array

  let constant_word t ~width v : word =
    ignore t;
    Array.init width (fun i -> N.constant ((v lsr i) land 1 = 1))

  let input_word t ~width : word = Array.init width (fun _ -> N.create_pi t)

  let output_word t (w : word) = Array.iter (fun s -> N.create_po t s) w

  (* -- addition -- *)

  let full_adder t a b c =
    let sum = N.create_xor t (N.create_xor t a b) c in
    let carry = N.create_maj t a b c in
    (sum, carry)

  (* Ripple-carry adder; returns the sum word and the carry out. *)
  let ripple_adder t (a : word) (b : word) cin : word * N.signal =
    assert (Array.length a = Array.length b);
    let carry = ref cin in
    let sum =
      Array.mapi
        (fun i ai ->
          let s, c = full_adder t ai b.(i) !carry in
          carry := c;
          s)
        a
    in
    (sum, !carry)

  let add t a b = ripple_adder t a b (N.constant false)

  (* a - b = a + ~b + 1; the returned carry is 1 when a >= b. *)
  let subtract t (a : word) (b : word) : word * N.signal =
    ripple_adder t a (Array.map N.complement b) (N.constant true)

  (* unsigned comparison: a < b *)
  let less_than t a b =
    let _, geq = subtract t a b in
    N.complement geq

  (* -- multiplexing and shifting -- *)

  let mux t s a b = N.create_ite t s a b

  let mux_word t s (a : word) (b : word) : word =
    Array.init (Array.length a) (fun i -> mux t s a.(i) b.(i))

  (* Logical right/left barrel shifter with log-depth mux stages. *)
  let barrel_shifter t ?(left = false) (data : word) (shamt : word) : word =
    let width = Array.length data in
    let shifted = ref (Array.copy data) in
    Array.iteri
      (fun stage s ->
        let k = 1 lsl stage in
        let moved =
          Array.init width (fun i ->
              let src = if left then i - k else i + k in
              if src < 0 || src >= width then N.constant false
              else !shifted.(src))
        in
        shifted := mux_word t s moved !shifted)
      shamt;
    !shifted

  (* -- multiplication -- *)

  (* Array multiplier: partial products summed with ripple adders. *)
  let multiplier t (a : word) (b : word) : word =
    let wa = Array.length a and wb = Array.length b in
    let width = wa + wb in
    let acc = ref (constant_word t ~width 0) in
    Array.iteri
      (fun j bj ->
        let partial =
          Array.init width (fun i ->
              if i >= j && i - j < wa then N.create_and t a.(i - j) bj
              else N.constant false)
        in
        let sum, _ = add t !acc partial in
        acc := sum)
      b;
    !acc

  let square t (a : word) : word = multiplier t a a

  (* -- division and square root (restoring) -- *)

  (* Restoring divider: [width]-bit dividend / divisor -> quotient,
     remainder. *)
  let divider t (a : word) (b : word) : word * word =
    let width = Array.length a in
    assert (Array.length b = width);
    let quotient = Array.make width (N.constant false) in
    (* remainder register, width+1 bits to absorb the shift *)
    let rem = ref (constant_word t ~width:(width + 1) 0) in
    let b_ext = Array.append b [| N.constant false |] in
    for i = width - 1 downto 0 do
      (* shift remainder left, bring in dividend bit i *)
      let shifted =
        Array.init (width + 1) (fun j ->
            if j = 0 then a.(i) else !rem.(j - 1))
      in
      let diff, geq = subtract t shifted b_ext in
      quotient.(i) <- geq;
      rem := mux_word t geq diff shifted
    done;
    (quotient, Array.sub !rem 0 width)

  (* Restoring square root: [2k]-bit radicand -> k-bit root and remainder. *)
  let sqrt t (a : word) : word * word =
    let width = Array.length a in
    assert (width mod 2 = 0);
    let k = width / 2 in
    let root = Array.make k (N.constant false) in
    let rw = k + 2 in
    let rem = ref (constant_word t ~width:rw 0) in
    for i = k - 1 downto 0 do
      (* shift in the next two radicand bits *)
      let shifted =
        Array.init rw (fun j ->
            if j = 0 then a.(2 * i)
            else if j = 1 then a.((2 * i) + 1)
            else !rem.(j - 2))
      in
      (* trial subtrahend (partial_root << 2) | 01, where partial_root holds
         the already-computed bits above position i *)
      let trial =
        Array.init rw (fun j ->
            if j = 0 then N.constant true
            else if j = 1 then N.constant false
            else
              let src = j - 2 + i + 1 in
              if src < k then root.(src) else N.constant false)
      in
      let diff, geq = subtract t shifted trial in
      root.(i) <- geq;
      rem := mux_word t geq diff shifted
    done;
    (* the remainder can reach 2*root, which needs k+1 bits *)
    (root, Array.sub !rem 0 (k + 1))

  (* -- encoders / decoders / selection -- *)

  (* Priority encoder: index of the highest set bit, plus a valid flag. *)
  let priority_encoder t (x : word) : word * N.signal =
    let n = Array.length x in
    let bits = ref 0 in
    while 1 lsl !bits < n do
      incr bits
    done;
    let out = Array.make !bits (N.constant false) in
    (* none_above.(i): no bit above position i is set — computed by a scan *)
    let valid = ref (N.constant false) in
    let index = ref (constant_word t ~width:!bits 0) in
    for i = 0 to n - 1 do
      (* if x_i then index = i *)
      let const_i = constant_word t ~width:!bits i in
      index := mux_word t x.(i) const_i !index;
      valid := N.create_or t !valid x.(i)
    done;
    Array.blit !index 0 out 0 !bits;
    (out, !valid)

  (* Full decoder: k select bits -> 2^k one-hot outputs. *)
  let decoder t (sel : word) : word =
    let k = Array.length sel in
    Array.init (1 lsl k) (fun v ->
        N.create_nary_and t
          (List.init k (fun i ->
               if (v lsr i) land 1 = 1 then sel.(i) else N.complement sel.(i))))

  (* Population count: widen each bit to a word and sum pairwise (a balanced
     adder tree). *)
  let popcount t (xs : N.signal list) : word =
    let pad width w =
      Array.init width (fun i ->
          if i < Array.length w then w.(i) else N.constant false)
    in
    let add_words a b =
      let width = max (Array.length a) (Array.length b) + 1 in
      let sum, _ = add t (pad width a) (pad width b) in
      sum
    in
    let rec reduce = function
      | [] -> [| N.constant false |]
      | [ w ] -> w
      | ws ->
        let rec pair = function
          | [] -> []
          | [ w ] -> [ w ]
          | a :: b :: rest -> add_words a b :: pair rest
        in
        reduce (pair ws)
    in
    reduce (List.map (fun x -> [| x |]) xs)

  (* max of a list of words, with the index of the winner *)
  let max_tree t (words : word list) : word * word =
    let rec go idx = function
      | [] -> invalid_arg "max_tree: empty"
      | [ w ] -> (w, constant_word t ~width:2 idx)
      | w :: rest ->
        let best_rest, best_idx = go (idx + 1) rest in
        let lt = less_than t w best_rest in
        let w' = mux_word t lt best_rest w in
        let idx' = mux_word t lt best_idx (constant_word t ~width:2 idx) in
        (w', idx')
    in
    go 0 words
end
