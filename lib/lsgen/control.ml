(* Control-logic generators: a rotating-priority arbiter (the "arbiter"
   benchmark class) and a seeded random-logic generator standing in for the
   EPFL control benchmarks (ctrl, cavlc, i2c, mem_ctrl, router) whose RTL
   is not available offline.  The random generator biases gate inputs
   towards recently created signals, which yields the moderately deep,
   reconvergent structure typical of control logic rather than a shallow
   random mess. *)

(* Generators only construct; the lone structural query is [num_gates],
   which the random generator uses to detect simplified-away gates. *)
module Make (N : sig
  include Network.Intf.BUILDER

  val num_gates : t -> int
end) =
struct
  module B = Blocks.Make (N)

  (* Rotating-priority (round-robin) arbiter: grant the first request at or
     after the pointer position.  Inputs: req[n] and a one-hot-ish pointer
     ptr[n]; outputs: grant[n] plus an any-grant flag. *)
  let rr_arbiter t (req : N.signal array) (ptr : N.signal array) :
      N.signal array * N.signal =
    let n = Array.length req in
    assert (Array.length ptr = n);
    (* carry chain: token travels from the pointer position through
       non-requesting slots, wrapping once around *)
    let grant = Array.make n (N.constant false) in
    (* token_in.(i) for the linear pass, seeded by ptr *)
    let token = ref (N.constant false) in
    (* two sweeps implement the wrap-around *)
    for sweep = 0 to 1 do
      for i = 0 to n - 1 do
        let arrives = N.create_or t !token ptr.(i) in
        let arrives = if sweep = 0 then arrives else N.create_or t arrives !token in
        let g = N.create_and t arrives req.(i) in
        grant.(i) <- N.create_or t grant.(i) g;
        (* token continues if it arrived but was not consumed *)
        token := N.create_and t arrives (N.complement req.(i))
      done
    done;
    (* make grants one-hot: mask later grants once one fired *)
    let any = ref (N.constant false) in
    let one_hot =
      Array.map
        (fun g ->
          let g' = N.create_and t g (N.complement !any) in
          any := N.create_or t !any g;
          g')
        grant
    in
    (one_hot, !any)

  (* Deterministic random control logic with locality bias. *)
  let random_logic t ~seed ~num_pis ~num_pos ~num_gates : unit =
    let rng = Random.State.make [| seed |] in
    let signals = ref [] in
    let count = ref 0 in
    let push s =
      signals := s :: !signals;
      incr count
    in
    for _ = 1 to num_pis do
      push (N.create_pi t)
    done;
    (* mostly uniform over all existing signals (keeps depth logarithmic,
       like real control logic), with a mild recency bias for reconvergence *)
    let pick () =
      let l = !signals in
      let len = List.length l in
      let idx =
        if Random.State.int rng 100 < 20 then Random.State.int rng (min 8 len)
        else Random.State.int rng len
      in
      let s = List.nth l idx in
      N.complement_if (Random.State.bool rng) s
    in
    (* Only non-trivial new gates are kept: simplified-away results (a
       constant or an existing signal) would otherwise accumulate at the
       head of the recency list and collapse everything downstream. *)
    let created = ref 0 in
    let attempts = ref 0 in
    while !created < num_gates && !attempts < 20 * num_gates do
      incr attempts;
      let before = N.num_gates t in
      let s =
        match Random.State.int rng 8 with
        | 0 | 1 | 2 -> N.create_and t (pick ()) (pick ())
        | 3 | 4 -> N.create_or t (pick ()) (pick ())
        | 5 -> N.create_xor t (pick ()) (pick ())
        | 6 -> N.create_ite t (pick ()) (pick ()) (pick ())
        | _ -> N.create_maj t (pick ()) (pick ()) (pick ())
      in
      if N.num_gates t > before then begin
        push s;
        incr created
      end
    done;
    (* outputs: drawn from the most recent signals so the logic is live *)
    let arr = Array.of_list !signals in
    for i = 0 to num_pos - 1 do
      let idx = i * Array.length arr / (2 * num_pos) in
      N.create_po t (N.complement_if (i land 1 = 1) arr.(idx mod Array.length arr))
    done
end
