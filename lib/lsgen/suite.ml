(* The EPFL-combinational-suite stand-in (see DESIGN.md, substitutions):
   one generator per benchmark class, at widths scaled so that the whole
   suite optimizes in minutes rather than hours.  Each generator produces
   the same circuit family as its EPFL namesake — deep carry chains where
   the original is arithmetic, XOR-rich logic where it is, wide
   unstructured control where it is — so the optimization trends of the
   paper's Table 2 are exercised by the same code paths.

   All generators are expressed with generic constructors and therefore
   work for every representation; Table 2 uses the AIG instantiation as
   the baseline, exactly like the paper. *)

module Make (N : sig
  include Network.Intf.BUILDER

  val num_gates : t -> int
end) =
struct
  module B = Blocks.Make (N)
  module C = Control.Make (N)

  let adder ~width t =
    let a = B.input_word t ~width and b = B.input_word t ~width in
    let sum, carry = B.add t a b in
    B.output_word t sum;
    N.create_po t carry

  let arbiter ~width t =
    let req = B.input_word t ~width and ptr = B.input_word t ~width in
    let grant, any = C.rr_arbiter t req ptr in
    B.output_word t grant;
    N.create_po t any

  let bar ~width t =
    let bits = int_of_float (Float.log2 (float_of_int width)) in
    let data = B.input_word t ~width in
    let shamt = B.input_word t ~width:bits in
    B.output_word t (B.barrel_shifter t data shamt)

  let cavlc t = C.random_logic t ~seed:0xCA ~num_pis:10 ~num_pos:11 ~num_gates:700
  let ctrl t = C.random_logic t ~seed:0xC7 ~num_pis:7 ~num_pos:26 ~num_gates:180

  let dec ~width t =
    let sel = B.input_word t ~width in
    B.output_word t (B.decoder t sel)

  let div ~width t =
    let a = B.input_word t ~width and b = B.input_word t ~width in
    let q, r = B.divider t a b in
    B.output_word t q;
    B.output_word t r

  let i2c t = C.random_logic t ~seed:0x12C ~num_pis:147 ~num_pos:142 ~num_gates:1300

  let int2float t =
    (* 11-bit unsigned integer -> 4-bit exponent + 3-bit mantissa *)
    let x = B.input_word t ~width:11 in
    let exp, _valid = B.priority_encoder t x in
    (* normalize: shift left so the leading one moves to the top, then take
       the next 3 bits *)
    let shamt =
      (* 11 - 1 - exp, as a 4-bit value: implemented as (10 - exp) *)
      let ten = B.constant_word t ~width:4 10 in
      let diff, _ = B.subtract t ten exp in
      diff
    in
    let shifted = B.barrel_shifter t ~left:true x shamt in
    let mantissa = [| shifted.(8); shifted.(9); shifted.(10) |] in
    B.output_word t exp;
    B.output_word t mantissa

  let log2 ~width t =
    (* fixed-point log2 by repeated squaring: each output bit doubles the
       running mantissa through a truncated squarer (stand-in for the EPFL
       log2, same multiplier-chain structure) *)
    let x = B.input_word t ~width in
    let running = ref x in
    let out = ref [] in
    for _ = 1 to width do
      let sq = B.square t !running in
      (* output bit: overflow of the square's top bit *)
      let top = sq.((2 * width) - 1) in
      out := top :: !out;
      (* renormalize: keep the upper half, conditionally shifted *)
      let hi = Array.sub sq width width in
      let lo = Array.sub sq (width - 1) width in
      running := B.mux_word t top hi lo
    done;
    List.iter (fun s -> N.create_po t s) (List.rev !out)

  let max4 ~width t =
    let words = List.init 4 (fun _ -> B.input_word t ~width) in
    let best, idx = B.max_tree t words in
    B.output_word t best;
    B.output_word t idx

  let mem_ctrl t =
    C.random_logic t ~seed:0x3E3 ~num_pis:1204 ~num_pos:1231 ~num_gates:4200

  let multiplier ~width t =
    let a = B.input_word t ~width and b = B.input_word t ~width in
    B.output_word t (B.multiplier t a b)

  let priority ~width t =
    let x = B.input_word t ~width in
    let idx, valid = B.priority_encoder t x in
    B.output_word t idx;
    N.create_po t valid

  let router t = C.random_logic t ~seed:0x707 ~num_pis:60 ~num_pos:30 ~num_gates:230

  let sin ~width t =
    (* CORDIC rotation: conditional add/subtract chains driven by the angle
       accumulator sign (stand-in for the EPFL sin with the same
       shift-and-add structure) *)
    let angle = B.input_word t ~width in
    let x = ref (B.constant_word t ~width 1) in
    let y = ref (B.constant_word t ~width 0) in
    let z = ref angle in
    let shift_right w k =
      Array.init width (fun i ->
          if i + k < width then w.(i + k) else N.constant false)
    in
    for k = 0 to width - 1 do
      let sign = !z.(width - 1) in
      (* d = +1 when z >= 0: x -= d*(y>>k), y += d*(x>>k), z -= d*alpha_k *)
      let ys = shift_right !y k and xs = shift_right !x k in
      let x_add, _ = B.add t !x ys in
      let x_sub, _ = B.subtract t !x ys in
      let y_add, _ = B.add t !y xs in
      let y_sub, _ = B.subtract t !y xs in
      let alpha = B.constant_word t ~width (1 lsl (max 0 (width - 2 - k))) in
      let z_add, _ = B.add t !z alpha in
      let z_sub, _ = B.subtract t !z alpha in
      x := B.mux_word t sign x_add x_sub;
      y := B.mux_word t sign y_sub y_add;
      z := B.mux_word t sign z_add z_sub
    done;
    B.output_word t !y;
    N.create_po t !z.(width - 1)

  let sqrt ~width t =
    let a = B.input_word t ~width in
    let root, _rem = B.sqrt t a in
    B.output_word t root

  let square ~width t =
    let a = B.input_word t ~width in
    B.output_word t (B.square t a)

  let voter ~n t =
    let xs = List.init n (fun _ -> N.create_pi t) in
    let count = B.popcount t xs in
    (* majority: count > n/2, i.e. count >= n/2 + 1 *)
    let bits = Array.length count in
    let threshold = B.constant_word t ~width:bits ((n / 2) + 1) in
    let _, geq = B.subtract t count threshold in
    N.create_po t geq

  (* Benchmark registry: name, builder.  Widths are the scaled-down
     defaults recorded in EXPERIMENTS.md. *)
  let builders : (string * (N.t -> unit)) list =
    [
      ("adder", adder ~width:32);
      ("arbiter", arbiter ~width:32);
      ("bar", bar ~width:32);
      ("cavlc", cavlc);
      ("ctrl", ctrl);
      ("dec", dec ~width:8);
      ("div", div ~width:16);
      ("i2c", i2c);
      ("int2float", int2float);
      ("log2", log2 ~width:8);
      ("max", max4 ~width:32);
      ("mem_ctrl", mem_ctrl);
      ("multiplier", multiplier ~width:14);
      ("priority", priority ~width:64);
      ("router", router);
      ("sin", sin ~width:10);
      ("sqrt", sqrt ~width:32);
      ("square", square ~width:16);
      ("voter", voter ~n:301);
    ]

  let names = List.map fst builders

  let build name : N.t =
    match List.assoc_opt name builders with
    | Some f ->
      let t = N.create () in
      f t;
      t
    | None -> invalid_arg ("Suite.build: unknown benchmark " ^ name)
end
