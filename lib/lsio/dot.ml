(* Graphviz DOT writer, generic over the representation — handy for
   inspecting small networks in the examples and during debugging. *)

module Make (N : Network.Intf.STRUCTURE) = struct
  let write (t : N.t) (oc : out_channel) =
    Printf.fprintf oc "digraph %s {\n  rankdir=BT;\n" N.name;
    N.foreach_pi t (fun n ->
        Printf.fprintf oc "  n%d [shape=box,label=\"pi%d\"];\n" n
          (N.pi_index t n));
    N.foreach_gate t (fun n ->
        Printf.fprintf oc "  n%d [shape=ellipse,label=\"%s %d\"];\n" n
          (Network.Kind.name (N.gate_kind t n))
          n);
    N.foreach_gate t (fun n ->
        Array.iter
          (fun s ->
            Printf.fprintf oc "  n%d -> n%d%s;\n" (N.node_of_signal s) n
              (if N.is_complemented s then " [style=dashed]" else ""))
          (N.fanin t n));
    let po_index = ref (-1) in
    N.foreach_po t (fun s ->
        incr po_index;
        Printf.fprintf oc "  po%d [shape=invtriangle];\n" !po_index;
        Printf.fprintf oc "  n%d -> po%d%s;\n" (N.node_of_signal s) !po_index
          (if N.is_complemented s then " [style=dashed]" else ""));
    Printf.fprintf oc "}\n"

  let write_file (t : N.t) (path : string) =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write t oc)
end
