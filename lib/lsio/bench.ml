(* BENCH-format writer (generic over the network representation) and
   reader (into k-LUT networks).  BENCH has no complemented edges, so the
   writer materializes complements as NOT lines (deduplicated per node);
   the reader folds NOT/BUFF back into complemented signals and turns
   every logic operator into the equivalent LUT. *)

module Make (N : Network.Intf.STRUCTURE) = struct
  let write (t : N.t) (oc : out_channel) =
    let name n = Printf.sprintf "n%d" n in
    let inverters = Hashtbl.create 16 in
    let buf = Buffer.create 4096 in
    let operand s =
      let n = N.node_of_signal s in
      if N.is_complemented s then begin
        if not (Hashtbl.mem inverters n) then begin
          Hashtbl.replace inverters n ();
          Buffer.add_string buf (Printf.sprintf "%s_n = NOT(%s)\n" (name n) (name n))
        end;
        name n ^ "_n"
      end
      else name n
    in
    N.foreach_pi t (fun n -> Printf.fprintf oc "INPUT(%s)\n" (name n));
    let po_index = ref (-1) in
    N.foreach_po t (fun _ ->
        incr po_index;
        Printf.fprintf oc "OUTPUT(po%d)\n" !po_index);
    Buffer.add_string buf (Printf.sprintf "%s = gnd\n" (name 0));
    N.foreach_gate t (fun n ->
        let ins = Array.map operand (N.fanin t n) in
        let args = String.concat ", " (Array.to_list ins) in
        let line =
          match N.gate_kind t n with
          | Network.Kind.And -> Printf.sprintf "%s = AND(%s)\n" (name n) args
          | Network.Kind.Xor -> Printf.sprintf "%s = XOR(%s)\n" (name n) args
          | Network.Kind.Maj ->
            (* BENCH has no MAJ primitive; expand via AND/OR *)
            Printf.sprintf
              "%s_ab = AND(%s, %s)\n%s_ac = AND(%s, %s)\n%s_bc = AND(%s, %s)\n%s = OR(%s_ab, %s_ac, %s_bc)\n"
              (name n) ins.(0) ins.(1) (name n) ins.(0) ins.(2) (name n)
              ins.(1) ins.(2) (name n) (name n) (name n) (name n)
          | Network.Kind.Lut tt ->
            Printf.sprintf "%s = LUT 0x%s(%s)\n" (name n) (Kitty.Tt.to_hex tt) args
          | Network.Kind.Const | Network.Kind.Pi -> assert false
        in
        Buffer.add_string buf line);
    (* PO buffers may add late inverter definitions to [buf], so render them
       before flushing *)
    let po_lines = Buffer.create 256 in
    po_index := -1;
    N.foreach_po t (fun s ->
        incr po_index;
        Buffer.add_string po_lines
          (Printf.sprintf "po%d = BUFF(%s)\n" !po_index (operand s)));
    output_string oc (Buffer.contents buf);
    output_string oc (Buffer.contents po_lines)

  let write_file (t : N.t) (path : string) =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write t oc)
end

(* -- reader -- *)

exception Parse_error of string

(* A parsed right-hand side.  NOT/BUFF stay symbolic so they can be folded
   into signal complements instead of becoming gates. *)
type rhs =
  | Gnd
  | Vdd
  | Unary of bool * string  (* complemented?, operand *)
  | Gate of Kitty.Tt.t * string list  (* local function over the operands *)

(* Truth table of an n-ary BENCH operator over [k] variables. *)
let op_tt op k =
  let open Kitty.Tt in
  if k = 0 then raise (Parse_error ("operator without operands: " ^ op));
  let fold f =
    let acc = ref (nth_var k 0) in
    for i = 1 to k - 1 do
      acc := f !acc (nth_var k i)
    done;
    !acc
  in
  match op with
  | "AND" -> fold ( &: )
  | "NAND" -> ( ~: ) (fold ( &: ))
  | "OR" -> fold ( |: )
  | "NOR" -> ( ~: ) (fold ( |: ))
  | "XOR" -> fold ( ^: )
  | "XNOR" -> ( ~: ) (fold ( ^: ))
  | _ -> raise (Parse_error ("unsupported BENCH operator: " ^ op))

(* "OP(a, b, ...)" -> (OP, [a; b; ...]) *)
let parse_call s =
  match String.index_opt s '(' with
  | None -> raise (Parse_error ("expected operator call: " ^ s))
  | Some i ->
    let j =
      match String.rindex_opt s ')' with
      | Some j when j > i -> j
      | _ -> raise (Parse_error ("unbalanced parentheses: " ^ s))
    in
    let op = String.trim (String.sub s 0 i) in
    let args =
      String.sub s (i + 1) (j - i - 1)
      |> String.split_on_char ','
      |> List.map String.trim
      |> List.filter (fun a -> a <> "")
    in
    (op, args)

(* Read a combinational BENCH netlist into a k-LUT network (the same
   container the BLIF reader targets): INPUT/OUTPUT, gnd/vdd, NOT/BUFF,
   AND/NAND/OR/NOR/XOR/XNOR and LUT 0x<hex>.  Definitions may appear in
   any order; names are resolved recursively with cycle detection. *)
let read (ic : in_channel) : Network.Klut.t =
  let module Klut = Network.Klut in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, rhs) Hashtbl.t = Hashtbl.create 64 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line.[0] = '#' then ()
       else
         match String.index_opt line '=' with
         | None -> (
           let op, args = parse_call line in
           match (String.uppercase_ascii op, args) with
           | "INPUT", [ x ] -> inputs := x :: !inputs
           | "OUTPUT", [ x ] -> outputs := x :: !outputs
           | _ -> raise (Parse_error ("unsupported line: " ^ line)))
         | Some e ->
           let name = String.trim (String.sub line 0 e) in
           let rhs_s =
             String.trim (String.sub line (e + 1) (String.length line - e - 1))
           in
           let rhs =
             match String.lowercase_ascii rhs_s with
             | "gnd" -> Gnd
             | "vdd" -> Vdd
             | _ -> (
               let op, args = parse_call rhs_s in
               let opu = String.uppercase_ascii op in
               match (opu, args) with
               | "NOT", [ x ] -> Unary (true, x)
               | "BUFF", [ x ] -> Unary (false, x)
               | _ ->
                 if String.length opu >= 3 && String.sub opu 0 3 = "LUT" then begin
                   let table = String.trim (String.sub op 3 (String.length op - 3)) in
                   if
                     String.length table < 3
                     || table.[0] <> '0'
                     || (table.[1] <> 'x' && table.[1] <> 'X')
                   then raise (Parse_error ("bad LUT table: " ^ rhs_s));
                   let hex = String.sub table 2 (String.length table - 2) in
                   Gate (Kitty.Tt.of_hex (List.length args) hex, args)
                 end
                 else Gate (op_tt opu (List.length args), args))
           in
           if Hashtbl.mem defs name then
             raise (Parse_error ("redefinition of " ^ name));
           Hashtbl.replace defs name rhs
     done
   with End_of_file -> ());
  let t = Klut.create () in
  let signals : (string, Klut.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun x -> Hashtbl.replace signals x (Klut.create_pi t))
    (List.rev !inputs);
  let visiting = Hashtbl.create 16 in
  let rec resolve name =
    match Hashtbl.find_opt signals name with
    | Some s -> s
    | None ->
      if Hashtbl.mem visiting name then
        raise (Parse_error ("combinational cycle through " ^ name));
      Hashtbl.replace visiting name ();
      let s =
        match Hashtbl.find_opt defs name with
        | None -> raise (Parse_error ("undefined signal " ^ name))
        | Some Gnd -> Klut.constant false
        | Some Vdd -> Klut.constant true
        | Some (Unary (c, x)) -> Klut.complement_if c (resolve x)
        | Some (Gate (tt, args)) ->
          Klut.create_lut t (Array.of_list (List.map resolve args)) tt
      in
      Hashtbl.remove visiting name;
      Hashtbl.replace signals name s;
      s
  in
  List.iter (fun x -> Klut.create_po t (resolve x)) (List.rev !outputs);
  t

let read_file (path : string) : Network.Klut.t =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
