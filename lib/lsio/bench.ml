(* BENCH-format writer, generic over the network representation.  BENCH has
   no complemented edges, so complements are materialized as NOT lines
   (deduplicated per node). *)

module Make (N : Network.Intf.STRUCTURE) = struct
  let write (t : N.t) (oc : out_channel) =
    let name n = Printf.sprintf "n%d" n in
    let inverters = Hashtbl.create 16 in
    let buf = Buffer.create 4096 in
    let operand s =
      let n = N.node_of_signal s in
      if N.is_complemented s then begin
        if not (Hashtbl.mem inverters n) then begin
          Hashtbl.replace inverters n ();
          Buffer.add_string buf (Printf.sprintf "%s_n = NOT(%s)\n" (name n) (name n))
        end;
        name n ^ "_n"
      end
      else name n
    in
    N.foreach_pi t (fun n -> Printf.fprintf oc "INPUT(%s)\n" (name n));
    let po_index = ref (-1) in
    N.foreach_po t (fun _ ->
        incr po_index;
        Printf.fprintf oc "OUTPUT(po%d)\n" !po_index);
    Buffer.add_string buf (Printf.sprintf "%s = gnd\n" (name 0));
    N.foreach_gate t (fun n ->
        let ins = Array.map operand (N.fanin t n) in
        let args = String.concat ", " (Array.to_list ins) in
        let line =
          match N.gate_kind t n with
          | Network.Kind.And -> Printf.sprintf "%s = AND(%s)\n" (name n) args
          | Network.Kind.Xor -> Printf.sprintf "%s = XOR(%s)\n" (name n) args
          | Network.Kind.Maj ->
            (* BENCH has no MAJ primitive; expand via AND/OR *)
            Printf.sprintf
              "%s_ab = AND(%s, %s)\n%s_ac = AND(%s, %s)\n%s_bc = AND(%s, %s)\n%s = OR(%s_ab, %s_ac, %s_bc)\n"
              (name n) ins.(0) ins.(1) (name n) ins.(0) ins.(2) (name n)
              ins.(1) ins.(2) (name n) (name n) (name n) (name n)
          | Network.Kind.Lut tt ->
            Printf.sprintf "%s = LUT 0x%s(%s)\n" (name n) (Kitty.Tt.to_hex tt) args
          | Network.Kind.Const | Network.Kind.Pi -> assert false
        in
        Buffer.add_string buf line);
    (* PO buffers may add late inverter definitions to [buf], so render them
       before flushing *)
    let po_lines = Buffer.create 256 in
    po_index := -1;
    N.foreach_po t (fun s ->
        incr po_index;
        Buffer.add_string po_lines
          (Printf.sprintf "po%d = BUFF(%s)\n" !po_index (operand s)));
    output_string oc (Buffer.contents buf);
    output_string oc (Buffer.contents po_lines)

  let write_file (t : N.t) (path : string) =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write t oc)
end
