(* Conversion between network representations.

   Traverses the source network in topological (creation-compatible) order
   and rebuilds every gate in the destination with the destination's own
   constructors; structural hashing in the destination deduplicates on the
   fly.  [Cleanup] (same-type conversion) also sweeps dangling nodes and
   re-strashes. *)

(* The source is only traversed, the destination only built: conversion
   needs no refcounting or substitution on either side. *)
module Make (Src : Intf.TRAVERSABLE) (Dst : Intf.BUILDER) = struct
  module B = Build.Make (Dst)

  (* Topological order over live source nodes (substitutions may have broken
     creation order, so a DFS from the outputs is required). *)
  let topological_order src =
    let id = Src.new_traversal_id src in
    let order = ref [] in
    let rec visit n =
      if Src.visited src n <> id then begin
        Src.set_visited src n id;
        if Src.is_gate src n then begin
          Array.iter (fun s -> visit (Src.node_of_signal s)) (Src.fanin src n);
          order := n :: !order
        end
      end
    in
    Src.foreach_po src (fun s -> visit (Src.node_of_signal s));
    List.rev !order

  let convert (src : Src.t) : Dst.t =
    let dst = Dst.create ~initial_capacity:(Src.size src) () in
    (* map source node -> destination signal *)
    let map = Array.make (Src.size src) (-1) in
    map.(0) <- Dst.constant false;
    Src.foreach_pi src (fun n -> map.(n) <- Dst.create_pi dst);
    List.iter
      (fun n ->
        let fanins =
          Array.map
            (fun s ->
              let m = map.(Src.node_of_signal s) in
              assert (m >= 0);
              Dst.complement_if (Src.is_complemented s) m)
            (Src.fanin src n)
        in
        map.(n) <- B.of_kind dst (Src.gate_kind src n) fanins)
      (topological_order src);
    Src.foreach_po src (fun s ->
        let m = map.(Src.node_of_signal s) in
        Dst.create_po dst (Dst.complement_if (Src.is_complemented s) m));
    dst
end

(* Same-type copy that drops dangling and dead nodes. *)
module Cleanup (N : sig
  include Intf.TRAVERSABLE

  include
    Intf.CONSTRUCT
      with type t := t
       and type node := int
       and type signal := Signal.t
end) =
struct
  module C = Make (N) (N)

  let cleanup = C.convert
end
