(* Layer 1 of the paper's architecture: the network interface API.

   The interface is a lattice of capability signatures rather than one
   monolithic module type.  Every algorithm in [Algo] is a functor over the
   smallest capability slice it actually uses — a depth computation demands
   [STRUCTURE] and [SCRATCH], never substitution or reference counting — so
   a network implementation that does not provide a required method simply
   does not type-check against that functor.  This is the OCaml analogue of
   the paper's per-algorithm compile-time static assertions, at honest
   granularity and with no dynamic polymorphism.

   Atomic capabilities:

     SIGNALS      pure signal algebra (no network value involved)
     STRUCTURE    read-only topology queries and iteration
     CONSTRUCT    node/PI/PO creation through the generic constructors
     REFCOUNT     reference counting for DAG-aware gain (paper §2.2.3)
     RESTRUCTURE  in-place substitution (paper §2.2.3)
     SCRATCH      per-node scratch values and traversal marks

   Named unions (the lattice points the algorithms actually sit at):

     BUILDER      SIGNALS + CONSTRUCT           circuit generators, decoders
     TRAVERSABLE  STRUCTURE + SCRATCH           topo, depth, cuts, simulation
     COUNTED      TRAVERSABLE + REFCOUNT        MFFC, windows, LUT mapping
     COSTED       TRAVERSABLE + REFCOUNT        cost engines (Algo.Cost)
     SWEEPABLE    TRAVERSABLE + RESTRUCTURE     SAT sweeping (fraig)
     NETWORK      everything                    rewrite, refactor, resub, ...

   [NETWORK] remains the union of all capabilities, so any module that
   satisfied the old monolithic signature still satisfies every slice. *)

(** Pure signal algebra: complement-annotated node references (see
    {!Signal}).  No [t] — these functions never touch a network. *)
module type SIGNALS = sig
  type node = int
  (** Nodes are dense integer indices; node 0 is the constant-false node. *)

  type signal = Signal.t
  (** A complement-annotated node reference; see {!Signal}. *)

  val signal_of_node : node -> signal
  val node_of_signal : signal -> node
  val is_complemented : signal -> bool
  val complement : signal -> signal
  val complement_if : bool -> signal -> signal
  val constant : bool -> signal
end

(** Read-only structure: sizes, node predicates, fanin/fanout access and
    iteration.  Includes {!SIGNALS} so that structural traversals can
    follow edges. *)
module type STRUCTURE = sig
  type t

  include SIGNALS

  val name : string
  val max_fanin : int

  val size : t -> int
  val num_gates : t -> int
  val num_pis : t -> int
  val num_pos : t -> int
  val is_constant : t -> node -> bool
  val is_pi : t -> node -> bool
  val is_gate : t -> node -> bool
  val is_dead : t -> node -> bool
  val gate_kind : t -> node -> Kind.t
  val fanin : t -> node -> signal array
  val fanin_size : t -> node -> int
  val fanout : t -> node -> node list
  val pi_at : t -> int -> node
  val po_at : t -> int -> signal
  val pis : t -> node array
  val pos : t -> signal array
  val pi_index : t -> node -> int

  (* iteration *)
  val foreach_node : t -> (node -> unit) -> unit
  val foreach_pi : t -> (node -> unit) -> unit
  val foreach_po : t -> (signal -> unit) -> unit
  val foreach_gate : t -> (node -> unit) -> unit
  val foreach_fanin : t -> node -> (signal -> unit) -> unit
  val gates : t -> node list

  val node_function : t -> node -> Kitty.Tt.t
  (** Local function of a gate over its fanins; edge complements are applied
      by the caller. *)

  val check_integrity : t -> string list
  (** Structural-invariant violations (empty when the network is sound);
      intended for tests and debugging. *)

  val pp_stats : Format.formatter -> t -> unit
end

(** Construction: primary inputs/outputs and the generic gate constructors
    (mandatory interface).  Signal complementation itself is pure — use
    {!SIGNALS}[.complement]; there is deliberately no [create_not]. *)
module type CONSTRUCT = sig
  type t
  type node = int
  type signal = Signal.t

  val create : ?initial_capacity:int -> unit -> t
  val create_pi : t -> signal
  val create_po : t -> signal -> unit
  val set_po : t -> int -> signal -> unit

  val create_and : t -> signal -> signal -> signal
  val create_or : t -> signal -> signal -> signal
  val create_xor : t -> signal -> signal -> signal
  val create_maj : t -> signal -> signal -> signal -> signal
  val create_ite : t -> signal -> signal -> signal -> signal
  val create_nary_and : t -> signal list -> signal
  val create_nary_or : t -> signal list -> signal
  val create_nary_xor : t -> signal list -> signal

  val create_node : t -> Kind.t -> signal array -> signal
  (** Native node creation (used by cloning and database instantiation). *)
end

(** Reference counting for DAG-aware gain computation (paper §2.2.3). *)
module type REFCOUNT = sig
  type t
  type node = int

  val ref_count : t -> node -> int
  val incr_ref : t -> node -> int
  val decr_ref : t -> node -> int
  val recursive_deref : t -> node -> int
  val recursive_ref : t -> node -> int
end

(** In-place restructuring (paper §2.2.3). *)
module type RESTRUCTURE = sig
  type t
  type node = int
  type signal = Signal.t

  val substitute_node : t -> node -> signal -> unit
  val replace_in_outputs : t -> node -> signal -> unit
  val take_out_if_dead : t -> node -> unit
end

(** Scratch state for algorithms: per-node integer values and traversal
    marks. *)
module type SCRATCH = sig
  type t
  type node = int

  val set_value : t -> node -> int -> unit
  val value : t -> node -> int
  val incr_value : t -> node -> int
  val decr_value : t -> node -> int
  val clear_values : t -> unit
  val new_traversal_id : t -> int
  val set_visited : t -> node -> int -> unit
  val visited : t -> node -> int
end

(* -- named unions -- *)

(** What circuit generators and chain decoders need: constructors plus the
    pure signal algebra, nothing structural. *)
module type BUILDER = sig
  type t

  include SIGNALS

  include
    CONSTRUCT with type t := t and type node := int and type signal := Signal.t
end

(** Read-only traversal: structure queries plus traversal marks. *)
module type TRAVERSABLE = sig
  include STRUCTURE
  include SCRATCH with type t := t and type node := int
end

(** Traversal plus reference counting (MFFCs, windows, mapping). *)
module type COUNTED = sig
  include TRAVERSABLE
  include REFCOUNT with type t := t and type node := int
end

(** Traversal plus reference counting, named as the seam the cost-generic
    optimization layer ([Algo.Cost]) hangs off: a cost instance needs to
    walk the network ({!TRAVERSABLE}) and to account DAG-aware gain
    through MFFCs ({!REFCOUNT}), nothing more.  Structurally identical to
    {!COUNTED}; the separate name keeps the dependency honest — an
    algorithm demanding [COSTED] declares that it prices nodes, not that
    it maps them. *)
module type COSTED = sig
  include TRAVERSABLE
  include REFCOUNT with type t := t and type node := int
end

(** A cost objective over one network representation [net]: a commutative
    monoid [(t, zero, add)] with a total order [compare], a per-node price
    [of_node] and a whole-network objective [eval].  The conformance laws
    (checked for every built-in instance by [test_cost]):

    - [add zero x = x] and [add x zero = x]             (identity)
    - [add (add a b) c = add a (add b c)]               (associativity)
    - [add a b = add b a]                               (commutativity)
    - [compare] is a total order consistent with [equal = 0]
    - [eval net] equals the [add]-fold of [of_node net] over live gates

    Additive objectives (area, edges, activity, LUT count, weights) use
    integer [add = (+)]; depth is the max-monoid ([add = max]), which is
    why [eval] is part of the signature rather than derived. *)
module type COST = sig
  type net
  type t

  val name : string
  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
  val of_node : net -> int -> t
  val eval : net -> t
  val to_int : t -> int
  (** Order-embedding into [int] ([compare a b] agrees with
      [Int.compare (to_int a) (to_int b)]); lets engines and telemetry
      treat every objective uniformly. *)

  val to_string : t -> string
end

(** Traversal plus substitution, without construction: enough to merge
    proven-equivalent nodes (SAT sweeping). *)
module type SWEEPABLE = sig
  include TRAVERSABLE

  include
    RESTRUCTURE
      with type t := t
       and type node := int
       and type signal := Signal.t
end

(** The full network interface API: the union of every capability. *)
module type NETWORK = sig
  include STRUCTURE

  include
    CONSTRUCT with type t := t and type node := int and type signal := Signal.t

  include REFCOUNT with type t := t and type node := int

  include
    RESTRUCTURE
      with type t := t
       and type node := int
       and type signal := Signal.t

  include SCRATCH with type t := t and type node := int
end
