(* k-LUT networks: every gate carries its own truth table.  Complemented
   fanin signals are folded into the truth table during normalization, so
   internal edges are always positive (complements can still appear on
   primary outputs; writers materialize them as inverter LUTs). *)

open Kitty

let normalize_lut tt fanins =
  let k = Array.length fanins in
  assert (Tt.num_vars tt = k);
  (* Fold constants and complements into the table. *)
  let tt = ref tt in
  let fanins = Array.copy fanins in
  for i = 0 to k - 1 do
    let s = fanins.(i) in
    if Signal.is_constant s then begin
      tt := (if Signal.is_complemented s then Tt.cofactor1 !tt i else Tt.cofactor0 !tt i);
      fanins.(i) <- Signal.constant false
    end
    else if Signal.is_complemented s then begin
      tt := Tt.flip !tt i;
      fanins.(i) <- Signal.complement s
    end
  done;
  (* Merge duplicated fanins. *)
  for i = 0 to k - 1 do
    if not (Signal.is_constant fanins.(i)) then
      for j = i + 1 to k - 1 do
        if fanins.(j) = fanins.(i) then begin
          tt := Tt.ite (Tt.nth_var k i) (Tt.cofactor1 !tt j) (Tt.cofactor0 !tt j);
          fanins.(j) <- Signal.constant false
        end
      done
  done;
  (* Keep only support variables, ordered by driving signal. *)
  let kept =
    List.filter
      (fun i -> (not (Signal.is_constant fanins.(i))) && Tt.has_var !tt i)
      (List.init k (fun i -> i))
  in
  let kept = List.sort (fun i j -> Stdlib.compare fanins.(i) fanins.(j)) kept in
  let m = List.length kept in
  let args = Array.make k (Tt.const0 m) in
  List.iteri (fun j i -> args.(i) <- Tt.nth_var m j) kept;
  let tt' = Tt.apply !tt args in
  let fanins' = Array.of_list (List.map (fun i -> fanins.(i)) kept) in
  if m = 0 then Core_network.Norm_signal (Signal.constant (Tt.is_const1 tt'))
  else if m = 1 && Tt.equal tt' (Tt.nth_var 1 0) then Core_network.Norm_signal fanins'.(0)
  else if m = 1 && Tt.equal tt' (Tt.( ~: ) (Tt.nth_var 1 0)) then
    Core_network.Norm_signal (Signal.complement fanins'.(0))
  else Core_network.Norm_node (Kind.Lut tt', fanins', false)

include Core_network.Make (struct
  let name = "klut"
  let max_fanin = 16

  let normalize kind fanins =
    match kind with
    | Kind.Lut tt -> normalize_lut tt fanins
    | Kind.And -> normalize_lut (Kind.function_of Kind.And (Array.length fanins)) fanins
    | Kind.Xor -> normalize_lut (Kind.function_of Kind.Xor (Array.length fanins)) fanins
    | Kind.Maj -> normalize_lut (Kind.function_of Kind.Maj (Array.length fanins)) fanins
    | Kind.Const | Kind.Pi -> invalid_arg "Klut.normalize: not a gate kind"
end)


(* Create a LUT node computing [tt] over the given fanin signals. *)
let create_lut t fanins tt = create_node t (Kind.Lut tt) fanins

let create_and t a b = create_node t Kind.And [| a; b |]
let create_or t a b = Signal.complement (create_and t (Signal.complement a) (Signal.complement b))
let create_xor t a b = create_node t Kind.Xor [| a; b |]
let create_maj t a b c = create_node t Kind.Maj [| a; b; c |]

let create_ite t i th el =
  let tt =
    Tt.ite (Tt.nth_var 3 0) (Tt.nth_var 3 1) (Tt.nth_var 3 2)
  in
  create_lut t [| i; th; el |] tt

include Ops.Nary (struct
  type nonrec t = t
  type signal = Signal.t

  let constant = constant
  let create_and = create_and
  let create_or = create_or
  let create_xor = create_xor
end)
