(* Building arbitrary Boolean functions inside any network, from truth
   tables (via ISOP + algebraic factoring) or factored expressions.  This is
   the "containment" device of paper §2.3.3: any resynthesis engine that
   produces a function can target every representation through the generic
   constructors. *)

module Make (N : Intf.BUILDER) = struct
  (* Build a factored expression over the given input signals. *)
  let rec of_expr t (inputs : N.signal array) (e : Kitty.Factor.expr) : N.signal =
    match e with
    | Kitty.Factor.Const b -> N.constant b
    | Kitty.Factor.Lit (v, c) -> N.complement_if c inputs.(v)
    | Kitty.Factor.And es ->
      N.create_nary_and t (List.map (of_expr t inputs) es)
    | Kitty.Factor.Or es ->
      N.create_nary_or t (List.map (of_expr t inputs) es)

  (* Build [tt] over [inputs] (inputs.(i) drives variable i). *)
  let of_tt t inputs tt =
    assert (Array.length inputs >= Kitty.Tt.num_vars tt);
    of_expr t inputs (Kitty.Factor.of_tt tt)

  (* Build [kind] applied to [fanins]; used when cloning nodes across
     representations. *)
  let of_kind t kind (fanins : N.signal array) : N.signal =
    match (kind, fanins) with
    | Kind.And, [| a; b |] -> N.create_and t a b
    | Kind.Xor, [| a; b |] -> N.create_xor t a b
    | Kind.Maj, [| a; b; c |] -> N.create_maj t a b c
    | Kind.Lut tt, _ -> of_tt t fanins tt
    | Kind.And, _ -> N.create_nary_and t (Array.to_list fanins)
    | Kind.Xor, _ -> N.create_nary_xor t (Array.to_list fanins)
    | (Kind.Const | Kind.Pi | Kind.Maj), _ ->
      invalid_arg "Build.of_kind: not a buildable gate"
end
