(* Xor-majority graphs: three-input majority plus two-input XOR gates with
   complemented edges.  (The original XMG definition uses XOR3; we use XOR2,
   which spans the same class of networks since xor3(a,b,c) =
   xor2(a, xor2(b, c)).) *)

include Core_network.Make (struct
  let name = "xmg"
  let max_fanin = 3

  let normalize kind fanins =
    match (kind, fanins) with
    | Kind.Maj, [| _; _; _ |] -> Mig.normalize_maj fanins
    | Kind.Xor, [| a; b |] ->
      let out_c = Signal.is_complemented a <> Signal.is_complemented b in
      let a = Signal.complement_if (Signal.is_complemented a) a in
      let b = Signal.complement_if (Signal.is_complemented b) b in
      let a, b = if a <= b then (a, b) else (b, a) in
      if a = b then Core_network.Norm_signal (Signal.constant out_c)
      else if a = Signal.constant false then
        Core_network.Norm_signal (Signal.complement_if out_c b)
      else Core_network.Norm_node (Kind.Xor, [| a; b |], out_c)
    | (Kind.Const | Kind.Pi | Kind.And | Kind.Xor | Kind.Maj | Kind.Lut _), _ ->
      invalid_arg "Xmg.normalize: only MAJ3/XOR2 gates"
end)

let create_maj t a b c = create_node t Kind.Maj [| a; b; c |]
let create_xor t a b = create_node t Kind.Xor [| a; b |]
let create_and t a b = create_maj t (Signal.constant false) a b
let create_or t a b = create_maj t (Signal.constant true) a b

let create_ite t i th el =
  create_xor t el (create_and t i (create_xor t th el))

include Ops.Nary (struct
  type nonrec t = t
  type signal = Signal.t

  let constant = constant
  let create_and = create_and
  let create_or = create_or
  let create_xor = create_xor
end)
