(* Majority-inverter graphs: three-input majority gates with complemented
   edges.  AND/OR are represented as majority gates with a constant fanin
   (maj(0,a,b) = a&b, maj(1,a,b) = a|b).  Self-duality
   (maj(!a,!b,!c) = !maj(a,b,c)) is used to canonicalize nodes to at most
   one complemented fanin. *)

let normalize_maj fanins =
  let arr = Array.copy fanins in
  Array.sort Stdlib.compare arr;
  let a = arr.(0) and b = arr.(1) and c = arr.(2) in
  if a = b then Core_network.Norm_signal a
  else if b = c then Core_network.Norm_signal b
  else if a = Signal.complement b then Core_network.Norm_signal c
  else if b = Signal.complement c then Core_network.Norm_signal a
  else begin
    let complemented =
      (if Signal.is_complemented a then 1 else 0)
      + (if Signal.is_complemented b then 1 else 0)
      + (if Signal.is_complemented c then 1 else 0)
    in
    if complemented >= 2 then begin
      let arr = Array.map Signal.complement arr in
      Array.sort Stdlib.compare arr;
      Core_network.Norm_node (Kind.Maj, arr, true)
    end
    else Core_network.Norm_node (Kind.Maj, arr, false)
  end

include Core_network.Make (struct
  let name = "mig"
  let max_fanin = 3

  let normalize kind fanins =
    match (kind, fanins) with
    | Kind.Maj, [| _; _; _ |] -> normalize_maj fanins
    | (Kind.Const | Kind.Pi | Kind.And | Kind.Xor | Kind.Maj | Kind.Lut _), _ ->
      invalid_arg "Mig.normalize: only 3-input MAJ gates"
end)

let create_maj t a b c = create_node t Kind.Maj [| a; b; c |]
let create_and t a b = create_maj t (Signal.constant false) a b
let create_or t a b = create_maj t (Signal.constant true) a b

let create_xor t a b =
  (* (a | b) & !(a & b) *)
  create_and t (create_or t a b) (Signal.complement (create_and t a b))

let create_ite t i th el =
  create_or t (create_and t i th) (create_and t (Signal.complement i) el)

include Ops.Nary (struct
  type nonrec t = t
  type signal = Signal.t

  let constant = constant
  let create_and = create_and
  let create_or = create_or
  let create_xor = create_xor
end)
