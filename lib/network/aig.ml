(* And-inverter graphs: two-input AND gates with complemented edges. *)

include Core_network.Make (struct
  let name = "aig"
  let max_fanin = 2

  let normalize kind fanins =
    match (kind, fanins) with
    | Kind.And, [| a; b |] ->
      let a, b = if a <= b then (a, b) else (b, a) in
      if a = Signal.constant false then Core_network.Norm_signal (Signal.constant false)
      else if a = Signal.constant true then Core_network.Norm_signal b
      else if a = b then Core_network.Norm_signal a
      else if a = Signal.complement b then Core_network.Norm_signal (Signal.constant false)
      else Core_network.Norm_node (Kind.And, [| a; b |], false)
    | (Kind.Const | Kind.Pi | Kind.And | Kind.Xor | Kind.Maj | Kind.Lut _), _ ->
      invalid_arg "Aig.normalize: only 2-input AND gates"
end)

let create_and t a b = create_node t Kind.And [| a; b |]

let create_or t a b =
  Signal.complement (create_and t (Signal.complement a) (Signal.complement b))

let create_xor t a b =
  (* (a & !b) | (!a & b) *)
  create_or t
    (create_and t a (Signal.complement b))
    (create_and t (Signal.complement a) b)

let create_maj t a b c =
  (* (a & b) | (c & (a | b)) *)
  create_or t (create_and t a b) (create_and t c (create_or t a b))

let create_ite t i th el =
  create_or t (create_and t i th) (create_and t (Signal.complement i) el)

include Ops.Nary (struct
  type nonrec t = t
  type signal = Signal.t

  let constant = constant
  let create_and = create_and
  let create_or = create_or
  let create_xor = create_xor
end)
