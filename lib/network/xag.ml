(* Xor-and graphs: two-input AND and XOR gates with complemented edges.
   XOR gates are canonicalized with both fanins positive; input complements
   are pulled to the output (x ^ !y = !(x ^ y)). *)

include Core_network.Make (struct
  let name = "xag"
  let max_fanin = 2

  let normalize kind fanins =
    match (kind, fanins) with
    | Kind.And, [| a; b |] ->
      let a, b = if a <= b then (a, b) else (b, a) in
      if a = Signal.constant false then Core_network.Norm_signal (Signal.constant false)
      else if a = Signal.constant true then Core_network.Norm_signal b
      else if a = b then Core_network.Norm_signal a
      else if a = Signal.complement b then Core_network.Norm_signal (Signal.constant false)
      else Core_network.Norm_node (Kind.And, [| a; b |], false)
    | Kind.Xor, [| a; b |] ->
      let out_c = Signal.is_complemented a <> Signal.is_complemented b in
      let a = Signal.complement_if (Signal.is_complemented a) a in
      let b = Signal.complement_if (Signal.is_complemented b) b in
      let a, b = if a <= b then (a, b) else (b, a) in
      if a = b then Core_network.Norm_signal (Signal.constant out_c)
      else if a = Signal.constant false then
        Core_network.Norm_signal (Signal.complement_if out_c b)
      else Core_network.Norm_node (Kind.Xor, [| a; b |], out_c)
    | (Kind.Const | Kind.Pi | Kind.And | Kind.Xor | Kind.Maj | Kind.Lut _), _ ->
      invalid_arg "Xag.normalize: only 2-input AND/XOR gates"
end)

let create_and t a b = create_node t Kind.And [| a; b |]
let create_xor t a b = create_node t Kind.Xor [| a; b |]

let create_or t a b =
  Signal.complement (create_and t (Signal.complement a) (Signal.complement b))

let create_maj t a b c =
  (* a ^ ((a ^ b) & (a ^ c)) — three gates instead of four *)
  create_xor t a (create_and t (create_xor t a b) (create_xor t a c))

let create_ite t i th el =
  (* el ^ (i & (th ^ el)) *)
  create_xor t el (create_and t i (create_xor t th el))

include Ops.Nary (struct
  type nonrec t = t
  type signal = Signal.t

  let constant = constant
  let create_and = create_and
  let create_or = create_or
  let create_xor = create_xor
end)
