(* Refactoring (paper Algorithm 4): collapse the maximum fanout-free cone
   of a node into a truth table and resynthesize it from scratch as a
   factored form, replacing the cone when the new structure is cheaper.
   Collapsing whole cones (rather than small cuts) lets refactoring
   overcome structural bias that peephole rewriting cannot see past. *)

module Make (N : Network.Intf.NETWORK) = struct
  module T = Topo.Make (N)
  module M = Mffc.Make (N)
  module W = Window.Make (N)
  module B = Network.Build.Make (N)
  module Co = Cost.Make (N)

  (* Evaluate replacing the MFFC of [n] by a resynthesized structure;
     substitutes when the gain (measured by the shared cost engine) passes
     the threshold. *)
  let try_node eng net n ~max_inputs ~allow_zero_gain ~tried ~rejected ~trace
      ~sampling ~metrics ~h_inputs ~h_gain =
    let leaves = M.leaves net n in
    let leaves = List.filter (fun l -> not (N.is_constant net l)) leaves in
    let k = List.length leaves in
    if k < 1 || k > max_inputs then false
    else begin
      if Obs.Metrics.enabled metrics then Obs.Metrics.observe h_inputs k;
      let w = W.of_cut net n leaves in
      let values = W.simulate net w in
      let root_tt = Hashtbl.find values n in
      let leaf_sigs = Array.map N.signal_of_node w.W.leaves in
      let mark = eng.Co.mark net in
      let s = B.of_tt net leaf_sigs root_tt in
      let root = N.node_of_signal s in
      if root = n || T.cone_contains net ~root ~leaves:w.W.leaves n then begin
        N.take_out_if_dead net root;
        false
      end
      else begin
        incr tried;
        let added = eng.Co.added net ~mark ~root in
        let freed = eng.Co.freed net n in
        let gain = freed - added in
        if Co.accept ~zero_gain:allow_zero_gain eng gain then begin
          N.substitute_node net n s;
          if Obs.Metrics.enabled metrics then Obs.Metrics.observe h_gain gain;
          if sampling then
            Obs.Trace.node_event trace ~algo:"refactor" ~node:n ~gain
              ~accepted:true;
          true
        end
        else begin
          incr rejected;
          N.take_out_if_dead net root;
          if sampling then
            Obs.Trace.node_event trace ~algo:"refactor" ~node:n ~gain
              ~accepted:false;
          false
        end
      end
    end

  (* One refactoring pass; returns the number of substitutions. *)
  let run (net : N.t) ?(trace = Obs.Trace.null) ?(cost = Cost.Spec.Area)
      ?(max_inputs = 10) ?(allow_zero_gain = false) () : int =
    let eng = Co.engine cost in
    let substitutions = ref 0 in
    let tried = ref 0 and rejected = ref 0 in
    let sampling = Obs.Trace.sampling trace in
    let metrics = Obs.Metrics.of_trace trace ~algo:"refactor" in
    let h_inputs = Obs.Metrics.histogram metrics "cone_inputs" in
    let h_gain = Obs.Metrics.histogram metrics "gain" in
    List.iter
      (fun n ->
        if
          N.is_gate net n
          && (not (N.is_dead net n))
          && N.ref_count net n > 0
          && try_node eng net n ~max_inputs ~allow_zero_gain ~tried ~rejected
               ~trace ~sampling ~metrics ~h_inputs ~h_gain
        then incr substitutions)
      (T.order net);
    Obs.Trace.report trace ~algo:"refactor"
      [
        ("tried", !tried);
        ("accepted", !substitutions);
        ("rejected", !rejected);
      ];
    Obs.Metrics.emit metrics trace;
    !substitutions
end
