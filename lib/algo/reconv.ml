(* Top-down reconvergence-driven cut computation (paper §2.2.1, after
   Mishchenko's construction): starting from the root, the leaf whose
   expansion adds the fewest new leaves is expanded repeatedly while the
   leaf count stays within the limit.  Reconvergent paths make expansions
   with zero or negative cost possible, which is what gives resubstitution
   its divisors. *)

module Make (N : Network.Intf.TRAVERSABLE) = struct
  (* Cost of replacing leaf [l] by its fanins: number of fanins that are not
     yet part of the cut, minus one (for [l] itself leaving). *)
  let expansion_cost (t : N.t) visited_id l =
    let fresh = ref 0 in
    N.foreach_fanin t l (fun s ->
        let c = N.node_of_signal s in
        if N.visited t c <> visited_id then incr fresh);
    !fresh - 1

  (* Compute a reconvergence-driven cut of at most [max_leaves] leaves for
     [root].  Returns the leaves; constants never appear as leaves. *)
  let compute (t : N.t) ?(max_leaves = 8) (root : N.node) : N.node list =
    let id = N.new_traversal_id t in
    N.set_visited t root id;
    let leaves = ref [] in
    let add_leaf c =
      if N.visited t c <> id then begin
        N.set_visited t c id;
        if not (N.is_constant t c) then leaves := c :: !leaves
      end
    in
    N.foreach_fanin t root (fun s -> add_leaf (N.node_of_signal s));
    let continue_expansion = ref true in
    while !continue_expansion do
      (* pick the expandable gate leaf with minimum cost *)
      let best = ref None in
      List.iter
        (fun l ->
          if N.is_gate t l then begin
            let c = expansion_cost t id l in
            match !best with
            | Some (_, bc) when bc <= c -> ()
            | Some _ | None -> best := Some (l, c)
          end)
        !leaves;
      match !best with
      | None -> continue_expansion := false
      | Some (l, c) ->
        if List.length !leaves + c > max_leaves then continue_expansion := false
        else begin
          leaves := List.filter (fun x -> x <> l) !leaves;
          N.foreach_fanin t l (fun s -> add_leaf (N.node_of_signal s))
        end
    done;
    List.rev !leaves
end
