(* Window-based observability don't-cares (after the don't-care-based
   resynthesis the paper cites as refs [15,17]).

   For a node [n], collect a bounded fanout window (all transitive fanouts
   up to [tfo_levels]); its frontier nodes are the observation points.  All
   signals feeding the window that are not produced inside it become free
   window leaves.  Simulating the window twice — once as-is, once with [n]
   complemented — and OR-ing the differences at the observation points
   yields the care set of [n] over the window leaves; everything else is an
   observability don't-care, which resubstitution can exploit.

   Treating side inputs as free variables over-approximates the reachable
   value combinations, so the computed care set is itself an
   over-approximation: using it is always sound. *)

open Kitty

module Make (N : Network.Intf.COUNTED) = struct
  module S = Simulate.Make (N)

  type window = {
    node : N.node;
    leaves : N.node array;   (* free inputs of the window; the caller's
                                base leaves come first *)
    care : Tt.t;             (* over the caller's base leaves *)
    values : (N.node, Tt.t) Hashtbl.t;  (* original simulation values *)
  }

  (* Bounded transitive fanout of [n]. *)
  let tfo_set (net : N.t) n ~levels =
    let set = Hashtbl.create 32 in
    let rec go m depth =
      if depth <= levels && not (Hashtbl.mem set m) then begin
        Hashtbl.replace set m depth;
        List.iter (fun p -> if not (N.is_dead net p) then go p (depth + 1))
          (N.fanout net m)
      end
    in
    List.iter (fun p -> if not (N.is_dead net p) then go p 1) (N.fanout net n);
    set

  (* Compute the ODC window of [n] over the given [base_leaves] (typically
     the resubstitution window's leaves); the care set is returned over
     exactly those leaves, with the extra window inputs existentially
     quantified away.  [None] when the window grows past the bounds (the
     caller then falls back to the full care set). *)
  let compute (net : N.t) (n : N.node) ~(base_leaves : N.node list)
      ?(tfo_levels = 3) ?(max_leaves = 16) () : window option =
    let tfo = tfo_set net n ~levels:tfo_levels in
    if Hashtbl.length tfo = 0 then None
    else begin
      (* the window body: n, its TFI cone above the base leaves, the TFO
         nodes; everything else feeding the TFO becomes an extra leaf *)
      let module W = Window.Make (N) in
      let w = W.of_cut net n base_leaves in
      let inside = Hashtbl.create 64 in
      List.iter (fun m -> Hashtbl.replace inside m ()) w.W.cone;
      Hashtbl.iter (fun m _ -> Hashtbl.replace inside m ()) tfo;
      let leaves = ref (List.rev (Array.to_list w.W.leaves)) in
      let num_leaves = ref (List.length !leaves) in
      List.iter (fun l -> Hashtbl.replace inside l ()) !leaves;
      let ok = ref true in
      Hashtbl.iter
        (fun m _ ->
          if !ok then
            Array.iter
              (fun s ->
                let c = N.node_of_signal s in
                if (not (Hashtbl.mem inside c)) && not (N.is_constant net c)
                then begin
                  if !num_leaves >= max_leaves then ok := false
                  else begin
                    Hashtbl.replace inside c ();
                    leaves := c :: !leaves;
                    incr num_leaves
                  end
                end)
              (N.fanin net m))
        tfo;
      if not !ok then None
      else begin
        let leaves = Array.of_list (List.rev !leaves) in
        (* simulate the window: TFI cone first, then TFO nodes in
           topological order *)
        let nv = Array.length leaves in
        let values = Hashtbl.create 64 in
        Hashtbl.replace values 0 (Tt.const0 nv);
        Array.iteri (fun i l -> Hashtbl.replace values l (Tt.nth_var nv i)) leaves;
        let rec value tbl m =
          match Hashtbl.find_opt tbl m with
          | Some v -> v
          | None ->
            let v = S.gate_value net m (fun c -> value tbl c) in
            Hashtbl.replace tbl m v;
            v
        in
        let v_n = value values n in
        (* TFO nodes in dependency order via recursion *)
        let tfo_nodes = Hashtbl.fold (fun m _ acc -> m :: acc) tfo [] in
        List.iter (fun m -> ignore (value values m)) tfo_nodes;
        (* second simulation with n complemented; only the TFO changes *)
        let values' = Hashtbl.copy values in
        Hashtbl.replace values' n (Tt.( ~: ) v_n);
        List.iter (fun m -> Hashtbl.remove values' m) tfo_nodes;
        List.iter (fun m -> ignore (value values' m)) tfo_nodes;
        (* observation points: TFO nodes with fanout outside the window or
           feeding a primary output *)
        let po_nodes = Hashtbl.create 16 in
        N.foreach_po net (fun s ->
            Hashtbl.replace po_nodes (N.node_of_signal s) ());
        let care = ref (Tt.const0 nv) in
        Hashtbl.iter
          (fun m depth ->
            let is_exit =
              depth >= tfo_levels
              || Hashtbl.mem po_nodes m
              || List.exists (fun p -> not (Hashtbl.mem tfo p)) (N.fanout net m)
            in
            if is_exit then
              care :=
                Tt.( |: ) !care
                  (Tt.( ^: ) (Hashtbl.find values m) (Hashtbl.find values' m)))
          tfo;
        (* if n itself drives a PO, every minterm is observable *)
        if Hashtbl.mem po_nodes n then care := Tt.const1 nv;
        (* project onto the base leaves: existentially quantify the extras *)
        let num_base = List.length base_leaves in
        let projected = ref !care in
        for v = num_base to nv - 1 do
          projected := Tt.exists !projected v
        done;
        let care = Tt.shrink !projected num_base in
        Some { node = n; leaves; care; values }
      end
    end
end
