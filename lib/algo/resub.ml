(* Boolean resubstitution (paper Algorithm 5): re-express the function of a
   node using divisors that already exist in the network.  The generic
   skeleton — reconvergence-driven windowing, divisor collection,
   simulation, DAG-aware gain — is representation-independent; only the
   computational kernel (paper §2.3.4) differs per representation:

   - [And_or]      0-resub, AND/OR 1-resub, AND-OR 2-resub   (AIGs)
   - [And_or_xor]  adds XOR 1- and 2-resub                   (XAGs)
   - [Maj3]        0-resub and majority 1-resub              (MIGs, XMGs)

   Divisor filtering follows the unateness rules the paper cites: a literal
   can only appear under an OR root if it implies the target, and under an
   AND root if the target implies it. *)

open Kitty

type kernel = And_or | And_or_xor | Maj3

module Make (N : Network.Intf.NETWORK) = struct
  module T = Topo.Make (N)
  module R = Reconv.Make (N)
  module W = Window.Make (N)
  module M = Mffc.Make (N)
  module Co = Cost.Make (N)

  (* literal = (signal, function over window leaves) *)
  type literal = N.signal * Tt.t

  (* comparisons modulo the care set (observability don't-cares make the
     care set smaller and resubstitution correspondingly more powerful) *)
  let equal_c care a b = Tt.is_const0 Tt.((a ^: b) &: care)
  let implies_c care a b = Tt.is_const0 Tt.(a &: ~:b &: care)

  (* 0-resub: an existing literal — or, under don't-cares, a constant —
     already computes the target on the care set. *)
  let resub0 care (lits : literal array) target =
    if Tt.is_const0 Tt.(target &: care) then Some (N.constant false)
    else if Tt.is_const0 Tt.(~:target &: care) then Some (N.constant true)
    else begin
      let found = ref None in
      Array.iter
        (fun (s, tt) ->
          if !found = None && equal_c care tt target then found := Some s)
        lits;
      !found
    end

  (* OR 1-resub: target = l1 | l2 with both literals implying the target. *)
  let resub_or care net (lits : literal array) target =
    let pool =
      List.filter (fun (_, tt) -> implies_c care tt target) (Array.to_list lits)
    in
    let rec pairs = function
      | [] -> None
      | (s1, t1) :: rest ->
        let hit =
          List.find_opt (fun (_, t2) -> equal_c care Tt.(t1 |: t2) target) rest
        in
        (match hit with
        | Some (s2, _) -> Some (N.create_or net s1 s2)
        | None -> pairs rest)
    in
    pairs pool

  (* AND 1-resub via duality: target = l1 & l2  iff  !target = !l1 | !l2. *)
  let resub_and care net (lits : literal array) target =
    let pool =
      List.filter (fun (_, tt) -> implies_c care target tt) (Array.to_list lits)
    in
    let rec pairs = function
      | [] -> None
      | (s1, t1) :: rest ->
        let hit =
          List.find_opt (fun (_, t2) -> equal_c care Tt.(t1 &: t2) target) rest
        in
        (match hit with
        | Some (s2, _) -> Some (N.create_and net s1 s2)
        | None -> pairs rest)
    in
    pairs pool

  (* XOR 1-resub: target = l1 ^ l2.  With a full care set this uses exact
     hashing of the needed counterpart; under don't-cares it falls back to
     pair enumeration with care-masked comparison. *)
  let resub_xor care net (lits : literal array) target =
    let found = ref None in
    if Tt.is_const1 care then begin
      let table = Hashtbl.create (Array.length lits) in
      Array.iter (fun (s, tt) -> Hashtbl.replace table (Tt.to_hex tt) s) lits;
      Array.iter
        (fun (s1, t1) ->
          if !found = None then begin
            let needed = Tt.( ^: ) target t1 in
            match Hashtbl.find_opt table (Tt.to_hex needed) with
            | Some s2 when s2 <> s1 -> found := Some (N.create_xor net s1 s2)
            | Some _ | None -> ()
          end)
        lits
    end
    else begin
      let m = Array.length lits in
      let i = ref 0 in
      while !found = None && !i < m do
        let s1, t1 = lits.(!i) in
        let j = ref (!i + 1) in
        while !found = None && !j < m do
          let s2, t2 = lits.(!j) in
          if
            N.node_of_signal s1 <> N.node_of_signal s2
            && equal_c care Tt.(t1 ^: t2) target
          then found := Some (N.create_xor net s1 s2);
          incr j
        done;
        incr i
      done
    end;
    !found

  (* OR 2-resub: target = l1 | (l2 & l3). *)
  let resub_or_and care net (lits : literal array) target =
    let unate =
      List.filter (fun (_, tt) -> implies_c care tt target) (Array.to_list lits)
    in
    let result = ref None in
    List.iter
      (fun (s1, t1) ->
        if !result = None then begin
          let rem = Tt.(target &: ~:t1 &: care) in
          if not (Tt.is_const0 rem) then begin
            (* both remaining literals must cover the remainder *)
            let covering =
              List.filter (fun (_, tt) -> implies_c care rem tt) (Array.to_list lits)
            in
            let rec pairs = function
              | [] -> ()
              | (s2, t2) :: rest ->
                let hit =
                  List.find_opt
                    (fun (_, t3) -> equal_c care Tt.(t1 |: (t2 &: t3)) target)
                    rest
                in
                (match hit with
                | Some (s3, _) ->
                  result := Some (N.create_or net s1 (N.create_and net s2 s3))
                | None -> pairs rest)
            in
            pairs covering
          end
        end)
      unate;
    !result

  (* AND 2-resub via duality: target = l1 & (l2 | l3). *)
  let resub_and_or care net (lits : literal array) target =
    let neg_lits = Array.map (fun (s, tt) -> (N.complement s, Tt.( ~: ) tt)) lits in
    match resub_or_and care net neg_lits (Tt.( ~: ) target) with
    | Some s -> Some (N.complement s)
    | None -> None

  (* XOR 2-resub: target = l1 ^ (l2 & l3); exact hashing requires a full
     care set, so don't-cares simply skip this kernel. *)
  let resub_xor_and care net (lits : literal array) target =
    if not (Tt.is_const1 care) then None
    else begin
      let table = Hashtbl.create (Array.length lits) in
      Array.iter (fun (s, tt) -> Hashtbl.replace table (Tt.to_hex tt) s) lits;
      let n_lits = Array.length lits in
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < n_lits do
        let s2, t2 = lits.(!i) in
        let j = ref (!i + 1) in
        while !result = None && !j < n_lits do
          let s3, t3 = lits.(!j) in
          if N.node_of_signal s2 <> N.node_of_signal s3 then begin
            let conj = Tt.( &: ) t2 t3 in
            let needed = Tt.( ^: ) target conj in
            match Hashtbl.find_opt table (Tt.to_hex needed) with
            | Some s1 -> result := Some (N.create_xor net s1 (N.create_and net s2 s3))
            | None -> ()
          end;
          incr j
        done;
        incr i
      done;
      !result
    end

  (* MAJ 1-resub with the pairwise filtering rules: in maj(l1,l2,l3) any two
     true literals force the output, so l_i & l_j must imply the target and
     the target must imply l_i | l_j; the third literal is then determined
     on the care set l1 ^ l2. *)
  let resub_maj odc_care net (lits : literal array) target =
    let n_lits = Array.length lits in
    let result = ref None in
    let i = ref 0 in
    while !result = None && !i < n_lits do
      let s1, t1 = lits.(!i) in
      let j = ref (!i + 1) in
      while !result = None && !j < n_lits do
        let s2, t2 = lits.(!j) in
        if
          N.node_of_signal s1 <> N.node_of_signal s2
          && implies_c odc_care Tt.(t1 &: t2) target
          && implies_c odc_care target Tt.(t1 |: t2)
        then begin
          let care = Tt.((t1 ^: t2) &: odc_care) in
          let k = ref 0 in
          while !result = None && !k < n_lits do
            let s3, t3 = lits.(!k) in
            if
              N.node_of_signal s3 <> N.node_of_signal s1
              && N.node_of_signal s3 <> N.node_of_signal s2
              && Tt.is_const0 Tt.((t3 ^: target) &: care)
            then result := Some (N.create_maj net s1 s2 s3);
            incr k
          done
        end;
        incr j
      done;
      incr i
    done;
    !result

  let kernel_candidates kernel k =
    (* which resub functions to try for [k] inserted gates *)
    match (kernel, k) with
    | (And_or | And_or_xor | Maj3), 0 -> [ `Zero ]
    | And_or, 1 -> [ `Or; `And ]
    | And_or_xor, 1 -> [ `Or; `And; `Xor ]
    | Maj3, 1 -> [ `Maj ]
    | And_or, 2 -> [ `Or_and; `And_or ]
    | And_or_xor, 2 -> [ `Or_and; `And_or; `Xor_and ]
    | Maj3, _ -> []
    | (And_or | And_or_xor), _ -> []

  let try_kernel ~care net kernel k (lits : literal array) target =
    let try_one = function
      | `Zero -> resub0 care lits target
      | `Or -> resub_or care net lits target
      | `And -> resub_and care net lits target
      | `Xor -> resub_xor care net lits target
      | `Or_and -> resub_or_and care net lits target
      | `And_or -> resub_and_or care net lits target
      | `Xor_and -> resub_xor_and care net lits target
      | `Maj -> resub_maj care net lits target
    in
    let rec go = function
      | [] -> None
      | c :: rest -> (
        match try_one c with Some s -> Some s | None -> go rest)
    in
    go (kernel_candidates kernel k)

  (* One resubstitution pass (paper Algorithm 5). *)
  let run (net : N.t) ~(kernel : kernel) ?(trace = Obs.Trace.null)
      ?(cost = Cost.Spec.Area) ?(max_leaves = 8) ?(max_divisors = 24)
      ?(max_inserted = 1) ?(use_odc = false) () : int =
    let module O = Odc.Make (N) in
    let eng = Co.engine cost in
    let substitutions = ref 0 in
    let tried = ref 0 and rejected = ref 0 in
    let sampling = Obs.Trace.sampling trace in
    let metrics = Obs.Metrics.of_trace trace ~algo:"resub" in
    let h_gain = Obs.Metrics.histogram metrics "gain" in
    let h_divisors = Obs.Metrics.histogram metrics "divisors" in
    List.iter
      (fun n ->
        if N.is_gate net n && (not (N.is_dead net n)) && N.ref_count net n > 0
        then begin
          let leaves = R.compute net ~max_leaves n in
          if leaves <> [] then begin
            let w = W.of_cut net n leaves in
            let mffc_size = M.size net n in
            if mffc_size > 0 then begin
              let divisors = W.divisors net w ~max:max_divisors in
              let divisors = List.filter (fun d -> d <> n) divisors in
              if Obs.Metrics.enabled metrics then
                Obs.Metrics.observe h_divisors (List.length divisors);
              let values = W.simulate net w in
              W.simulate_divisors net w values divisors;
              let target = Hashtbl.find values n in
              (* observability don't-cares over the same leaf basis *)
              let care =
                if not use_odc then Tt.const1 (Array.length w.W.leaves)
                else
                  match O.compute net n ~base_leaves:leaves () with
                  | Some ow -> ow.O.care
                  | None -> Tt.const1 (Array.length w.W.leaves)
              in
              let lits =
                Array.of_list
                  (List.concat_map
                     (fun d ->
                       let tt = Hashtbl.find values d in
                       let s = N.signal_of_node d in
                       [ (s, tt); (N.complement s, Tt.( ~: ) tt) ])
                     divisors)
              in
              (* candidate cones are built from divisor literals, so the
                 cycle guard can stop at divisors as well as leaves *)
              let stop_nodes =
                Array.append w.W.leaves (Array.of_list divisors)
              in
              (* try k = 0, 1, ... and accept the first positive gain *)
              let rec attempt k =
                if k > max_inserted || k >= mffc_size then ()
                else begin
                  let mark = eng.Co.mark net in
                  match try_kernel ~care net kernel k lits target with
                  | None -> attempt (k + 1)
                  | Some s ->
                    incr tried;
                    let root = N.node_of_signal s in
                    let added = eng.Co.added net ~mark ~root in
                    let freed = eng.Co.freed net n in
                    let gain = freed - added in
                    if
                      Co.accept eng gain && root <> n
                      && not (T.cone_contains net ~root ~leaves:stop_nodes n)
                    then begin
                      N.substitute_node net n s;
                      incr substitutions;
                      if Obs.Metrics.enabled metrics then
                        Obs.Metrics.observe h_gain gain;
                      if sampling then
                        Obs.Trace.node_event trace ~algo:"resub" ~node:n ~gain
                          ~accepted:true
                    end
                    else begin
                      incr rejected;
                      N.take_out_if_dead net root;
                      if sampling then
                        Obs.Trace.node_event trace ~algo:"resub" ~node:n ~gain
                          ~accepted:false;
                      attempt (k + 1)
                    end
                end
              in
              attempt 0
            end
          end
        end)
      (T.order net);
    Obs.Trace.report trace ~algo:"resub"
      [
        ("tried", !tried);
        ("accepted", !substitutions);
        ("rejected", !rejected);
      ];
    Obs.Metrics.emit metrics trace;
    !substitutions
end
