(* Windows: the cone of a (reconvergence-driven) cut, plus exhaustive
   simulation over the cut leaves and divisor collection for
   resubstitution (paper §2.3.4). *)

open Kitty

module Make (N : Network.Intf.COUNTED) = struct
  module S = Simulate.Make (N)

  type t = {
    root : N.node;
    leaves : N.node array;
    cone : N.node list;  (* gates strictly inside, topological, root last *)
  }

  (* Gates between the leaves and the root (root included, leaves not). *)
  let of_cut (net : N.t) (root : N.node) (leaves : N.node list) : t =
    let leaves = Array.of_list leaves in
    let id = N.new_traversal_id net in
    Array.iter (fun l -> N.set_visited net l id) leaves;
    let acc = ref [] in
    let rec visit n =
      if N.visited net n <> id then begin
        N.set_visited net n id;
        if N.is_gate net n then begin
          Array.iter (fun s -> visit (N.node_of_signal s)) (N.fanin net n);
          acc := n :: !acc
        end
      end
    in
    visit root;
    { root; leaves; cone = List.rev !acc }

  (* Truth tables of all window nodes over the leaf variables. *)
  let simulate (net : N.t) (w : t) : (N.node, Tt.t) Hashtbl.t =
    let nv = Array.length w.leaves in
    let values = Hashtbl.create 64 in
    Hashtbl.replace values 0 (Tt.const0 nv);
    Array.iteri (fun i l -> Hashtbl.replace values l (Tt.nth_var nv i)) w.leaves;
    List.iter
      (fun n ->
        Hashtbl.replace values n
          (S.gate_value net n (fun c -> Hashtbl.find values c)))
      w.cone;
    values

  (* Divisor candidates for resubstituting the root: every window node
     except the root and the gates of the root's MFFC (paper §2.3.4), plus
     one layer of side nodes whose fanins all lie inside the window.  The
     result is capped at [max] nodes. *)
  let divisors (net : N.t) (w : t) ~(max : int) : N.node list =
    let module M = Mffc.Make (N) in
    let mffc = M.collect net w.root in
    let in_mffc = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace in_mffc n ()) mffc;
    let base =
      Array.to_list w.leaves
      @ List.filter (fun n -> not (Hashtbl.mem in_mffc n)) w.cone
    in
    (* side divisors: fanouts of window nodes, fully supported by the window
       and independent of the root *)
    let in_window = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace in_window n ()) base;
    Hashtbl.replace in_window w.root ();
    List.iter (fun n -> Hashtbl.replace in_window n ()) w.cone;
    let side = ref [] in
    let consider d =
      if
        (not (Hashtbl.mem in_window d))
        && N.is_gate net d
        && (not (N.is_dead net d))
        && Array.for_all
             (fun s ->
               let c = N.node_of_signal s in
               c <> w.root && Hashtbl.mem in_window c
               && not (Hashtbl.mem in_mffc c))
             (N.fanin net d)
      then begin
        Hashtbl.replace in_window d ();
        side := d :: !side
      end
    in
    List.iter (fun n -> List.iter consider (N.fanout net n)) base;
    let all = base @ List.rev !side in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take max all

  (* Extend the simulation to side divisors that are not in the cone. *)
  let simulate_divisors (net : N.t) (_w : t) (values : (N.node, Tt.t) Hashtbl.t)
      (divs : N.node list) : unit =
    let rec value n =
      match Hashtbl.find_opt values n with
      | Some v -> v
      | None ->
        let v = S.gate_value net n value in
        Hashtbl.replace values n v;
        v
    in
    List.iter (fun d -> ignore (value d)) divs
end
