(* Topological traversal.  Node creation order is topological until the
   first [substitute_node]; algorithms that restructure the graph therefore
   traverse via an explicit DFS from the primary outputs. *)

module Make (N : Network.Intf.TRAVERSABLE) = struct
  (* Gates reachable from the primary outputs, fanins first. *)
  let order (t : N.t) : N.node list =
    let id = N.new_traversal_id t in
    let acc = ref [] in
    let rec visit n =
      if N.visited t n <> id then begin
        N.set_visited t n id;
        if N.is_gate t n then begin
          Array.iter (fun s -> visit (N.node_of_signal s)) (N.fanin t n);
          acc := n :: !acc
        end
      end
    in
    N.foreach_po t (fun s -> visit (N.node_of_signal s));
    List.rev !acc

  (* All live gates (including dangling ones), fanins first. *)
  let order_all (t : N.t) : N.node list =
    let id = N.new_traversal_id t in
    let acc = ref [] in
    let rec visit n =
      if N.visited t n <> id then begin
        N.set_visited t n id;
        if N.is_gate t n then begin
          Array.iter (fun s -> visit (N.node_of_signal s)) (N.fanin t n);
          acc := n :: !acc
        end
      end
    in
    N.foreach_gate t visit;
    List.rev !acc

  (* Does the structural cone of [root], cut off at [leaves], contain [n]?
     Used to guard substitutions against cycles when structural hashing
     resolves a freshly built candidate to existing nodes.  The cone is
     bounded by the candidate structure, so this stays cheap. *)
  let cone_contains (t : N.t) ~(root : N.node) ~(leaves : N.node array)
      (n : N.node) : bool =
    let stop = Hashtbl.create 8 in
    Array.iter (fun l -> Hashtbl.replace stop l ()) leaves;
    let seen = Hashtbl.create 16 in
    let rec go m =
      m = n
      || (not (Hashtbl.mem stop m))
         && (not (Hashtbl.mem seen m))
         && N.is_gate t m
         &&
         (Hashtbl.replace seen m ();
          Array.exists (fun s -> go (N.node_of_signal s)) (N.fanin t m))
    in
    go root
end
