(* Maximum fanout-free cones, computed with reference counters
   (paper §2.2.3): a gate belongs to the MFFC of [n] when removing [n]
   makes its reference count drop to zero. *)

module Make (N : Network.Intf.COUNTED) = struct
  (* Number of gates that die when [n] is removed (including [n]). *)
  let size (t : N.t) (n : N.node) : int =
    if not (N.is_gate t n) then 0
    else begin
      let freed = N.recursive_deref t n in
      let restored = N.recursive_ref t n in
      assert (freed = restored);
      freed + 1
    end

  (* The gates of the MFFC of [n], root first. *)
  let collect (t : N.t) (n : N.node) : N.node list =
    if not (N.is_gate t n) then []
    else begin
      let acc = ref [] in
      let rec deref m =
        acc := m :: !acc;
        N.foreach_fanin t m (fun s ->
            let c = N.node_of_signal s in
            if N.decr_ref t c = 0 && N.is_gate t c then deref c)
      in
      let rec undo m =
        N.foreach_fanin t m (fun s ->
            let c = N.node_of_signal s in
            if N.incr_ref t c = 1 && N.is_gate t c then undo c)
      in
      deref n;
      undo n;
      List.rev !acc
    end

  (* Leaves of the MFFC of [n]: boundary signals feeding the cone from
     outside. *)
  let leaves (t : N.t) (n : N.node) : N.node list =
    let cone = collect t n in
    let id = N.new_traversal_id t in
    List.iter (fun m -> N.set_visited t m id) cone;
    let leaf_id = N.new_traversal_id t in
    let acc = ref [] in
    List.iter
      (fun m ->
        N.foreach_fanin t m (fun s ->
            let c = N.node_of_signal s in
            if N.visited t c <> id && N.visited t c <> leaf_id then begin
              N.set_visited t c leaf_id;
              acc := c :: !acc
            end))
      cone;
    List.rev !acc
end
