(* DAG-aware cut rewriting (paper Algorithm 3, after Mishchenko's
   DAG-aware AIG rewriting): for every gate, every priority cut's function
   is replaced by its size-optimal implementation from the exact-synthesis
   database whenever the replacement frees more nodes than it adds.  The
   gain computation is DAG-aware: candidate structures are built physically
   (structural hashing exposes sharing with the existing graph, including
   nodes of the cone about to be freed), measured, and undone when they do
   not pay off. *)

module Make (N : Network.Intf.NETWORK) = struct
  module C = Cuts.Make (N)
  module T = Topo.Make (N)
  module D = Exact.Decode.Make (N)
  module B = Network.Build.Make (N)
  module Co = Cost.Make (N)

  type stats = {
    mutable candidates : int;
    mutable substitutions : int;
    mutable gain : int;
  }

  let cone_contains net root leaves n = T.cone_contains net ~root ~leaves n

  (* Measure the DAG-aware gain of replacing [n] by the database structure
     for [cut]; returns the candidate signal and its gain, leaving the
     network unchanged (candidate nodes are taken out again).  Candidates
     whose chain is clearly larger than the node's MFFC are pruned before
     anything is built ([sharing_margin] allows for structural-hashing
     reuse). *)
  let sharing_margin = 3

  (* Candidate builders for a cut: the database chain (size-optimal in
     isolation) and, for larger cones, an ISOP-factored structure — which
     sometimes shares better with the existing graph even though it has
     more gates.  Both are gain-checked; the better one wins. *)
  let candidate_builders net db cut leaf_sigs ~mffc_size =
    let lookup = Exact.Database.lookup db cut.C.tt in
    let chain_candidate =
      match fst lookup with
      | Exact.Synth.Chain c when Exact.Chain.size c > mffc_size + sharing_margin
        -> []
      | Exact.Synth.Failed -> []
      | Exact.Synth.Chain _ | Exact.Synth.Const _ | Exact.Synth.Projection _ ->
        [ (fun () -> D.of_lookup net lookup leaf_sigs) ]
    in
    let factored_candidate =
      if mffc_size >= 3 then
        [ (fun () -> Some (B.of_tt net leaf_sigs cut.C.tt)) ]
      else []
    in
    (* factored first: on equal measured gain the factored structure tends
       to share better with neighbouring cones, so it wins ties *)
    factored_candidate @ chain_candidate

  let cut_usable net n (cut : C.cut) =
    let leaf_ok l = (not (N.is_dead net l)) && not (N.is_constant net l) in
    ignore n;
    Array.length cut.C.leaves >= 2 && Array.for_all leaf_ok cut.C.leaves

  (* Measure the DAG-aware gain of one candidate builder through the
     shared cost engine, leaving the network unchanged. *)
  let evaluate_builder eng net n (cut : C.cut) builder =
    let mark = eng.Co.mark net in
    match builder () with
    | None -> None
    | Some s ->
      let root = N.node_of_signal s in
      if root = n || cone_contains net root cut.C.leaves n then begin
        N.take_out_if_dead net root;
        None
      end
      else begin
        let added = eng.Co.added net ~mark ~root in
        let freed = eng.Co.freed net n in
        let gain = freed - added in
        N.take_out_if_dead net root;
        Some gain
      end

  (* One rewriting pass; returns the accumulated gain (in units of the
     chosen cost objective). *)
  let run (net : N.t) ~(db : Exact.Database.t) ?(trace = Obs.Trace.null)
      ?(cost = Cost.Spec.Area) ?(cut_size = 4) ?(cut_limit = 8)
      ?(allow_zero_gain = false) () : int =
    let eng = Co.engine cost in
    let stats = { candidates = 0; substitutions = 0; gain = 0 } in
    let sampling = Obs.Trace.sampling trace in
    let metrics = Obs.Metrics.of_trace trace ~algo:"rewrite" in
    let h_gain = Obs.Metrics.histogram metrics "gain" in
    let h_mffc = Obs.Metrics.histogram metrics "mffc_size" in
    let cut_metrics = Obs.Metrics.of_trace trace ~algo:"rewrite.cuts" in
    let cuts = C.enumerate net ~k:cut_size ~cut_limit ~metrics:cut_metrics () in
    Obs.Metrics.emit cut_metrics trace;
    let nodes = T.order net in
    List.iter
      (fun n ->
        if N.is_gate net n && (not (N.is_dead net n)) && N.ref_count net n > 0
        then begin
          (* structural MFFC size, used only to prune candidate builders;
             always counted in gates regardless of the cost objective *)
          let mffc_size = Co.area.Co.freed net n in
          if Obs.Metrics.enabled metrics then
            Obs.Metrics.observe h_mffc mffc_size;
          (* pick the best (cut, builder) by measured gain *)
          let best = ref None in
          List.iter
            (fun cut ->
              if cut_usable net n cut then begin
                let leaf_sigs = Array.map N.signal_of_node cut.C.leaves in
                List.iter
                  (fun builder ->
                    match evaluate_builder eng net n cut builder with
                    | None -> ()
                    | Some gain ->
                      stats.candidates <- stats.candidates + 1;
                      let keep =
                        match !best with
                        | None -> Co.accept ~zero_gain:allow_zero_gain eng gain
                        | Some (bg, _, _) -> gain > bg
                      in
                      if keep then best := Some (gain, cut, builder))
                  (candidate_builders net db cut leaf_sigs ~mffc_size)
              end)
            (C.cuts_of cuts n);
          match !best with
          | None -> ()
          | Some (gain, cut, builder) ->
            (* rebuild the winner (cheap: structural hashing replays it) and
               substitute *)
            (match builder () with
            | None -> ()
            | Some s ->
              if
                N.node_of_signal s <> n
                && not (cone_contains net (N.node_of_signal s) cut.C.leaves n)
              then begin
                N.substitute_node net n s;
                stats.substitutions <- stats.substitutions + 1;
                stats.gain <- stats.gain + gain;
                if Obs.Metrics.enabled metrics then
                  Obs.Metrics.observe h_gain gain;
                if sampling then
                  Obs.Trace.node_event trace ~algo:"rewrite" ~node:n ~gain
                    ~accepted:true
              end
              else begin
                N.take_out_if_dead net (N.node_of_signal s);
                if sampling then
                  Obs.Trace.node_event trace ~algo:"rewrite" ~node:n ~gain
                    ~accepted:false
              end)
        end)
      nodes;
    Obs.Metrics.emit metrics trace;
    Obs.Trace.report trace ~algo:"rewrite"
      [
        ("tried", stats.candidates);
        ("accepted", stats.substitutions);
        ("rejected", stats.candidates - stats.substitutions);
        ("gain", stats.gain);
      ];
    stats.gain
end
