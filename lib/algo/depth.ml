(* Logic depth under the unit-delay model — the paper's Algorithm 1,
   expressed against the network interface API only. *)

module Make (N : Network.Intf.TRAVERSABLE) = struct
  module T = Topo.Make (N)

  (* Level of every node (array indexed by node id) and the network depth. *)
  let compute (t : N.t) : int array * int =
    let levels = Array.make (N.size t) 0 in
    List.iter
      (fun n ->
        let l = ref 0 in
        N.foreach_fanin t n (fun s ->
            l := max !l levels.(N.node_of_signal s));
        levels.(n) <- !l + 1)
      (T.order t);
    let depth = ref 0 in
    N.foreach_po t (fun s -> depth := max !depth levels.(N.node_of_signal s));
    (levels, !depth)

  let depth t = snd (compute t)
end
