(* Combinational equivalence checking: a SAT miter over two networks of
   possibly different representations.  Gates are Tseitin-encoded from
   their kinds (LUTs through ISOP covers of both polarities), the primary
   inputs are shared, and the miter asserts that some output pair
   differs. *)

open Kitty

type result =
  | Equivalent
  | Counterexample of bool array  (* PI assignment *)
  | Unknown

module Make (A : Network.Intf.TRAVERSABLE) (B : Network.Intf.TRAVERSABLE) = struct
  module Ta = Topo.Make (A)
  module Tb = Topo.Make (B)

  (* Tseitin-encode one network into [solver]; returns the CNF variable of
     every node (index -1 where a node was not reachable).  [pi_vars.(i)] is
     the shared variable of primary input i.  Also used by [Fraig] for SAT
     sweeping. *)
  let encode_nodes (type t) (module N : Network.Intf.TRAVERSABLE with type t = t)
      (net : t) solver (pi_vars : int array) const_var : int array =
    let module Tn = Topo.Make (N) in
    let node_var = Array.make (N.size net) (-1) in
    node_var.(0) <- const_var;
    Array.iteri (fun i n -> node_var.(n) <- pi_vars.(i)) (N.pis net);
    let lit_of_signal s =
      Satkit.Lit.of_var node_var.(N.node_of_signal s)
        ~negated:(N.is_complemented s)
    in
    List.iter
      (fun n ->
        let v = Satkit.Solver.new_var solver in
        node_var.(n) <- v;
        let out_pos = Satkit.Lit.of_var v ~negated:false in
        let out_neg = Satkit.Lit.of_var v ~negated:true in
        let ins = Array.map lit_of_signal (N.fanin net n) in
        let add = Satkit.Solver.add_clause solver in
        match N.gate_kind net n with
        | Network.Kind.And ->
          (* v -> each input; all inputs -> v *)
          Array.iter (fun l -> add [ out_neg; l ]) ins;
          add (out_pos :: Array.to_list (Array.map Satkit.Lit.neg ins))
        | Network.Kind.Xor ->
          assert (Array.length ins = 2);
          let a = ins.(0) and b = ins.(1) in
          let na = Satkit.Lit.neg a and nb = Satkit.Lit.neg b in
          add [ out_neg; a; b ];
          add [ out_neg; na; nb ];
          add [ out_pos; a; nb ];
          add [ out_pos; na; b ]
        | Network.Kind.Maj ->
          assert (Array.length ins = 3);
          let a = ins.(0) and b = ins.(1) and c = ins.(2) in
          let n_ l = Satkit.Lit.neg l in
          (* any two inputs true force v; any two false force !v *)
          add [ out_pos; n_ a; n_ b ];
          add [ out_pos; n_ a; n_ c ];
          add [ out_pos; n_ b; n_ c ];
          add [ out_neg; a; b ];
          add [ out_neg; a; c ];
          add [ out_neg; b; c ]
        | Network.Kind.Lut tt ->
          (* cube -> v for the on-set, cube -> !v for the off-set *)
          let clause_of_cube out cube =
            out
            :: List.map
                 (fun (var, pol) ->
                   if pol then Satkit.Lit.neg ins.(var) else ins.(var))
                 (Cube.literals cube)
          in
          List.iter (fun c -> add (clause_of_cube out_pos c)) (Isop.of_tt tt);
          List.iter
            (fun c -> add (clause_of_cube out_neg c))
            (Isop.of_tt (Tt.( ~: ) tt))
        | Network.Kind.Const | Network.Kind.Pi -> assert false)
      (Tn.order net);
    node_var

  (* Encode a network and return literals for its primary outputs. *)
  let encode (type t) (module N : Network.Intf.TRAVERSABLE with type t = t)
      (net : t) solver (pi_vars : int array) const_var =
    let node_var = encode_nodes (module N) net solver pi_vars const_var in
    Array.map
      (fun s ->
        Satkit.Lit.of_var node_var.(N.node_of_signal s)
          ~negated:(N.is_complemented s))
      (N.pos net)

  (* Build the miter into [solver]: shared PIs, both networks, per-output
     difference variables, OR-of-diffs.  Returns the shared PI variables
     (the counterexample decoder). *)
  let encode_miter (a : A.t) (b : B.t) solver : int array =
    let const_var = Satkit.Solver.new_var solver in
    Satkit.Solver.add_clause solver [ Satkit.Lit.of_var const_var ~negated:true ];
    let pi_vars =
      Array.init (A.num_pis a) (fun _ -> Satkit.Solver.new_var solver)
    in
    let pos_a = encode (module A) a solver pi_vars const_var in
    let pos_b = encode (module B) b solver pi_vars const_var in
    (* diff_i <-> (pa_i xor pb_i); assert OR diff_i *)
    let diffs =
      Array.map2
        (fun la lb ->
          let d = Satkit.Solver.new_var solver in
          let dp = Satkit.Lit.of_var d ~negated:false in
          let dn = Satkit.Lit.of_var d ~negated:true in
          let na = Satkit.Lit.neg la and nb = Satkit.Lit.neg lb in
          Satkit.Solver.add_clause solver [ dn; la; lb ];
          Satkit.Solver.add_clause solver [ dn; na; nb ];
          Satkit.Solver.add_clause solver [ dp; la; nb ];
          Satkit.Solver.add_clause solver [ dp; na; lb ];
          dp)
        pos_a pos_b
    in
    Satkit.Solver.add_clause solver (Array.to_list diffs);
    pi_vars

  (* Budget ladder: escalating per-attempt conflict budgets, so cheap
     instances answer fast and hard ones give up with [Unknown] instead of
     hanging (the fuzz oracle and partition guards depend on this). *)
  let default_ladder = [ 10_000; 100_000; 1_000_000 ]

  type report = {
    winner : string;      (* config name that produced the answer *)
    conflicts : int;      (* conflicts spent by the answering solver *)
    rungs_used : int;     (* ladder rungs consumed (1 = first try) *)
  }

  (* Kernel counters of the answering solver, published as [solver_*]
     gauges under the "cec" registry so Trace.summarize attributes the
     miter's work to the enclosing pass span.  Race outcomes go through
     the race event instead (the summary sums both sources, so each solve
     reports through exactly one). *)
  let publish_solver trace solver (rep : report) =
    if Obs.Trace.enabled trace then begin
      let m = Obs.Metrics.of_trace trace ~algo:"cec" in
      List.iter
        (fun (k, v) -> Obs.Metrics.set (Obs.Metrics.gauge m ("solver_" ^ k)) v)
        (Satkit.Solver.stats solver);
      Obs.Metrics.emit m trace;
      Obs.Trace.report trace ~algo:"cec"
        [ ("conflicts", rep.conflicts); ("rungs", rep.rungs_used) ]
    end

  (* SAT equivalence check.

     Budgets: [conflict_budget] > 0 keeps the historic single-attempt
     semantics.  Otherwise [ladder] applies — escalating attempts, then
     [Unknown]; [~ladder:[]] requests a single unbounded solve.

     [jobs] > 1 races a diversified portfolio (total ladder budget per
     worker) instead of climbing the ladder sequentially; [config] selects
     the kernel for single-job solving (default: {!Satkit.Solver.env_config},
     i.e. the GENLOG_SAT_KERNEL toggle).  [trace] publishes the kernel's
     counters (and, racing, the per-config outcome) into the sink.

     [wall_timeout] > 0 caps the whole check in wall-clock seconds on top
     of the conflict ladder; on expiry the answer is [Unknown] (never a
     wrong answer), so deadline-bound flows keep their guards.

     A check never raises: if the kernel itself throws (a solver bug, or
     an injected [sat.solve] fault), the miter is re-encoded once on the
     legacy kernel; if that also fails, the answer is [Unknown] with
     winner ["anomaly"].  Correctness guards built on CEC treat both the
     same way they treat a budget exhaustion. *)
  let check_full ?(trace = Obs.Trace.null) ?(conflict_budget = 0) ?ladder
      ?(jobs = 1) ?config ?(wall_timeout = 0.) (a : A.t) (b : B.t) :
      result * report =
    let mismatch = A.num_pis a <> B.num_pis b || A.num_pos a <> B.num_pos b in
    if mismatch then
      (Counterexample [||], { winner = "shape"; conflicts = 0; rungs_used = 0 })
    else begin
      let config =
        match config with Some c -> c | None -> Satkit.Solver.env_config ()
      in
      let rungs =
        if conflict_budget > 0 then [ conflict_budget ]
        else match ladder with Some l -> l | None -> default_ladder
      in
      let deadline =
        if wall_timeout > 0. then Unix.gettimeofday () +. wall_timeout else 0.
      in
      let expired () = deadline > 0. && Unix.gettimeofday () >= deadline in
      let decode solver pi_vars = function
        | Satkit.Solver.Unsat -> Equivalent
        | Satkit.Solver.Unknown -> Unknown
        | Satkit.Solver.Sat ->
          Counterexample
            (Array.map (fun v -> Satkit.Solver.model_value solver v) pi_vars)
      in
      let single config =
        let solver = Satkit.Solver.create ~config () in
        let pi_vars = encode_miter a b solver in
        let rec climb used = function
          | [] ->
            (* an empty ladder means one unbounded attempt *)
            if used = 0 then
              ( decode solver pi_vars (Satkit.Solver.solve ~deadline solver),
                used + 1 )
            else (Unknown, used)
          | budget :: rest -> (
            match
              Satkit.Solver.solve ~conflict_budget:budget ~deadline solver
            with
            | Satkit.Solver.Unknown ->
              if expired () then (Unknown, used + 1) else climb (used + 1) rest
            | r -> (decode solver pi_vars r, used + 1))
        in
        let r, used = climb 0 rungs in
        let rep =
          {
            winner = config.Satkit.Solver.name;
            conflicts = Satkit.Solver.num_conflicts solver;
            rungs_used = used;
          }
        in
        publish_solver trace solver rep;
        (r, rep)
      in
      let race () =
        (* portfolio race: each worker gets the whole ladder as one budget *)
        let total = List.fold_left ( + ) 0 rungs in
        let o =
          Satkit.Portfolio.solve ~jobs ~conflict_budget:total ~deadline
            ~build:(fun s -> encode_miter a b s)
            ()
        in
        if Obs.Trace.enabled trace then
          Obs.Trace.race trace ~algo:"cec" ~winner:o.Satkit.Portfolio.winner
            ~configs:(Satkit.Portfolio.race_counters o);
        ( decode o.Satkit.Portfolio.solver o.Satkit.Portfolio.payload
            o.Satkit.Portfolio.result,
          {
            winner = o.Satkit.Portfolio.winner;
            conflicts = Satkit.Solver.num_conflicts o.Satkit.Portfolio.solver;
            rungs_used = 1;
          } )
      in
      let anomaly e =
        Printf.eprintf "cec: solver anomaly (%s); answering UNKNOWN\n%!"
          (Printexc.to_string e);
        (Unknown, { winner = "anomaly"; conflicts = 0; rungs_used = 0 })
      in
      let attempt = if jobs <= 1 then fun () -> single config else race in
      match attempt () with
      | r -> r
      | exception e ->
        let legacy = Satkit.Solver.legacy_config in
        if jobs <= 1 && config.Satkit.Solver.name = legacy.Satkit.Solver.name
        then anomaly e
        else begin
          Printf.eprintf
            "cec: solver anomaly (%s); retrying on the %s kernel\n%!"
            (Printexc.to_string e) legacy.Satkit.Solver.name;
          match single legacy with r -> r | exception e2 -> anomaly e2
        end
    end

  let check ?trace ?conflict_budget ?ladder ?jobs ?config ?wall_timeout
      (a : A.t) (b : B.t) : result =
    fst
      (check_full ?trace ?conflict_budget ?ladder ?jobs ?config ?wall_timeout a
         b)
end
