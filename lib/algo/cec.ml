(* Combinational equivalence checking: a SAT miter over two networks of
   possibly different representations.  Gates are Tseitin-encoded from
   their kinds (LUTs through ISOP covers of both polarities), the primary
   inputs are shared, and the miter asserts that some output pair
   differs. *)

open Kitty

type result =
  | Equivalent
  | Counterexample of bool array  (* PI assignment *)
  | Unknown

module Make (A : Network.Intf.TRAVERSABLE) (B : Network.Intf.TRAVERSABLE) = struct
  module Ta = Topo.Make (A)
  module Tb = Topo.Make (B)

  (* Tseitin-encode one network into [solver]; returns the CNF variable of
     every node (index -1 where a node was not reachable).  [pi_vars.(i)] is
     the shared variable of primary input i.  Also used by [Fraig] for SAT
     sweeping. *)
  let encode_nodes (type t) (module N : Network.Intf.TRAVERSABLE with type t = t)
      (net : t) solver (pi_vars : int array) const_var : int array =
    let module Tn = Topo.Make (N) in
    let node_var = Array.make (N.size net) (-1) in
    node_var.(0) <- const_var;
    Array.iteri (fun i n -> node_var.(n) <- pi_vars.(i)) (N.pis net);
    let lit_of_signal s =
      Satkit.Lit.of_var node_var.(N.node_of_signal s)
        ~negated:(N.is_complemented s)
    in
    List.iter
      (fun n ->
        let v = Satkit.Solver.new_var solver in
        node_var.(n) <- v;
        let out_pos = Satkit.Lit.of_var v ~negated:false in
        let out_neg = Satkit.Lit.of_var v ~negated:true in
        let ins = Array.map lit_of_signal (N.fanin net n) in
        let add = Satkit.Solver.add_clause solver in
        match N.gate_kind net n with
        | Network.Kind.And ->
          (* v -> each input; all inputs -> v *)
          Array.iter (fun l -> add [ out_neg; l ]) ins;
          add (out_pos :: Array.to_list (Array.map Satkit.Lit.neg ins))
        | Network.Kind.Xor ->
          assert (Array.length ins = 2);
          let a = ins.(0) and b = ins.(1) in
          let na = Satkit.Lit.neg a and nb = Satkit.Lit.neg b in
          add [ out_neg; a; b ];
          add [ out_neg; na; nb ];
          add [ out_pos; a; nb ];
          add [ out_pos; na; b ]
        | Network.Kind.Maj ->
          assert (Array.length ins = 3);
          let a = ins.(0) and b = ins.(1) and c = ins.(2) in
          let n_ l = Satkit.Lit.neg l in
          (* any two inputs true force v; any two false force !v *)
          add [ out_pos; n_ a; n_ b ];
          add [ out_pos; n_ a; n_ c ];
          add [ out_pos; n_ b; n_ c ];
          add [ out_neg; a; b ];
          add [ out_neg; a; c ];
          add [ out_neg; b; c ]
        | Network.Kind.Lut tt ->
          (* cube -> v for the on-set, cube -> !v for the off-set *)
          let clause_of_cube out cube =
            out
            :: List.map
                 (fun (var, pol) ->
                   if pol then Satkit.Lit.neg ins.(var) else ins.(var))
                 (Cube.literals cube)
          in
          List.iter (fun c -> add (clause_of_cube out_pos c)) (Isop.of_tt tt);
          List.iter
            (fun c -> add (clause_of_cube out_neg c))
            (Isop.of_tt (Tt.( ~: ) tt))
        | Network.Kind.Const | Network.Kind.Pi -> assert false)
      (Tn.order net);
    node_var

  (* Encode a network and return literals for its primary outputs. *)
  let encode (type t) (module N : Network.Intf.TRAVERSABLE with type t = t)
      (net : t) solver (pi_vars : int array) const_var =
    let node_var = encode_nodes (module N) net solver pi_vars const_var in
    Array.map
      (fun s ->
        Satkit.Lit.of_var node_var.(N.node_of_signal s)
          ~negated:(N.is_complemented s))
      (N.pos net)

  (* SAT equivalence check. *)
  let check ?(conflict_budget = 0) (a : A.t) (b : B.t) : result =
    if A.num_pis a <> B.num_pis b || A.num_pos a <> B.num_pos b then
      Counterexample [||]
    else begin
      let solver = Satkit.Solver.create () in
      let const_var = Satkit.Solver.new_var solver in
      Satkit.Solver.add_clause solver
        [ Satkit.Lit.of_var const_var ~negated:true ];
      let pi_vars =
        Array.init (A.num_pis a) (fun _ -> Satkit.Solver.new_var solver)
      in
      let pos_a = encode (module A) a solver pi_vars const_var in
      let pos_b = encode (module B) b solver pi_vars const_var in
      (* diff_i <-> (pa_i xor pb_i); assert OR diff_i *)
      let diffs =
        Array.map2
          (fun la lb ->
            let d = Satkit.Solver.new_var solver in
            let dp = Satkit.Lit.of_var d ~negated:false in
            let dn = Satkit.Lit.of_var d ~negated:true in
            let na = Satkit.Lit.neg la and nb = Satkit.Lit.neg lb in
            Satkit.Solver.add_clause solver [ dn; la; lb ];
            Satkit.Solver.add_clause solver [ dn; na; nb ];
            Satkit.Solver.add_clause solver [ dp; la; nb ];
            Satkit.Solver.add_clause solver [ dp; na; lb ];
            dp)
          pos_a pos_b
      in
      Satkit.Solver.add_clause solver (Array.to_list diffs);
      match Satkit.Solver.solve ~conflict_budget solver with
      | Satkit.Solver.Unsat -> Equivalent
      | Satkit.Solver.Unknown -> Unknown
      | Satkit.Solver.Sat ->
        Counterexample
          (Array.map (fun v -> Satkit.Solver.model_value solver v) pi_vars)
    end
end
