(* Generic tree balancing (paper Algorithm 2).

   Step 1 groups together adjacent gates of the same commutative-associative
   kind — AND trees, XOR trees, and MAJ trees that share a common operand u
   (the paper's <x u <y u z>> = <<x u y> u z> rule; a constant u yields the
   AND/OR trees of MIGs).  A gate joins its parent's group only when the
   connecting edge is not complemented and it has no external fanout
   (paper: "no complemented edges or external fanout, except for the
   root").  Step 2 rebuilds each group as a balanced tree, combining the
   two earliest-arriving operands first, which never increases the gate
   count and often decreases it through structural hashing. *)

module Make (N : Network.Intf.NETWORK) = struct
  module T = Topo.Make (N)
  module Dp = Depth.Make (N)
  module Co = Cost.Make (N)

  (* Grow the group of AND/XOR gates of kind [kind] rooted at [n]; returns
     the leaf signals (possibly complemented). *)
  let grow_group2 (net : N.t) kind n =
    let leaves = ref [] in
    let rec go s ~is_root =
      let c = N.node_of_signal s in
      if
        (is_root
        || ((not (N.is_complemented s))
           && N.ref_count net c = 1))
        && N.is_gate net c
        && Network.Kind.equal (N.gate_kind net c) kind
      then N.foreach_fanin net c (fun f -> go f ~is_root:false)
      else leaves := s :: !leaves
    in
    go (N.signal_of_node n) ~is_root:true;
    List.rev !leaves

  (* Grow a MAJ group rooted at [n] with shared operand [u]; returns the
     non-[u] leaf signals. *)
  let grow_group_maj (net : N.t) n u =
    let leaves = ref [] in
    let rec go s ~is_root =
      let c = N.node_of_signal s in
      let fanins = if N.is_gate net c then N.fanin net c else [||] in
      if
        (is_root || ((not (N.is_complemented s)) && N.ref_count net c = 1))
        && N.is_gate net c
        && Network.Kind.equal (N.gate_kind net c) Network.Kind.Maj
        && Array.exists (fun f -> f = u) fanins
      then begin
        (* consume exactly one occurrence of u, recurse on the others *)
        let seen_u = ref false in
        Array.iter
          (fun f ->
            if f = u && not !seen_u then seen_u := true
            else go f ~is_root:false)
          fanins
      end
      else leaves := s :: !leaves
    in
    go (N.signal_of_node n) ~is_root:true;
    List.rev !leaves

  (* Rebuild a group as a balanced tree over [leaves], combining the two
     lowest-level operands first. *)
  let rebuild (net : N.t) ~level_of combine leaves =
    let module Pq = struct
      (* tiny mergeable priority list keyed by level *)
      let insert l x lst = List.merge (fun (a, _) (b, _) -> compare a b) [ (l, x) ] lst
    end in
    let q =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (List.map (fun s -> (level_of (N.node_of_signal s), s)) leaves)
    in
    let rec go = function
      | [] -> invalid_arg "Balance.rebuild: empty group"
      | [ (_, s) ] -> s
      | (l1, s1) :: (l2, s2) :: rest ->
        let s = combine net s1 s2 in
        go (Pq.insert (max l1 l2 + 1) s rest)
    in
    go q

  (* One balancing pass.  Returns the number of substitutions applied. *)
  let run ?(trace = Obs.Trace.null) ?(cost = Cost.Spec.Area) (net : N.t) : int =
    let eng = Co.engine cost in
    let tried = ref 0 in
    let sampling = Obs.Trace.sampling trace in
    let metrics = Obs.Metrics.of_trace trace ~algo:"balance" in
    let h_group = Obs.Metrics.histogram metrics "group_size" in
    let levels, _ = Dp.compute net in
    let overlay = Hashtbl.create 64 in
    let rec level_of n =
      if n < Array.length levels then levels.(n)
      else
        match Hashtbl.find_opt overlay n with
        | Some l -> l
        | None ->
          (* a node created during this pass by structural-hash reuse *)
          let l = ref 0 in
          N.foreach_fanin net n (fun s -> l := max !l (level_of (N.node_of_signal s)));
          let l = !l + (if N.is_gate net n then 1 else 0) in
          Hashtbl.replace overlay n l;
          l
    in
    let substitutions = ref 0 in
    let apply n leaves combine =
      if List.length leaves >= 3 then begin
        incr tried;
        if Obs.Metrics.enabled metrics then
          Obs.Metrics.observe h_group (List.length leaves);
        let mark = eng.Co.mark net in
        let s = rebuild net ~level_of combine leaves in
        let root = N.node_of_signal s in
        let leaf_nodes = Array.of_list (List.map N.node_of_signal leaves) in
        if
          root <> n
          && not (T.cone_contains net ~root ~leaves:leaf_nodes n)
        then begin
          (* the rebuilt tree computes the same function; for additive
             objectives it never costs more than the group it replaces
             (structural hashing only removes gates), so the zero-gain
             accept reproduces the seed's unconditional substitution while
             still rejecting objective-worsening rebuilds under other
             costs; [s] carries any output complement *)
          let added = eng.Co.added net ~mark ~root in
          let freed = eng.Co.freed net n in
          let gain = freed - added in
          if Co.accept ~zero_gain:true eng gain then begin
            N.substitute_node net n s;
            incr substitutions;
            if sampling then
              Obs.Trace.node_event trace ~algo:"balance" ~node:n ~gain
                ~accepted:true
          end
          else begin
            N.take_out_if_dead net root;
            if sampling then
              Obs.Trace.node_event trace ~algo:"balance" ~node:n ~gain
                ~accepted:false
          end
        end
        else begin
          N.take_out_if_dead net root;
          if sampling then
            Obs.Trace.node_event trace ~algo:"balance" ~node:n ~gain:0
              ~accepted:false
        end
      end
    in
    (* outputs-first so that maximal groups are balanced before their
       sub-groups are considered *)
    let nodes = List.rev (T.order net) in
    List.iter
      (fun n ->
        if N.is_gate net n && not (N.is_dead net n) then begin
          match N.gate_kind net n with
          | Network.Kind.And ->
            apply n (grow_group2 net Network.Kind.And n) N.create_and
          | Network.Kind.Xor ->
            apply n (grow_group2 net Network.Kind.Xor n) N.create_xor
          | Network.Kind.Maj ->
            (* try each fanin as the shared operand; balance the largest group *)
            let best = ref [] and best_u = ref (N.constant false) in
            Array.iter
              (fun u ->
                let g = grow_group_maj net n u in
                if List.length g > List.length !best then begin
                  best := g;
                  best_u := u
                end)
              (N.fanin net n);
            let u = !best_u in
            apply n !best (fun net a b -> N.create_maj net u a b)
          | Network.Kind.Lut _ | Network.Kind.Const | Network.Kind.Pi -> ()
        end)
      nodes;
    Obs.Trace.report trace ~algo:"balance"
      [
        ("tried", !tried);
        ("accepted", !substitutions);
        ("rejected", !tried - !substitutions);
      ];
    Obs.Metrics.emit metrics trace;
    !substitutions
end
