(* k-LUT technology mapping over priority cuts: a depth-oriented pass
   followed by area-flow recovery passes under depth slack, then cover
   derivation into a [Network.Klut] network.  This is the generic
   counterpart of conventional cut-based FPGA mappers and produces the
   LUT counts reported in the paper's Tables 1 and 2. *)

module Make (N : Network.Intf.COUNTED) = struct
  module C = Cuts.Make (N)
  module T = Topo.Make (N)

  type mapping = {
    klut : Network.Klut.t;
    lut_count : int;
    depth : int;
  }

  let is_trivial (cut : C.cut) n =
    Array.length cut.C.leaves = 1 && cut.C.leaves.(0) = n

  (* Choose, for every gate, a best cut in two modes:
     - depth mode: minimize (arrival, area flow),
     - area mode: minimize (area flow, arrival) subject to required time. *)
  let map (net : N.t) ?(trace = Obs.Trace.null) ?(cost = Cost.Spec.Area)
      ?(k = 6) ?(cut_limit = 12) ?(area_iterations = 2) () : mapping =
    (* per-cut instantiation price under the chosen objective: edge count
       charges a cut its leaf count, user weights charge the LUT weight,
       everything else prices each LUT at 1 (the seed behavior) *)
    let cut_price (cut : C.cut) =
      match cost with
      | Cost.Spec.Edges -> float_of_int (Array.length cut.C.leaves)
      | Cost.Spec.Weights w -> float_of_int (max 1 w.Cost.Spec.w_lut)
      | Cost.Spec.Area | Cost.Spec.Depth | Cost.Spec.Activity
      | Cost.Spec.Lut _ ->
        1.0
    in
    let metrics = Obs.Metrics.of_trace trace ~algo:"lutmap" in
    let h_width = Obs.Metrics.histogram metrics "lut_width" in
    let cut_metrics = Obs.Metrics.of_trace trace ~algo:"lutmap.cuts" in
    (* wide cuts make small covers: prefer large cuts under the cap *)
    let cuts =
      C.enumerate net ~k ~cut_limit ~prefer:`Large ~metrics:cut_metrics ()
    in
    Obs.Metrics.emit cut_metrics trace;
    let order = T.order net in
    let size = N.size net in
    let arrival = Array.make size 0.0 in
    let area_flow = Array.make size 0.0 in
    let best_cut : C.cut option array = Array.make size None in
    let refs_estimate n = float_of_int (max 1 (N.ref_count net n)) in
    let cut_arrival cut =
      Array.fold_left (fun acc l -> max acc arrival.(l)) 0.0 cut.C.leaves +. 1.0
    in
    let cut_area_flow cut =
      Array.fold_left
        (fun acc l -> acc +. area_flow.(l))
        (cut_price cut) cut.C.leaves
    in
    let select_pass ~area_mode required =
      List.iter
        (fun n ->
          let candidates =
            List.filter (fun c -> not (is_trivial c n)) (C.cuts_of cuts n)
          in
          let best = ref None in
          List.iter
            (fun cut ->
              let a = cut_arrival cut and f = cut_area_flow cut in
              let feasible =
                (not area_mode) || a <= required.(n) +. 0.5
              in
              if feasible then begin
                let key = if area_mode then (f, a) else (a, f) in
                match !best with
                | Some (bk, _) when bk <= key -> ()
                | Some _ | None -> best := Some (key, cut)
              end)
            candidates;
          match !best with
          | None ->
            (* fall back to the smallest cut regardless of required time *)
            (match candidates with
            | cut :: _ ->
              best_cut.(n) <- Some cut;
              arrival.(n) <- cut_arrival cut;
              area_flow.(n) <- cut_area_flow cut /. refs_estimate n
            | [] -> assert false)
          | Some (_, cut) ->
            best_cut.(n) <- Some cut;
            arrival.(n) <- cut_arrival cut;
            area_flow.(n) <- cut_area_flow cut /. refs_estimate n)
        order
    in
    (* pass 1: depth *)
    let required = Array.make size infinity in
    select_pass ~area_mode:false required;
    let network_depth () =
      let d = ref 0.0 in
      N.foreach_po net (fun s -> d := max !d arrival.(N.node_of_signal s));
      !d
    in
    (* compute required times over the current cover *)
    let compute_required () =
      let d = network_depth () in
      Array.fill required 0 size infinity;
      N.foreach_po net (fun s ->
          let n = N.node_of_signal s in
          if required.(n) > d then required.(n) <- d);
      List.iter
        (fun n ->
          match best_cut.(n) with
          | None -> ()
          | Some cut ->
            Array.iter
              (fun l ->
                if required.(l) > required.(n) -. 1.0 then
                  required.(l) <- required.(n) -. 1.0)
              cut.C.leaves)
        (List.rev order)
    in
    (* number of LUTs the current cut selection would instantiate *)
    let cover_size () =
      let seen = Hashtbl.create 64 in
      let rec visit n =
        if N.is_gate net n && not (Hashtbl.mem seen n) then begin
          Hashtbl.replace seen n ();
          match best_cut.(n) with
          | Some cut -> Array.iter visit cut.C.leaves
          | None -> ()
        end
      in
      N.foreach_po net (fun s -> visit (N.node_of_signal s));
      Hashtbl.length seen
    in
    (* area-recovery passes can churn; keep the best cover seen *)
    let best_cover = ref (Array.copy best_cut) in
    let best_cover_size = ref (cover_size ()) in
    for _ = 1 to area_iterations do
      compute_required ();
      select_pass ~area_mode:true required;
      let size = cover_size () in
      if size < !best_cover_size then begin
        best_cover_size := size;
        best_cover := Array.copy best_cut
      end
    done;
    let best_cut = !best_cover in
    (* derive the cover from the outputs *)
    let module K = Network.Klut in
    let klut = K.create ~initial_capacity:(N.size net) () in
    let mapped = Array.make size (-1) in
    mapped.(0) <- K.constant false;
    N.foreach_pi net (fun n -> mapped.(n) <- K.create_pi klut);
    let rec realize n =
      if mapped.(n) >= 0 then mapped.(n)
      else begin
        let cut =
          match best_cut.(n) with Some c -> c | None -> assert false
        in
        let fanins = Array.map (fun l -> realize l) cut.C.leaves in
        if Obs.Metrics.enabled metrics then
          Obs.Metrics.observe h_width (Array.length cut.C.leaves);
        let s = K.create_lut klut fanins cut.C.tt in
        mapped.(n) <- s;
        s
      end
    in
    N.foreach_po net (fun s ->
        let m = realize (N.node_of_signal s) in
        K.create_po klut (K.complement_if (N.is_complemented s) m));
    let module Dk = Depth.Make (Network.Klut) in
    let mapping = { klut; lut_count = K.num_gates klut; depth = Dk.depth klut } in
    Obs.Trace.report trace ~algo:"lutmap"
      [
        ("k", k);
        ("luts", mapping.lut_count);
        ("lut_depth", mapping.depth);
      ];
    Obs.Metrics.emit metrics trace;
    mapping
end
