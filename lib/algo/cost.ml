(* The cost-generic optimization layer: one shared gain engine behind
   every restructuring pass.

   The paper's "write once, instantiate many" discipline is extended from
   representations to cost functions (AnySyn, arXiv 2311.14721): a cost
   objective is a [Network.Intf.COST] instance — a commutative monoid
   with a total order, a per-node price and a whole-network objective —
   and every optimization functor computes its accept/reject decision
   through the [engine] built here instead of inlining gates/depth
   arithmetic.

   Gain accounting follows the DAG-aware protocol the passes already
   used for plain gate counts (paper §2.2.3), generalized:

     mark  <- size of the network          (before building a candidate)
     build the candidate (structural hashing exposes sharing)
     added <- cost of the nodes the build created ([mark, size) slice)
     freed <- cost released by removing the target's MFFC
     gain  =  freed - added; accept when gain > 0 (>= 0 in zero-gain
              passes)

   [freed] is computed *after* the candidate exists, so nodes shared
   between the dying cone and the candidate hold references and are
   priced by neither side — exactly the seed semantics for area.

   Additive objectives (area, edges, switching activity, LUT count,
   per-kind weights) price a replacement by summing node costs.  Depth
   is the max-monoid: [added] is the candidate root's level, [freed] the
   target's level, and the root is priced even when structural hashing
   resolved it to a reused node — a reused-but-deeper node must not look
   free.  Replacing a node by a strictly shallower equivalent never
   increases any downstream level, so depth-gated acceptance is
   monotone on the whole-network objective. *)

module Intf = Network.Intf

(* ------------------------------------------------------------- specs -- *)

module Spec = struct
  type weights = {
    w_source : string;  (* the FILE of "weights:FILE", kept for printing *)
    w_and : int;
    w_xor : int;
    w_maj : int;
    w_lut : int;
    w_default : int;
  }

  type t =
    | Area  (* live gate count: the seed objective *)
    | Depth  (* logic depth under the unit-delay model *)
    | Edges  (* fanin edge count: a wiring/routing proxy *)
    | Activity  (* switching activity from simulation fingerprints *)
    | Lut of int  (* technology-aware k-LUT packing estimate *)
    | Weights of weights  (* user-supplied per-kind node weights *)

  let default_lut_k = 6

  let names = [ "area"; "depth"; "edges"; "activity"; "lut[:K]"; "weights:FILE" ]

  let to_string = function
    | Area -> "area"
    | Depth -> "depth"
    | Edges -> "edges"
    | Activity -> "activity"
    | Lut k -> if k = default_lut_k then "lut" else Printf.sprintf "lut:%d" k
    | Weights w -> "weights:" ^ w.w_source

  (* A weights file is line-oriented: [<kind> <int>] entries with kinds
     and/xor/maj/lut/default, '#' comments and blank lines skipped.
     Unknown kinds are errors — a typoed kind silently falling back to
     the default weight would invalidate a whole run. *)
  let parse_weights_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error (Printf.sprintf "weights file: %s" e)
    | text -> (
      let w =
        ref
          {
            w_source = path;
            w_and = 1;
            w_xor = 1;
            w_maj = 1;
            w_lut = 1;
            w_default = 1;
          }
      in
      let err = ref None in
      List.iteri
        (fun lineno line ->
          let line =
            match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          match
            String.split_on_char ' ' (String.trim line)
            |> List.filter (fun t -> t <> "")
          with
          | [] -> ()
          | [ kind; value ] when !err = None -> (
            match int_of_string_opt value with
            | Some v when v >= 0 -> (
              match kind with
              | "and" -> w := { !w with w_and = v }
              | "xor" -> w := { !w with w_xor = v }
              | "maj" -> w := { !w with w_maj = v }
              | "lut" -> w := { !w with w_lut = v }
              | "default" -> w := { !w with w_default = v }
              | k ->
                err :=
                  Some
                    (Printf.sprintf "%s:%d: unknown kind %S" path (lineno + 1) k)
              )
            | Some _ | None ->
              err :=
                Some
                  (Printf.sprintf "%s:%d: weight must be a non-negative int, got %S"
                     path (lineno + 1) value))
          | _ when !err <> None -> ()
          | _ ->
            err :=
              Some
                (Printf.sprintf "%s:%d: expected '<kind> <int>'" path (lineno + 1)))
        (String.split_on_char '\n' text);
      match !err with None -> Ok (Weights !w) | Some e -> Error e)

  let of_string s =
    match String.trim s with
    | "area" -> Ok Area
    | "depth" -> Ok Depth
    | "edges" -> Ok Edges
    | "activity" -> Ok Activity
    | "lut" -> Ok (Lut default_lut_k)
    | s when String.length s > 4 && String.sub s 0 4 = "lut:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some k when k >= 2 -> Ok (Lut k)
      | Some _ | None ->
        Error (Printf.sprintf "bad LUT size in cost spec %S (need K >= 2)" s))
    | s when String.length s > 8 && String.sub s 0 8 = "weights:" ->
      parse_weights_file (String.sub s 8 (String.length s - 8))
    | s ->
      Error
        (Printf.sprintf "unknown cost spec %S (expected %s)" s
           (String.concat " | " names))

  (* Syntax-only validation, for config round-trips that must not touch
     the filesystem (the weights file is read when the spec is used). *)
  let validate_string s =
    match String.trim s with
    | "area" | "depth" | "edges" | "activity" | "lut" -> Ok ()
    | s when String.length s > 8 && String.sub s 0 8 = "weights:" -> Ok ()
    | s when String.length s > 4 && String.sub s 0 4 = "lut:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some k when k >= 2 -> Ok ()
      | Some _ | None ->
        Error (Printf.sprintf "bad LUT size in cost spec %S (need K >= 2)" s))
    | s ->
      Error
        (Printf.sprintf "unknown cost spec %S (expected %s)" s
           (String.concat " | " names))

  (* Additive objectives sum node prices; depth is the max-monoid. *)
  let is_additive = function
    | Area | Edges | Activity | Lut _ | Weights _ -> true
    | Depth -> false
end

(* Deterministic per-PI simulation patterns for the activity objective:
   the pattern of PI [i] depends only on [i], so a node's activity is a
   pure function of its cone and survives equivalence-preserving
   restructuring of the rest of the network. *)
let activity_num_vars = 8

let activity_bit pi_index bit =
  let x = ((pi_index + 1) * 2654435761) lxor ((bit + 1) * 40503) in
  let x = x lxor (x lsr 13) in
  let x = (x * 1274126177) lxor (x lsr 11) in
  (x lsr 7) land 1 = 1

(* activity(p) = 2000 * p * (1-p) in exact integer milli-units over
   2^activity_num_vars patterns: ones in [0, 256] gives a peak of 500 at
   p = 1/2.  Integer-exact so the QCheck monoid axioms hold literally. *)
let activity_of_ones ones =
  let total = 1 lsl activity_num_vars in
  2000 * ones * (total - ones) / (total * total)

(* ---------------------------------------------------- level queries -- *)

(* Level of one node, computed fresh by iterative DFS with a local memo:
   exact under mid-pass restructuring (no stale caches), at the price of
   an O(cone) walk per query.  Shares no scratch state with the calling
   pass.  Needs only TRAVERSABLE, so SAT sweeping (whose functor has no
   reference counting) can price merges too. *)
module Level (N : Intf.TRAVERSABLE) = struct
  let level (net : N.t) (n : N.node) : int =
    if not (N.is_gate net n) then 0
    else begin
      let memo : (N.node, int) Hashtbl.t = Hashtbl.create 64 in
      let stack = Stack.create () in
      Stack.push n stack;
      while not (Stack.is_empty stack) do
        let m = Stack.top stack in
        if Hashtbl.mem memo m then ignore (Stack.pop stack)
        else if not (N.is_gate net m) then begin
          Hashtbl.replace memo m 0;
          ignore (Stack.pop stack)
        end
        else begin
          let ready = ref true in
          let lvl = ref 0 in
          N.foreach_fanin net m (fun s ->
              let c = N.node_of_signal s in
              match Hashtbl.find_opt memo c with
              | Some l -> lvl := max !lvl l
              | None ->
                if N.is_gate net c then begin
                  ready := false;
                  Stack.push c stack
                end
                else Hashtbl.replace memo c 0);
          if !ready then begin
            Hashtbl.replace memo m (!lvl + 1);
            ignore (Stack.pop stack)
          end
        end
      done;
      Hashtbl.find memo n
    end
end

(* Merge gating for SAT sweeping: merging [drop] into the equivalent
   [keep] adds no nodes, so additive objectives always improve (the
   seed's unconditional-merge behavior); the max-monoid requires the
   survivor to be no deeper than the node it replaces. *)
module Merge (N : Intf.TRAVERSABLE) = struct
  module Lv = Level (N)

  let ok (spec : Spec.t) (net : N.t) ~(keep : N.node) ~(drop : N.node) : bool =
    Spec.is_additive spec || Lv.level net keep <= Lv.level net drop
end

(* -------------------------------------------------- the cost functor -- *)

module Make (N : Intf.COSTED) = struct
  module T = Topo.Make (N)
  module Sim = Simulate.Make (N)
  module Dp = Depth.Make (N)
  module Lv = Level (N)

  let level = Lv.level

  let pi_patterns (net : N.t) =
    Array.init (N.num_pis net) (fun i ->
        let tt = Kitty.Tt.create activity_num_vars in
        for b = 0 to (1 lsl activity_num_vars) - 1 do
          if activity_bit i b then Kitty.Tt.set_bit tt b
        done;
        tt)

  (* Signature of [n]'s cone under the deterministic patterns, computed
     fresh per query with a local memo (same trade-off as [level]). *)
  let activity_of_node (net : N.t) (n : N.node) : int =
    if not (N.is_gate net n) then 0
    else begin
      let patterns = pi_patterns net in
      let pi_slot = Hashtbl.create 16 in
      Array.iteri (fun i p -> Hashtbl.replace pi_slot p i) (N.pis net);
      let memo : (N.node, Kitty.Tt.t) Hashtbl.t = Hashtbl.create 64 in
      let rec value m =
        match Hashtbl.find_opt memo m with
        | Some tt -> tt
        | None ->
          let tt =
            if N.is_constant net m then Kitty.Tt.const0 activity_num_vars
            else if N.is_pi net m then patterns.(Hashtbl.find pi_slot m)
            else Sim.gate_value net m value
          in
          Hashtbl.replace memo m tt;
          tt
      in
      activity_of_ones (Kitty.Tt.count_ones (value n))
    end

  let lut_node_cost k (net : N.t) (n : N.node) =
    let fanin = N.fanin_size net n in
    (max 1 (fanin - 1) + (k - 2)) / (k - 1)

  let weight_node_cost (w : Spec.weights) (net : N.t) (n : N.node) =
    match N.gate_kind net n with
    | Network.Kind.And -> w.Spec.w_and
    | Network.Kind.Xor -> w.Spec.w_xor
    | Network.Kind.Maj -> w.Spec.w_maj
    | Network.Kind.Lut _ -> w.Spec.w_lut
    | Network.Kind.Const | Network.Kind.Pi -> w.Spec.w_default

  (* Per-node price of one objective; 0 for anything but live gates. *)
  let node_cost (spec : Spec.t) (net : N.t) (n : N.node) : int =
    if not (N.is_gate net n) || N.is_dead net n then 0
    else
      match spec with
      | Spec.Area -> 1
      | Spec.Edges -> N.fanin_size net n
      | Spec.Depth -> level net n
      | Spec.Activity -> activity_of_node net n
      | Spec.Lut k -> lut_node_cost k net n
      | Spec.Weights w -> weight_node_cost w net n

  (* Whole-network objective.  Additive objectives fold (+) over every
     live gate (dangling included — they are priced until swept, exactly
     as [num_gates] counts them); depth folds max.  Activity runs one
     shared simulation pass instead of per-node cone walks. *)
  let eval (spec : Spec.t) (net : N.t) : int =
    match spec with
    | Spec.Area -> N.num_gates net
    | Spec.Edges ->
      List.fold_left (fun a n -> a + N.fanin_size net n) 0 (T.order_all net)
    | Spec.Depth ->
      let order = T.order_all net in
      let levels : (N.node, int) Hashtbl.t =
        Hashtbl.create (1 + List.length order)
      in
      let level_of m = Option.value ~default:0 (Hashtbl.find_opt levels m) in
      List.fold_left
        (fun acc n ->
          let l = ref 0 in
          N.foreach_fanin net n (fun s ->
              l := max !l (level_of (N.node_of_signal s)));
          let l = !l + 1 in
          Hashtbl.replace levels n l;
          max acc l)
        0 order
    | Spec.Activity ->
      let order = T.order_all net in
      let patterns = pi_patterns net in
      let pi_slot = Hashtbl.create 16 in
      Array.iteri (fun i p -> Hashtbl.replace pi_slot p i) (N.pis net);
      let values : (N.node, Kitty.Tt.t) Hashtbl.t =
        Hashtbl.create (1 + List.length order)
      in
      let value_of m =
        match Hashtbl.find_opt values m with
        | Some tt -> tt
        | None ->
          if N.is_pi net m then patterns.(Hashtbl.find pi_slot m)
          else Kitty.Tt.const0 activity_num_vars
      in
      List.fold_left
        (fun acc n ->
          let tt = Sim.gate_value net n value_of in
          Hashtbl.replace values n tt;
          acc + activity_of_ones (Kitty.Tt.count_ones tt))
        0 order
    | Spec.Lut _ | Spec.Weights _ ->
      List.fold_left
        (fun a n -> a + node_cost spec net n)
        0 (T.order_all net)

  (* First-class COST instances over [N], one per spec, for conformance
     testing and generic consumers.  All built-ins use [t = int]. *)
  let instance (spec : Spec.t) :
      (module Intf.COST with type net = N.t and type t = int) =
    let additive = Spec.is_additive spec in
    (module struct
      type net = N.t
      type t = int

      let name = Spec.to_string spec
      let zero = 0
      let add = if additive then ( + ) else max
      let compare = Int.compare
      let of_node = node_cost spec
      let eval = eval spec
      let to_int x = x
      let to_string = string_of_int
    end)

  (* ------------------------------------------------------ the engine -- *)

  (* The engine every pass gains through: int-valued because all
     built-in instances embed into int ([COST.to_int] is an
     order-embedding), which keeps the passes free of existential
     plumbing. *)
  type engine = {
    spec : Spec.t;
    additive : bool;
    mark : N.t -> int;
    (* watermark before building a candidate: node slots are append-only,
       so nodes created by the build are exactly [mark, size) *)
    added : N.t -> mark:int -> root:N.node -> int;
    (* objective cost the candidate build added.  Additive: sum of node
       prices over the created slice (a candidate resolved entirely to
       existing nodes adds 0, as the seed's gate-count delta did).
       Depth: the candidate root's level, priced even when reused. *)
    freed : N.t -> N.node -> int;
    (* objective cost released by removing [n]: additive objectives sum
       the MFFC (computed with the candidate's references live, so
       shared nodes cancel out); depth prices [n]'s level *)
    node_cost : N.t -> N.node -> int;
    eval : N.t -> int;
    merge_ok : N.t -> keep:N.node -> drop:N.node -> bool;
        (* may [drop] be merged into the equivalent [keep]?  Merging adds
           no nodes, so additive objectives always improve; the
           max-monoid requires the survivor to be no deeper *)
  }

  let additive_freed of_node (net : N.t) (n : N.node) : int =
    if not (N.is_gate net n) then 0
    else begin
      let total = ref (of_node net n) in
      let rec deref m =
        N.foreach_fanin net m (fun s ->
            let c = N.node_of_signal s in
            if N.decr_ref net c = 0 && N.is_gate net c then begin
              total := !total + of_node net c;
              deref c
            end)
      in
      let rec undo m =
        N.foreach_fanin net m (fun s ->
            let c = N.node_of_signal s in
            if N.incr_ref net c = 1 && N.is_gate net c then undo c)
      in
      deref n;
      undo n;
      !total
    end

  let additive_added of_node (net : N.t) ~mark ~root : int =
    ignore root;
    let total = ref 0 in
    for i = mark to N.size net - 1 do
      if N.is_gate net i && not (N.is_dead net i) then
        total := !total + of_node net i
    done;
    !total

  let engine (spec : Spec.t) : engine =
    let of_node = node_cost spec in
    let additive = Spec.is_additive spec in
    if additive then
      {
        spec;
        additive = true;
        mark = N.size;
        added = additive_added of_node;
        freed = additive_freed of_node;
        node_cost = of_node;
        eval = eval spec;
        merge_ok = (fun _ ~keep:_ ~drop:_ -> true);
      }
    else
      {
        spec;
        additive = false;
        mark = N.size;
        added = (fun net ~mark:_ ~root -> level net root);
        freed = (fun net n -> level net n);
        node_cost = of_node;
        eval = eval spec;
        merge_ok =
          (fun net ~keep ~drop -> level net keep <= level net drop);
      }

  let area = engine Spec.Area

  (* One accept rule for every pass: strictly positive gain, or zero gain
     when the pass runs in zero-gain mode (rwz/rfz refresh structure). *)
  let accept ?(zero_gain = false) (_e : engine) gain =
    gain > 0 || (zero_gain && gain = 0)

  (* -------------------------------------- network-level comparisons -- *)

  (* Lexicographic network cost: the objective leads, gates and depth
     break ties.  Under the area objective this is exactly the seed's
     (gates, depth) order, so checkpointing and the partition stitch
     gate keep their seed decisions by construction. *)
  let network_cost (e : engine) (net : N.t) : int * int * int =
    let gates = N.num_gates net in
    let depth = Dp.depth net in
    match e.spec with
    | Spec.Area -> (gates, gates, depth)
    | Spec.Depth -> (depth, gates, depth)
    | _ -> (e.eval net, gates, depth)

  (* Strict improvement, for gates that replace only on a win. *)
  let network_better (e : engine) ~(before : N.t) ~(after : N.t) : bool =
    network_cost e after < network_cost e before
end
