(* Bottom-up cut enumeration through the Cartesian-product method
   (paper §2.2.1): the cut set of a gate is the merge of its fanin cut
   sets, pruned to [cut_limit] priority cuts of at most [k] leaves, plus
   the trivial cut.  Truth tables are computed alongside (paper §2.2.2),
   expressed over the cut leaves in ascending node order.

   This is the signature-accelerated, array-based engine (see DESIGN.md,
   "Cut-engine internals"):

   - every cut carries a hashed leaf-set [signature]; the dominance test
     [subset a b] only runs after the O(1) pre-filter
     [sig_a land sig_b = sig_a] passes;
   - the Cartesian product threads sorted leaf arrays through per-level
     scratch buffers, so merging never re-sorts;
   - each node's cut set is a bounded array kept in priority order
     ((size, depth-estimate) per [prefer]); candidates are inserted in
     place and the worst cut is evicted on overflow;
   - truth tables are computed only for the cuts that survive dominance
     and the priority cap, through a word-level fast path for cuts of at
     most 6 leaves (the common case for k <= 6). *)

open Kitty

module Make (N : Network.Intf.TRAVERSABLE) = struct
  module T = Topo.Make (N)

  type cut = {
    leaves : N.node array;  (* ascending node ids; never constants *)
    signature : int;        (* hashed leaf-set mask for dominance pre-filtering *)
    tt : Tt.t;              (* over [Array.length leaves] variables *)
  }

  type result = {
    cuts : cut array array;  (* indexed by node, priority order, trivial last *)
    k : int;
  }

  (* Native ints give 63 usable bits; leaf [l] hashes to bit [l mod 63]. *)
  let leaf_bit l = 1 lsl (l mod 63)
  let signature_of leaves = Array.fold_left (fun s l -> s lor leaf_bit l) 0 leaves

  (* Number of set bits; signatures carry at most ~2k bits, so the
     clear-lowest-bit loop beats a full SWAR popcount here. *)
  let popcount x =
    let c = ref 0 and v = ref x in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    !c

  let trivial_cut n =
    { leaves = [| n |]; signature = leaf_bit n; tt = Tt.nth_var 1 0 }

  let constant_cut = { leaves = [||]; signature = 0; tt = Tt.const0 0 }

  (* is sorted prefix [a[0..la)] a subset of sorted prefix [b[0..lb)]? *)
  let subset_len a la b lb =
    let rec go i j =
      if i >= la then true
      else if j >= lb then false
      else if a.(i) = b.(j) then go (i + 1) (j + 1)
      else if a.(i) > b.(j) then go i (j + 1)
      else false
    in
    go 0 0

  let subset a b = subset_len a (Array.length a) b (Array.length b)

  (* Merge the sorted prefix [a[0..la)] with the sorted array [b] into
     [out]; returns the merged length, or -1 when the union exceeds [k].
     [out] must hold at least [k] elements and be distinct from [a]. *)
  let merge_into k a la b out =
    let lb = Array.length b in
    let rec go i j m =
      if i < la && j < lb then begin
        if m >= k then -1
        else begin
          let x = a.(i) and y = b.(j) in
          if x = y then begin
            out.(m) <- x;
            go (i + 1) (j + 1) (m + 1)
          end
          else if x < y then begin
            out.(m) <- x;
            go (i + 1) j (m + 1)
          end
          else begin
            out.(m) <- y;
            go i (j + 1) (m + 1)
          end
        end
      end
      else if i < la then
        if m + (la - i) > k then -1
        else begin
          Array.blit a i out m (la - i);
          m + (la - i)
        end
      else if m + (lb - j) > k then -1
      else begin
        Array.blit b j out m (lb - j);
        m + (lb - j)
      end
    in
    go 0 0 0

  let index_of leaves x =
    let rec go i = if leaves.(i) = x then i else go (i + 1) in
    go 0

  (* express a child-cut function over the merged leaves (generic slow
     path, used when the merged cut has more than 6 leaves) *)
  let remap child merged =
    let m = Array.length merged in
    if Array.length child.leaves = 0 then
      if Tt.is_const1 child.tt then Tt.const1 m else Tt.const0 m
    else begin
      let args =
        Array.map (fun leaf -> Tt.nth_var m (index_of merged leaf)) child.leaves
      in
      Tt.apply child.tt args
    end

  (* The word-level fast path manipulates <= 64-bit tables as two native
     32-bit halves: Int64 arithmetic allocates a box per operation, which
     dominated the kernel profile, while native ints stay unboxed. *)
  let mask32 = 0xFFFFFFFF

  (* Meaningful low/high bits of a table over [n] <= 6 variables. *)
  let half_masks n =
    if n >= 6 then (mask32, mask32)
    else ((1 lsl (1 lsl n)) - 1, 0)

  (* Projection patterns of variables 0..5 in the 64-bit minterm space,
     split into halves. *)
  let proj_lo = [| 0xAAAAAAAA; 0xCCCCCCCC; 0xF0F0F0F0; 0xFF00FF00; 0xFFFF0000; 0 |]
  let proj_hi = [| 0xAAAAAAAA; 0xCCCCCCCC; 0xF0F0F0F0; 0xFF00FF00; 0xFFFF0000; mask32 |]

  (* Enumerate cuts for every node reachable from the outputs.

     [prefer] decides which cuts survive the [cut_limit] cap: rewriting
     wants small cuts (cheap replacement search), LUT mapping wants wide
     cuts (fewer LUTs in the cover).

     [metrics] (default [Null], free) records the enumeration's shape:
     cuts-kept and truncation (priority-cap evictions and rejections) as
     per-node log2 histograms plus offered/kept/truncated totals — the
     numbers that tell whether [cut_limit] is a bottleneck on a given
     netlist. *)
  let enumerate (net : N.t) ?(k = 4) ?(cut_limit = 8) ?(prefer = `Small)
      ?(metrics = Obs.Metrics.null) () : result =
    let measuring = Obs.Metrics.enabled metrics in
    let m_offered = Obs.Metrics.counter metrics "offered" in
    let m_kept = Obs.Metrics.counter metrics "kept" in
    let m_truncated = Obs.Metrics.counter metrics "truncated" in
    let h_cuts = Obs.Metrics.histogram metrics "cuts_per_node" in
    let h_trunc = Obs.Metrics.histogram metrics "truncated_per_node" in
    (* truncations at the current node (offers lost to the priority cap) *)
    let node_trunc = ref 0 in
    let size = N.size net in
    let cuts = Array.make size [||] in
    cuts.(0) <- [| constant_cut |];
    N.foreach_pi net (fun n -> cuts.(n) <- [| trivial_cut n |]);
    (* structural depth, the tiebreaking estimate of the priority order *)
    let depth = Array.make size 0 in
    (* Node local functions.  LUT gates carry their own table per node, so
       caching them under their kind would conflate distinct same-arity
       functions; only the fixed kinds (AND/XOR/MAJ), whose function is
       determined by (kind, arity), go through the cache. *)
    let node_fn_cache = Hashtbl.create 16 in
    let node_fn n =
      match N.gate_kind net n with
      | Network.Kind.Lut tt -> tt
      | kind -> (
        let key = (kind, N.fanin_size net n) in
        match Hashtbl.find_opt node_fn_cache key with
        | Some f -> f
        | None ->
          let f = N.node_function net n in
          Hashtbl.replace node_fn_cache key f;
          f)
    in
    (* -- preallocated per-node working state, reused across nodes --

       The bounded cut set stores its entries in recycled slots: each slot
       owns a leaf buffer and a chosen-children buffer, so offering a
       candidate allocates nothing; leaf arrays are materialized only for
       the <= cut_limit - 1 cuts that survive a whole node. *)
    let max_cuts = max 0 (cut_limit - 1) in
    let num_slots = max_cuts + 1 in
    let slot_leaves = Array.init num_slots (fun _ -> Array.make (max 1 k) 0) in
    let slot_children =
      Array.init num_slots (fun _ -> Array.make (max 1 N.max_fanin) constant_cut)
    in
    (* pool.(pool_top..) would be in use; free slots live below [pool_top] *)
    let pool = Array.init num_slots (fun i -> i) in
    let pool_top = ref num_slots in
    let set_slot = Array.make (max 1 max_cuts) 0 in
    let set_len = Array.make (max 1 max_cuts) 0 in
    let set_sig = Array.make (max 1 max_cuts) 0 in
    let set_depth = Array.make (max 1 max_cuts) 0 in
    let count = ref 0 in
    (* chosen child cut per Cartesian-product level *)
    let chosen = Array.make (max 1 N.max_fanin) constant_cut in
    (* one merge buffer per Cartesian-product level *)
    let scratch = Array.init (N.max_fanin + 1) (fun _ -> Array.make (max 1 k) 0) in
    (* leaf positions of a child cut within the merged cut (fast path) *)
    let pos = Array.make 6 0 in
    (* expanded fanin words as native halves (fast path) *)
    let words_lo = Array.make (max 1 N.max_fanin) 0 in
    let words_hi = Array.make (max 1 N.max_fanin) 0 in
    let cut_depth leaves mlen =
      let d = ref 0 in
      for i = 0 to mlen - 1 do
        if depth.(leaves.(i)) > !d then d := depth.(leaves.(i))
      done;
      !d
    in
    (* strict priority order; smaller (size, depth) pairs come first for
       [`Small], larger sizes first for [`Large] *)
    let precedes len1 d1 len2 d2 =
      match prefer with
      | `Small -> len1 < len2 || (len1 = len2 && d1 < d2)
      | `Large -> len1 > len2 || (len1 = len2 && d1 < d2)
    in
    (* Offer a merged candidate (leaf set in [merged[0..mlen)], chosen child
       cuts in [chosen[0..nf)]) to the bounded priority set. *)
    let offer merged mlen msig nf =
      if measuring then Obs.Metrics.incr m_offered;
      (* dominated by an existing cut (equal sets included)? *)
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < !count do
        let s = set_sig.(!i) in
        (if s land msig = s then
           let le = set_len.(!i) in
           if
             le <= mlen
             && subset_len slot_leaves.(set_slot.(!i)) le merged mlen
           then dominated := true);
        incr i
      done;
      if not !dominated then begin
        (* drop existing cuts the candidate dominates *)
        let j = ref 0 in
        for i = 0 to !count - 1 do
          let s = set_sig.(i) in
          let le = set_len.(i) in
          let drop =
            msig land s = msig && mlen <= le
            && subset_len merged mlen slot_leaves.(set_slot.(i)) le
          in
          if drop then begin
            pool.(!pool_top) <- set_slot.(i);
            incr pool_top
          end
          else begin
            if !j < i then begin
              set_slot.(!j) <- set_slot.(i);
              set_len.(!j) <- set_len.(i);
              set_sig.(!j) <- set_sig.(i);
              set_depth.(!j) <- set_depth.(i)
            end;
            incr j
          end
        done;
        count := !j;
        let d = cut_depth merged mlen in
        let p = ref 0 in
        while
          !p < !count
          && not (precedes mlen d set_len.(!p) set_depth.(!p))
        do
          incr p
        done;
        if !p >= max_cuts then begin
          (* rejected by the priority cap: a truncation of the cut set *)
          if measuring then begin
            Obs.Metrics.incr m_truncated;
            incr node_trunc
          end
        end
        else begin
          (* evict the worst cut when full, then shift and insert *)
          (if !count = max_cuts then begin
             pool.(!pool_top) <- set_slot.(max_cuts - 1);
             incr pool_top;
             if measuring then begin
               Obs.Metrics.incr m_truncated;
               incr node_trunc
             end
           end
           else incr count);
          for i = !count - 1 downto !p + 1 do
            set_slot.(i) <- set_slot.(i - 1);
            set_len.(i) <- set_len.(i - 1);
            set_sig.(i) <- set_sig.(i - 1);
            set_depth.(i) <- set_depth.(i - 1)
          done;
          decr pool_top;
          let slot = pool.(!pool_top) in
          Array.blit merged 0 slot_leaves.(slot) 0 mlen;
          Array.blit chosen 0 slot_children.(slot) 0 nf;
          set_slot.(!p) <- slot;
          set_len.(!p) <- mlen;
          set_sig.(!p) <- msig;
          set_depth.(!p) <- d
        end
      end
    in
    (* Expand the table of child cut [c] (at most 6 leaves, single word)
       into the merged leaf space [leaves[0..mlen)]; writes the native
       halves into [words_lo]/[words_hi] at index [fi]. *)
    let expand_child fi (c : cut) leaves mlen =
      let nc = Array.length c.leaves in
      if nc = mlen then begin
        (* leaf sets are equal: the table carries over unchanged *)
        let w = Tt.to_int64 c.tt in
        words_lo.(fi) <- Int64.to_int (Int64.logand w 0xFFFFFFFFL);
        words_hi.(fi) <- Int64.to_int (Int64.shift_right_logical w 32)
      end
      else begin
        let j = ref 0 in
        for i = 0 to nc - 1 do
          while leaves.(!j) <> c.leaves.(i) do
            incr j
          done;
          pos.(i) <- !j
        done;
        if nc = 1 then begin
          (* a 1-leaf cut is the (possibly complemented) projection *)
          let p = pos.(0) in
          let lo_m, hi_m = half_masks mlen in
          if Tt.get_bit c.tt 1 = 1 then begin
            words_lo.(fi) <- proj_lo.(p) land lo_m;
            words_hi.(fi) <- proj_hi.(p) land hi_m
          end
          else begin
            words_lo.(fi) <- lnot proj_lo.(p) land lo_m;
            words_hi.(fi) <- lnot proj_hi.(p) land hi_m
          end
        end
        else begin
          (* nc < mlen <= 6, so the child table fits 32 bits *)
          let cw = Int64.to_int (Tt.to_int64 c.tt) in
          let lo = ref 0 and hi = ref 0 in
          for mm = 0 to (1 lsl mlen) - 1 do
            let cm = ref 0 in
            for i = 0 to nc - 1 do
              if (mm lsr pos.(i)) land 1 = 1 then cm := !cm lor (1 lsl i)
            done;
            if (cw lsr !cm) land 1 = 1 then
              if mm < 32 then lo := !lo lor (1 lsl mm)
              else hi := !hi lor (1 lsl (mm - 32))
          done;
          words_lo.(fi) <- !lo;
          words_hi.(fi) <- !hi
        end
      end
    in
    (* Truth table of a surviving cut from its chosen child cuts. *)
    let compute_tt n fanins leaves children =
      let nf = Array.length fanins in
      let mlen = Array.length leaves in
      if mlen <= 6 then begin
        (* word-level fast path: every child table fits one word because its
           leaf set is contained in the merged one *)
        let lo_m, hi_m = half_masks mlen in
        for fi = 0 to nf - 1 do
          let c = children.(fi) in
          if Array.length c.leaves = 0 then
            if Tt.is_const1 c.tt then begin
              words_lo.(fi) <- lo_m;
              words_hi.(fi) <- hi_m
            end
            else begin
              words_lo.(fi) <- 0;
              words_hi.(fi) <- 0
            end
          else expand_child fi c leaves mlen;
          if N.is_complemented fanins.(fi) then begin
            words_lo.(fi) <- lnot words_lo.(fi) land lo_m;
            words_hi.(fi) <- lnot words_hi.(fi) land hi_m
          end
        done;
        let out_lo = ref 0 and out_hi = ref 0 in
        (match N.gate_kind net n with
        | Network.Kind.And ->
          out_lo := words_lo.(0);
          out_hi := words_hi.(0);
          for fi = 1 to nf - 1 do
            out_lo := !out_lo land words_lo.(fi);
            out_hi := !out_hi land words_hi.(fi)
          done
        | Network.Kind.Xor ->
          out_lo := words_lo.(0);
          out_hi := words_hi.(0);
          for fi = 1 to nf - 1 do
            out_lo := !out_lo lxor words_lo.(fi);
            out_hi := !out_hi lxor words_hi.(fi)
          done
        | Network.Kind.Maj ->
          let a = words_lo.(0) and b = words_lo.(1) and c = words_lo.(2) in
          out_lo := a land b lor (a land c) lor (b land c);
          let a = words_hi.(0) and b = words_hi.(1) and c = words_hi.(2) in
          out_hi := a land b lor (a land c) lor (b land c)
        | Network.Kind.Lut ltt ->
          for mm = 0 to (1 lsl mlen) - 1 do
            let idx = ref 0 in
            if mm < 32 then begin
              for fi = 0 to nf - 1 do
                if (words_lo.(fi) lsr mm) land 1 = 1 then
                  idx := !idx lor (1 lsl fi)
              done
            end
            else
              for fi = 0 to nf - 1 do
                if (words_hi.(fi) lsr (mm - 32)) land 1 = 1 then
                  idx := !idx lor (1 lsl fi)
              done;
            if Tt.get_bit ltt !idx = 1 then
              if mm < 32 then out_lo := !out_lo lor (1 lsl mm)
              else out_hi := !out_hi lor (1 lsl (mm - 32))
          done
        | Network.Kind.Const | Network.Kind.Pi -> assert false);
        Tt.of_int64 mlen
          (Int64.logor
             (Int64.shift_left (Int64.of_int !out_hi) 32)
             (Int64.logand (Int64.of_int !out_lo) 0xFFFFFFFFL))
      end
      else begin
        let args =
          Array.init nf (fun fi ->
              let v = remap children.(fi) leaves in
              if N.is_complemented fanins.(fi) then Tt.( ~: ) v else v)
        in
        Tt.apply (node_fn n) args
      end
    in
    List.iter
      (fun n ->
        let fanins = N.fanin net n in
        let nf = Array.length fanins in
        depth.(n) <-
          1
          + Array.fold_left
              (fun a s -> max a depth.(N.node_of_signal s))
              0 fanins;
        count := 0;
        pool_top := num_slots;
        for i = 0 to num_slots - 1 do
          pool.(i) <- i
        done;
        (* Cartesian product over fanin cut sets; [merged] stays sorted
           throughout, one scratch buffer per level *)
        let rec product i merged mlen msig =
          if i = nf then offer merged mlen msig nf
          else begin
            let ccs = cuts.(N.node_of_signal fanins.(i)) in
            for ci = 0 to Array.length ccs - 1 do
              let c = ccs.(ci) in
              let u = msig lor c.signature in
              (* the signature union underestimates the true union size *)
              if popcount u <= k then begin
                let out = scratch.(i) in
                let m = merge_into k merged mlen c.leaves out in
                if m >= 0 then begin
                  chosen.(i) <- c;
                  product (i + 1) out m u
                end
              end
            done
          end
        in
        product 0 [||] 0 0;
        let m = !count in
        let res = Array.make (m + 1) (trivial_cut n) in
        for i = 0 to m - 1 do
          let slot = set_slot.(i) in
          let leaves = Array.sub slot_leaves.(slot) 0 set_len.(i) in
          res.(i) <-
            {
              leaves;
              signature = set_sig.(i);
              tt = compute_tt n fanins leaves slot_children.(slot);
            }
        done;
        cuts.(n) <- res;
        if measuring then begin
          Obs.Metrics.add m_kept m;
          Obs.Metrics.observe h_cuts m;
          Obs.Metrics.observe h_trunc !node_trunc;
          node_trunc := 0
        end)
      (T.order net);
    { cuts; k }

  let cuts_of r n = Array.to_list r.cuts.(n)
  let cuts_array r n = r.cuts.(n)

  let foreach_cut r n f = Array.iter f r.cuts.(n)
end
