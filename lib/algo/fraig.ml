(* Functional reduction (SAT sweeping, FRAIG-style): random simulation
   groups nodes into candidate equivalence classes; a SAT solver proves or
   refutes each candidate pair; proven-equivalent nodes are merged with
   [substitute_node].  Structural hashing only merges syntactically equal
   nodes — this pass merges *functionally* equal ones, which neither
   rewriting nor resubstitution necessarily finds.

   Generic over the representation: simulation and CNF encoding both
   dispatch on gate kinds through the network interface API. *)

open Kitty

module Make (N : Network.Intf.SWEEPABLE) = struct
  module Sim = Simulate.Make (N)
  module T = Topo.Make (N)
  module C = Cec.Make (N) (N)
  module CoM = Cost.Merge (N)

  type stats = {
    mutable classes : int;      (* candidate classes with >= 2 members *)
    mutable proved : int;       (* SAT-proved equivalent pairs *)
    mutable refuted : int;      (* SAT counterexamples *)
    mutable unknown : int;      (* conflict budget exhausted *)
    mutable escalated : int;    (* pairs retried on the portfolio *)
    mutable cost_skipped : int; (* proved merges rejected by the objective *)
  }

  let run (net : N.t) ?(trace = Obs.Trace.null) ?(cost = Cost.Spec.Area)
      ?(num_vars = 8) ?(seed = 1) ?(conflict_budget = 2_000) ?(sat_jobs = 1)
      () : stats =
    let stats =
      {
        classes = 0;
        proved = 0;
        refuted = 0;
        unknown = 0;
        escalated = 0;
        cost_skipped = 0;
      }
    in
    let sampling = Obs.Trace.sampling trace in
    let metrics = Obs.Metrics.of_trace trace ~algo:"fraig" in
    let h_class = Obs.Metrics.histogram metrics "class_size" in
    (* per-proof SAT latency, log2-bucketed in nanoseconds: the histogram
       that separates "many cheap UNSATs" from "a few budget-exhausting
       calls" *)
    let h_sat = Obs.Metrics.histogram metrics "sat_ns" in
    (* 1. signatures from random simulation *)
    let values = Sim.simulate net (Sim.random_values ~num_vars ~seed net) in
    (* 2. candidate classes, keyed by the polarity-canonical signature *)
    let classes : (string, (N.node * bool) list ref) Hashtbl.t =
      Hashtbl.create 256
    in
    let class_of n =
      let s = values.(n) in
      let sc = Tt.( ~: ) s in
      let phase = Tt.compare sc s < 0 in
      let key = Tt.to_hex (if phase then sc else s) in
      (key, phase)
    in
    let add n =
      let key, phase = class_of n in
      match Hashtbl.find_opt classes key with
      | Some l -> l := (n, phase) :: !l
      | None -> Hashtbl.add classes key (ref [ (n, phase) ])
    in
    (* constant and PIs first, then gates in topological order, so that the
       first member of each class is the earliest possible representative *)
    add 0;
    N.foreach_pi net add;
    List.iter add (T.order net);
    (* 3. prove candidate pairs on a static CNF of the whole network *)
    let solver = Satkit.Solver.create ~config:(Satkit.Solver.env_config ()) () in
    let const_var = Satkit.Solver.new_var solver in
    Satkit.Solver.add_clause solver [ Satkit.Lit.of_var const_var ~negated:true ];
    let pi_vars =
      Array.init (N.num_pis net) (fun _ -> Satkit.Solver.new_var solver)
    in
    let node_vars = C.encode_nodes (module N) net solver pi_vars const_var in
    let node_lit n = Satkit.Lit.of_var node_vars.(n) ~negated:false in
    (* prove all pairs against the class representative, collect merges *)
    let merges = ref [] in
    Hashtbl.iter
      (fun _key members ->
        match List.rev !members with
        | [] | [ _ ] -> ()
        | (rep, rep_phase) :: rest ->
          stats.classes <- stats.classes + 1;
          if Obs.Metrics.enabled metrics then
            Obs.Metrics.observe h_class (1 + List.length rest);
          List.iter
            (fun (m, m_phase) ->
              (* claim: value(m) = value(rep) xor (m_phase xor rep_phase) *)
              let flip = m_phase <> rep_phase in
              let lr = node_lit rep and lm = node_lit m in
              let d = Satkit.Solver.new_var solver in
              let dp = Satkit.Lit.of_var d ~negated:false in
              let dn = Satkit.Lit.of_var d ~negated:true in
              (* d -> (lr xor lm xor flip) *)
              let lm' = if flip then Satkit.Lit.neg lm else lm in
              Satkit.Solver.add_clause solver [ dn; lr; lm' ];
              Satkit.Solver.add_clause solver
                [ dn; Satkit.Lit.neg lr; Satkit.Lit.neg lm' ];
              let t0 =
                if Obs.Metrics.enabled metrics then Unix.gettimeofday ()
                else 0.0
              in
              let verdict =
                Satkit.Solver.solve ~conflict_budget ~assumptions:[ dp ] solver
              in
              if Obs.Metrics.enabled metrics then
                Obs.Metrics.observe_time h_sat (Unix.gettimeofday () -. t0);
              (* a budget-exhausted pair is worth a second opinion: race the
                 portfolio on a fresh single-pair miter with a larger budget
                 before giving up on the merge *)
              let verdict =
                if verdict = Satkit.Solver.Unknown && sat_jobs > 1 then begin
                  stats.escalated <- stats.escalated + 1;
                  let o =
                    Satkit.Portfolio.solve ~jobs:sat_jobs
                      ~conflict_budget:(20 * conflict_budget)
                      ~build:(fun s ->
                        let cv = Satkit.Solver.new_var s in
                        Satkit.Solver.add_clause s
                          [ Satkit.Lit.of_var cv ~negated:true ];
                        let pis =
                          Array.init (N.num_pis net) (fun _ ->
                              Satkit.Solver.new_var s)
                        in
                        let nv = C.encode_nodes (module N) net s pis cv in
                        let lr = Satkit.Lit.of_var nv.(rep) ~negated:false in
                        let lm =
                          Satkit.Lit.of_var nv.(m) ~negated:flip
                        in
                        (* assert lr <> lm: SAT refutes, UNSAT proves *)
                        Satkit.Solver.add_clause s [ lr; lm ];
                        Satkit.Solver.add_clause s
                          [ Satkit.Lit.neg lr; Satkit.Lit.neg lm ])
                      ()
                  in
                  if Obs.Trace.enabled trace then
                    Obs.Trace.race trace ~algo:"fraig"
                      ~winner:o.Satkit.Portfolio.winner
                      ~configs:(Satkit.Portfolio.race_counters o);
                  o.Satkit.Portfolio.result
                end
                else verdict
              in
              (match verdict with
              | Satkit.Solver.Unsat ->
                stats.proved <- stats.proved + 1;
                merges := (m, rep, flip) :: !merges;
                if sampling then
                  Obs.Trace.node_event trace ~algo:"fraig" ~node:m ~gain:1
                    ~accepted:true
              | Satkit.Solver.Sat ->
                stats.refuted <- stats.refuted + 1;
                if sampling then
                  Obs.Trace.node_event trace ~algo:"fraig" ~node:m ~gain:0
                    ~accepted:false
              | Satkit.Solver.Unknown -> stats.unknown <- stats.unknown + 1);
              (* retire the pair's miter variable *)
              Satkit.Solver.add_clause solver [ dn ])
            rest)
      classes;
    (* 4. apply merges (representatives are topologically earlier, so no
       cycles can arise).  Merging adds no nodes, so additive objectives
       always improve; the max-monoid (depth) additionally requires the
       survivor to be no deeper than the node it replaces. *)
    List.iter
      (fun (m, rep, flip) ->
        if
          (not (N.is_dead net m))
          && (not (N.is_dead net rep))
          && N.is_gate net m
        then
          if CoM.ok cost net ~keep:rep ~drop:m then
            N.substitute_node net m
              (N.complement_if flip (N.signal_of_node rep))
          else stats.cost_skipped <- stats.cost_skipped + 1)
      (List.rev !merges);
    (* export the shared solver's kernel counters (conflicts, clause tiers,
       minimization/inprocessing work) through the metrics registry *)
    if Obs.Metrics.enabled metrics then
      List.iter
        (fun (k, v) ->
          Obs.Metrics.set (Obs.Metrics.gauge metrics ("solver_" ^ k)) v)
        (Satkit.Solver.stats solver);
    Obs.Trace.report trace ~algo:"fraig"
      [
        ("classes", stats.classes);
        ("proved", stats.proved);
        ("refuted", stats.refuted);
        ("unknown", stats.unknown);
        ("escalated", stats.escalated);
        ("cost_skipped", stats.cost_skipped);
      ];
    Obs.Metrics.emit metrics trace;
    stats
end
