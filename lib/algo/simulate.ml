(* Bit-parallel network simulation (paper §2.2.2: exhaustive simulation as
   the workhorse of peephole optimization).  Every node value is a truth
   table over the same variable count; with random input patterns this
   doubles as a fast necessary check for equivalence. *)

open Kitty

module Make (N : Network.Intf.TRAVERSABLE) = struct
  module T = Topo.Make (N)

  (* Value of a gate from its fanin values (edge complements applied here). *)
  let gate_value (t : N.t) n (value_of : N.node -> Tt.t) : Tt.t =
    let args =
      Array.map
        (fun s ->
          let v = value_of (N.node_of_signal s) in
          if N.is_complemented s then Tt.( ~: ) v else v)
        (N.fanin t n)
    in
    match N.gate_kind t n with
    | Network.Kind.And -> Array.fold_left Tt.( &: ) args.(0) (Array.sub args 1 (Array.length args - 1))
    | Network.Kind.Xor -> Array.fold_left Tt.( ^: ) args.(0) (Array.sub args 1 (Array.length args - 1))
    | Network.Kind.Maj -> Tt.maj args.(0) args.(1) args.(2)
    | Network.Kind.Lut tt -> Tt.apply tt args
    | Network.Kind.Const | Network.Kind.Pi ->
      invalid_arg "Simulate.gate_value: not a gate"

  (* Simulate the whole network under the given PI values; returns the value
     of every node (indexed by node id). *)
  let simulate (t : N.t) (pi_values : Tt.t array) : Tt.t array =
    assert (Array.length pi_values = N.num_pis t);
    let m = if Array.length pi_values = 0 then 0 else Tt.num_vars pi_values.(0) in
    let values = Array.make (N.size t) (Tt.const0 m) in
    Array.iteri (fun i n -> values.(n) <- pi_values.(i)) (N.pis t);
    List.iter
      (fun n -> values.(n) <- gate_value t n (fun c -> values.(c)))
      (T.order t);
    values

  let output_values (t : N.t) (values : Tt.t array) : Tt.t array =
    Array.map
      (fun s ->
        let v = values.(N.node_of_signal s) in
        if N.is_complemented s then Tt.( ~: ) v else v)
      (N.pos t)

  (* Exhaustive simulation: PI i is variable i; only valid for networks with
     at most [Tt.max_vars] primary inputs. *)
  let simulate_exhaustive (t : N.t) : Tt.t array =
    let n = N.num_pis t in
    simulate t (Array.init n (fun i -> Tt.nth_var n i))

  (* Functions computed by the primary outputs, over the PI variables. *)
  let output_functions (t : N.t) : Tt.t array =
    output_values t (simulate_exhaustive t)

  (* Random simulation with [num_vars]-variable tables (2^num_vars patterns
     per PI). *)
  let random_values ~num_vars ~seed (t : N.t) : Tt.t array =
    let rng = Random.State.make [| seed |] in
    let random_tt () =
      let tt = Tt.create num_vars in
      for m = 0 to (1 lsl num_vars) - 1 do
        if Random.State.bool rng then Tt.set_bit tt m
      done;
      tt
    in
    Array.init (N.num_pis t) (fun _ -> random_tt ())
end

(* Random-simulation equivalence check across two networks (a fast
   necessary condition; the SAT-based [Cec] is the sufficient one). *)
module Cross (A : Network.Intf.TRAVERSABLE) (B : Network.Intf.TRAVERSABLE) = struct
  module Sa = Make (A)
  module Sb = Make (B)

  let probably_equivalent ?(num_vars = 10) ?(rounds = 4) (a : A.t) (b : B.t) : bool =
    A.num_pis a = B.num_pis b
    && A.num_pos a = B.num_pos b
    &&
    let ok = ref true in
    for round = 0 to rounds - 1 do
      if !ok then begin
        let pa = Sa.random_values ~num_vars ~seed:(97 * (round + 1)) a in
        let pb = Array.map (fun tt -> tt) pa in
        let oa = Sa.output_values a (Sa.simulate a pa) in
        let ob = Sb.output_values b (Sb.simulate b pb) in
        if not (Array.for_all2 Tt.equal oa ob) then ok := false
      end
    done;
    !ok
end
