(* A CDCL SAT solver in the MiniSat/Glucose tradition.

   The kernel implements the modern feature set on top of classic CDCL
   (two-watched-literal propagation, first-UIP learning, VSIDS with phase
   saving):

   - blocker literals: each watcher caches one other literal of its clause;
     when the blocker is true the clause is skipped without dereferencing
     its literal array, which is where propagation spends most of its time.
   - LBD (literal block distance) on learnt clauses, driving a three-tier
     clause database: [core] (lbd <= 2, kept forever), [tier2] (lbd <= 6,
     demoted when unused between reductions) and [local] (everything else,
     worse half deleted at each reduction).
   - restarts: either classic Luby or glucose-style EMA restarts (restart
     when the short-term LBD average exceeds the long-term one, blocked
     while the trail is unusually deep), alternating focused and stable
     phases of doubling length so phase saving can settle.
   - learnt-clause minimization by self-subsuming resolution over the
     implication graph (recursive, depth-capped).
   - inprocessing between restarts: level-0 simplification, learnt-clause
     subsumption / self-subsuming strengthening, and clause vivification
     under a propagation budget.

   Behaviour is controlled by a [config] record so a portfolio can run
   diversified instances (see portfolio.ml); [legacy_config] approximates
   the pre-modernization kernel for A/B benchmarking.

   The solver is used by SAT-based exact synthesis (paper §2.2.2), by
   combinational equivalence checking and by SAT sweeping. *)

type result = Sat | Unsat | Unknown

(* -- configuration -- *)

type restart_policy = Luby | Ema
type polarity_mode = Phase_saved | Always_true | Always_false | Random_init

(* [Tiered] is the modern lbd-driven scheme (core / tier2 / local);
   [Activity_half] is the MiniSat-style deletion the seed kernel used —
   sort every learnt by activity and drop the colder half. *)
type reduce_strategy = Tiered | Activity_half

type config = {
  name : string;
  restart : restart_policy;
  polarity : polarity_mode;
  seed : int;
  random_decision_freq : float;  (* probability of a random branch var *)
  var_decay : float;
  clause_decay : float;
  minimize : bool;               (* learnt-clause minimization *)
  inprocess : bool;              (* subsumption + vivification rounds *)
  blockers : bool;               (* blocker-literal fast path in propagate *)
  reduce : reduce_strategy;
  reduce_interval : int;         (* conflicts between clause-DB reductions *)
  inprocess_interval : int;      (* conflicts between inprocessing rounds *)
}

let default_config =
  {
    name = "modern";
    restart = Ema;
    polarity = Phase_saved;
    seed = 91648253;
    random_decision_freq = 0.0;
    var_decay = 0.95;
    clause_decay = 0.999;
    minimize = true;
    inprocess = true;
    blockers = true;
    reduce = Tiered;
    reduce_interval = 2000;
    inprocess_interval = 6000;
  }

(* The pre-modernization kernel, as close as the new data structures allow:
   Luby restarts, activity-sorted deletion, no minimization, no
   inprocessing, no blocker fast path.  Used by `bench sat` and the
   GENLOG_SAT_KERNEL=legacy toggle for before/after comparisons. *)
let legacy_config =
  {
    default_config with
    name = "legacy";
    restart = Luby;
    minimize = false;
    inprocess = false;
    blockers = false;
    reduce = Activity_half;
  }

let env_config () =
  match Sys.getenv_opt "GENLOG_SAT_KERNEL" with
  | Some "legacy" -> legacy_config
  | _ -> default_config

(* -- clauses -- *)

let tier_core = 0
let tier_two = 1
let tier_local = 2

type clause = {
  mutable lits : int array;
  mutable activity : float;
  mutable lbd : int;
  learnt : bool;
  mutable tier : int;        (* tier_core | tier_two | tier_local *)
  mutable used : int;        (* tier2 usage credit between reductions *)
  mutable dead : bool;       (* marked for removal; purged at rebuild *)
}

let dummy_clause =
  { lits = [||]; activity = 0.0; lbd = 0; learnt = false; tier = 0; used = 0;
    dead = false }

(* growable clause vector *)
type cvec = { mutable cdata : clause array; mutable cn : int }

let cvec_make () = { cdata = Array.make 16 dummy_clause; cn = 0 }

let cvec_push v c =
  if v.cn >= Array.length v.cdata then begin
    let bigger = Array.make (2 * Array.length v.cdata) dummy_clause in
    Array.blit v.cdata 0 bigger 0 v.cn;
    v.cdata <- bigger
  end;
  v.cdata.(v.cn) <- c;
  v.cn <- v.cn + 1

let cvec_iter f v =
  for i = 0 to v.cn - 1 do
    f v.cdata.(i)
  done

let cvec_compact v =
  let j = ref 0 in
  for i = 0 to v.cn - 1 do
    let c = v.cdata.(i) in
    if not c.dead then begin
      v.cdata.(!j) <- c;
      incr j
    end
  done;
  for i = !j to v.cn - 1 do
    v.cdata.(i) <- dummy_clause
  done;
  v.cn <- !j

(* watcher lists: parallel clause/blocker arrays, indexed by literal *)
type wlist = {
  mutable wcl : clause array;
  mutable wbl : int array;
  mutable wn : int;
}

let wlist_make () = { wcl = [||]; wbl = [||]; wn = 0 }

let wlist_push w c b =
  if w.wn >= Array.length w.wcl then begin
    let ncap = max 4 (2 * Array.length w.wcl) in
    let ncl = Array.make ncap dummy_clause and nbl = Array.make ncap 0 in
    Array.blit w.wcl 0 ncl 0 w.wn;
    Array.blit w.wbl 0 nbl 0 w.wn;
    w.wcl <- ncl;
    w.wbl <- nbl
  end;
  w.wcl.(w.wn) <- c;
  w.wbl.(w.wn) <- b;
  w.wn <- w.wn + 1

type t = {
  config : config;
  rng : Random.State.t;
  mutable num_vars : int;
  clauses : cvec;                        (* original problem clauses *)
  learnts : cvec;
  mutable watches : wlist array;         (* indexed by literal *)
  mutable assign : int array;            (* var -> -1 | 0 (false) | 1 (true) *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable trail : int array;             (* literal stack *)
  mutable trail_size : int;
  mutable trail_lim : int array;         (* decision-level boundaries *)
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable activity : float array;        (* VSIDS per variable *)
  mutable polarity : bool array;         (* saved phase: last assigned value *)
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable ok : bool;                     (* false once trivially UNSAT *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  (* order heap for VSIDS *)
  mutable heap : int array;              (* heap of variables *)
  mutable heap_size : int;
  mutable heap_pos : int array;          (* var -> index in heap, or -1 *)
  (* LBD computation: per-decision-level stamps *)
  mutable lbd_stamp : int array;
  mutable lbd_counter : int;
  (* per-literal stamps for subsumption *)
  mutable lit_stamp : int array;
  mutable lit_counter : int;
  (* restart state (EMA policy) *)
  mutable ema_fast : float;
  mutable ema_slow : float;
  mutable trail_ema : float;
  mutable stab_stable : bool;            (* currently in a stable phase? *)
  mutable stab_len : int;
  mutable stab_next : int;               (* conflict count of next switch *)
  mutable stable_idx : int;              (* Luby index inside stable phases *)
  (* clause-DB / inprocessing cadence *)
  mutable reduce_limit : int;
  mutable last_reduce : int;
  mutable last_inprocess : int;
  mutable simp_head : int;               (* trail size at last level-0 simplify *)
  (* scratch for minimization: vars temporarily marked seen *)
  mutable redundant_marked : int list;
  (* statistics *)
  mutable reduces : int;
  mutable inprocess_rounds : int;
  mutable minimized_lits : int;
  mutable subsumed : int;
  mutable strengthened : int;
  mutable vivified : int;
  mutable vivified_lits : int;
  mutable learned_total : int;       (* learnt clauses ever recorded *)
  lbd_hist : int array;              (* learn-time LBD, bucket = min lbd 15 *)
}

let create ?(config = default_config) () =
  {
    config;
    rng = Random.State.make [| config.seed |];
    num_vars = 0;
    clauses = cvec_make ();
    learnts = cvec_make ();
    watches = Array.init 16 (fun _ -> wlist_make ());
    assign = Array.make 8 (-1);
    level = Array.make 8 0;
    reason = Array.make 8 None;
    trail = Array.make 8 0;
    trail_size = 0;
    trail_lim = Array.make 8 0;
    trail_lim_size = 0;
    qhead = 0;
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    var_inc = 1.0;
    cla_inc = 1.0;
    seen = Array.make 8 false;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    heap = Array.make 8 0;
    heap_size = 0;
    heap_pos = Array.make 8 (-1);
    lbd_stamp = Array.make 9 0;
    lbd_counter = 0;
    lit_stamp = Array.make 16 0;
    lit_counter = 0;
    ema_fast = 0.0;
    ema_slow = 0.0;
    trail_ema = 0.0;
    stab_stable = false;
    stab_len = 1000;
    stab_next = 1000;
    stable_idx = 0;
    reduce_limit = config.reduce_interval;
    last_reduce = 0;
    last_inprocess = 0;
    simp_head = 0;
    redundant_marked = [];
    reduces = 0;
    inprocess_rounds = 0;
    minimized_lits = 0;
    subsumed = 0;
    strengthened = 0;
    vivified = 0;
    vivified_lits = 0;
    learned_total = 0;
    lbd_hist = Array.make 16 0;
  }

let config t = t.config
let num_vars t = t.num_vars
let num_clauses t = t.clauses.cn
let num_conflicts t = t.conflicts

(* -- resizable arrays -- *)

let ensure_var_capacity t v =
  let cap = Array.length t.assign in
  if v >= cap then begin
    let ncap = max (2 * cap) (v + 1) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 cap;
      b
    in
    t.assign <- grow t.assign (-1);
    t.level <- grow t.level 0;
    t.reason <- grow t.reason None;
    t.activity <- grow t.activity 0.0;
    t.polarity <- grow t.polarity false;
    t.seen <- grow t.seen false;
    t.heap_pos <- grow t.heap_pos (-1);
    let nw = Array.init (2 * ncap) (fun _ -> wlist_make ()) in
    Array.blit t.watches 0 nw 0 (Array.length t.watches);
    t.watches <- nw;
    let nls = Array.make (ncap + 1) 0 in
    Array.blit t.lbd_stamp 0 nls 0 (Array.length t.lbd_stamp);
    t.lbd_stamp <- nls;
    let nlit = Array.make (2 * ncap) 0 in
    Array.blit t.lit_stamp 0 nlit 0 (Array.length t.lit_stamp);
    t.lit_stamp <- nlit;
    let ntrail = Array.make ncap 0 in
    Array.blit t.trail 0 ntrail 0 t.trail_size;
    t.trail <- ntrail;
    let nlim = Array.make ncap 0 in
    Array.blit t.trail_lim 0 nlim 0 t.trail_lim_size;
    t.trail_lim <- nlim
  end

(* -- VSIDS order heap (max-heap on activity) -- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(a) <- j;
  t.heap_pos.(b) <- i

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    if t.heap_size >= Array.length t.heap then begin
      let bigger = Array.make (2 * Array.length t.heap) 0 in
      Array.blit t.heap 0 bigger 0 t.heap_size;
      t.heap <- bigger
    end;
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0
  end;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then heap_down t 0;
  v

let heap_decrease t v = if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

(* -- variables -- *)

let new_var t =
  let v = t.num_vars in
  t.num_vars <- v + 1;
  ensure_var_capacity t v;
  t.assign.(v) <- -1;
  (match t.config.polarity with
  | Random_init -> t.polarity.(v) <- Random.State.bool t.rng
  | Always_true -> t.polarity.(v) <- true
  | Phase_saved | Always_false -> ());
  heap_insert t v;
  v

(* Ensure variables up to [v] exist. *)
let ensure_var t v = while t.num_vars <= v do ignore (new_var t) done

let value_lit t l =
  let a = t.assign.(Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level t = t.trail_lim_size

(* -- activity -- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.num_vars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  heap_decrease t v

let var_decay t = t.var_inc <- t.var_inc /. t.config.var_decay

let cla_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    cvec_iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay t = t.cla_inc <- t.cla_inc /. t.config.clause_decay

(* -- LBD: number of distinct decision levels among a clause's literals -- *)

let compute_lbd t lits len =
  t.lbd_counter <- t.lbd_counter + 1;
  let stamp = t.lbd_counter in
  let count = ref 0 in
  for i = 0 to len - 1 do
    let lv = t.level.(Lit.var lits.(i)) in
    if lv > 0 && t.lbd_stamp.(lv) <> stamp then begin
      t.lbd_stamp.(lv) <- stamp;
      incr count
    end
  done;
  !count

(* -- assignment -- *)

let enqueue t l reason =
  let v = Lit.var l in
  t.assign.(v) <- 1 lxor (l land 1);
  t.polarity.(v) <- t.assign.(v) = 1;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let new_decision_level t =
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = Lit.var t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.trail_lim_size <- lvl
  end

(* -- watched literals -- *)

let attach_clause t c =
  wlist_push t.watches.(Lit.neg c.lits.(0)) c c.lits.(1);
  wlist_push t.watches.(Lit.neg c.lits.(1)) c c.lits.(0)

let wlist_remove w c =
  let n = w.wn in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if w.wcl.(i) != c then begin
      w.wcl.(!j) <- w.wcl.(i);
      w.wbl.(!j) <- w.wbl.(i);
      incr j
    end
  done;
  w.wn <- !j

let detach_clause t c =
  wlist_remove t.watches.(Lit.neg c.lits.(0)) c;
  wlist_remove t.watches.(Lit.neg c.lits.(1)) c

(* Throw away every watcher and re-attach all live clauses.  Used after bulk
   clause-DB surgery (reduction, inprocessing); resets blockers too. *)
let rebuild_watches t =
  for l = 0 to (2 * t.num_vars) - 1 do
    t.watches.(l).wn <- 0
  done;
  cvec_iter (fun c -> attach_clause t c) t.clauses;
  cvec_iter (fun c -> attach_clause t c) t.learnts

(* Propagate all enqueued facts; returns the conflicting clause, if any.
   Watchers carry a blocker literal: when it is already true the clause is
   satisfied and is skipped without touching its literal array. *)
let propagate t =
  let conflict = ref None in
  let use_blockers = t.config.blockers in
  while !conflict == None && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let false_lit = Lit.neg p in
    let w = t.watches.(p) in
    let n = w.wn in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = w.wcl.(!i) in
      let blocker = w.wbl.(!i) in
      if use_blockers && value_lit t blocker = 1 then begin
        (* blocker satisfied: keep the watcher untouched *)
        w.wcl.(!j) <- c;
        w.wbl.(!j) <- blocker;
        incr j;
        incr i
      end
      else begin
        let lits = c.lits in
        (* ensure the false literal (= neg p) is at position 1 *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        let first = lits.(0) in
        if (not use_blockers || first <> blocker) && value_lit t first = 1
        then begin
          (* satisfied by the other watch: make it the new blocker *)
          w.wcl.(!j) <- c;
          w.wbl.(!j) <- first;
          incr j;
          incr i
        end
        else begin
          (* look for a new literal to watch *)
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && value_lit t lits.(!k) = 0 do
            incr k
          done;
          if !k < len then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- false_lit;
            wlist_push t.watches.(Lit.neg lits.(1)) c first;
            incr i
          end
          else begin
            (* unit or conflicting: keep the watch *)
            w.wcl.(!j) <- c;
            w.wbl.(!j) <- first;
            incr j;
            incr i;
            if value_lit t first = 0 then begin
              (* conflict: keep the remaining watchers *)
              while !i < n do
                w.wcl.(!j) <- w.wcl.(!i);
                w.wbl.(!j) <- w.wbl.(!i);
                incr j;
                incr i
              done;
              conflict := Some c;
              t.qhead <- t.trail_size
            end
            else enqueue t first (Some c)
          end
        end
      end
    done;
    w.wn <- !j
  done;
  !conflict

(* -- conflict analysis (first UIP) -- *)

(* Is the false literal with variable [v] implied by literals already in the
   learnt clause (marked seen) and level-0 facts?  Walks the implication
   graph through reasons; successes are memoized by marking the variable
   seen (recorded in [redundant_marked] for cleanup).  The reason clause of
   an assigned variable keeps its implied literal at position 0 while it is
   locked, so antecedents start at index 1. *)
let rec lit_redundant t v depth =
  match t.reason.(v) with
  | None -> false
  | Some c ->
    if depth > 96 then false
    else begin
      let lits = c.lits in
      let ok = ref true in
      let i = ref 1 in
      while !ok && !i < Array.length lits do
        let vq = Lit.var lits.(!i) in
        if t.level.(vq) = 0 || t.seen.(vq) then ()
        else if lit_redundant t vq (depth + 1) then begin
          t.seen.(vq) <- true;
          t.redundant_marked <- vq :: t.redundant_marked
        end
        else ok := false;
        incr i
      done;
      !ok
    end

(* Returns (learnt literals with the asserting literal first, backtrack
   level, lbd of the learnt clause). *)
let analyze t confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_size - 1) in
  let confl = ref (Some confl) in
  let continue_loop = ref true in
  t.redundant_marked <- [];
  while !continue_loop do
    (match !confl with
    | None -> assert false
    | Some c ->
      if c.learnt then begin
        cla_bump t c;
        (* dynamic LBD: promote clauses that keep proving useful *)
        let nl = compute_lbd t c.lits (Array.length c.lits) in
        if nl < c.lbd then begin
          c.lbd <- nl;
          if nl <= 2 then c.tier <- tier_core
          else if nl <= 6 && c.tier = tier_local then c.tier <- tier_two
        end;
        if c.tier = tier_two then c.used <- 2
      end;
      let start = if !p < 0 then 0 else 1 in
      for j = start to Array.length c.lits - 1 do
        let q = c.lits.(j) in
        let v = Lit.var q in
        if (not t.seen.(v)) && t.level.(v) > 0 then begin
          var_bump t v;
          t.seen.(v) <- true;
          if t.level.(v) >= decision_level t then incr path_count
          else learnt := q :: !learnt
        end
      done);
    (* select next literal to look at *)
    let rec next_seen i =
      if t.seen.(Lit.var t.trail.(i)) then i else next_seen (i - 1)
    in
    index := next_seen !index;
    p := t.trail.(!index);
    index := !index - 1;
    confl := t.reason.(Lit.var !p);
    t.seen.(Lit.var !p) <- false;
    decr path_count;
    if !path_count <= 0 then continue_loop := false
  done;
  let collected = !learnt in
  (* self-subsuming minimization: drop literals whose falsity is already
     implied by the remaining clause *)
  let kept =
    if t.config.minimize then
      List.filter
        (fun q ->
          let keep = not (lit_redundant t (Lit.var q) 0) in
          if not keep then t.minimized_lits <- t.minimized_lits + 1;
          keep)
        collected
    else collected
  in
  let learnt_lits = Array.of_list (Lit.neg !p :: kept) in
  (* clear seen marks: collected literals (kept or dropped) plus any interior
     variables marked during redundancy checks *)
  List.iter (fun q -> t.seen.(Lit.var q) <- false) collected;
  List.iter (fun v -> t.seen.(v) <- false) t.redundant_marked;
  t.redundant_marked <- [];
  (* backtrack level must be recomputed after minimization *)
  let btlevel = ref 0 in
  for i = 1 to Array.length learnt_lits - 1 do
    let lv = t.level.(Lit.var learnt_lits.(i)) in
    if lv > !btlevel then btlevel := lv
  done;
  let lbd = compute_lbd t learnt_lits (Array.length learnt_lits) in
  (learnt_lits, !btlevel, lbd)

(* -- clause management -- *)

exception Trivially_sat

(* Simplify a raw clause at level 0: drop false/duplicate literals; raises
   [Trivially_sat] when the clause contains a true literal or [l, -l]. *)
let simplify_clause t lits =
  let tbl = Hashtbl.create (List.length lits) in
  let out = ref [] in
  List.iter
    (fun l ->
      ensure_var t (Lit.var l);
      if value_lit t l = 1 then raise Trivially_sat
      else if value_lit t l = 0 && t.level.(Lit.var l) = 0 then ()
      else if Hashtbl.mem tbl (Lit.neg l) then raise Trivially_sat
      else if not (Hashtbl.mem tbl l) then begin
        Hashtbl.add tbl l ();
        out := l :: !out
      end)
    lits;
  List.rev !out

let add_clause t lits =
  if t.ok then begin
    cancel_until t 0;
    match simplify_clause t lits with
    | exception Trivially_sat -> ()
    | [] -> t.ok <- false
    | [ l ] ->
      enqueue t l None;
      if propagate t <> None then t.ok <- false
    | lits ->
      let c =
        { lits = Array.of_list lits; activity = 0.0; lbd = 0; learnt = false;
          tier = tier_core; used = 0; dead = false }
      in
      cvec_push t.clauses c;
      attach_clause t c
  end

let locked t c =
  Array.length c.lits > 0
  &&
  match t.reason.(Lit.var c.lits.(0)) with
  | Some r -> r == c && value_lit t c.lits.(0) = 1
  | None -> false

(* Seed-style reduction: every unlocked learnt competes on activity alone,
   and the colder half dies (plus anything never bumped).  Kept as the
   [Activity_half] config point so before/after benchmarks compare the
   deletion policies honestly. *)
let reduce_db_activity t =
  let cands = ref [] in
  let n = ref 0 in
  cvec_iter
    (fun c ->
      if (not c.dead) && not (locked t c) then begin
        cands := c :: !cands;
        incr n
      end)
    t.learnts;
  let arr = Array.of_list !cands in
  Array.sort
    (fun (a : clause) (b : clause) -> compare a.activity b.activity)
    arr;
  Array.iteri
    (fun i (c : clause) ->
      if i < !n / 2 || c.activity = 0.0 then c.dead <- true)
    arr;
  cvec_compact t.learnts;
  rebuild_watches t

(* Tiered reduction: core clauses are kept forever, tier2 clauses are
   demoted to local when unused since the previous reduction, and the worse
   half of the local tier (high lbd, then low activity) is deleted. *)
let reduce_db_tiered t =
  cvec_iter
    (fun c ->
      if c.tier = tier_two && not (locked t c) then begin
        c.used <- c.used - 1;
        if c.used <= 0 then c.tier <- tier_local
      end)
    t.learnts;
  let locals = ref [] in
  let nlocals = ref 0 in
  cvec_iter
    (fun c ->
      if c.tier = tier_local && (not c.dead) && not (locked t c) then begin
        locals := c :: !locals;
        incr nlocals
      end)
    t.learnts;
  let arr = Array.of_list !locals in
  Array.sort
    (fun (a : clause) (b : clause) ->
      if a.lbd <> b.lbd then compare b.lbd a.lbd
      else compare a.activity b.activity)
    arr;
  for i = 0 to (!nlocals / 2) - 1 do
    arr.(i).dead <- true
  done;
  cvec_compact t.learnts;
  rebuild_watches t

let reduce_db t =
  t.reduces <- t.reduces + 1;
  match t.config.reduce with
  | Tiered -> reduce_db_tiered t
  | Activity_half -> reduce_db_activity t

(* -- level-0 simplification -- *)

(* Remove satisfied clauses and falsified literals once new top-level facts
   have appeared.  Reasons of level-0 assignments are cleared first: they
   are never inspected again (conflict analysis skips level-0 variables), so
   their clauses become eligible for deletion. *)
let simplify_db t =
  if
    t.ok && decision_level t = 0 && t.qhead = t.trail_size
    && t.trail_size > t.simp_head
  then begin
    for i = 0 to t.trail_size - 1 do
      t.reason.(Lit.var t.trail.(i)) <- None
    done;
    let units = ref [] in
    let clean (c : clause) =
      if not c.dead then begin
        let lits = c.lits in
        let len = Array.length lits in
        let sat = ref false in
        let n = ref 0 in
        for i = 0 to len - 1 do
          match value_lit t lits.(i) with
          | 1 -> sat := true
          | 0 -> ()
          | _ -> incr n
        done;
        if !sat then c.dead <- true
        else if !n < len then begin
          let out = Array.make (max !n 1) 0 in
          let j = ref 0 in
          for i = 0 to len - 1 do
            if value_lit t lits.(i) < 0 then begin
              out.(!j) <- lits.(i);
              incr j
            end
          done;
          match !n with
          | 0 -> t.ok <- false
          | 1 ->
            units := out.(0) :: !units;
            c.dead <- true
          | _ ->
            c.lits <- out;
            if c.lbd > !n - 1 then c.lbd <- max 1 (!n - 1)
        end
      end
    in
    cvec_iter clean t.clauses;
    cvec_iter clean t.learnts;
    cvec_compact t.clauses;
    cvec_compact t.learnts;
    rebuild_watches t;
    List.iter (fun l -> if t.ok && value_lit t l < 0 then enqueue t l None) !units;
    if t.ok && List.exists (fun l -> value_lit t l = 0) !units then t.ok <- false;
    if t.ok && propagate t <> None then t.ok <- false;
    t.simp_head <- t.trail_size
  end

(* -- inprocessing: learnt-clause subsumption + vivification -- *)

(* 64-bit variable signature for the subsumption prefilter. *)
let clause_sig lits =
  Array.fold_left (fun s l -> s lor (1 lsl (Lit.var l land 63))) 0 lits

(* Backward subsumption and self-subsuming strengthening over the learnt
   database, under a literal-visit budget.  Only called at decision level 0
   right after [simplify_db], so no learnt clause is locked. *)
let subsume_learnts t =
  let cands = ref [] in
  cvec_iter
    (fun c -> if (not c.dead) && Array.length c.lits <= 40 then cands := c :: !cands)
    t.learnts;
  let arr = Array.of_list !cands in
  Array.sort
    (fun (a : clause) (b : clause) ->
      compare (Array.length a.lits) (Array.length b.lits))
    arr;
  let sigs = Array.map (fun c -> clause_sig c.lits) arr in
  let budget = ref 2_000_000 in
  let units = ref [] in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n && !budget > 0 do
    let ci = arr.(!i) in
    if not ci.dead then begin
      let ni = Array.length ci.lits in
      t.lit_counter <- t.lit_counter + 1;
      let st = t.lit_counter in
      Array.iter (fun l -> t.lit_stamp.(l) <- st) ci.lits;
      let sig_i = sigs.(!i) in
      for j = !i + 1 to n - 1 do
        let cj = arr.(j) in
        if (not cj.dead) && !budget > 0 && sig_i land lnot sigs.(j) = 0
           && Array.length cj.lits >= ni
        then begin
          budget := !budget - Array.length cj.lits;
          let hits = ref 0 and negs = ref 0 and neg_lit = ref (-1) in
          Array.iter
            (fun r ->
              if t.lit_stamp.(r) = st then incr hits
              else if t.lit_stamp.(Lit.neg r) = st then begin
                incr negs;
                neg_lit := r
              end)
            cj.lits;
          if !hits = ni then begin
            (* ci subsumes cj *)
            cj.dead <- true;
            t.subsumed <- t.subsumed + 1
          end
          else if !hits = ni - 1 && !negs = 1 then begin
            (* self-subsuming resolution: remove [neg_lit] from cj *)
            let out =
              Array.of_list
                (List.filter (fun l -> l <> !neg_lit) (Array.to_list cj.lits))
            in
            t.strengthened <- t.strengthened + 1;
            if Array.length out = 1 then begin
              units := out.(0) :: !units;
              cj.dead <- true
            end
            else begin
              cj.lits <- out;
              sigs.(j) <- clause_sig out;
              if cj.lbd > Array.length out - 1 then
                cj.lbd <- max 1 (Array.length out - 1)
            end
          end
        end
      done
    end;
    incr i
  done;
  cvec_compact t.learnts;
  List.iter (fun l -> if t.ok && value_lit t l < 0 then enqueue t l None) !units;
  if t.ok && List.exists (fun l -> value_lit t l = 0) !units then t.ok <- false

(* Clause vivification: re-derive each clause under unit propagation and
   keep only the prefix actually needed.  Sound at level 0: assuming the
   negation of the kept prefix, a conflict or a satisfied/falsified literal
   proves the shortened clause is entailed. *)
let vivify t =
  let budget = ref 200_000 in
  let snapshot = ref [] in
  cvec_iter
    (fun c ->
      if (not c.dead) && c.tier <= tier_two && Array.length c.lits >= 3 then
        snapshot := c :: !snapshot)
    t.learnts;
  List.iter
    (fun c ->
      if t.ok && !budget > 0 && not c.dead then begin
        detach_clause t c;
        let lits = Array.copy c.lits in
        let kept = ref [] in
        let nkept = ref 0 in
        let stop = ref false in
        let i = ref 0 in
        while (not !stop) && !i < Array.length lits do
          let l = lits.(!i) in
          (match value_lit t l with
          | 1 ->
            (* implied by the negated prefix: truncate here *)
            kept := l :: !kept;
            incr nkept;
            stop := true
          | 0 -> () (* falsified by the negated prefix: drop *)
          | _ ->
            new_decision_level t;
            enqueue t (Lit.neg l) None;
            let p0 = t.propagations in
            let confl = propagate t in
            budget := !budget - (t.propagations - p0);
            kept := l :: !kept;
            incr nkept;
            if confl <> None then stop := true);
          incr i
        done;
        cancel_until t 0;
        let new_len = !nkept in
        if new_len < Array.length lits then begin
          t.vivified <- t.vivified + 1;
          t.vivified_lits <- t.vivified_lits + (Array.length lits - new_len);
          match new_len with
          | 0 -> t.ok <- false
          | 1 ->
            c.dead <- true;
            let l = List.hd !kept in
            if value_lit t l < 0 then begin
              enqueue t l None;
              if propagate t <> None then t.ok <- false
            end
            else if value_lit t l = 0 then t.ok <- false
          | _ ->
            c.lits <- Array.of_list (List.rev !kept);
            if c.lbd > new_len - 1 then c.lbd <- max 1 (new_len - 1);
            attach_clause t c
        end
        else attach_clause t c
      end)
    !snapshot;
  cvec_compact t.learnts

(* One inprocessing round: level-0 simplification, subsumption,
   vivification, then a full watch rebuild and re-propagation of the trail
   so the solver is back at a clean fixpoint. *)
let inprocess t =
  if t.ok && decision_level t = 0 then begin
    t.inprocess_rounds <- t.inprocess_rounds + 1;
    simplify_db t;
    if t.ok then begin
      subsume_learnts t;
      if t.ok then vivify t;
      rebuild_watches t;
      t.qhead <- 0;
      if t.ok && propagate t <> None then t.ok <- false
    end
  end

(* -- search -- *)

(* The Luby restart sequence: luby y x is y^(position of x in the sequence
   1 1 2 1 1 2 4 ...). *)
let luby y x =
  let rec grow size seq =
    if size < x + 1 then grow ((2 * size) + 1) (seq + 1) else (size, seq)
  in
  let rec shrink x size seq =
    if size - 1 = x then seq
    else
      let size = (size - 1) / 2 in
      shrink (x mod size) size (seq - 1)
  in
  let size, seq = grow 1 0 in
  y ** float_of_int (shrink x size seq)

let pick_branch_var t =
  let rec go () =
    if t.heap_size = 0 then -1
    else begin
      let v = heap_pop t in
      if t.assign.(v) < 0 then v else go ()
    end
  in
  let freq = t.config.random_decision_freq in
  if freq > 0.0 && t.heap_size > 0 && Random.State.float t.rng 1.0 < freq then begin
    let v = t.heap.(Random.State.int t.rng t.heap_size) in
    if t.assign.(v) < 0 then v else go ()
  end
  else go ()

let decision_polarity t v =
  match t.config.polarity with
  | Phase_saved | Random_init -> t.polarity.(v)
  | Always_true -> true
  | Always_false -> false

let record_learnt t lits btlevel lbd =
  (* [btlevel] has already been clamped to the root (assumption) level by
     the caller *)
  t.learned_total <- t.learned_total + 1;
  let b = if lbd < 0 then 0 else min lbd (Array.length t.lbd_hist - 1) in
  t.lbd_hist.(b) <- t.lbd_hist.(b) + 1;
  cancel_until t btlevel;
  match Array.length lits with
  | 1 -> enqueue t lits.(0) None
  | _ ->
    let tier =
      if lbd <= 2 then tier_core
      else if lbd <= 6 then tier_two
      else tier_local
    in
    let c =
      { lits; activity = 0.0; lbd; learnt = true; tier; used = 2; dead = false }
    in
    (* watch the asserting literal and a literal from the backtrack level *)
    let rec max_idx i best =
      if i >= Array.length lits then best
      else if t.level.(Lit.var lits.(i)) > t.level.(Lit.var lits.(best)) then
        max_idx (i + 1) i
      else max_idx (i + 1) best
    in
    let m = max_idx 2 1 in
    let tmp = c.lits.(1) in
    c.lits.(1) <- c.lits.(m);
    c.lits.(m) <- tmp;
    cvec_push t.learnts c;
    attach_clause t c;
    cla_bump t c;
    enqueue t lits.(0) (Some c)

(* EMA restart check; called between decisions in focused phases.  May
   postpone a due restart (by resetting the fast average) when the trail is
   unusually deep — a sign the solver is making assignment progress. *)
let ema_restart_due t =
  if t.ema_fast > 1.25 *. t.ema_slow then begin
    if float_of_int t.trail_size > 1.4 *. t.trail_ema then begin
      t.ema_fast <- t.ema_slow;
      false
    end
    else true
  end
  else false

type outcome = O_sat | O_unsat | O_restart | O_budget | O_stopped

(* Search below the assumption (root) level: backtracking never unassigns
   the assumptions, and a conflict at or below the root level means UNSAT
   under the current assumptions.  [restart_limit] > 0 gives a fixed-size
   restart (Luby or stable phase); 0 means EMA-driven. *)
let search t ~root_level ~restart_limit ~budget ~stop =
  let conflicts_here = ref 0 in
  let result = ref None in
  let iter = ref 0 in
  while !result = None do
    incr iter;
    match propagate t with
    | Some confl ->
      t.conflicts <- t.conflicts + 1;
      incr conflicts_here;
      if decision_level t <= root_level then result := Some O_unsat
      else begin
        let learnt, btlevel, lbd = analyze t confl in
        let fl = float_of_int lbd in
        if t.conflicts = 1 then begin
          (* seed the averages with the first observation: starting from
             0.0 leaves the fast EMA hundreds of times above the slow one
             for thousands of conflicts, saturating the restart test
             throughout warm-up *)
          t.ema_fast <- fl;
          t.ema_slow <- fl;
          t.trail_ema <- float_of_int t.trail_size
        end
        else begin
          t.ema_fast <- t.ema_fast +. ((fl -. t.ema_fast) /. 32.0);
          t.ema_slow <- t.ema_slow +. ((fl -. t.ema_slow) /. 8192.0);
          t.trail_ema <-
            t.trail_ema +. ((float_of_int t.trail_size -. t.trail_ema) /. 4096.0)
        end;
        record_learnt t learnt (max btlevel root_level) lbd;
        var_decay t;
        cla_decay t;
        if t.conflicts - t.last_reduce >= t.reduce_limit then begin
          t.last_reduce <- t.conflicts;
          t.reduce_limit <- t.reduce_limit + (t.config.reduce_interval / 4);
          reduce_db t
        end
      end
    | None ->
      if budget > 0 && t.conflicts >= budget then begin
        cancel_until t root_level;
        result := Some O_budget
      end
      else if
        (match stop with
        | Some f -> !iter land 255 = 0 && f ()
        | None -> false)
      then begin
        cancel_until t root_level;
        result := Some O_stopped
      end
      else if
        (if restart_limit > 0 then !conflicts_here >= restart_limit
         else !conflicts_here >= 50 && ema_restart_due t)
      then begin
        cancel_until t root_level;
        result := Some O_restart
      end
      else begin
        let v = pick_branch_var t in
        if v < 0 then result := Some O_sat
        else begin
          t.decisions <- t.decisions + 1;
          new_decision_level t;
          enqueue t (Lit.of_var v ~negated:(not (decision_polarity t v))) None
        end
      end
  done;
  match !result with Some r -> r | None -> assert false

let solve ?(conflict_budget = 0) ?(assumptions = []) ?(deadline = 0.) ?stop t =
  if Fault_core.active () then Fault_core.fire "sat.solve";
  (* a wall-clock deadline composes into the [stop] hook the search loop
     already polls every 256 steps; the syscall cost stays off the hot
     path when no deadline is set *)
  let stop =
    if deadline > 0. then
      Some
        (fun () ->
          (match stop with Some f -> f () | None -> false)
          || Unix.gettimeofday () >= deadline)
    else stop
  in
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    (* level-0 housekeeping before assumptions go on the trail *)
    if
      t.config.inprocess
      && t.conflicts - t.last_inprocess >= t.config.inprocess_interval
    then begin
      t.last_inprocess <- t.conflicts;
      inprocess t
    end
    else simplify_db t;
    if not t.ok then Unsat
    else begin
      (* push assumptions as successive decision levels *)
      let rec push = function
        | [] -> None
        | l :: rest -> (
          ensure_var t (Lit.var l);
          match value_lit t l with
          | 1 -> push rest
          | 0 -> Some Unsat
          | _ ->
            new_decision_level t;
            enqueue t l None;
            (match propagate t with Some _ -> Some Unsat | None -> push rest))
      in
      match push assumptions with
      | Some r ->
        cancel_until t 0;
        r
      | None ->
        (* assumptions stay on the trail below [root_level] for the whole
           solve; search never backtracks past them *)
        let root_level = decision_level t in
        let start_conflicts = t.conflicts in
        let budget =
          if conflict_budget > 0 then start_conflicts + conflict_budget else 0
        in
        let rec restart_loop i =
          let restart_limit =
            match t.config.restart with
            | Luby -> int_of_float (luby 2.0 i *. 100.0)
            | Ema ->
              (* alternate focused (EMA) and stable (Luby-paced) phases of
                 doubling length so saved phases can settle *)
              if t.conflicts >= t.stab_next then begin
                t.stab_stable <- not t.stab_stable;
                t.stab_len <- 2 * t.stab_len;
                t.stab_next <- t.conflicts + t.stab_len
              end;
              if t.stab_stable then
                int_of_float (luby 2.0 t.stable_idx *. 512.0)
              else 0
          in
          match search t ~root_level ~restart_limit ~budget ~stop with
          | O_sat -> Sat
          | O_unsat -> Unsat
          | O_budget | O_stopped -> Unknown
          | O_restart ->
            t.restarts <- t.restarts + 1;
            if t.config.restart = Ema && t.stab_stable then
              t.stable_idx <- t.stable_idx + 1;
            (* inprocess between restarts, but only when nothing is pinned
               on the trail by assumptions *)
            if
              root_level = 0 && t.config.inprocess
              && t.conflicts - t.last_inprocess >= t.config.inprocess_interval
            then begin
              t.last_inprocess <- t.conflicts;
              inprocess t
            end;
            if not t.ok then Unsat else restart_loop (i + 1)
        in
        let r = restart_loop 0 in
        (match r with
        | Sat -> r (* keep the model; caller reads it before further solving *)
        | Unsat | Unknown ->
          cancel_until t 0;
          r)
    end
  end

(* Model access: only meaningful right after [solve] returned [Sat]. *)
let model_value t v = t.assign.(v) = 1

(* -- statistics -- *)

(* A point-in-time copy of every kernel counter, cheap enough to take
   before and after each solve.  This is the telemetry surface the
   observability layer consumes (satkit itself has no obs dependency):
   callers diff two snapshots to attribute solver work to a pass, and
   publish the result as metrics gauges.  [lbd] is a histogram of
   learn-time LBDs (bucket i = clauses learnt with LBD i, last bucket
   open-ended): the distribution that tells a glue-rich easy instance
   apart from a thrashing one. *)
type snapshot = {
  s_vars : int;
  s_clauses : int;
  s_learnts : int;
  s_learnts_core : int;
  s_learnts_tier2 : int;
  s_learnts_local : int;
  s_learned_total : int;
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_reduces : int;
  s_inprocess_rounds : int;
  s_minimized_lits : int;
  s_subsumed : int;
  s_strengthened : int;
  s_vivified : int;
  s_vivified_lits : int;
  s_lbd : int array;  (* learn-time LBD histogram; last bucket open-ended *)
}

let snapshot t : snapshot =
  let core = ref 0 and tier2 = ref 0 and local = ref 0 in
  cvec_iter
    (fun c ->
      if c.tier = tier_core then incr core
      else if c.tier = tier_two then incr tier2
      else incr local)
    t.learnts;
  {
    s_vars = t.num_vars;
    s_clauses = t.clauses.cn;
    s_learnts = t.learnts.cn;
    s_learnts_core = !core;
    s_learnts_tier2 = !tier2;
    s_learnts_local = !local;
    s_learned_total = t.learned_total;
    s_conflicts = t.conflicts;
    s_decisions = t.decisions;
    s_propagations = t.propagations;
    s_restarts = t.restarts;
    s_reduces = t.reduces;
    s_inprocess_rounds = t.inprocess_rounds;
    s_minimized_lits = t.minimized_lits;
    s_subsumed = t.subsumed;
    s_strengthened = t.strengthened;
    s_vivified = t.vivified;
    s_vivified_lits = t.vivified_lits;
    s_lbd = Array.copy t.lbd_hist;
  }

(* The snapshot as label/value pairs, the format the trace layer stores.
   The histogram is summarized into the three tier-defining ranges (the
   full array stays available on the record). *)
let stats_of_snapshot (s : snapshot) =
  let lbd_range lo hi =
    let acc = ref 0 in
    for i = lo to min hi (Array.length s.s_lbd - 1) do
      acc := !acc + s.s_lbd.(i)
    done;
    !acc
  in
  [
    ("vars", s.s_vars);
    ("clauses", s.s_clauses);
    ("learnts", s.s_learnts);
    ("learnts_core", s.s_learnts_core);
    ("learnts_tier2", s.s_learnts_tier2);
    ("learnts_local", s.s_learnts_local);
    ("learned_total", s.s_learned_total);
    ("conflicts", s.s_conflicts);
    ("decisions", s.s_decisions);
    ("propagations", s.s_propagations);
    ("restarts", s.s_restarts);
    ("reduces", s.s_reduces);
    ("inprocess_rounds", s.s_inprocess_rounds);
    ("minimized_lits", s.s_minimized_lits);
    ("subsumed", s.s_subsumed);
    ("strengthened", s.s_strengthened);
    ("vivified", s.s_vivified);
    ("vivified_lits", s.s_vivified_lits);
    ("lbd_glue", lbd_range 0 2);
    ("lbd_mid", lbd_range 3 6);
    ("lbd_high", lbd_range 7 (Array.length s.s_lbd - 1));
  ]

(* Per-field difference [b - a] of two snapshots of the *same* solver:
   attributes the work of one solve (or one pass) when the solver is
   reused.  Sizes (vars, clause counts) are reported as-of [b], not
   diffed — a difference of two gauges means nothing. *)
let diff_snapshot (a : snapshot) (b : snapshot) : snapshot =
  {
    b with
    s_learned_total = b.s_learned_total - a.s_learned_total;
    s_conflicts = b.s_conflicts - a.s_conflicts;
    s_decisions = b.s_decisions - a.s_decisions;
    s_propagations = b.s_propagations - a.s_propagations;
    s_restarts = b.s_restarts - a.s_restarts;
    s_reduces = b.s_reduces - a.s_reduces;
    s_inprocess_rounds = b.s_inprocess_rounds - a.s_inprocess_rounds;
    s_minimized_lits = b.s_minimized_lits - a.s_minimized_lits;
    s_subsumed = b.s_subsumed - a.s_subsumed;
    s_strengthened = b.s_strengthened - a.s_strengthened;
    s_vivified = b.s_vivified - a.s_vivified;
    s_vivified_lits = b.s_vivified_lits - a.s_vivified_lits;
    s_lbd = Array.init (Array.length b.s_lbd) (fun i -> b.s_lbd.(i) - a.s_lbd.(i));
  }

let stats t = stats_of_snapshot (snapshot t)

let pp_stats fmt t =
  Format.fprintf fmt
    "vars=%d clauses=%d conflicts=%d decisions=%d props=%d restarts=%d \
     learnts=%d minimized=%d subsumed=%d vivified=%d"
    t.num_vars t.clauses.cn t.conflicts t.decisions t.propagations t.restarts
    t.learnts.cn t.minimized_lits t.subsumed t.vivified
