(* DIMACS CNF reader/writer: the interchange format for SAT problems, so
   the solver can be exercised against external instances and CNFs built
   here (e.g. CEC miters) can be exported to other solvers. *)

exception Parse_error of string

(* Parse a DIMACS file into (num_vars, clauses); clauses use {!Lit}
   encoding. *)
let read (ic : in_channel) : int * int list list =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let rec go () =
    match input_line ic with
    | exception End_of_file ->
      if !current <> [] then raise (Parse_error "unterminated clause")
    | line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then go ()
      else if line.[0] = 'p' then begin
        (match
           String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
         with
        | [ "p"; "cnf"; v; _c ] -> num_vars := int_of_string v
        | _ -> raise (Parse_error ("bad problem line: " ^ line)));
        go ()
      end
      else begin
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> raise (Parse_error ("bad literal: " ^ tok))
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some v ->
                 let var = abs v - 1 in
                 if var + 1 > !num_vars then num_vars := var + 1;
                 current := Lit.of_var var ~negated:(v < 0) :: !current);
        go ()
      end
  in
  go ();
  (!num_vars, List.rev !clauses)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

(* Load a DIMACS problem into a fresh solver. *)
let load_file ?config path : Solver.t =
  let num_vars, clauses = read_file path in
  let s = Solver.create ?config () in
  Solver.ensure_var s (num_vars - 1);
  List.iter (Solver.add_clause s) clauses;
  s

let write (oc : out_channel) ~num_vars (clauses : int list list) =
  Printf.fprintf oc "p cnf %d %d\n" num_vars (List.length clauses);
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          Printf.fprintf oc "%d "
            (if Lit.is_neg l then -(Lit.var l + 1) else Lit.var l + 1))
        clause;
      Printf.fprintf oc "0\n")
    clauses

let write_file path ~num_vars clauses =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write oc ~num_vars clauses)
