(** A CDCL SAT solver in the MiniSat/Glucose tradition.

    On top of classic CDCL (two-watched-literal propagation with blocker
    literals, first-UIP clause learning, VSIDS branching with phase saving,
    incremental solving under assumptions, per-call conflict budgets) the
    kernel implements LBD-based tiered clause deletion (core/tier2/local),
    glucose-style EMA restarts with stabilization phases, learnt-clause
    minimization by self-subsuming resolution, and periodic inprocessing
    (level-0 simplification, learnt-clause subsumption, vivification).

    Behaviour is parameterized by a {!config} so a portfolio can run
    diversified instances (see {!Portfolio}).

    Used by SAT-based exact synthesis (paper §2.2.2), combinational
    equivalence checking and SAT sweeping. *)

type t

type result = Sat | Unsat | Unknown

(** {1 Configuration} *)

type restart_policy = Luby | Ema

type polarity_mode =
  | Phase_saved    (** saved phase, initially false (MiniSat default) *)
  | Always_true    (** always branch positive *)
  | Always_false   (** always branch negative *)
  | Random_init    (** saved phase, randomly initialized per variable *)

type reduce_strategy =
  | Tiered         (** lbd-driven core/tier2/local clause database *)
  | Activity_half  (** MiniSat-style: drop the lower-activity half *)

type config = {
  name : string;
  restart : restart_policy;
  polarity : polarity_mode;
  seed : int;
  random_decision_freq : float;
      (** probability of picking a random branching variable *)
  var_decay : float;
  clause_decay : float;
  minimize : bool;     (** learnt-clause minimization *)
  inprocess : bool;    (** subsumption + vivification between restarts *)
  blockers : bool;     (** blocker-literal fast path in propagation *)
  reduce : reduce_strategy;
  reduce_interval : int;
      (** conflicts between learnt-clause-database reductions *)
  inprocess_interval : int;  (** conflicts between inprocessing rounds *)
}

val default_config : config
(** The modern kernel: EMA restarts, minimization, inprocessing. *)

val legacy_config : config
(** Approximates the pre-modernization kernel (Luby restarts,
    activity-sorted clause deletion, no minimization, no inprocessing) for
    A/B benchmarking. *)

val env_config : unit -> config
(** [default_config], or [legacy_config] when the environment variable
    [GENLOG_SAT_KERNEL] is set to ["legacy"]. *)

(** {1 Solving} *)

val create : ?config:config -> unit -> t

val config : t -> config

val new_var : t -> int
(** Allocate the next variable; variables are dense integers from 0. *)

val ensure_var : t -> int -> unit
(** Make sure variables [0 .. v] exist. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a clause; performs level-0 simplification.  Adding the empty clause
    (or a clause that simplifies away entirely) makes the instance
    unsatisfiable. *)

val solve :
  ?conflict_budget:int ->
  ?assumptions:Lit.t list ->
  ?deadline:float ->
  ?stop:(unit -> bool) ->
  t ->
  result
(** Solve the current formula.

    - [assumptions] are temporarily asserted literals; [Unsat] then means
      "unsatisfiable under the assumptions".
    - [conflict_budget] > 0 bounds the search; exceeding it yields
      [Unknown] (never a wrong answer).
    - [deadline] > 0 is an absolute wall-clock time ([Unix.gettimeofday]
      scale); once it passes, the solve gives up with [Unknown].
    - [stop] is polled periodically during search; once it returns [true]
      the solve gives up with [Unknown].  Used by the portfolio for
      first-answer-wins cancellation.

    Under fault injection ([GENLOG_FAULTS]) this is the [sat.solve]
    point: an armed draw raises {!Fault_core.Injected} on entry.

    After [Sat], the model is available through {!model_value} until the
    next [solve] or [add_clause]. *)

val model_value : t -> int -> bool
(** Value of a variable in the model; meaningful only right after a [Sat]
    answer. *)

(** {1 Telemetry}

    The kernel's internal counters, exposed as a plain record so callers
    (CEC, fraig, exact synthesis) can publish them into the observability
    layer without satkit depending on it.  Take a snapshot before and
    after a solve and {!diff_snapshot} the two to attribute the work. *)

type snapshot = {
  s_vars : int;
  s_clauses : int;
  s_learnts : int;          (** learnt clauses currently in the database *)
  s_learnts_core : int;     (** tier: lbd <= 2, kept forever *)
  s_learnts_tier2 : int;    (** tier: lbd <= 6, demoted when unused *)
  s_learnts_local : int;    (** tier: everything else *)
  s_learned_total : int;    (** learnt clauses ever recorded *)
  s_conflicts : int;
  s_decisions : int;
  s_propagations : int;
  s_restarts : int;
  s_reduces : int;          (** learnt-DB reduction rounds *)
  s_inprocess_rounds : int;
  s_minimized_lits : int;   (** literals removed by learnt minimization *)
  s_subsumed : int;
  s_strengthened : int;
  s_vivified : int;
  s_vivified_lits : int;
  s_lbd : int array;
      (** learn-time LBD histogram: [s_lbd.(i)] clauses were learnt with
          LBD [i]; the last bucket is open-ended.  Unit clauses land in
          bucket 0/1. *)
}

val snapshot : t -> snapshot
(** A point-in-time copy of every counter; cheap (one learnt-DB scan). *)

val stats_of_snapshot : snapshot -> (string * int) list
(** The snapshot as label/value pairs (histogram summarized into
    glue/mid/high ranges), for metrics export. *)

val diff_snapshot : snapshot -> snapshot -> snapshot
(** [diff_snapshot before after]: per-field [after - before] for the
    monotone counters; sizes (vars, clause tiers) are taken from
    [after]. *)

val stats : t -> (string * int) list
(** [stats_of_snapshot (snapshot t)] — solver counters (conflicts,
    propagations, restarts, clause tiers, minimization/inprocessing
    totals, LBD ranges) as label/value pairs. *)

val pp_stats : Format.formatter -> t -> unit
