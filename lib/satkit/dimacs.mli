(** DIMACS CNF interchange: read external SAT instances, export CNFs (e.g.
    CEC miters) to other solvers. *)

exception Parse_error of string

val read : in_channel -> int * Lit.t list list
(** [(num_vars, clauses)]; comment and problem lines are handled, variable
    counts are corrected upward if literals exceed the header. *)

val read_file : string -> int * Lit.t list list

val load_file : ?config:Solver.config -> string -> Solver.t
(** Read a DIMACS file straight into a fresh solver. *)

val write : out_channel -> num_vars:int -> Lit.t list list -> unit
val write_file : string -> num_vars:int -> Lit.t list list -> unit
