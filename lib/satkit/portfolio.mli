(** Parallel solver portfolio: the same instance solved under N diversified
    configurations (restart policy, polarity, seeds) across OCaml 5
    domains, first decisive answer wins, losers cancelled through the
    kernel's [?stop] hook.

    The instance is rebuilt per worker by the [build] closure (solvers
    share nothing across domains); [build]'s return value — typically the
    variable map needed to decode a model — is handed back for the winning
    solver. *)

type 'a outcome = {
  result : Solver.result;
  solver : Solver.t;  (** the winning solver; read models from here *)
  payload : 'a;       (** [build]'s return value on the winning solver *)
  winner : string;    (** config name of the winning worker *)
  per_config : (string * Solver.result) list;
      (** every worker's answer, [Unknown] for cancelled ones *)
  stats : (string * (string * int) list) list;
      (** per-config kernel counters, winner first *)
}

val default_roster : int -> Solver.config list
(** [default_roster n] is [n] diversified configurations; index 0 is
    {!Solver.default_config}. *)

val result_name : Solver.result -> string
(** ["sat"], ["unsat"] or ["unknown"] — the spelling race telemetry uses. *)

val race_counters : 'a outcome -> (string * string * (string * int) list) list
(** Per-config [(name, result, kernel counters)] triples, winner first —
    the per-worker view (including losers cancelled mid-search) that race
    trace events publish. *)

val solve :
  ?jobs:int ->
  ?configs:Solver.config list ->
  ?conflict_budget:int ->
  ?assumptions:Lit.t list ->
  ?deadline:float ->
  build:(Solver.t -> 'a) ->
  unit ->
  'a outcome
(** Race [jobs] workers (default 1; [configs] overrides the roster and its
    length wins over [jobs] when shorter).  With a single worker this is a
    plain in-domain solve with no cancellation overhead.  [conflict_budget],
    [assumptions] and the absolute wall-clock [deadline] apply to every
    worker. *)
