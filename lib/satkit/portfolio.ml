(* A parallel solver portfolio: run the same instance under N diversified
   solver configurations (restart policy, polarity, random seed) across
   OCaml 5 domains, first answer wins.

   Each worker gets its own solver built by the caller-supplied [build]
   closure, so CNF encoding happens per worker and no state is shared
   between domains.  Losers are cancelled through the kernel's [?stop]
   polling hook: the first decisive (non-[Unknown]) answer sets an atomic
   flag every other worker polls during search.

   satkit sits below the flow layer, so this spawns domains directly
   rather than reusing [Flow.Parmap] (which would be a dependency cycle);
   the pattern — worker 0 on the calling domain, results by slot, first
   exception re-raised — matches Parmap's. *)

type 'a outcome = {
  result : Solver.result;
  solver : Solver.t;       (* the winning solver; read models from here *)
  payload : 'a;            (* [build]'s return value on the winning solver *)
  winner : string;         (* config name of the winning worker *)
  per_config : (string * Solver.result) list;
      (* every worker's answer, [Unknown] for cancelled ones *)
  stats : (string * (string * int) list) list;
      (* per-config kernel counters, winner first *)
}

let result_name = function
  | Solver.Sat -> "sat"
  | Solver.Unsat -> "unsat"
  | Solver.Unknown -> "unknown"

(* Per-config (name, result, counters) triples, winner first: what a race
   trace event records.  Cancelled losers report the counters they had
   reached when the stop hook fired, which is exactly the "lost race"
   visibility the observability layer wants. *)
let race_counters (o : 'a outcome) =
  List.map
    (fun (name, r) ->
      ( name,
        result_name r,
        match List.assoc_opt name o.stats with Some s -> s | None -> [] ))
    o.per_config

(* Diversified roster: distinct restart policies, polarities and seeds so
   the workers explore different parts of the search space.  Index 0 is the
   plain default configuration — with [jobs = 1] the portfolio degenerates
   to a normal solve. *)
let default_roster n =
  let base = Solver.default_config in
  let variants =
    [|
      base;
      { base with name = "luby"; restart = Solver.Luby; seed = 7 };
      { base with name = "neg"; polarity = Solver.Always_false; seed = 11 };
      {
        base with
        name = "rand";
        polarity = Solver.Random_init;
        random_decision_freq = 0.02;
        seed = 13;
      };
      { base with name = "pos"; polarity = Solver.Always_true; seed = 17 };
      {
        base with
        name = "luby-rand";
        restart = Solver.Luby;
        polarity = Solver.Random_init;
        random_decision_freq = 0.05;
        seed = 19;
      };
    |]
  in
  List.init (max 1 n) (fun i ->
      let v = variants.(i mod Array.length variants) in
      if i < Array.length variants then v
      else { v with name = Printf.sprintf "%s#%d" v.Solver.name i; seed = v.Solver.seed + (31 * i) })

let solve_one ~config ~conflict_budget ~assumptions ~deadline ~stop ~build =
  let s = Solver.create ~config () in
  let payload = build s in
  let r = Solver.solve ~conflict_budget ~assumptions ~deadline ?stop s in
  (r, s, payload)

let solve ?jobs ?configs ?(conflict_budget = 0) ?(assumptions = [])
    ?(deadline = 0.) ~build () =
  let configs =
    match configs with
    | Some (_ :: _ as cs) -> cs
    | Some [] | None ->
      default_roster
        (match jobs with
        | Some j -> max 1 j
        | None -> 1)
  in
  let configs =
    match jobs with
    | Some j when j >= 1 ->
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      let cs = take j configs in
      if List.length cs < j then configs else cs
    | _ -> configs
  in
  match configs with
  | [] -> assert false
  | [ config ] ->
    (* single worker: plain solve, no domain spawn, no cancellation *)
    let r, s, payload =
      solve_one ~config ~conflict_budget ~assumptions ~deadline ~stop:None
        ~build
    in
    {
      result = r;
      solver = s;
      payload;
      winner = config.Solver.name;
      per_config = [ (config.Solver.name, r) ];
      stats = [ (config.Solver.name, Solver.stats s) ];
    }
  | configs ->
    let n = List.length configs in
    let configs = Array.of_list configs in
    let cancel = Atomic.make false in
    let winner = Atomic.make (-1) in
    let slots = Array.make n None in
    let errors = Array.make n None in
    let worker i () =
      match
        solve_one ~config:configs.(i) ~conflict_budget ~assumptions ~deadline
          ~stop:(Some (fun () -> Atomic.get cancel))
          ~build
      with
      | (r, _, _) as res ->
        slots.(i) <- Some res;
        if r <> Solver.Unknown then begin
          (* first decisive answer wins and cancels the rest *)
          ignore (Atomic.compare_and_set winner (-1) i);
          Atomic.set cancel true
        end
      | exception e -> errors.(i) <- Some e
    in
    let domains = List.init (n - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    let win =
      match Atomic.get winner with
      | -1 -> 0 (* everyone exhausted the budget or was stopped: Unknown *)
      | i -> i
    in
    let r, s, payload =
      match slots.(win) with Some v -> v | None -> assert false
    in
    let name_of i = configs.(i).Solver.name in
    let per i =
      match slots.(i) with Some (r, _, _) -> r | None -> Solver.Unknown
    in
    let order = win :: List.filter (fun i -> i <> win) (List.init n Fun.id) in
    {
      result = r;
      solver = s;
      payload;
      winner = name_of win;
      per_config = List.map (fun i -> (name_of i, per i)) order;
      stats =
        List.filter_map
          (fun i ->
            match slots.(i) with
            | Some (_, s, _) -> Some (name_of i, Solver.stats s)
            | None -> None)
          order;
    }
